#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "core/telemetry.hpp"

namespace dring::core {

int resolve_threads(const SweepOptions& options) {
  if (options.threads > 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::uint64_t task_seed(std::uint64_t salt, std::size_t index) {
  // splitmix64 over the (salt, index) pair: high-quality, portable, and a
  // pure function of the task identity.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// Shared pool scheduler: run `fn(i)` for i in [0, count) on `threads`
/// workers (inline when <= 1), rethrowing the first worker exception.
template <typename Fn>
void parallel_for(std::size_t count, int threads, const Fn& fn) {
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// One task, executed in a worker: private adversary, adversary metrics
/// collected after the run, trace moved out when the task recorded one.
/// Tasks with run_custom yield no trace and no metrics (the custom runner
/// owns its engine and adversary outright).
SweepRun execute_task(const ScenarioTask& task) {
  SweepRun run;
  if (task.run_custom) {
    run.result = task.run_custom();
    return run;
  }
  std::unique_ptr<sim::Adversary> adv;
  sim::NullAdversary null_adv;
  if (task.make_adversary) adv = task.make_adversary();
  sim::Adversary* adversary = adv ? adv.get() : &null_adv;
  auto engine = make_engine(task.cfg, adversary);
  run.result = engine->run(task.cfg.stop);
  adversary->report_metrics(run.result.adversary_metrics);
  if (task.cfg.engine.record_trace) run.trace = engine->take_trace();
  if (telemetry().enabled()) {
    // Fold the engine's plain counters into the global registry once per
    // run — the engine itself never touches telemetry, so its hot paths
    // stay inside the CI perf gate.
    const sim::Engine::PerfCounters& pc = engine->perf_counters();
    util::MetricsRegistry& m = telemetry().metrics();
    m.counter("engine.rounds").add(run.result.rounds);
    m.counter("engine.snapshots").add(pc.snapshots);
    m.counter("engine.probe_calls").add(pc.probe_calls);
    m.counter("engine.probe_hits").add(pc.probe_hits);
  }
  return run;
}

/// Batch eligibility: declarative config, no custom runner, no trace to
/// collect. (Whether a lane then takes the SoA fast path or an embedded
/// scalar engine is BatchEngine's decision; results are identical either
/// way.)
bool batch_eligible(const ScenarioTask& task) {
  return !task.run_custom && !task.cfg.engine.record_trace;
}

/// The batched run_sweep_runs path (SweepOptions::batch_width > 0): every
/// worker owns a BatchEngine and pulls tasks from the shared counter into
/// free lanes, stepping all its lanes in lockstep and backfilling as lanes
/// retire. Ineligible tasks run scalar, inline on the worker. Tasks are
/// pure functions of their ScenarioTask and results land positionally, so
/// output is bit-identical for any (batch_width, threads) combination.
std::vector<SweepRun> run_sweep_runs_batched(
    const std::vector<ScenarioTask>& tasks, const SweepOptions& options) {
  std::vector<SweepRun> runs(tasks.size());
  if (tasks.empty()) return runs;
  const int width = options.batch_width;
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_threads(options)), tasks.size()));
  const bool telem = telemetry().enabled();

  std::mutex done_mutex;
  std::size_t done = 0;
  const auto finish = [&](std::size_t i, SweepRun&& run) {
    if (options.on_task_result || options.on_task_done ||
        options.discard_results) {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (options.on_task_result) options.on_task_result(i, run);
      runs[i] = options.discard_results ? SweepRun{} : std::move(run);
      if (options.on_task_done) options.on_task_done(++done, tasks.size());
    } else {
      runs[i] = std::move(run);
    }
  };

  std::atomic<std::size_t> next{0};
  std::atomic<long long> batch_rounds{0};
  std::atomic<long long> lane_rounds{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    try {
      sim::BatchEngine batch(width);
      const auto on_retire = [&](std::size_t tag, sim::RunResult&& result,
                                 const sim::LanePerf& perf) {
        if (telem) {
          util::MetricsRegistry& m = telemetry().metrics();
          m.counter("sweep.tasks").add(1);
          m.counter("engine.rounds").add(perf.rounds);
          m.counter("engine.snapshots").add(perf.snapshots);
          m.counter("engine.probe_calls").add(perf.probe_calls);
          m.counter("engine.probe_hits").add(perf.probe_hits);
          m.histogram("sweep.batch.retire_rounds", telemetry_round_bounds())
              .observe(perf.rounds);
        }
        SweepRun run;
        run.result = std::move(result);
        finish(tag, std::move(run));
      };
      bool drained = false;
      for (;;) {
        // Backfill free lanes from the shared queue.
        while (!drained && batch.active_lanes() < batch.width()) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) {
            drained = true;
            break;
          }
          const ScenarioTask& task = tasks[i];
          if (!batch_eligible(task)) {
            if (telem) {
              telemetry().metrics().counter("sweep.batch.scalar_tasks").add(1);
              telemetry().metrics().counter("sweep.tasks").add(1);
            }
            finish(i, execute_task(task));
            continue;
          }
          std::unique_ptr<sim::Adversary> adv;
          if (task.make_adversary) adv = task.make_adversary();
          batch.admit(make_lane_config(task.cfg, std::move(adv)), i);
        }
        if (batch.active_lanes() == 0) {
          if (drained) break;
          continue;  // nothing admitted this pass (all tasks were scalar)
        }
        batch.step_round(on_retire);
      }
      const sim::BatchStats& st = batch.stats();
      batch_rounds.fetch_add(st.batch_rounds, std::memory_order_relaxed);
      lane_rounds.fetch_add(st.lane_rounds, std::memory_order_relaxed);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  if (telem) {
    const long long br = batch_rounds.load();
    if (br > 0) {
      // Lane-rounds executed over lane-rounds available: 1.0 = every
      // step_round advanced a full batch.
      telemetry().metrics().gauge("sweep.batch.lane_utilization").set(
          static_cast<double>(lane_rounds.load()) /
          (static_cast<double>(br) * width));
    }
  }
  return runs;
}

}  // namespace

std::vector<sim::RunResult> run_sweep(const std::vector<ScenarioTask>& tasks,
                                      const SweepOptions& options) {
  std::vector<SweepRun> runs = run_sweep_runs(tasks, options);
  std::vector<sim::RunResult> results(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i)
    results[i] = std::move(runs[i].result);
  return results;
}

std::vector<SweepRun> run_sweep_runs(const std::vector<ScenarioTask>& tasks,
                                     const SweepOptions& options) {
  if (options.batch_width > 0) return run_sweep_runs_batched(tasks, options);
  std::vector<SweepRun> runs(tasks.size());
  if (tasks.empty()) return runs;
  std::mutex done_mutex;
  std::size_t done = 0;
  const int threads = resolve_threads(options);
  const bool telem = telemetry().enabled();
  const long long pool_t0 = telem ? telemetry_now_us() : 0;
  std::atomic<long long> busy_us{0};
  parallel_for(tasks.size(), threads, [&](std::size_t i) {
    long long task_t0 = 0;
    if (telem) {
      task_t0 = telemetry_now_us();
      // Queue wait: how long the task sat in the pool's implicit queue
      // before a worker picked it up.
      telemetry()
          .metrics()
          .histogram("sweep.queue_wait_us", telemetry_time_bounds())
          .observe(task_t0 - pool_t0);
    }
    SweepRun run = execute_task(tasks[i]);
    if (telem) {
      const long long task_us = telemetry_now_us() - task_t0;
      util::MetricsRegistry& m = telemetry().metrics();
      m.histogram("sweep.task_us", telemetry_time_bounds()).observe(task_us);
      m.counter("sweep.tasks").add(1);
      busy_us.fetch_add(task_us, std::memory_order_relaxed);
    }
    if (options.on_task_result || options.on_task_done ||
        options.discard_results) {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (options.on_task_result) options.on_task_result(i, run);
      runs[i] = options.discard_results ? SweepRun{} : std::move(run);
      if (options.on_task_done) options.on_task_done(++done, tasks.size());
    } else {
      runs[i] = std::move(run);
    }
  });
  if (telem) {
    // Busy time over worker-seconds available: 1.0 = every worker ran
    // tasks the whole time.
    const long long wall_us =
        std::max(1LL, telemetry_now_us() - pool_t0);
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), tasks.size()));
    telemetry().metrics().gauge("sweep.utilization").set(
        static_cast<double>(busy_us.load()) /
        (static_cast<double>(wall_us) * std::max(1, workers)));
  }
  return runs;
}

SweepReduction reduce_worst(const std::vector<sim::RunResult>& results) {
  SweepReduction red;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::RunResult& r = results[i];
    red.runs += 1;
    if (r.explored) red.explored += 1;
    if (r.premature_termination) red.premature += 1;
    if (r.all_terminated) red.full_termination += 1;
    if (r.any_terminated()) red.partial_termination += 1;
    if (!r.violations.empty()) red.with_violations += 1;
    if (r.rounds > red.worst_rounds) {
      red.worst_rounds = r.rounds;
      red.worst_rounds_task = i;
    }
    if (r.total_moves > red.worst_moves) {
      red.worst_moves = r.total_moves;
      red.worst_moves_task = i;
    }
  }
  return red;
}

}  // namespace dring::core
