// Tests for the T-interval-connectivity adversary decorator
// (adversary/t_interval.hpp): T = 1 is an exact pass-through (pinned
// against the golden digests), the interval invariant holds on traces for
// T > 1, capability flags forward to the wrapped adversary, and exploration
// gets monotonically easier as T grows.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/t_interval.hpp"
#include "core/runner.hpp"
#include "sim/trace_io.hpp"

namespace dring::adversary {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;

struct Digests {
  std::uint64_t trace;
  std::uint64_t result;
};

Digests run_digests(ExplorationConfig cfg, sim::Adversary* adv) {
  cfg.engine.record_trace = true;
  auto engine = core::make_engine(cfg, adv);
  const sim::RunResult r = engine->run(cfg.stop);
  return {sim::trace_digest(engine->trace()), sim::result_digest(r)};
}

TEST(TInterval, TEqualsOneIsExactPassThrough) {
  // The golden scenario "fsync-knownN-targeted"
  // (src/core/golden_scenarios.hpp) with its adversary wrapped at T = 1
  // must reproduce the digest recorded for the unwrapped run bit for bit.
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 12);
  cfg.stop.max_rounds = 400;

  TIntervalAdversary wrapped(
      1, std::make_unique<TargetedRandomAdversary>(0.6, 1.0, 101));
  const Digests d = run_digests(cfg, &wrapped);
  // The constants pinned in tests/scenario_regression_test.cpp.
  EXPECT_EQ(d.trace, 0x7affa0518aed7468ULL);
  EXPECT_EQ(d.result, 0x9c60e14c241c121aULL);
}

TEST(TInterval, TEqualsOneMatchesUnwrappedAcrossModels) {
  // Pass-through equality on further shapes: SSYNC activation choices and
  // probing adversaries must flow through the decorator unchanged.
  struct Case {
    AlgorithmId id;
    NodeId n;
    std::uint64_t seed;
  };
  for (const Case c : {Case{AlgorithmId::UnconsciousExploration, 10, 11},
                       Case{AlgorithmId::PTBoundWithChirality, 8, 22},
                       Case{AlgorithmId::ETUnconscious, 8, 33}}) {
    ExplorationConfig cfg = default_config(c.id, c.n);
    cfg.stop.max_rounds = 5000;

    TargetedRandomAdversary plain(0.6, 0.7, c.seed);
    const Digests a = run_digests(cfg, &plain);

    TIntervalAdversary wrapped(
        1, std::make_unique<TargetedRandomAdversary>(0.6, 0.7, c.seed));
    const Digests b = run_digests(cfg, &wrapped);

    EXPECT_EQ(a.trace, b.trace) << "algorithm " << static_cast<int>(c.id);
    EXPECT_EQ(a.result, b.result) << "algorithm " << static_cast<int>(c.id);
  }
}

TEST(TInterval, TraceSatisfiesIntervalInvariant) {
  // Characterisation on the ring: two rounds missing *different* edges must
  // be at least T apart (otherwise some window of T rounds has no stable
  // connected spanning subgraph).
  for (const Round t : {2, 3, 5}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 10);
    cfg.engine.record_trace = true;
    cfg.stop.max_rounds = 400;
    cfg.stop.stop_when_explored = false;
    TIntervalAdversary adv(
        t, std::make_unique<TargetedRandomAdversary>(0.8, 1.0, 77));
    auto engine = core::make_engine(cfg, &adv);
    engine->run(cfg.stop);

    Round last_round = -1;
    EdgeId last_edge = kNoEdge;
    int removals = 0;
    for (const sim::RoundTrace& rt : engine->trace()) {
      if (!rt.missing) continue;
      ++removals;
      if (last_edge != kNoEdge && *rt.missing != last_edge)
        EXPECT_GE(rt.round - last_round, t)
            << "switched " << last_edge << "->" << *rt.missing << " at round "
            << rt.round;
      last_edge = *rt.missing;
      last_round = rt.round;
    }
    // The hostile child keeps requesting removals, so the run must both
    // remove edges and hit the interval guard.
    EXPECT_GT(removals, 0) << "T=" << t;
    EXPECT_GT(adv.vetoes(), 0) << "T=" << t;
  }
}

TEST(TInterval, CooldownScheduleIsExact) {
  // Scripted child: edge 1 on rounds 1-2, edge 2 from round 3 on.  With
  // T = 3 the switch is legal only once the last edge-1 round is 3 rounds
  // in the past: expect 1, 1, none, none, 2, 2, ...
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 8);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 7;
  cfg.stop.stop_when_explored = false;
  TIntervalAdversary adv(
      3, std::make_unique<ScriptedEdgeAdversary>(
             [](Round r) -> std::optional<EdgeId> { return r <= 2 ? 1 : 2; }));
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);

  const auto& trace = engine->trace();
  ASSERT_EQ(trace.size(), 7u);
  EXPECT_EQ(trace[0].missing, std::optional<EdgeId>(1));
  EXPECT_EQ(trace[1].missing, std::optional<EdgeId>(1));
  EXPECT_FALSE(trace[2].missing.has_value());  // round 3: gap 1 < 3
  EXPECT_FALSE(trace[3].missing.has_value());  // round 4: gap 2 < 3
  EXPECT_EQ(trace[4].missing, std::optional<EdgeId>(2));  // round 5: gap 3
  EXPECT_EQ(trace[5].missing, std::optional<EdgeId>(2));
  EXPECT_EQ(adv.vetoes(), 2);
}

TEST(TInterval, ForwardsCapabilityFlags) {
  // TargetedRandom reads intents (base default) but never reorders.
  TIntervalAdversary a(
      4, std::make_unique<TargetedRandomAdversary>(0.5, 1.0, 1));
  EXPECT_TRUE(a.observes_intents());
  EXPECT_FALSE(a.reorders_contenders());

  // FixedEdge advertises that it reads neither.
  TIntervalAdversary b(4, std::make_unique<FixedEdgeAdversary>(2));
  EXPECT_FALSE(b.observes_intents());
  EXPECT_FALSE(b.reorders_contenders());

  // No inner adversary: benign defaults.
  TIntervalAdversary c(4, nullptr);
  EXPECT_FALSE(c.observes_intents());
  EXPECT_FALSE(c.reorders_contenders());

  EXPECT_THROW(TIntervalAdversary(0, nullptr), std::invalid_argument);
}

TEST(TInterval, ExplorationRoundsNonIncreasingInT) {
  // The model axis the campaign sweeps: a larger T throttles the adversary
  // (more vetoed removals), so exploration can only get easier.  Pinned
  // empirically on a fixed seed set, per seed, for the doubling ladder.
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL, 8ULL, 9ULL}) {
    Round previous = -1;
    for (const Round t : {1, 2, 4, 8}) {
      ExplorationConfig cfg =
          default_config(AlgorithmId::UnconsciousExploration, 12);
      cfg.stop.max_rounds = 100'000;
      TIntervalAdversary adv(
          t, std::make_unique<TargetedRandomAdversary>(0.8, 1.0, seed));
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      ASSERT_TRUE(r.explored) << "seed " << seed << " T=" << t;
      if (previous >= 0)
        EXPECT_LE(r.explored_round, previous)
            << "seed " << seed << " T=" << t;
      previous = r.explored_round;
    }
  }
}

}  // namespace
}  // namespace dring::adversary
