#include "core/archive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace dring::core {

namespace {

std::string fmt(const char* spec, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, value);
  return buf;
}

// Fixed-format string forms for the record's non-integral numbers: the
// canonical dump must not depend on how a double prints under %.17g.
std::string fmt_rate4(double v) { return fmt("%.4f", v); }
std::string fmt_ns(double v) { return fmt("%.2f", v); }
std::string fmt_ips(double v) { return fmt("%.1f", v); }

/// Read a numeric field that may be serialized as a fixed-format string.
double num_field(const util::Json& j) {
  if (j.is_string()) {
    const std::string& s = j.as_string();
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size())
      throw std::invalid_argument("archive: bad numeric string '" + s + "'");
    return v;
  }
  return j.as_double();
}

util::Json mark_json(const ArchivePerfMark& mark) {
  util::Json j;
  j.set("real_time_ns", fmt_ns(mark.real_time_ns));
  j.set("items_per_second", fmt_ips(mark.items_per_second));
  return j;
}

ArchivePerfMark mark_from_json(const util::Json& j) {
  ArchivePerfMark mark;
  mark.real_time_ns = num_field(j.at("real_time_ns"));
  if (j.has("items_per_second"))
    mark.items_per_second = num_field(j.at("items_per_second"));
  return mark;
}

util::Json marks_json(const std::map<std::string, ArchivePerfMark>& marks) {
  util::Json out{util::Json::Object{}};
  for (const auto& [name, mark] : marks) out.set(name, mark_json(mark));
  return out;
}

std::map<std::string, ArchivePerfMark> marks_from_json(const util::Json& j) {
  std::map<std::string, ArchivePerfMark> marks;
  for (const auto& [name, mark] : j.as_object())
    marks[name] = mark_from_json(mark);
  return marks;
}

util::Json cell_json(const ArchiveCellGroup& cell) {
  util::Json j;
  j.set("key", cell.key);
  j.set("runs", static_cast<long long>(cell.runs));
  j.set("ok", static_cast<long long>(cell.successes));
  j.set("rate_lo", fmt_rate4(cell.rate_lo));
  j.set("rate_hi", fmt_rate4(cell.rate_hi));
  if (cell.mean_rounds >= 0) j.set("mean_rounds", fmt_ns(cell.mean_rounds));
  return j;
}

ArchiveCellGroup cell_from_json(const util::Json& j) {
  ArchiveCellGroup cell;
  cell.key = j.at("key").as_string();
  cell.runs = static_cast<int>(j.at("runs").as_int());
  cell.successes = static_cast<int>(j.at("ok").as_int());
  cell.rate_lo = num_field(j.at("rate_lo"));
  cell.rate_hi = num_field(j.at("rate_hi"));
  cell.mean_rounds = j.has("mean_rounds") ? num_field(j.at("mean_rounds")) : -1;
  return cell;
}

util::Json era_json(const ArchiveBenchEra& era) {
  util::Json j;
  j.set("engine", era.engine);
  j.set("date", era.date);
  j.set("marks", marks_json(era.marks));
  return j;
}

ArchiveBenchEra era_from_json(const util::Json& j) {
  ArchiveBenchEra era;
  era.engine = j.get_string("engine", "");
  era.date = j.get_string("date", "");
  if (j.has("marks")) era.marks = marks_from_json(j.at("marks"));
  return era;
}

}  // namespace

// --- record (de)serialization ----------------------------------------------

util::Json to_json(const ArchiveRecord& record) {
  util::Json j;
  j.set("archive", kArchiveSchemaVersion);
  j.set("engine", record.engine);
  j.set("build", record.build);
  j.set("schema", record.schema);
  j.set("date", record.date);
  if (!record.note.empty()) j.set("note", record.note);
  if (record.tests >= 0) j.set("tests", record.tests);
  if (!record.reports.empty()) {
    util::Json reports{util::Json::Object{}};
    for (const auto& [name, digest] : record.reports)
      reports.set(name, digest);
    j.set("reports", std::move(reports));
  }
  if (!record.cells.empty()) {
    util::Json::Array cells;
    for (const ArchiveCellGroup& cell : record.cells)
      cells.push_back(cell_json(cell));
    j.set("cells", util::Json(std::move(cells)));
  }
  if (!record.perf.empty()) j.set("perf", marks_json(record.perf));
  if (!record.bench_history.empty()) {
    util::Json::Array eras;
    for (const ArchiveBenchEra& era : record.bench_history)
      eras.push_back(era_json(era));
    j.set("bench_history", util::Json(std::move(eras)));
  }
  return j;
}

ArchiveRecord archive_record_from_json(const util::Json& j) {
  const long long version = j.get_int("archive", -1);
  if (version != kArchiveSchemaVersion)
    throw std::invalid_argument(
        "archive: record schema " + std::to_string(version) +
        " is not the supported " + std::to_string(kArchiveSchemaVersion));
  ArchiveRecord record;
  record.engine = j.at("engine").as_string();
  record.build = j.at("build").as_string();
  record.schema = j.get_int("schema", 0);
  record.date = j.at("date").as_string();
  record.note = j.get_string("note", "");
  record.tests = j.get_int("tests", -1);
  if (j.has("reports"))
    for (const auto& [name, digest] : j.at("reports").as_object())
      record.reports[name] = digest.as_string();
  if (j.has("cells"))
    for (const util::Json& cell : j.at("cells").as_array())
      record.cells.push_back(cell_from_json(cell));
  if (j.has("perf")) record.perf = marks_from_json(j.at("perf"));
  if (j.has("bench_history"))
    for (const util::Json& era : j.at("bench_history").as_array())
      record.bench_history.push_back(era_from_json(era));
  return record;
}

std::string archive_entry_bytes(const ArchiveRecord& record) {
  return to_json(record).dump() + "\n";
}

// --- building record pieces -------------------------------------------------

std::string content_digest(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return hex_u64(h);
}

std::vector<ArchiveCellGroup> archive_cells(
    const std::vector<CampaignRow>& rows,
    const std::vector<std::string>& group_keys) {
  std::vector<ArchiveCellGroup> cells;
  for (const GroupRow& group :
       aggregate_rows(rows, group_keys, Metric::ExploredRound)) {
    ArchiveCellGroup cell;
    for (std::size_t i = 0; i < group_keys.size(); ++i) {
      if (i) cell.key += ' ';
      cell.key += group_keys[i] + "=" + group.key[i];
    }
    cell.runs = group.agg.runs;
    cell.successes = group.agg.successes;
    cell.rate_lo = group.agg.rate_ci.lo;
    cell.rate_hi = group.agg.rate_ci.hi;
    cell.mean_rounds = group.agg.samples > 0 ? group.agg.mean : -1;
    cells.push_back(std::move(cell));
  }
  std::sort(cells.begin(), cells.end(),
            [](const ArchiveCellGroup& a, const ArchiveCellGroup& b) {
              return a.key < b.key;
            });
  return cells;
}

util::Json archive_cells_json(const std::vector<ArchiveCellGroup>& cells,
                              const std::vector<std::string>& group_keys) {
  util::Json::Array out;
  for (const ArchiveCellGroup& cell : cells) out.push_back(cell_json(cell));
  util::Json::Array keys;
  for (const std::string& key : group_keys) keys.emplace_back(key);
  util::Json doc;
  doc.set("cells", util::Json(std::move(out)));
  doc.set("group_by", util::Json(std::move(keys)));
  return doc;
}

std::vector<ArchiveCellGroup> archive_cells_from_json(const util::Json& j) {
  std::vector<ArchiveCellGroup> cells;
  if (!j.has("cells"))
    throw std::invalid_argument("archive: document has no \"cells\" member");
  for (const util::Json& cell : j.at("cells").as_array())
    cells.push_back(cell_from_json(cell));
  return cells;
}

std::map<std::string, ArchivePerfMark> perf_marks_from_bench(
    const util::Json& bench, const std::string& section) {
  if (!bench.has(section))
    throw std::invalid_argument("bench document has no \"" + section +
                                "\" section");
  return marks_from_json(bench.at(section));
}

std::vector<ArchiveBenchEra> bench_history_from_bench(const util::Json& bench) {
  std::vector<ArchiveBenchEra> history;
  if (!bench.has("history")) return history;
  for (const util::Json& era : bench.at("history").as_array())
    history.push_back(era_from_json(era));
  return history;
}

util::Json archive_perf_json(
    const std::map<std::string, ArchivePerfMark>& perf,
    const std::vector<ArchiveBenchEra>& history) {
  util::Json doc;
  doc.set("perf", marks_json(perf));
  util::Json::Array eras;
  for (const ArchiveBenchEra& era : history) eras.push_back(era_json(era));
  doc.set("bench_history", util::Json(std::move(eras)));
  return doc;
}

// --- the archive directory ---------------------------------------------------

std::string archive_entry_filename(const ArchiveRecord& record) {
  return record.engine + ".json";
}

namespace {

/// Split "dring-1.2.0" into {1, 2, 0}; empty when the name does not parse.
std::vector<long long> version_components(const std::string& name) {
  const std::string prefix = "dring-";
  if (name.rfind(prefix, 0) != 0) return {};
  std::vector<long long> parts;
  std::string digits;
  for (std::size_t i = prefix.size(); i <= name.size(); ++i) {
    const char c = i < name.size() ? name[i] : '.';
    if (c >= '0' && c <= '9') {
      digits += c;
    } else if (c == '.') {
      if (digits.empty()) return {};
      parts.push_back(std::stoll(digits));
      digits.clear();
    } else {
      return {};
    }
  }
  return parts;
}

}  // namespace

bool engine_version_less(const std::string& a, const std::string& b) {
  const std::vector<long long> va = version_components(a);
  const std::vector<long long> vb = version_components(b);
  if (!va.empty() && !vb.empty()) {
    if (va != vb) return va < vb;
    return a < b;
  }
  if (va.empty() != vb.empty()) return !va.empty();  // parsed sorts first
  return a < b;
}

std::vector<ArchiveRecord> read_archive_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<ArchiveRecord> records;
  if (!fs::exists(dir)) return records;
  if (!fs::is_directory(dir))
    throw std::runtime_error("archive: " + dir + " is not a directory");
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("archive: cannot open " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      records.push_back(archive_record_from_json(util::Json::parse(text)));
    } catch (const std::exception& e) {
      throw std::invalid_argument(path + ": " + e.what());
    }
  }
  std::sort(records.begin(), records.end(),
            [](const ArchiveRecord& a, const ArchiveRecord& b) {
              if (a.engine != b.engine)
                return engine_version_less(a.engine, b.engine);
              if (a.date != b.date) return a.date < b.date;
              return a.build < b.build;
            });
  return records;
}

std::string append_archive_record(const std::string& dir,
                                  const ArchiveRecord& record, bool force) {
  namespace fs = std::filesystem;
  if (record.engine.empty())
    throw std::runtime_error("archive: record has no engine version");
  fs::create_directories(dir);
  const std::string path =
      (fs::path(dir) / archive_entry_filename(record)).string();
  if (!force && fs::exists(path))
    throw std::runtime_error(
        "archive: " + path + " already exists — the archive is append-only; "
        "pass --force to rewrite an archived version deliberately");
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("archive: cannot write " + path);
  out << archive_entry_bytes(record);
  if (!out) throw std::runtime_error("archive: write to " + path + " failed");
  return path;
}

// --- the dashboard ------------------------------------------------------------

std::vector<ArchiveDrift> detect_drift(
    const std::vector<ArchiveRecord>& records) {
  std::vector<ArchiveDrift> drift;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const ArchiveRecord& from = records[i - 1];
    const ArchiveRecord& to = records[i];
    for (const auto& [name, digest] : to.reports) {
      const auto it = from.reports.find(name);
      if (it == from.reports.end() || it->second == digest) continue;
      drift.push_back({name, from.engine, to.engine, it->second, digest});
    }
  }
  return drift;
}

std::string sparkline(const std::vector<double>& values, double lo,
                      double hi) {
  static const char* kGlyphs[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double min = lo, max = hi;
  if (!(lo < hi)) {
    min = std::numeric_limits<double>::infinity();
    max = -min;
    for (const double v : values)
      if (!std::isnan(v)) {
        min = std::min(min, v);
        max = std::max(max, v);
      }
  }
  std::string out;
  for (const double v : values) {
    if (std::isnan(v)) {
      out += "·";  // · missing
      continue;
    }
    int level = 3;  // all-equal series render mid-scale
    if (max > min) {
      const double unit = (std::min(std::max(v, min), max) - min) / (max - min);
      level = static_cast<int>(std::lround(unit * 7.0));
    }
    out += kGlyphs[level];
  }
  return out;
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Regression tolerance on cost-like series (perf ns, mean rounds):
/// mirrors the bench_snapshot.sh --check default.
constexpr double kCostTolerance = 0.10;

/// One trend-table row: a named series with one optional value per
/// version (NaN = not recorded at that version).
struct TrendRow {
  std::string name;
  std::vector<double> values;
};

enum class DeltaKind {
  PercentCostly,  ///< signed %, REGRESSED when > +tolerance (perf, rounds)
  RatePoints,     ///< signed percentage points, REGRESSED on any drop
  Count,          ///< signed absolute (tests)
};

/// The last step of a series: delta between the newest value and the
/// newest earlier value (series absent from middle versions still get a
/// delta).  "-" when fewer than two values exist.
std::string delta_text(const std::vector<double>& values, DeltaKind kind) {
  int last = -1, prev = -1;
  for (int i = static_cast<int>(values.size()) - 1; i >= 0; --i) {
    if (std::isnan(values[i])) continue;
    if (last < 0) {
      last = i;
    } else {
      prev = i;
      break;
    }
  }
  if (prev < 0) return "-";
  const double a = values[prev], b = values[last];
  switch (kind) {
    case DeltaKind::PercentCostly: {
      if (a <= 0) return "-";
      const double pct = (b / a - 1.0) * 100.0;
      std::string text = fmt("%+.1f%%", pct);
      if (pct > kCostTolerance * 100.0) text += " REGRESSED";
      return text;
    }
    case DeltaKind::RatePoints: {
      const double pp = (b - a) * 100.0;
      std::string text = fmt("%+.2fpp", pp);
      if (b < a - 1e-12) text += " REGRESSED";
      return text;
    }
    case DeltaKind::Count: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+lld",
                    static_cast<long long>(b - a));
      return buf;
    }
  }
  return "-";
}

std::string fmt_value(double v, const char* spec) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

/// Render one trend table (markdown): series rows x version columns,
/// last-step delta, sparkline.  `lo < hi` fixes an absolute sparkline
/// scale (rates); otherwise each row normalizes to itself.
std::string render_trend_table(
    const std::string& first_column, const std::vector<std::string>& versions,
    const std::vector<TrendRow>& rows, const char* value_spec, DeltaKind kind,
    double lo, double hi,
    const std::vector<std::vector<std::string>>* cell_text = nullptr) {
  std::vector<std::string> header = {first_column};
  header.insert(header.end(), versions.begin(), versions.end());
  header.push_back("Δ last");
  header.push_back("trend");
  std::string out = render_cells(header, ReportFormat::Markdown);
  out += md_separator_row(header.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const TrendRow& row = rows[r];
    std::vector<std::string> cells = {row.name};
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      if (cell_text)
        cells.push_back((*cell_text)[r][i]);
      else
        cells.push_back(fmt_value(row.values[i], value_spec));
    }
    cells.push_back(delta_text(row.values, kind));
    cells.push_back(sparkline(row.values, lo, hi));
    out += render_cells(cells, ReportFormat::Markdown);
  }
  return out;
}

/// Collect the union of keys of a per-record map extractor, sorted.
template <typename Extract>
std::vector<std::string> union_keys(const std::vector<ArchiveRecord>& records,
                                    Extract extract) {
  std::vector<std::string> keys;
  for (const ArchiveRecord& record : records)
    for (const auto& [key, value] : extract(record)) {
      (void)value;
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
    }
  std::sort(keys.begin(), keys.end());
  return keys;
}

const ArchiveCellGroup* find_cell(const ArchiveRecord& record,
                                  const std::string& key) {
  for (const ArchiveCellGroup& cell : record.cells)
    if (cell.key == key) return &cell;
  return nullptr;
}

}  // namespace

std::string render_dashboard(std::vector<ArchiveRecord> records,
                             ReportFormat format) {
  std::sort(records.begin(), records.end(),
            [](const ArchiveRecord& a, const ArchiveRecord& b) {
              if (a.engine != b.engine)
                return engine_version_less(a.engine, b.engine);
              if (a.date != b.date) return a.date < b.date;
              return a.build < b.build;
            });
  const std::vector<ArchiveDrift> drift = detect_drift(records);

  std::vector<std::string> versions;
  for (const ArchiveRecord& record : records)
    versions.push_back(record.engine);

  // Series keys, as unions over every record so a quantity that appears
  // or disappears mid-archive still gets a (gappy) row.
  const std::vector<std::string> bench_names = union_keys(
      records, [](const ArchiveRecord& r) -> const auto& { return r.perf; });
  std::vector<std::string> cell_keys;
  for (const ArchiveRecord& record : records)
    for (const ArchiveCellGroup& cell : record.cells)
      if (std::find(cell_keys.begin(), cell_keys.end(), cell.key) ==
          cell_keys.end())
        cell_keys.push_back(cell.key);
  std::sort(cell_keys.begin(), cell_keys.end());

  if (format == ReportFormat::Json) {
    util::Json doc;
    doc.set("archive", kArchiveSchemaVersion);
    util::Json::Array recs;
    for (const ArchiveRecord& record : records)
      recs.push_back(to_json(record));
    doc.set("records", util::Json(std::move(recs)));
    util::Json::Array drifted;
    for (const ArchiveDrift& d : drift) {
      util::Json j;
      j.set("report", d.report);
      j.set("from", d.from_engine);
      j.set("to", d.to_engine);
      j.set("digest_before", d.digest_before);
      j.set("digest_after", d.digest_after);
      drifted.push_back(std::move(j));
    }
    doc.set("drift", util::Json(std::move(drifted)));
    return doc.dump() + "\n";
  }

  if (format == ReportFormat::Csv) {
    // Flat plot-ready form: one (section, series, version, value) row per
    // recorded quantity.
    std::string out =
        render_cells({"section", "series", "version", "value"},
                     ReportFormat::Csv);
    for (const ArchiveRecord& record : records) {
      for (const auto& [name, mark] : record.perf)
        out += render_cells({"perf_ns", name, record.engine,
                             fmt_value(mark.real_time_ns, "%.2f")},
                            ReportFormat::Csv);
      for (const ArchiveCellGroup& cell : record.cells) {
        out += render_cells({"rate", cell.key, record.engine,
                             fmt_value(cell.rate(), "%.4f")},
                            ReportFormat::Csv);
        if (cell.mean_rounds >= 0)
          out += render_cells({"rounds", cell.key, record.engine,
                               fmt_value(cell.mean_rounds, "%.2f")},
                              ReportFormat::Csv);
      }
      if (record.tests >= 0)
        out += render_cells({"tests", "tier-1", record.engine,
                             std::to_string(record.tests)},
                            ReportFormat::Csv);
    }
    return out;
  }

  // --- markdown: the committed page ----------------------------------------
  std::string out = "# dring trend dashboard\n\n";
  out +=
      "Derived from the cross-version archive (`examples/archive/`) by\n"
      "`dring_dashboard --render`; regenerate after appending a release\n"
      "record.  Do not edit by hand — CI re-derives this page byte for\n"
      "byte (`dring_dashboard --check`) and fails on undocumented drift.\n\n";
  out += "Versions archived: " + std::to_string(records.size());
  if (!records.empty())
    out += " (" + records.front().engine + " .. " + records.back().engine +
           ")";
  out += "\n\n## versions\n\n";
  {
    std::vector<std::string> header = {"version", "date",  "build",
                                       "schema",  "tests", "cells",
                                       "reports", "note"};
    out += render_cells(header, ReportFormat::Markdown);
    out += md_separator_row(header.size());
    for (const ArchiveRecord& record : records) {
      out += render_cells(
          {record.engine, record.date, record.build,
           "v" + std::to_string(record.schema),
           record.tests >= 0 ? std::to_string(record.tests) : "-",
           std::to_string(record.cells.size()),
           std::to_string(record.reports.size()),
           record.note.empty() ? "-" : record.note},
          ReportFormat::Markdown);
    }
  }

  out += "\n## engine perf trend\n\n";
  out +=
      "`real_time_ns` per benchmark; Δ last = newest vs previous "
      "recorded version (negative = faster); REGRESSED = more than 10% "
      "slower (the CI perf-gate tolerance).\n\n";
  {
    std::vector<TrendRow> rows;
    for (const std::string& name : bench_names) {
      TrendRow row{name, {}};
      for (const ArchiveRecord& record : records) {
        const auto it = record.perf.find(name);
        row.values.push_back(it == record.perf.end() ? kNaN
                                                     : it->second.real_time_ns);
      }
      rows.push_back(std::move(row));
    }
    out += render_trend_table("benchmark", versions, rows, "%.2f",
                              DeltaKind::PercentCostly, 0, 0);
  }

  out += "\n## success-rate trend\n\n";
  out +=
      "Success rate [Wilson 95% CI] per campaign cell group; Δ last in "
      "percentage points; REGRESSED = any drop.  Sparklines use the "
      "absolute [0, 1] scale.\n\n";
  {
    std::vector<TrendRow> rows;
    std::vector<std::vector<std::string>> texts;
    for (const std::string& key : cell_keys) {
      TrendRow row{key, {}};
      std::vector<std::string> text;
      for (const ArchiveRecord& record : records) {
        const ArchiveCellGroup* cell = find_cell(record, key);
        row.values.push_back(cell ? cell->rate() : kNaN);
        text.push_back(cell ? fmt_value(cell->rate(), "%.4f") + " [" +
                                  fmt_value(cell->rate_lo, "%.4f") + "," +
                                  fmt_value(cell->rate_hi, "%.4f") + "]"
                            : "-");
      }
      rows.push_back(std::move(row));
      texts.push_back(std::move(text));
    }
    out += render_trend_table("cell", versions, rows, "%.4f",
                              DeltaKind::RatePoints, 0, 1, &texts);
  }

  out += "\n## rounds-to-explored trend\n\n";
  out +=
      "Mean `explored_round` over successful runs; Δ last = newest vs "
      "previous (negative = explored sooner); REGRESSED = more than 10% "
      "more rounds.\n\n";
  {
    std::vector<TrendRow> rows;
    for (const std::string& key : cell_keys) {
      TrendRow row{key, {}};
      bool any = false;
      for (const ArchiveRecord& record : records) {
        const ArchiveCellGroup* cell = find_cell(record, key);
        const double v =
            cell && cell->mean_rounds >= 0 ? cell->mean_rounds : kNaN;
        any = any || !std::isnan(v);
        row.values.push_back(v);
      }
      if (any) rows.push_back(std::move(row));
    }
    out += render_trend_table("cell", versions, rows, "%.2f",
                              DeltaKind::PercentCostly, 0, 0);
  }

  out += "\n## tier-1 tests trend\n\n";
  {
    std::vector<TrendRow> rows;
    TrendRow row{"tests", {}};
    for (const ArchiveRecord& record : records)
      row.values.push_back(record.tests >= 0
                               ? static_cast<double>(record.tests)
                               : kNaN);
    rows.push_back(std::move(row));
    out += render_trend_table("suite", versions, rows, "%.0f",
                              DeltaKind::Count, 0, 0);
  }

  out += "\n## bench rebaseline history\n\n";
  {
    const std::vector<ArchiveBenchEra>* history = nullptr;
    for (const ArchiveRecord& record : records)
      if (!record.bench_history.empty()) history = &record.bench_history;
    if (!history) {
      out += "No rebaselines recorded: every mark above is measured "
             "against the original seed-engine baseline.\n";
    } else {
      out += "Trajectories retired by `bench_snapshot.sh --rebaseline` "
             "(oldest first):\n\n";
      for (const ArchiveBenchEra& era : *history)
        out += "- " + (era.engine.empty() ? "(unknown engine)" : era.engine) +
               ", " + (era.date.empty() ? "(unknown date)" : era.date) +
               ": " + std::to_string(era.marks.size()) +
               " mark(s) retired\n";
    }
  }

  out += "\n## artifact drift\n\n";
  out +=
      "Aggregate digests of the committed `examples/paper/` reports.  A "
      "digest change between consecutive archived versions means that "
      "artifact's numbers moved — deliberate rebaselines must be named in "
      "the release note.\n\n";
  if (drift.empty()) {
    out += "No drift: no tracked report changed its digest between "
           "consecutive archived versions.\n";
  } else {
    std::vector<std::string> header = {"report", "from", "to",
                                       "digest before", "digest after"};
    out += render_cells(header, ReportFormat::Markdown);
    out += md_separator_row(header.size());
    for (const ArchiveDrift& d : drift)
      out += render_cells({d.report, d.from_engine, d.to_engine,
                           d.digest_before, d.digest_after},
                          ReportFormat::Markdown);
  }
  // Reports appearing for the first time are new coverage, not drift —
  // listed so the drift section accounts for every digest.
  for (std::size_t i = 1; i < records.size(); ++i) {
    std::vector<std::string> fresh;
    for (const auto& [name, digest] : records[i].reports) {
      (void)digest;
      if (records[i - 1].reports.count(name) == 0) fresh.push_back(name);
    }
    if (fresh.empty()) continue;
    out += "\nNew at " + records[i].engine + " (" +
           std::to_string(fresh.size()) + "): ";
    for (std::size_t f = 0; f < fresh.size(); ++f)
      out += (f ? ", " : "") + fresh[f];
    out += "\n";
  }
  return out;
}

}  // namespace dring::core
