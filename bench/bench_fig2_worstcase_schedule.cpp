// Reproduces Figure 2 of the paper: the adversarial schedule under which
// Algorithm KnownNNoChirality needs exactly 3n-6 rounds.
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario grid, the 3n-6 check and the table
// formatting live in the "fig2_worstcase" artifact, whose campaign store
// also backs the committed examples/paper/fig2_worstcase.md report
// (dring_artifact).  Output is byte-identical to the pre-migration bench;
// the exit status still reports whether every size matched the paper
// bound.
#include <iostream>
#include <vector>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  std::vector<NodeId> sizes;
  for (NodeId n : std::vector<NodeId>{6, 8, 10, 13, 16, 24, 32, 48, 64}) {
    if (cli.has("max-n") && n > cli.get_int("max-n", 64)) continue;
    sizes.push_back(n);
  }

  const core::Artifact artifact = core::make_fig2_worstcase_artifact(sizes);
  const core::ArtifactDerivation derivation =
      core::derive(artifact, core::run_artifact_rows(artifact, threads));
  std::cout << derivation.report;
  return derivation.status;
}
