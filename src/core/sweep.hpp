// The scenario-sweep runner: execute a batch of independent exploration
// scenarios across a pool of worker threads.
//
// The feasibility map and the table benches are embarrassingly parallel —
// thousands of runs over (algorithm x ring size x adversary x seed) with a
// worst-case reduction at the end — but the seed implementation walked them
// one by one on one core.  This runner is the shared substrate:
//
//   * every task is a pure function of its ExplorationConfig + adversary,
//     so results are collected positionally and are bit-identical for any
//     worker count (pinned by the sweep determinism tests);
//   * adversaries are stateful and not thread-safe, so tasks carry a
//     factory and every run constructs a private instance;
//   * per-task seeds derive from (salt, task index) via splitmix64 —
//     deterministic, independent of scheduling;
//   * the reduction helpers fold results in task order, so "worst case at
//     the first achieving task" tie-breaking matches the old serial loops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/runner.hpp"

namespace dring::core {

/// One scenario of a sweep.
struct ScenarioTask {
  ExplorationConfig cfg;
  /// Constructs the task's private adversary (called once per execution,
  /// inside the worker). Must be safe to call from any thread.
  std::function<std::unique_ptr<sim::Adversary>()> make_adversary;
  /// The seed the factory closes over, recorded for reporting.
  std::uint64_t seed = 0;
  /// Escape hatch for scenarios the declarative config cannot express
  /// (hand-built engines, non-registry brains): when set, the worker calls
  /// this instead of run_exploration(cfg, ...). Must be a pure function of
  /// the task (thread-safe, deterministic); cfg/make_adversary are ignored.
  std::function<sim::RunResult()> run_custom;
};

/// Sweep execution knobs.
struct SweepOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (at least 1);
  /// 1 = run inline on the calling thread (no pool).
  int threads = 0;
  /// Completion hook, called after each finished task with (tasks done so
  /// far, total tasks).  Serialized (never invoked concurrently), but runs
  /// on whichever worker thread finished — keep it cheap; it sits on the
  /// sweep's critical path.  Campaign heartbeats (the progress file
  /// dring_orchestrate watches for liveness) and the fault-injection
  /// harness ride here.
  std::function<void(std::size_t done, std::size_t total)> on_task_done;
  /// Per-result hook, called with (task index, finished run) as each task
  /// completes — in completion order, serialized under the same lock as
  /// on_task_done (and before it for the same task).  The streaming-
  /// aggregation path (core/query.hpp StreamingAggregator) rides here:
  /// fold the run, let it go.
  std::function<void(std::size_t index, const struct SweepRun& run)>
      on_task_result;
  /// Drop each run after the hooks instead of keeping it in the returned
  /// vector (entries come back default-constructed).  The Monte-Carlo-
  /// scale switch: a sweep that only wants the streamed fold never
  /// materializes its result vector.
  bool discard_results = false;
  /// Batched lockstep execution: when > 0, each worker thread owns a
  /// sim::BatchEngine with this many lanes and pulls tasks into free lanes,
  /// stepping all of them per round and backfilling as lanes retire.
  /// Batch-eligible tasks are the declarative ones (no run_custom, no
  /// trace recording); everything else runs through the scalar engine
  /// inline on the worker. 0 = scalar path for every task (the default;
  /// behavior unchanged). Results are bit-identical for every width —
  /// pinned by tests/batch_engine_test.cpp and the CI campaign store
  /// byte-equality gate.
  int batch_width = 0;
};

/// Number of workers `options` resolves to on this machine.
int resolve_threads(const SweepOptions& options);

/// Deterministic per-task seed: splitmix64 of (salt, index). Identical for
/// every worker count and schedule.
std::uint64_t task_seed(std::uint64_t salt, std::size_t index);

/// Execute all tasks; results are returned in task order regardless of the
/// number of workers or their scheduling.
std::vector<sim::RunResult> run_sweep(const std::vector<ScenarioTask>& tasks,
                                      const SweepOptions& options = {});

/// A sweep result that also carries the recorded per-round trace.
struct SweepRun {
  sim::RunResult result;
  std::vector<sim::RoundTrace> trace;
};

/// Like run_sweep, but returns SweepRuns: the trace rides along for every
/// task whose cfg.engine.record_trace is set, so a sweep can mix a few
/// traced scenarios into thousands of untraced ones without holding every
/// trace in memory (the artifact enrich path; figure reconstruction,
/// offline replanning).  Tasks with run_custom yield empty traces.
/// Results always carry the adversary metrics (Adversary::report_metrics),
/// like run_sweep.  (This subsumes the PR 2 run_sweep_traced, whose
/// force-every-trace behavior no caller needed once the artifact layer
/// marked traced scenarios individually.)
std::vector<SweepRun> run_sweep_runs(const std::vector<ScenarioTask>& tasks,
                                     const SweepOptions& options = {});

/// Worst-case / aggregate fold over sweep results (task order).
struct SweepReduction {
  int runs = 0;
  int explored = 0;
  int premature = 0;
  int full_termination = 0;
  int partial_termination = 0;
  int with_violations = 0;
  std::int64_t worst_rounds = 0;
  std::size_t worst_rounds_task = 0;  ///< first task achieving worst_rounds
  std::int64_t worst_moves = 0;
  std::size_t worst_moves_task = 0;   ///< first task achieving worst_moves
};

SweepReduction reduce_worst(const std::vector<sim::RunResult>& results);

}  // namespace dring::core
