// Minimal POSIX subprocess control for worker supervision.
//
// The campaign orchestrator (core/orchestrate.hpp) dispatches shards to a
// pool of `dring_campaign` subprocesses and must be able to (a) launch a
// child with extra environment variables and its output captured to a log
// file, (b) poll it without blocking so one supervisor thread can watch a
// whole fleet, and (c) kill a hung child outright.  std::system gives none
// of that, so this is a small fork/exec wrapper.  Linux/POSIX only — the
// same platform the rest of the toolchain targets.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dring::util {

/// What to launch.
struct SpawnSpec {
  /// argv[0] is the executable (resolved via PATH when it contains no '/').
  std::vector<std::string> argv;
  /// Extra environment variables set in the child (on top of the parent's
  /// environment, overriding on collision).
  std::vector<std::pair<std::string, std::string>> env;
  /// When non-empty, the child's stdout AND stderr are appended to this
  /// file (created if missing) — the per-attempt worker log.  Empty =
  /// inherit the parent's streams.
  std::string output_path;
};

/// A running (or finished) child process.  Movable, not copyable; the
/// destructor does NOT kill or reap a still-running child — supervisors
/// own that decision explicitly via kill_hard()/wait().
class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Fork + exec.  Throws std::runtime_error when the fork fails; an exec
  /// failure inside the child surfaces as exit code 127.
  static Subprocess spawn(const SpawnSpec& spec);

  /// True while the child has not been reaped.  Non-blocking (WNOHANG);
  /// reaps and records the exit code as a side effect when the child has
  /// exited.
  bool running();

  /// Block until the child exits; returns exit_code().
  int exit_code_blocking();

  /// The child's exit code once !running(): WEXITSTATUS for a normal
  /// exit, 128 + signal for a signal death (the shell convention), -1
  /// while still running or never started.
  int exit_code() const { return exit_code_; }

  /// True when the child was reaped and died from a signal (e.g. our own
  /// kill_hard, or an injected crash via abort).
  bool signaled() const { return signaled_; }

  /// SIGKILL the child (no-op when already finished).  The caller still
  /// observes the death through running()/exit_code_blocking().
  void kill_hard();

  /// The child pid, or -1 when never spawned / already reaped.
  long pid() const { return pid_; }

  bool started() const { return started_; }

 private:
  long pid_ = -1;
  int exit_code_ = -1;
  bool signaled_ = false;
  bool started_ = false;
  bool reaped_ = false;
};

/// Directory of the currently running executable (via /proc/self/exe),
/// without a trailing slash; empty when it cannot be resolved.  Used to
/// find sibling tools: dring_tests and dring_orchestrate locate
/// dring_campaign next to themselves in the build tree.
std::string executable_dir();

}  // namespace dring::util
