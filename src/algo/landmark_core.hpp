// Shared machinery of the landmark-based FSYNC algorithms
// (paper, Figures 4, 8 and 13).
//
// Algorithm LandmarkWithChirality (Th. 6) defines states Bounce, Return,
// Forward and the BComm/FComm termination handshake; Algorithms
// StartFromLandmarkNoChirality (Th. 7) and LandmarkNoChirality (Th. 8)
// reuse them verbatim ("The same as in Algorithm LandmarkWithChirality").
// LandmarkCore implements those five states once, parameterised by
// `fwd_dir_`: the direction of travel at the instant the agents caught each
// other, which is "left" in the chirality algorithm and whatever the
// ID-schedule direction was in the no-chirality ones.
//
// Roles (paper, Section 3.2.2): on the first catch, the caught agent
// becomes F (state Forward, keeps direction), the catcher becomes B (state
// Bounce, reverses).  B later turns back (Return) when it has been blocked
// longer than it has travelled (Etime > 2*Esteps) or when it knows n; when
// B catches up with F the BComm/FComm handshake decides termination by
// movement signalling: staying in the node means "I do not know yet",
// moving away means "terminate".
#pragma once

#include <optional>

#include "agent/explore_base.hpp"

namespace dring::algo {

/// State ids shared by the landmark family (a single enum so Bounce etc.
/// mean the same thing in every derived machine).
namespace lmk {
enum State : int {
  kInit = 0,
  kBounce,
  kReturn,
  kForward,
  kBComm,
  kFComm,
  // StartFromLandmarkNoChirality extension:
  kHappy,
  kFirstBlockL,
  kAtLandmarkL,
  kReady,
  kReverse,
  kInitL,
  // LandmarkNoChirality (arbitrary start) extension:
  kFirstBlock,
  kAtLandmark,
};
}  // namespace lmk

class LandmarkCore : public agent::ExploreMachine {
 protected:
  LandmarkCore(agent::Knowledge k, int initial_state);

  /// Handle the shared states; std::nullopt if `state` is not shared.
  std::optional<agent::StepResult> run_shared(int state,
                                              const agent::Snapshot& snap);

  /// Entry actions of the shared states; true if `state` was handled.
  bool enter_shared(int state, const agent::Snapshot& snap);

  /// Direction the derived machine is currently travelling (captured as
  /// fwd_dir_ when roles are first assigned).
  virtual Dir current_travel_dir() const = 0;

  std::string name_of(int state) const override;

  // n-relative timeouts; false while the size is unknown (paper: "size is
  // initialized to infinity, all the tests using it ... will fail").
  bool ntime_gt(std::int64_t mult) const {
    return size() && c_.Ntime > mult * *size();
  }
  bool ntime_ge(std::int64_t mult) const {
    return size() && c_.Ntime >= mult * *size();
  }

  /// Route every terminate decision of the landmark family through this
  /// helper.  The BComm/FComm protocol communicates through movement: an
  /// agent that stops *in the node proper* while its partner waits on a
  /// port is indistinguishable from one still deciding, and the partner
  /// livelocks in caught -> FComm -> step-off cycles against the corpse.
  /// decide_terminate therefore makes the agent leave the node proper
  /// first (choosing the unoccupied port side and retrying on mutual
  /// exclusion failures) and only then enter the terminal state — exactly
  /// the observable-departure mechanism the paper's handshake relies on
  /// (DESIGN.md, D14).  It also subsumes the pseudocode's "Move(...);
  /// Terminate in the next round" signal steps.
  agent::StepResult decide_terminate(const agent::Snapshot& snap);

  Dir fwd_dir_ = Dir::Left;       ///< F's travel direction (B reverses it)
  bool roles_assigned_ = false;   ///< first catch happened
  std::int64_t bounce_steps_ = 0; ///< Esteps when B switched Bounce->Return
  std::int64_t return_steps_ = 0; ///< Esteps when B reached F again
  int comm_step_ = 0;             ///< sub-step inside BComm/FComm
  bool signaling_ = false;        ///< terminate decided, departure pending

  /// Reset the role/handshake machinery (used by the LandmarkNoChirality
  /// instance restart).
  void reset_roles();
};

}  // namespace dring::algo
