// Scenario regressions: surgically scripted executions pinning exact
// behaviours of the paper's guards — state transitions at specific rounds,
// termination rounds on static rings, role splits under port mutual
// exclusion, guess doubling, and the Lemma 1 / Theorem 3 timing facts.
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/unconscious_exploration.hpp"
#include "core/golden_scenarios.hpp"
#include "core/runner.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;

std::string state_at(const sim::Engine& engine, Round r, AgentId id) {
  for (const sim::RoundTrace& rt : engine.trace())
    if (rt.round == r) return rt.agents[static_cast<std::size_t>(id)].state;
  return "?";
}

// --- KnownNNoChirality (Figure 1) -------------------------------------------

TEST(KnownNGuards, SameNodeMutexSplitsDirections) {
  // Two agents, same node, same orientation: one wins the port, the loser
  // observes `failed` and bounces — "the two agents will have different
  // directions" (Theorem 3 proof).
  const NodeId n = 8;
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
  cfg.start_nodes = {3, 3};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 3;
  cfg.stop.stop_when_all_terminated = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Round 2: the loser of round 1 has processed `failed` -> Bounce.
  EXPECT_EQ(state_at(*engine, 2, 0), "Init");    // winner keeps left
  EXPECT_EQ(state_at(*engine, 2, 1), "Bounce");  // loser bounced right
  // They separate in opposite directions.
  EXPECT_NE(engine->body(0).node, engine->body(1).node);
}

TEST(KnownNGuards, TtimeTimeoutMovesToForward) {
  // An agent that never interacts switches Init -> Forward at
  // Ttime >= 2N-4 and keeps going left.
  const NodeId n = 8;
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
  cfg.start_nodes = {0, 4};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 3 * n;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Guard fires at the compute of round 2N-3 (Ttime = 2N-4).
  EXPECT_EQ(state_at(*engine, 2 * n - 4, 0), "Init");
  EXPECT_EQ(state_at(*engine, 2 * n - 3, 0), "Forward");
}

TEST(KnownNGuards, StaticRingTerminatesExactlyAt3NMinus5) {
  // Termination guard Ttime >= 3N-6 fires at the compute of round 3N-5.
  for (NodeId n : {6, 9, 14}) {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
    cfg.start_nodes = {0, 3 % n};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.stop.max_rounds = 10 * n;
    sim::NullAdversary adv;
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    ASSERT_TRUE(r.all_terminated);
    for (const auto& a : r.agents)
      EXPECT_EQ(a.termination_round, 3 * n - 5) << "n=" << n;
  }
}

TEST(KnownNGuards, HeadOnPinReleasesViaBtimeGuard) {
  // The D13 scenario: both agents pinned on one shared edge from round 1.
  // The (Ttime >= 2N-4 and Btime >= N-1) guard must eventually fire and
  // the ring still gets explored by 3N-6.
  const NodeId n = 9;
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
  cfg.start_nodes = {0, 1};
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 10 * n;
  // Both try to cross edge 0 head-on; remove it forever.
  adversary::FixedEdgeAdversary adv(0);
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);
  EXPECT_TRUE(r.explored);
  EXPECT_FALSE(r.premature_termination);
  EXPECT_LE(r.explored_round, 3 * n - 6);
  // Both flipped to Bounce at the compute of round 2N-3.
  EXPECT_EQ(state_at(*engine, 2 * n - 3, 0), "Bounce");
  EXPECT_EQ(state_at(*engine, 2 * n - 3, 1), "Bounce");
}

// --- UnconsciousExploration (Figure 3) ---------------------------------------

TEST(UnconsciousGuards, GuessDoublesEveryPhase) {
  // On a free run the guess doubles each 2G rounds (Keep).
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 32);
  cfg.stop.max_rounds = 30;
  cfg.stop.stop_when_explored = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  const auto* brain = dynamic_cast<const algo::UnconsciousExploration*>(
      &engine->brain(0));
  ASSERT_NE(brain, nullptr);
  // Phases: G=2 for rounds 1..4(+1 entry), G=4 .., after 30 rounds G >= 8.
  EXPECT_GE(brain->guess(), 8);
  EXPECT_LE(brain->guess(), 32);
}

TEST(UnconsciousGuards, LongBlockCausesReversal) {
  // One agent pinned by Obs.-1: at a phase end with Btime > G it must
  // reverse direction (state Reverse), flipping its dir.
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 12);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 40;
  cfg.stop.stop_when_explored = false;
  adversary::BlockAgentAdversary adv(0);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  bool reversed = false;
  for (const sim::RoundTrace& rt : engine->trace())
    reversed = reversed || rt.agents[0].state == "Reverse";
  EXPECT_TRUE(reversed);
  EXPECT_EQ(engine->body(0).moves, 0);  // still never moved (both dirs blocked)
}

TEST(UnconsciousGuards, CatchLocksDirectionsForever) {
  // After catching, the agents are in Bounce/Forward and never change
  // state again (unconscious: no further guards).
  const NodeId n = 10;
  ExplorationConfig cfg = default_config(AlgorithmId::UnconsciousExploration, n);
  cfg.start_nodes = {5, 2};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 60;
  cfg.stop.stop_when_explored = false;
  adversary::BlockAgentAdversary adv(0);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  bool saw_catch = false;
  for (const sim::RoundTrace& rt : engine->trace()) {
    if (rt.agents[1].state == "Bounce") saw_catch = true;
    if (saw_catch) {
      EXPECT_EQ(rt.agents[0].state, "Forward");
      EXPECT_EQ(rt.agents[1].state, "Bounce");
    }
  }
  EXPECT_TRUE(saw_catch);
}

// --- Lemma 1 (LandmarkWithChirality without catches) --------------------------

TEST(LandmarkTiming, NoCatchRunTerminatesWithin7n) {
  // Lemma 1: agents that never catch each other explore and terminate by
  // round 7n-1.
  for (NodeId n : {6, 10, 16}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::LandmarkWithChirality, n);
    cfg.start_nodes = {1, static_cast<NodeId>(1 + n / 2)};
    cfg.stop.max_rounds = 10 * n;
    sim::NullAdversary adv;  // static: they stay apart, never catch
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    ASSERT_TRUE(r.all_terminated) << n;
    for (const auto& a : r.agents)
      EXPECT_LE(a.termination_round, 7 * n - 1) << "n=" << n;
  }
}

// --- Silent crossings inside protocols -----------------------------------------

TEST(SilentCrossing, HeadOnAgentsSwapWithoutDetection) {
  // Two UnconsciousExploration agents approaching head-on at odd distance
  // cross on an edge and keep their states (no Bounce/Forward).
  const NodeId n = 9;
  ExplorationConfig cfg = default_config(AlgorithmId::UnconsciousExploration, n);
  cfg.start_nodes = {0, 3};
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 2;
  cfg.stop.stop_when_explored = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Round 1: 0->1 and 3->2; round 2: 1->2 and 2->1 (crossing edge 1).
  EXPECT_EQ(engine->body(0).node, 2);
  EXPECT_EQ(engine->body(1).node, 1);
  EXPECT_EQ(state_at(*engine, 2, 0), "Init");
  EXPECT_EQ(state_at(*engine, 2, 1), "Init");
}

// --- Golden equivalence ---------------------------------------------------------
//
// Full-run digests of the fixed-seed golden suite (every model, every
// adversary entry point), recorded with tools/record_golden on the
// pre-overhaul engine (seed commit, PR 1). The hot-path refactor — scratch
// buffer reuse, flat port buckets, O(1) occupancy snapshots, probe
// memoization, the fast mutex path — must reproduce every round, move,
// activation, state and violation of every scenario bit for bit.

struct GoldenExpectation {
  const char* name;
  std::uint64_t trace;
  std::uint64_t result;
};

constexpr GoldenExpectation kGoldenExpectations[] = {
    // Generated by tools/record_golden — digests of the golden
    // scenario suite on the current engine.
    {"fsync-knownN-targeted", 0x7affa0518aed7468ULL, 0x9c60e14c241c121aULL},
    {"fsync-unconscious-null", 0x4dab6437c6ba65c2ULL, 0x464fb36a14f11d5dULL},
    {"fsync-block-agent-probe", 0x3f96699a901ea16dULL, 0x98cf6186533514b9ULL},
    {"fsync-landmark-fig2-script", 0x27d66b2a09dbd967ULL,
     0x124ecf8e4bcc09e5ULL},
    {"ssync-ns-random", 0x20037bc695c61360ULL, 0x78b3ea593029e1cdULL},
    {"ssync-ns-first-mover-probe", 0x5009933ff14124d1ULL,
     0xf08542b70a369c63ULL},
    {"ssync-pt-bound-targeted", 0xedd701a0a45b946bULL, 0x5206a603f1c189caULL},
    {"ssync-pt-sliding-window-probe", 0xb40ac59dc79b3e8bULL,
     0x763af2e319330c61ULL},
    {"ssync-pt-3agents-targeted", 0x3c2ec0e2a3830891ULL,
     0xe182a11edcca52dbULL},
    {"ssync-et-unconscious-targeted", 0x473f9c74aaf55ed2ULL,
     0xfe3d3faf8f32bf0dULL},
    {"ssync-et-segment-seal", 0x4e3a93e05668c526ULL, 0x9c8ed6c22c367502ULL},
    {"ssync-et-3agents-exactn", 0x21542aaecf417f55ULL, 0x5b2a33ed7849a67cULL},
    {"spec-k4-unconscious-targeted", 0x82362d5399ef0f90ULL,
     0x07bb0a2eac9a040bULL},
    {"spec-k6-et-random", 0xd4104b859f6e22f4ULL, 0x477a2de603253ec7ULL},
    {"spec-k4-tinterval3-targeted", 0xe3d938bcf159d2f2ULL,
     0xe1fa332a01fcfe17ULL},
};

TEST(GoldenEquivalence, EngineReproducesPreRefactorRunsBitForBit) {
  const std::vector<core::GoldenScenario> scenarios =
      core::golden_scenarios();
  ASSERT_EQ(scenarios.size(), std::size(kGoldenExpectations))
      << "scenario suite and recorded digests out of sync; re-run "
         "tools/record_golden";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_EQ(scenarios[i].name, kGoldenExpectations[i].name);
    const core::GoldenRun run = scenarios[i].run();
    EXPECT_EQ(run.trace, kGoldenExpectations[i].trace)
        << "trace diverged: " << scenarios[i].name;
    EXPECT_EQ(run.result, kGoldenExpectations[i].result)
        << "result diverged: " << scenarios[i].name;
  }
}

// --- Verifier / engine robustness ----------------------------------------------

TEST(EngineRobustness, DoubleRemovalIsRejectedAndRecorded) {
  // The engine API gives adversaries no way to remove a second edge, so
  // 1-interval connectivity holds by construction: verify the ring-level
  // guard that enforces it.
  ring::DynamicRing ring(6);
  EXPECT_TRUE(ring.remove_edge(1));
  EXPECT_FALSE(ring.remove_edge(2));
  EXPECT_TRUE(ring.edge_present(2));
}

TEST(EngineRobustness, ZeroAgentEngineTerminatesRunImmediately) {
  sim::Engine engine(5, std::nullopt, sim::Model::FSYNC);
  const sim::RunResult r = engine.run(sim::StopPolicy{});
  EXPECT_EQ(r.rounds, 0);
  EXPECT_FALSE(r.explored);
}

TEST(EngineRobustness, ThreeAgentSnapshotCountsAll) {
  sim::Engine engine(6, std::nullopt, sim::Model::FSYNC);
  class Idle final : public agent::Brain {
   public:
    agent::Intent on_activate(const agent::Snapshot&,
                              const agent::Feedback&) override {
      return agent::Intent::stay();
    }
    bool terminated() const override { return false; }
    std::unique_ptr<agent::Brain> clone() const override {
      return std::make_unique<Idle>(*this);
    }
    std::string state_name() const override { return "idle"; }
    std::string algorithm_name() const override { return "Idle"; }
  };
  engine.add_agent(2, agent::kChiralOrientation, std::make_unique<Idle>());
  engine.add_agent(2, agent::kChiralOrientation, std::make_unique<Idle>());
  engine.add_agent(2, agent::kChiralOrientation, std::make_unique<Idle>());
  const agent::Snapshot snap = engine.make_snapshot(0);
  EXPECT_EQ(snap.others_in_node, 2);
  EXPECT_EQ(snap.others_on_left_port + snap.others_on_right_port, 0);
}

}  // namespace
}  // namespace dring
