// Tests for the batched lockstep engine (sim/batch_engine.hpp) and its
// sweep integration (SweepOptions::batch_width).
//
// The load-bearing claim is bit-identity: for every registry algorithm and
// every adversary family, routing a scenario through the batch path must
// produce a RunResult indistinguishable from Engine::run — same digest,
// same canonical store bytes. The grid below pins that across the whole
// registry x family matrix, and the sweep tests pin determinism for any
// (batch_width, threads) combination, ragged widths, and lane backfill.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/scenario_spec.hpp"
#include "core/sweep.hpp"
#include "sim/batch_engine.hpp"
#include "sim/trace_io.hpp"

namespace dring::core {
namespace {

std::vector<std::uint64_t> digests(const std::vector<sim::RunResult>& rs) {
  std::vector<std::uint64_t> ds;
  ds.reserve(rs.size());
  for (const sim::RunResult& r : rs) ds.push_back(sim::result_digest(r));
  return ds;
}

/// Every adversary family the spec layer can express, with parameters that
/// keep hostile runs short on small rings.
std::vector<AdversarySpec> all_families() {
  std::vector<AdversarySpec> families;
  AdversarySpec a;

  a.family = "null";
  families.push_back(a);

  a = {};
  a.family = "random";
  a.remove_prob = 0.4;
  a.activation_prob = 0.8;
  families.push_back(a);

  a = {};
  a.family = "targeted-random";
  a.target_prob = 0.5;
  families.push_back(a);

  a = {};
  a.family = "fixed-edge";
  a.edge = 2;
  families.push_back(a);

  a = {};
  a.family = "block-agent";
  a.victim = 0;
  families.push_back(a);

  a = {};
  a.family = "prevent-meeting";
  families.push_back(a);

  a = {};
  a.family = "ns-first-mover";
  families.push_back(a);

  a = {};
  a.family = "rotation";
  a.dwell = 2;
  families.push_back(a);

  a = {};
  a.family = "fig2";
  a.edge = 1;
  families.push_back(a);

  a = {};
  a.family = "sliding-window";
  families.push_back(a);

  a = {};
  a.family = "head-on-pin";
  families.push_back(a);

  a = {};
  a.family = "segment-seal";
  a.edge = 1;
  a.edge_b = 4;
  families.push_back(a);

  a = {};
  a.family = "edge-window";
  a.edge = 3;
  a.window_lo = 2;
  a.window_hi = 40;
  families.push_back(a);

  // T-interval decoration on top of a base family (the decorator must
  // never be mistaken for a null adversary).
  a = {};
  a.family = "random";
  a.remove_prob = 0.5;
  a.t_interval = 3;
  families.push_back(a);

  a = {};
  a.family = "null";
  a.t_interval = 2;
  families.push_back(a);

  return families;
}

/// Registry x family grid as executable tasks. Small rings and a tight
/// round budget keep the full matrix cheap; every task still exercises the
/// complete retire path (stop policy, premature oracle, per-agent rows).
std::vector<ScenarioTask> registry_grid() {
  std::vector<ScenarioTask> tasks;
  std::size_t index = 0;
  for (const algo::AlgorithmInfo& info : algo::all_algorithms()) {
    for (const AdversarySpec& adversary : all_families()) {
      ScenarioSpec spec;
      spec.algorithm = info.name;
      spec.n = 6;
      spec.adversary = adversary;
      spec.seed = task_seed(/*salt=*/2026, index++);
      spec.max_rounds = 3000;
      tasks.push_back(to_task(spec));
    }
  }
  return tasks;
}

TEST(BatchVsScalar, BitIdenticalAcrossRegistryAndFamilies) {
  const std::vector<ScenarioTask> tasks = registry_grid();
  ASSERT_GT(tasks.size(), 100u);  // the grid really is registry x families

  SweepOptions scalar;
  scalar.threads = 1;
  const std::vector<std::uint64_t> golden = digests(run_sweep(tasks, scalar));

  for (const int width : {1, 4, 32}) {
    SweepOptions batched;
    batched.threads = 1;
    batched.batch_width = width;
    EXPECT_EQ(digests(run_sweep(tasks, batched)), golden)
        << "batch_width=" << width;
  }
}

TEST(BatchVsScalar, EveryResultFieldMatchesOnFastPath) {
  // Digest equality is the broad net; this pins the full struct on a
  // null-adversary scenario that takes the SoA fast path.
  ScenarioSpec spec;
  spec.algorithm = "KnownNNoChirality";
  spec.n = 9;
  spec.seed = 7;
  const ScenarioTask task = to_task(spec);

  SweepOptions scalar;
  scalar.threads = 1;
  SweepOptions batched = scalar;
  batched.batch_width = 8;
  const sim::RunResult a = run_sweep({task}, scalar).at(0);
  const sim::RunResult b = run_sweep({task}, batched).at(0);

  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.explored, b.explored);
  EXPECT_EQ(a.explored_round, b.explored_round);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.premature_termination, b.premature_termination);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.active_moves, b.active_moves);
  EXPECT_EQ(a.passive_moves, b.passive_moves);
  EXPECT_EQ(a.terminated_agents, b.terminated_agents);
  EXPECT_EQ(a.all_terminated, b.all_terminated);
  EXPECT_EQ(a.fairness_interventions, b.fairness_interventions);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].final_node, b.agents[i].final_node);
    EXPECT_EQ(a.agents[i].terminated, b.agents[i].terminated);
    EXPECT_EQ(a.agents[i].termination_round, b.agents[i].termination_round);
    EXPECT_EQ(a.agents[i].moves, b.agents[i].moves);
    EXPECT_EQ(a.agents[i].final_state, b.agents[i].final_state);
  }
  EXPECT_EQ(sim::result_digest(a), sim::result_digest(b));
}

TEST(RunSweepBatch, DeterministicForAnyWidthAndThreadCount) {
  std::vector<ScenarioTask> tasks;
  std::size_t index = 0;
  for (const char* algorithm :
       {"KnownNNoChirality", "UnconsciousExploration", "ETBoundNoChirality"}) {
    for (const NodeId n : {5, 8, 11}) {
      ScenarioSpec spec;
      spec.algorithm = algorithm;
      spec.n = n;
      spec.seed = task_seed(/*salt=*/11, index++);
      spec.max_rounds = 5000;
      tasks.push_back(to_task(spec));
    }
  }

  SweepOptions reference;
  reference.threads = 1;
  const std::vector<std::uint64_t> golden =
      digests(run_sweep(tasks, reference));

  for (const int width : {0, 1, 4, 32}) {
    for (const int threads : {1, 4}) {
      SweepOptions options;
      options.threads = threads;
      options.batch_width = width;
      EXPECT_EQ(digests(run_sweep(tasks, options)), golden)
          << "width=" << width << " threads=" << threads;
    }
  }
}

TEST(RunSweepBatch, RaggedWidths) {
  // Task counts that do not divide the width, and widths larger than the
  // task list: lanes go idle and drain without disturbing the results.
  std::vector<ScenarioTask> tasks;
  for (std::size_t i = 0; i < 5; ++i) {
    ScenarioSpec spec;
    spec.algorithm = "KnownNNoChirality";
    spec.n = static_cast<NodeId>(5 + i);
    spec.seed = i;
    tasks.push_back(to_task(spec));
  }

  SweepOptions scalar;
  scalar.threads = 1;
  const std::vector<std::uint64_t> golden = digests(run_sweep(tasks, scalar));

  for (const int width : {2, 3, 64}) {
    SweepOptions options;
    options.threads = 1;
    options.batch_width = width;
    EXPECT_EQ(digests(run_sweep(tasks, options)), golden)
        << "width=" << width;
  }
}

TEST(RunSweepBatch, TracedTasksTakeTheScalarPathWithTraceIntact) {
  ScenarioSpec spec;
  spec.algorithm = "KnownNNoChirality";
  spec.n = 7;
  spec.seed = 3;
  ScenarioTask traced = to_task(spec);
  traced.cfg.engine.record_trace = true;
  ScenarioTask untraced = to_task(spec);

  SweepOptions scalar;
  scalar.threads = 1;
  SweepOptions batched = scalar;
  batched.batch_width = 4;

  const std::vector<SweepRun> a = run_sweep_runs({traced, untraced}, scalar);
  const std::vector<SweepRun> b = run_sweep_runs({traced, untraced}, batched);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_FALSE(b[0].trace.empty());
  EXPECT_EQ(a[0].trace.size(), b[0].trace.size());
  EXPECT_TRUE(b[1].trace.empty());
  EXPECT_EQ(sim::result_digest(a[0].result), sim::result_digest(b[0].result));
  EXPECT_EQ(sim::result_digest(a[1].result), sim::result_digest(b[1].result));
}

// --- direct BatchEngine surface ---------------------------------------------

sim::BatchLaneConfig lane_config(const std::string& algorithm, NodeId n,
                                 Round max_rounds = 0) {
  ScenarioSpec spec;
  spec.algorithm = algorithm;
  spec.n = n;
  if (max_rounds > 0) spec.max_rounds = max_rounds;
  return make_lane_config(build_config(spec), nullptr);
}

TEST(BatchEngine, AdmitRefusesWhenFullAndBackfillsRetiredLanes) {
  sim::BatchEngine batch(2);
  EXPECT_TRUE(batch.admit(lane_config("KnownNNoChirality", 5), 0));
  // A capped unconscious lane retires early ("max_rounds"); the known-n
  // lane terminates on its own much later.
  EXPECT_TRUE(batch.admit(lane_config("UnconsciousExploration", 5, 10), 1));
  EXPECT_FALSE(batch.admit(lane_config("KnownNNoChirality", 5), 2));
  EXPECT_EQ(batch.active_lanes(), 2);

  std::vector<std::size_t> retired;
  const auto on_retire = [&](std::size_t tag, sim::RunResult&& result,
                             const sim::LanePerf& perf) {
    retired.push_back(tag);
    EXPECT_GT(perf.rounds, 0);
    EXPECT_FALSE(result.stop_reason.empty());
  };

  // Drain until the capped lane frees its slot, then backfill it.
  while (batch.active_lanes() == 2) batch.step_round(on_retire);
  ASSERT_EQ(retired, std::vector<std::size_t>{1});
  EXPECT_TRUE(batch.admit(lane_config("KnownNNoChirality", 5), 2));
  EXPECT_EQ(batch.active_lanes(), 2);

  while (batch.active_lanes() > 0) batch.step_round(on_retire);
  EXPECT_EQ(retired, (std::vector<std::size_t>{1, 0, 2}));

  const sim::BatchStats& stats = batch.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.fast_lanes, 3);
  EXPECT_EQ(stats.fallback_lanes, 0);
  EXPECT_EQ(stats.retired, 3);
  EXPECT_GT(stats.batch_rounds, 0);
  EXPECT_GT(stats.lane_rounds, stats.batch_rounds);
}

TEST(BatchEngine, MixedRingSizesShareOneBatch) {
  // Ragged geometry inside one batch: admitting a larger ring relays the
  // arenas out; results still match the scalar engine lane by lane.
  sim::BatchEngine batch(3);
  const NodeId sizes[] = {5, 12, 8};
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(batch.admit(lane_config("KnownNNoChirality", sizes[i]), i));

  std::vector<std::uint64_t> got(3, 0);
  const auto on_retire = [&](std::size_t tag, sim::RunResult&& result,
                             const sim::LanePerf&) {
    got[tag] = sim::result_digest(result);
  };
  while (batch.active_lanes() > 0) batch.step_round(on_retire);

  SweepOptions scalar;
  scalar.threads = 1;
  for (std::size_t i = 0; i < 3; ++i) {
    ScenarioSpec spec;
    spec.algorithm = "KnownNNoChirality";
    spec.n = sizes[i];
    const sim::RunResult r = run_sweep({to_task(spec)}, scalar).at(0);
    EXPECT_EQ(got[i], sim::result_digest(r)) << "lane " << i;
  }
}

TEST(BatchEngine, IneligibleScenariosLandOnFallbackLanes) {
  // A real adversary disqualifies the SoA fast path; the lane embeds a
  // scalar engine instead and still retires the bit-identical result.
  ScenarioSpec spec;
  spec.algorithm = "KnownNNoChirality";
  spec.n = 7;
  spec.adversary.family = "targeted-random";
  spec.seed = 5;
  const ScenarioTask task = to_task(spec);

  sim::BatchEngine batch(2);
  sim::BatchLaneConfig lane =
      make_lane_config(task.cfg, task.make_adversary());
  ASSERT_TRUE(batch.admit(std::move(lane), 0));
  EXPECT_EQ(batch.stats().fallback_lanes, 1);
  EXPECT_EQ(batch.stats().fast_lanes, 0);

  std::uint64_t got = 0;
  const auto on_retire = [&](std::size_t, sim::RunResult&& result,
                             const sim::LanePerf& perf) {
    got = sim::result_digest(result);
    EXPECT_GT(perf.snapshots, 0);
  };
  while (batch.active_lanes() > 0) batch.step_round(on_retire);

  SweepOptions scalar;
  scalar.threads = 1;
  EXPECT_EQ(got, sim::result_digest(run_sweep({task}, scalar).at(0)));
}

TEST(BatchEngine, RejectsNonPositiveWidth) {
  EXPECT_THROW(sim::BatchEngine(0), std::invalid_argument);
  EXPECT_THROW(sim::BatchEngine(-3), std::invalid_argument);
}

}  // namespace
}  // namespace dring::core
