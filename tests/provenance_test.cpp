// Tests for store-level provenance (schema v4): the header line's
// round trip and canonical placement, rejection of pre-v4 stores with
// actionable messages, resume/merge refusal on cross-provenance inputs,
// load_result_stores provenance threading, and the --compare report's
// cross-version annotation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/analysis.hpp"
#include "core/campaign.hpp"
#include "core/version.hpp"

namespace dring::core {
namespace {

CampaignRow test_row(NodeId n) {
  CampaignRow row;
  row.spec.algorithm = "KnownNNoChirality";
  row.spec.n = n;
  row.spec.seed = 7;
  row.fingerprint = fingerprint(row.spec);
  row.outcome.explored = true;
  row.outcome.explored_round = 2 * n;
  row.outcome.rounds = 3 * n;
  return row;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A store file with `engine` in place of this build's engine version.
void write_doctored_store(const std::string& path, const std::string& engine,
                          const std::vector<CampaignRow>& rows) {
  ResultStore store;
  store.provenance = current_provenance();
  store.provenance.engine = engine;
  store.rows = rows;
  write_result_store(path, std::move(store));
}

TEST(Provenance, CurrentProvenanceNamesThisBuild) {
  const StoreProvenance provenance = current_provenance();
  EXPECT_EQ(provenance.engine, engine_version());
  EXPECT_EQ(provenance.build, build_flags_hash());
  EXPECT_EQ(provenance.schema, kStoreSchemaVersion);
  // The semantic version renders as dring-MAJOR.MINOR.PATCH.
  EXPECT_EQ(provenance.engine.rfind("dring-", 0), 0u) << provenance.engine;
  // describe() is the error-message/annotation form.
  const std::string text = describe(provenance);
  EXPECT_NE(text.find(engine_version()), std::string::npos);
  EXPECT_NE(text.find("schema v4"), std::string::npos);
}

TEST(Provenance, HeaderRoundTripsAndSortsFirst) {
  const StoreProvenance provenance = current_provenance();
  const std::string line = provenance_line(provenance);
  EXPECT_EQ(provenance_from_json(util::Json::parse(line)), provenance);
  // The header's first key "dring" sorts before every row line's "fp", so
  // `LC_ALL=C sort` keeps a written store byte-identical.
  EXPECT_LT(line, row_line(test_row(8)));
}

TEST(Provenance, WrittenStoreRoundTripsWithHeaderFirst) {
  const std::string path = testing::TempDir() + "prov_roundtrip.jsonl";
  write_result_store(path, std::vector<CampaignRow>{test_row(8), test_row(6)});

  const std::string bytes = file_bytes(path);
  EXPECT_EQ(bytes.rfind(provenance_line(current_provenance()) + "\n", 0), 0u)
      << "store does not start with this build's provenance line";

  const ResultStore store = read_result_store_file(path);
  EXPECT_EQ(store.provenance, current_provenance());
  EXPECT_EQ(store.rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(Provenance, PreV4StoresAreRejectedWithActionableErrors) {
  // v3 rows (the PR 4 format): no header, per-row "v":3.
  std::stringstream v3("{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                       "{\"algorithm\":\"KnownNNoChirality\",\"n\":6},"
                       "\"v\":3}\n");
  try {
    read_result_store(v3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("store schema version 3"), std::string::npos) << what;
    EXPECT_NE(what.find("provenance"), std::string::npos) << what;
    EXPECT_NE(what.find("re-run"), std::string::npos) << what;
  }

  // A second header (hand-concatenated stores) is rejected too.
  const std::string header = provenance_line(current_provenance());
  std::stringstream doubled(header + "\n" + header + "\n");
  try {
    read_result_store(doubled);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--merge"), std::string::npos)
        << e.what();
  }

  // Empty streams read as a fresh store under this build's provenance.
  std::stringstream empty("");
  const ResultStore store = read_result_store(empty);
  EXPECT_EQ(store.provenance, current_provenance());
  EXPECT_TRUE(store.rows.empty());
}

TEST(Provenance, ResumeRefusesAStoreFromAnotherEngine) {
  const std::string path = testing::TempDir() + "prov_resume.jsonl";
  write_doctored_store(path, "dring-0.9.0", {test_row(8)});

  try {
    run_with_store({fingerprint(test_row(8).spec)}, path, /*resume=*/true,
                   [](const std::vector<std::size_t>&) {
                     return std::vector<CampaignRow>{};
                   });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refusing to resume"), std::string::npos) << what;
    EXPECT_NE(what.find("dring-0.9.0"), std::string::npos) << what;
    EXPECT_NE(what.find(engine_version()), std::string::npos) << what;
  }

  // A fresh (non-resume) run replaces the foreign store without complaint.
  const StoreRunResult fresh = run_with_store(
      {fingerprint(test_row(8).spec)}, path, /*resume=*/false,
      [](const std::vector<std::size_t>& todo) {
        EXPECT_EQ(todo.size(), 1u);
        return std::vector<CampaignRow>{test_row(8)};
      });
  EXPECT_EQ(fresh.rows.size(), 1u);
  EXPECT_EQ(read_result_store_file(path).provenance, current_provenance());
  std::remove(path.c_str());
}

TEST(Provenance, MergeAndLoadRefuseCrossProvenanceStores) {
  const std::string ours = testing::TempDir() + "prov_ours.jsonl";
  const std::string theirs = testing::TempDir() + "prov_theirs.jsonl";
  write_result_store(ours, std::vector<CampaignRow>{test_row(8)});
  write_doctored_store(theirs, "dring-0.9.0", {test_row(6)});

  try {
    merge_result_stores(std::vector<ResultStore>{
        read_result_store_file(ours), read_result_store_file(theirs)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refusing to merge"), std::string::npos) << what;
    EXPECT_NE(what.find("dring-0.9.0"), std::string::npos) << what;
    EXPECT_NE(what.find("--compare"), std::string::npos) << what;
  }

  // load_result_stores is a merge, so it refuses the same way...
  EXPECT_THROW(load_result_stores({ours, theirs}), std::runtime_error);
  // ...and threads the shared provenance through when inputs agree.
  EXPECT_EQ(load_result_stores({ours, ours}).provenance,
            current_provenance());

  std::remove(ours.c_str());
  std::remove(theirs.c_str());
}

TEST(Provenance, PairedReportAnnotatesCrossVersionPairs) {
  std::vector<CampaignRow> a = {test_row(8)};
  std::vector<CampaignRow> b = a;
  b[0].outcome.rounds += 5;

  PairedComparison cmp = paired_compare(a, b, Metric::Rounds);
  // No provenance set: no annotation line (hand-built comparisons).
  const std::string bare =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Markdown);
  EXPECT_EQ(bare.find("provenance"), std::string::npos);
  EXPECT_EQ(bare.find("CROSS-VERSION"), std::string::npos);

  // One known side is NOT a cross-version pairing, just an unknown one:
  // still no annotation.
  cmp.provenance_a = describe(current_provenance());
  cmp.provenance_b.clear();
  const std::string one_sided =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Markdown);
  EXPECT_EQ(one_sided.find("CROSS-VERSION"), std::string::npos);
  EXPECT_EQ(one_sided.find("Both stores produced by"), std::string::npos);

  // Same provenance on both sides: a one-line confirmation.
  cmp.provenance_a = describe(current_provenance());
  cmp.provenance_b = cmp.provenance_a;
  const std::string same =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Markdown);
  EXPECT_NE(same.find("Both stores produced by"), std::string::npos);
  EXPECT_EQ(same.find("CROSS-VERSION"), std::string::npos);

  // Different provenance: the cross-version warning names both sides.
  StoreProvenance other = current_provenance();
  other.engine = "dring-0.9.0";
  cmp.provenance_b = describe(other);
  const std::string cross =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Markdown);
  EXPECT_NE(cross.find("CROSS-VERSION comparison"), std::string::npos);
  EXPECT_NE(cross.find("dring-0.9.0"), std::string::npos);
  EXPECT_NE(cross.find(engine_version()), std::string::npos);

  // The JSON format carries the same information as fields.
  const std::string json =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Json);
  EXPECT_NE(json.find("\"cross_version\":true"), std::string::npos);
  EXPECT_NE(json.find("provenance_a"), std::string::npos);
}

TEST(Provenance, ExtraTextRoundTripsThroughTheRowLine) {
  CampaignRow row = test_row(8);
  row.outcome.extra_text["series"] = "1|-|a\n2|3|b";
  row.outcome.extra["shifts"] = 4;
  const CampaignRow back =
      campaign_row_from_json(util::Json::parse(row_line(row)));
  EXPECT_EQ(back.outcome.extra_text, row.outcome.extra_text);
  EXPECT_EQ(back.outcome.extra, row.outcome.extra);
  EXPECT_EQ(row_line(back), row_line(row));

  // Omitted entirely when empty (pre-PR-5 row bytes for plain runs).
  EXPECT_EQ(row_line(test_row(8)).find("extra_text"), std::string::npos);
}

}  // namespace
}  // namespace dring::core
