// Minimal JSON value type, parser and writer.
//
// The campaign subsystem stores scenario specs and results as JSON (one
// object per line in the JSONL result store), and campaign definitions are
// read from .json files.  The container must stay dependency-free, so this
// is a small, strict RFC-8259 subset implementation:
//
//   * objects are std::map-backed, so dumps are canonical (keys sorted) —
//     a requirement for stable scenario fingerprints and diffable stores;
//   * integers that fit in 64 bits round-trip exactly (doubles are only
//     used for values written with a fraction/exponent);
//   * parse errors throw std::invalid_argument with a byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dring::util {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(long v) : type_(Type::Int), int_(v) {}
  Json(long long v) : type_(Type::Int), int_(v) {}
  Json(double v) : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const {
    require(Type::Bool, "bool");
    return bool_;
  }
  /// Numeric accessor; exact for values parsed without fraction/exponent.
  std::int64_t as_int() const {
    if (type_ == Type::Double) return static_cast<std::int64_t>(double_);
    require(Type::Int, "number");
    return int_;
  }
  double as_double() const {
    if (type_ == Type::Int) return static_cast<double>(int_);
    require(Type::Double, "number");
    return double_;
  }
  const std::string& as_string() const {
    require(Type::String, "string");
    return string_;
  }
  const Array& as_array() const {
    require(Type::Array, "array");
    return array_;
  }
  const Object& as_object() const {
    require(Type::Object, "object");
    return object_;
  }
  Array& as_array() {
    require(Type::Array, "array");
    return array_;
  }
  Object& as_object() {
    require(Type::Object, "object");
    return object_;
  }

  // --- object conveniences ---------------------------------------------------
  bool has(const std::string& key) const {
    return is_object() && object_.count(key) > 0;
  }
  /// Member lookup; throws if absent.
  const Json& at(const std::string& key) const;
  /// Member lookup with defaults for absent keys.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  /// Insert/overwrite an object member (value becomes an Object if Null).
  void set(const std::string& key, Json value);

  // --- serialization ---------------------------------------------------------
  /// Compact canonical dump: no whitespace, object keys in sorted order,
  /// integers without exponent. Two equal values always dump identically.
  std::string dump() const;

  /// Strict parse of a complete JSON document.
  /// Throws std::invalid_argument on any syntax error or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void require(Type t, const char* what) const {
    if (type_ != t)
      throw std::invalid_argument(std::string("json: value is not a ") + what);
  }
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace dring::util
