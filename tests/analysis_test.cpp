// Tests for the campaign analytics subsystem (core/analysis.hpp):
// axis extraction, hand-computed aggregates and quantiles, numeric-aware
// group ordering, frontier detection on a synthetic monotone grid,
// multi-store loading, byte-stable report rendering — and the equivalence
// of the generic aggregate/frontier queries with the hand-rolled
// core/feasibility_map sweep on overlapping cells.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/analysis.hpp"
#include "core/feasibility_map.hpp"

namespace dring::core {
namespace {

/// A synthetic store row (no engine run): `explored` decides success.
CampaignRow fake_row(const std::string& algorithm, NodeId n, Round t,
                     std::uint64_t seed, bool explored, Round explored_round,
                     Round rounds, long long moves) {
  CampaignRow row;
  row.spec.algorithm = algorithm;
  row.spec.n = n;
  row.spec.adversary.family = "targeted-random";
  row.spec.adversary.t_interval = t;
  row.spec.seed = seed;
  row.fingerprint = fingerprint(row.spec);
  row.outcome.explored = explored;
  row.outcome.explored_round = explored ? explored_round : -1;
  row.outcome.rounds = rounds;
  row.outcome.total_moves = moves;
  row.outcome.stop_reason = explored ? "explored" : "max_rounds";
  return row;
}

// --- axes ----------------------------------------------------------------------

TEST(AnalysisAxes, CanonicalizationAndValues) {
  EXPECT_EQ(canonical_axis("k"), "agents");
  EXPECT_EQ(canonical_axis("family"), "adversary");
  EXPECT_EQ(canonical_axis("T"), "t_interval");
  EXPECT_EQ(canonical_axis("n"), "n");
  EXPECT_THROW(canonical_axis("bogus"), std::invalid_argument);

  const CampaignRow row = fake_row("KnownNNoChirality", 10, 3, 1, true, 7, 9, 5);
  EXPECT_EQ(axis_value(row, "algorithm"), "KnownNNoChirality");
  EXPECT_EQ(axis_value(row, "n"), "10");
  EXPECT_EQ(axis_value(row, "t_interval"), "3");
  EXPECT_EQ(axis_value(row, "adversary"), "targeted-random");
  EXPECT_EQ(axis_value(row, "model"), "native");
  EXPECT_EQ(axis_value(row, "target_prob"), "0.5");
  EXPECT_DOUBLE_EQ(axis_number(row, "n"), 10.0);
  EXPECT_THROW(axis_number(row, "algorithm"), std::invalid_argument);
  EXPECT_TRUE(axis_is_numeric("t_interval"));
  EXPECT_FALSE(axis_is_numeric("model"));
}

// --- quantiles and aggregates --------------------------------------------------

TEST(AnalysisAggregate, QuantileInterpolatesLinearly) {
  const std::vector<double> s = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(s, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(s, 0.95), 1.0 + 0.95 * 3.0);  // 3.85
  EXPECT_DOUBLE_EQ(quantile({7}, 0.5), 7.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(AnalysisAggregate, HandComputedStatistics) {
  // Four successes with explored rounds {10, 20, 30, 40} and one failure.
  std::vector<CampaignRow> rows;
  rows.push_back(fake_row("A", 8, 1, 1, true, 10, 12, 20));
  rows.push_back(fake_row("A", 8, 1, 2, true, 20, 22, 40));
  rows.push_back(fake_row("A", 8, 1, 3, true, 30, 32, 60));
  rows.push_back(fake_row("A", 8, 1, 4, true, 40, 42, 80));
  rows.push_back(fake_row("A", 8, 1, 5, false, 0, 99, 7));

  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"algorithm"}, Metric::ExploredRound);
  ASSERT_EQ(groups.size(), 1u);
  const Aggregate& agg = groups[0].agg;
  EXPECT_EQ(groups[0].key, std::vector<std::string>{"A"});
  EXPECT_EQ(agg.runs, 5);
  EXPECT_EQ(agg.successes, 4);
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.8);
  // The failure contributes no explored_round sample.
  EXPECT_EQ(agg.samples, 4);
  EXPECT_DOUBLE_EQ(agg.min, 10.0);
  EXPECT_DOUBLE_EQ(agg.max, 40.0);
  EXPECT_DOUBLE_EQ(agg.mean, 25.0);
  EXPECT_DOUBLE_EQ(agg.median, 25.0);
  EXPECT_DOUBLE_EQ(agg.p95, 10.0 + 0.95 * 3.0 * 10.0);  // 38.5
  // Population stddev of {10,20,30,40}: sqrt(125).
  EXPECT_DOUBLE_EQ(agg.stddev, std::sqrt(125.0));

  // Metric::Rounds samples every run, including the failure.
  const std::vector<GroupRow> all_runs =
      aggregate_rows(rows, {"algorithm"}, Metric::Rounds);
  EXPECT_EQ(all_runs[0].agg.samples, 5);
  EXPECT_DOUBLE_EQ(all_runs[0].agg.max, 99.0);
}

TEST(AnalysisAggregate, DegenerateGroupsStayWellDefined) {
  // Empty sample set: a group whose runs all failed contributes no
  // explored_round samples — the distribution fields stay zeroed and the
  // renderer prints "-" cells instead of stale numbers.
  std::vector<CampaignRow> failures;
  failures.push_back(fake_row("A", 8, 1, 1, false, 0, 50, 5));
  failures.push_back(fake_row("A", 8, 1, 2, false, 0, 60, 6));
  const std::vector<GroupRow> empty =
      aggregate_rows(failures, {"algorithm"}, Metric::ExploredRound);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].agg.runs, 2);
  EXPECT_EQ(empty[0].agg.successes, 0);
  EXPECT_EQ(empty[0].agg.samples, 0);
  EXPECT_DOUBLE_EQ(empty[0].agg.min, 0.0);
  EXPECT_DOUBLE_EQ(empty[0].agg.stddev, 0.0);
  const std::string md = render_aggregate_report(
      empty, {"algorithm"}, Metric::ExploredRound, ReportFormat::Markdown);
  EXPECT_NE(md.find("| - | - | - | - | - | - |"), std::string::npos) << md;

  // Single sample: every order statistic is that sample, dispersion 0.
  std::vector<CampaignRow> single;
  single.push_back(fake_row("A", 8, 1, 1, true, 7, 9, 3));
  const Aggregate& one =
      aggregate_rows(single, {"algorithm"}, Metric::ExploredRound)[0].agg;
  EXPECT_EQ(one.samples, 1);
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.max, 7.0);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.p95, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);

  // All-identical samples: quantiles interpolate between equal values,
  // stddev is exactly 0 (no catastrophic cancellation).
  std::vector<CampaignRow> identical;
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    identical.push_back(fake_row("A", 8, 1, seed, true, 5, 9, 3));
  const Aggregate& same =
      aggregate_rows(identical, {"algorithm"}, Metric::ExploredRound)[0].agg;
  EXPECT_EQ(same.samples, 3);
  EXPECT_DOUBLE_EQ(same.median, 5.0);
  EXPECT_DOUBLE_EQ(same.p95, 5.0);
  EXPECT_DOUBLE_EQ(same.stddev, 0.0);
}

TEST(AnalysisWilson, HandComputedIntervals) {
  // 8/10 at z = 1.96: center = (0.8 + z^2/20) / (1 + z^2/10),
  // half = z/(1 + z^2/10) * sqrt(0.8*0.2/10 + z^2/400).
  const WilsonInterval ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.lo, 0.4902, 1e-4);
  EXPECT_NEAR(ci.hi, 0.9433, 1e-4);

  // Degenerate rates stay inside [0, 1] (the point of Wilson over the
  // normal approximation).
  const WilsonInterval none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_NEAR(none.hi, 0.2775, 1e-4);
  const WilsonInterval all = wilson_interval(10, 10);
  EXPECT_NEAR(all.lo, 0.7225, 1e-4);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);

  // Symmetry: k/n and (n-k)/n mirror around 1/2.
  const WilsonInterval three = wilson_interval(3, 10);
  const WilsonInterval seven = wilson_interval(7, 10);
  EXPECT_NEAR(three.lo, 1.0 - seven.hi, 1e-12);
  EXPECT_NEAR(three.hi, 1.0 - seven.lo, 1e-12);

  // No runs: vacuous interval.
  EXPECT_DOUBLE_EQ(wilson_interval(0, 0).lo, 0.0);
  EXPECT_DOUBLE_EQ(wilson_interval(0, 0).hi, 1.0);
}

TEST(AnalysisSignTest, ExactBinomialPValues) {
  EXPECT_DOUBLE_EQ(sign_test_p_value(0, 0), 1.0);
  // 1 win in 8: 2 * (C(8,0) + C(8,1)) / 2^8 = 18/256.
  EXPECT_DOUBLE_EQ(sign_test_p_value(1, 8), 0.0703125);
  EXPECT_DOUBLE_EQ(sign_test_p_value(7, 8), 0.0703125);  // two-sided
  // 0 wins in 10: 2 / 2^10.
  EXPECT_DOUBLE_EQ(sign_test_p_value(0, 10), 0.001953125);
  // An even split is as un-lopsided as it gets: capped at 1.
  EXPECT_DOUBLE_EQ(sign_test_p_value(4, 8), 1.0);

  // Large trial counts go through the log-space path (the direct
  // product under/overflows past ~10^3 trials and used to collapse every
  // big-store comparison to p = 1): the exact and log-space paths agree
  // where both are well-conditioned, lopsided large splits stay
  // significant, and even large splits stay capped.
  EXPECT_NEAR(sign_test_p_value(25, 61), 0.200031369, 1e-6);
  EXPECT_LT(sign_test_p_value(900, 2000), 1e-5);
  EXPECT_GT(sign_test_p_value(900, 2000), 0.0);
  EXPECT_LT(sign_test_p_value(500, 1200), 1e-8);
  EXPECT_DOUBLE_EQ(sign_test_p_value(1000, 2000), 1.0);
}

TEST(AnalysisPaired, HandComputedComparison) {
  // A: eight common rows (explored, rounds 10..80), plus one row only in A.
  std::vector<CampaignRow> a;
  for (int i = 1; i <= 8; ++i)
    a.push_back(fake_row("A", 8, 1, static_cast<std::uint64_t>(i), true,
                         10 * i, 10 * i, 10 * i));
  a.push_back(fake_row("A", 99, 1, 1, true, 9, 9, 9));  // only in A

  // B: the same fingerprints with hand-picked drift, plus one extra row.
  //   deltas (B - A) on rounds: {-1, -2, -3, -4, -5, 0, +6, sample lost}
  std::vector<CampaignRow> b;
  for (int i = 1; i <= 8; ++i)
    b.push_back(fake_row("A", 8, 1, static_cast<std::uint64_t>(i), true,
                         10 * i, 10 * i, 10 * i));
  for (int i = 0; i < 5; ++i) b[i].outcome.rounds -= i + 1;
  b[6].outcome.rounds += 6;
  // Row 8 flips to failure in B (explored false) — under the
  // explored_round metric it would stop contributing, but rounds samples
  // every run, so it still pairs; the flip is counted separately.
  b[7].outcome.explored = false;
  b[7].outcome.explored_round = -1;
  b.push_back(fake_row("A", 77, 1, 1, true, 9, 9, 9));  // only in B

  const PairedComparison cmp = paired_compare(a, b, Metric::Rounds);
  EXPECT_EQ(cmp.common, 8);
  EXPECT_EQ(cmp.only_a, 1);
  EXPECT_EQ(cmp.only_b, 1);
  EXPECT_EQ(cmp.success_flips_ab, 1);
  EXPECT_EQ(cmp.success_flips_ba, 0);
  EXPECT_EQ(cmp.pairs, 8);
  EXPECT_EQ(cmp.b_lower, 5);
  EXPECT_EQ(cmp.ties, 2);  // delta 0 twice: rows 6 and 8
  EXPECT_EQ(cmp.b_higher, 1);
  // mean of {-1,-2,-3,-4,-5,0,6,0} = -9/8; median of the sorted deltas
  // {-5,-4,-3,-2,-1,0,0,6} = -1.5.
  EXPECT_DOUBLE_EQ(cmp.mean_delta, -1.125);
  EXPECT_DOUBLE_EQ(cmp.median_delta, -1.5);
  // Sign test over the 6 non-tied pairs, 5 lower: 2*(C(6,0)+C(6,1))/2^6.
  EXPECT_DOUBLE_EQ(cmp.sign_test_p, sign_test_p_value(5, 6));
  EXPECT_DOUBLE_EQ(cmp.sign_test_p, 0.21875);

  // Under explored_round the flipped row loses its B sample and drops out
  // of the pairing (but stays a counted flip).
  const PairedComparison strict = paired_compare(a, b, Metric::ExploredRound);
  EXPECT_EQ(strict.pairs, 7);
  EXPECT_EQ(strict.success_flips_ab, 1);

  // Rendering is byte-stable and self-consistent across formats.
  const std::string md =
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Markdown);
  EXPECT_NE(md.find("sign-test p"), std::string::npos);
  EXPECT_NE(md.find("| 8 | 1 | 1 | 1 | 0 | 8 | 5 | 2 | 1 | -1.125 | -1.5 |"),
            std::string::npos)
      << md;
  const util::Json doc = util::Json::parse(
      render_paired_report(cmp, Metric::Rounds, ReportFormat::Json));
  EXPECT_EQ(doc.at("pairs").as_int(), 8);
  EXPECT_EQ(doc.at("changed").as_array().size(), 6u);  // non-zero deltas
  EXPECT_DOUBLE_EQ(doc.at("sign_test_p").as_double(), 0.21875);
}

TEST(AnalysisAggregate, GroupsSortNumericAware) {
  std::vector<CampaignRow> rows;
  for (const NodeId n : {11, 6, 16, 9})
    rows.push_back(fake_row("A", n, 1, 1, true, n, n, n));
  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"n"}, Metric::Rounds);
  ASSERT_EQ(groups.size(), 4u);
  // Lexicographic order would be 11, 16, 6, 9.
  EXPECT_EQ(groups[0].key[0], "6");
  EXPECT_EQ(groups[1].key[0], "9");
  EXPECT_EQ(groups[2].key[0], "11");
  EXPECT_EQ(groups[3].key[0], "16");
}

// --- frontier ------------------------------------------------------------------

/// A monotone synthetic grid: algorithm A succeeds for n <= boundary.
std::vector<CampaignRow> monotone_grid(const std::string& algorithm,
                                       NodeId boundary) {
  std::vector<CampaignRow> rows;
  for (const NodeId n : {4, 6, 8, 10})
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      rows.push_back(fake_row(algorithm, n, 1, seed, n <= boundary,
                              static_cast<Round>(3 * n), 3 * n, 2 * n));
  return rows;
}

TEST(AnalysisFrontier, FindsTheCrossingOnAMonotoneGrid) {
  std::vector<CampaignRow> rows = monotone_grid("A", 6);
  const std::vector<CampaignRow> more = monotone_grid("B", 8);
  rows.insert(rows.end(), more.begin(), more.end());

  const std::vector<FrontierGroup> groups =
      detect_frontier(rows, {"algorithm"}, "n", 0.75);
  ASSERT_EQ(groups.size(), 2u);

  EXPECT_EQ(groups[0].key, std::vector<std::string>{"A"});
  ASSERT_EQ(groups[0].curve.size(), 4u);
  EXPECT_DOUBLE_EQ(groups[0].curve[0].axis, 4.0);
  EXPECT_DOUBLE_EQ(groups[0].curve[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(groups[0].curve[2].rate, 0.0);
  ASSERT_EQ(groups[0].crossings.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].crossings[0].axis_before, 6.0);
  EXPECT_DOUBLE_EQ(groups[0].crossings[0].axis_after, 8.0);
  EXPECT_TRUE(groups[0].crossings[0].falling);

  // B's boundary sits one cell later.
  ASSERT_EQ(groups[1].crossings.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[1].crossings[0].axis_before, 8.0);
  EXPECT_DOUBLE_EQ(groups[1].crossings[0].axis_after, 10.0);

  // A uniformly-feasible group has no crossing.
  const std::vector<FrontierGroup> flat =
      detect_frontier(monotone_grid("A", 10), {"algorithm"}, "n", 0.75);
  EXPECT_TRUE(flat[0].crossings.empty());

  // Guard rails: non-numeric axis, axis repeated as group key.
  EXPECT_THROW(detect_frontier(rows, {}, "algorithm", 0.5),
               std::invalid_argument);
  EXPECT_THROW(detect_frontier(rows, {"n"}, "n", 0.5),
               std::invalid_argument);
}

// --- multi-store loading -------------------------------------------------------

TEST(AnalysisLoad, UnionsStoresAndRejectsConflicts) {
  const std::string a_path = testing::TempDir() + "analysis_a.jsonl";
  const std::string b_path = testing::TempDir() + "analysis_b.jsonl";

  std::vector<CampaignRow> rows = monotone_grid("A", 6);
  const std::vector<CampaignRow> front(rows.begin(), rows.begin() + 6);
  const std::vector<CampaignRow> back(rows.begin() + 6, rows.end());
  write_result_store(a_path, front);
  write_result_store(b_path, back);

  const ResultStore store = load_result_stores({a_path, b_path});
  const std::vector<CampaignRow>& loaded = store.rows;
  EXPECT_EQ(store.provenance, current_provenance());
  EXPECT_EQ(loaded.size(), rows.size());
  sort_canonical(rows);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(row_line(loaded[i]), row_line(rows[i]));

  // Conflicting payload for a stored fingerprint is refused.
  std::vector<CampaignRow> clashing = front;
  clashing[0].outcome.rounds += 1;
  write_result_store(b_path, clashing);
  EXPECT_THROW(load_result_stores({a_path, b_path}), std::runtime_error);

  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

// --- rendering -----------------------------------------------------------------

TEST(AnalysisRender, MarkdownAndCsvAreByteStable) {
  std::vector<CampaignRow> rows;
  rows.push_back(fake_row("A", 8, 1, 1, true, 10, 12, 20));
  rows.push_back(fake_row("A", 8, 1, 2, true, 20, 22, 40));
  rows.push_back(fake_row("A", 8, 1, 3, false, 0, 99, 7));

  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"algorithm", "n"}, Metric::ExploredRound);
  EXPECT_EQ(
      render_aggregate_report(groups, {"algorithm", "n"},
                              Metric::ExploredRound, ReportFormat::Markdown),
      "Metric: explored_round; ok = explored && !premature; "
      "rate_lo/rate_hi = Wilson 95% interval; sd = population stddev.\n"
      "\n"
      "| algorithm | n | runs | ok | rate | rate_lo | rate_hi | samples |"
      " min | mean | median | p95 | max | sd |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n"
      "| A | 8 | 3 | 2 | 0.6667 | 0.2077 | 0.9385 | 2 | 10 | 15 | 15 |"
      " 19.5 | 20 | 5 |\n");
  EXPECT_EQ(
      render_aggregate_report(groups, {"algorithm", "n"},
                              Metric::ExploredRound, ReportFormat::Csv),
      "algorithm,n,runs,ok,rate,rate_lo,rate_hi,samples,min,mean,median,"
      "p95,max,sd\n"
      "A,8,3,2,0.6667,0.2077,0.9385,2,10,15,15,19.5,20,5\n");

  const std::vector<FrontierGroup> frontier =
      detect_frontier(monotone_grid("A", 6), {"algorithm"}, "n", 0.75);
  EXPECT_EQ(
      render_frontier_report(frontier, {"algorithm"}, "n", 0.75,
                             ReportFormat::Markdown),
      "Frontier: axis n, threshold 0.7500; rate = explored && "
      "!premature.\n"
      "\n"
      "| algorithm | curve (n:rate) | frontier |\n"
      "|---|---|---|\n"
      "| A | 4:1.0000 6:1.0000 8:0.0000 10:0.0000 | "
      "6->8 (1.0000->0.0000, falling) |\n");

  // JSON parses back and is canonical.
  const std::string json = render_aggregate_report(
      groups, {"algorithm", "n"}, Metric::ExploredRound, ReportFormat::Json);
  const util::Json doc = util::Json::parse(json);
  EXPECT_EQ(doc.at("metric").as_string(), "explored_round");
  EXPECT_EQ(doc.at("groups").as_array().size(), 1u);
  EXPECT_EQ(doc.dump() + "\n", json);
}

// --- equivalence with core/feasibility_map -------------------------------------

/// Mirror FeasibilityMap's scenario matrix (core/feasibility_map.cpp
/// build_tasks) as declarative specs: seed 0 runs the static ring, the
/// rest run targeted hostile dynamics, seeds 0x9d5*s + 17n.
std::vector<ScenarioSpec> feasibility_specs(const std::string& algorithm,
                                            const FeasibilitySweep& sweep) {
  std::vector<ScenarioSpec> specs;
  for (const NodeId n : sweep.sizes) {
    for (int seed = 0; seed < sweep.seeds_per_size; ++seed) {
      ScenarioSpec spec;
      spec.algorithm = algorithm;
      spec.n = n;
      spec.seed = 0x9d5ULL * static_cast<std::uint64_t>(seed) + 17 * n;
      spec.max_rounds = sweep.max_rounds;
      if (seed == 0) {
        spec.adversary.family = "null";
      } else {
        spec.adversary.family = "targeted-random";
        spec.adversary.target_prob = sweep.edge_removal_prob;
        spec.adversary.activation_prob = sweep.activation_prob;
      }
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(AnalysisFeasibilityEquivalence, ReproducesTheFeasibilityMapBoundary) {
  FeasibilitySweep sweep;
  sweep.sizes = {4, 5, 6, 8};
  sweep.seeds_per_size = 3;
  sweep.max_rounds = 200'000;
  sweep.threads = 2;

  const std::string name = "KnownNNoChirality";
  const algo::AlgorithmId id = algo::info_by_name(name).id;

  // The hand-rolled sweep...
  const FeasibilityRow feas = evaluate_algorithm(id, sweep);
  // ...and the same cells through the campaign store + analysis path.
  const std::vector<CampaignRow> rows =
      run_scenarios(feasibility_specs(name, sweep), 2);

  const std::vector<GroupRow> overall =
      aggregate_rows(rows, {"algorithm"}, Metric::Rounds);
  ASSERT_EQ(overall.size(), 1u);
  EXPECT_EQ(overall[0].agg.runs, feas.runs);
  EXPECT_EQ(overall[0].agg.successes, feas.explored);
  EXPECT_EQ(overall[0].agg.premature, feas.premature);
  EXPECT_DOUBLE_EQ(overall[0].agg.max,
                   static_cast<double>(feas.worst_rounds));

  // The frontier curve over n matches per-size feasibility: each axis
  // point's success rate equals the explored fraction of a single-size
  // hand-rolled sweep.
  const std::vector<FrontierGroup> frontier =
      detect_frontier(rows, {"algorithm"}, "n", 1.0);
  ASSERT_EQ(frontier.size(), 1u);
  ASSERT_EQ(frontier[0].curve.size(), sweep.sizes.size());
  for (std::size_t i = 0; i < sweep.sizes.size(); ++i) {
    FeasibilitySweep one = sweep;
    one.sizes = {sweep.sizes[i]};
    const FeasibilityRow per_size = evaluate_algorithm(id, one);
    EXPECT_DOUBLE_EQ(frontier[0].curve[i].axis,
                     static_cast<double>(sweep.sizes[i]));
    EXPECT_EQ(frontier[0].curve[i].runs, per_size.runs);
    EXPECT_DOUBLE_EQ(frontier[0].curve[i].rate,
                     static_cast<double>(per_size.explored) / per_size.runs);
  }
}

}  // namespace
}  // namespace dring::core
