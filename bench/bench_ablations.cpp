// Ablation studies for the design choices DESIGN.md calls out — not paper
// tables, but the natural "what if" questions around them:
//
//  A. Bound looseness (Th. 3): KnownNNoChirality always runs 3N-6 rounds,
//     so a loose bound N = c*n costs a linear factor — measured curve.
//  B. Guess policy (Th. 5): UnconsciousExploration's initial guess and
//     growth factor vs. exploration time on hostile rings.
//  C. Window size (Th. 13): the sliding-window adversary's forced moves as
//     a function of the initial window x — the x*(N-x) parabola, with the
//     predicted maximum at x = n/2.
//  D. Determinism vs randomness: the paper's deterministic unconscious
//     protocol vs a random-walk baseline (the related-work approach [4])
//     under identical adversaries.
#include <algorithm>
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/random_walk.hpp"
#include "algo/unconscious_exploration.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));

  // --- A: bound looseness ---------------------------------------------------
  std::cout << "=== Ablation A: cost of a loose upper bound (Th. 3) ===\n\n";
  {
    util::Table t({"n", "N", "N/n", "termination round", "rounds / n"});
    const NodeId n = 16;
    for (const NodeId N : {16, 24, 32, 48, 64}) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      cfg.upper_bound = N;
      cfg.stop.max_rounds = 10 * N;
      adversary::TargetedRandomAdversary adv(0.7, 1.0, 5 + N);
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      Round term = 0;
      for (const auto& a : r.agents)
        term = std::max(term, a.termination_round);
      t.add_row({std::to_string(n), std::to_string(N),
                 util::fmt_double(static_cast<double>(N) / n, 2),
                 std::to_string(term),
                 util::fmt_double(static_cast<double>(term) / n, 2)});
    }
    t.print(std::cout);
    std::cout << "Termination is always 3N-5: the algorithm pays for the "
                 "bound, not the ring — knowledge quality is performance.\n";
  }

  // --- B: guess policy --------------------------------------------------------
  std::cout << "\n=== Ablation B: guess policy of UnconsciousExploration "
               "(Th. 5) ===\n\n";
  {
    util::Table t({"initial G", "growth", "n", "worst exploration round",
                   "mean (over seeds)"});
    for (const auto& [g0, factor] : std::initializer_list<
             std::pair<std::int64_t, std::int64_t>>{
             {2, 2}, {2, 4}, {8, 2}, {32, 2}}) {
      for (NodeId n : {12, 24}) {
        long long worst = 0, sum = 0;
        int count = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          core::ExplorationConfig cfg = core::default_config(
              algo::AlgorithmId::UnconsciousExploration, n);
          cfg.stop.max_rounds = 4000LL * n;
          sim::Engine engine(cfg.n, std::nullopt, sim::Model::FSYNC,
                             cfg.engine);
          for (int i = 0; i < 2; ++i) {
            engine.add_agent(
                static_cast<NodeId>(i * n / 2),
                i == 0 ? agent::kChiralOrientation
                       : agent::kMirroredOrientation,
                std::make_unique<algo::UnconsciousExploration>(g0, factor));
          }
          // A perpetually-removed edge makes the reversal machinery (and
          // hence the guess policy) the bottleneck: agents pinned on the
          // missing edge only turn after being blocked for > G rounds.
          adversary::FixedEdgeAdversary adv(
              static_cast<EdgeId>((n / 4 + seed) % n));
          engine.set_adversary(&adv);
          sim::StopPolicy stop;
          stop.max_rounds = 4000LL * n;
          stop.stop_when_explored = true;
          stop.stop_when_all_terminated = false;
          const sim::RunResult r = engine.run(stop);
          if (r.explored) {
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
            ++count;
          }
        }
        t.add_row({std::to_string(g0), std::to_string(factor),
                   std::to_string(n), util::fmt_count(worst),
                   count ? util::fmt_double(double(sum) / count, 1) : "-"});
      }
    }
    t.print(std::cout);
    std::cout << "With a perpetually missing edge the blocked-wait before a "
                 "reversal is proportional to the current guess: inflating "
                 "the initial guess (or the growth factor) directly inflates "
                 "the exploration time, which is why the paper starts at "
                 "G = 2 and doubles.\n";
  }

  // --- C: window size parabola -------------------------------------------------
  std::cout << "\n=== Ablation C: sliding-window forced moves vs window "
               "size x (Th. 13) ===\n\n";
  {
    const NodeId n = 32;
    util::Table t({"x", "x*(N-x)", "forced moves", "ratio"});
    for (NodeId x : {4, 8, 12, 16, 20, 24, 28}) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
      cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
      cfg.orientations = {agent::kChiralOrientation,
                          agent::kChiralOrientation};
      cfg.engine.fairness_window = 1 << 20;
      cfg.stop.max_rounds = 4000LL * n * n;
      cfg.stop.stop_when_explored_and_one_terminated = true;
      adversary::SlidingWindowAdversary adv(0, 1);
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({std::to_string(x), util::fmt_count(ref),
                 util::fmt_count(r.total_moves),
                 util::fmt_double(static_cast<double>(r.total_moves) /
                                      std::max(ref, 1LL),
                                  2)});
    }
    t.print(std::cout);
    std::cout << "Every window size forces at least 2*x*(N-x) moves (ratio "
                 ">= 2 throughout), the Theorem 13 bound; the total measured "
                 "cost behaves like 2x(N-x) + (N-x)^2 — the chaser re-walks "
                 "a growing span for each of the N-x phases — so smaller "
                 "windows force even more absolute moves in this "
                 "realization.\n";
  }

  // --- D: deterministic vs random walk ------------------------------------------
  std::cout << "\n=== Ablation D: deterministic protocol vs random-walk "
               "baseline ===\n\n";
  {
    util::Table t({"n", "protocol", "explored (runs)",
                   "worst exploration round", "mean round"});
    for (NodeId n : {8, 16, 32}) {
      for (const bool deterministic : {true, false}) {
        long long worst = 0, sum = 0;
        int explored = 0;
        const Round budget = 40'000LL + 4000LL * n;
        for (int seed = 1; seed <= seeds; ++seed) {
          core::ExplorationConfig cfg = core::default_config(
              algo::AlgorithmId::UnconsciousExploration, n);
          sim::Engine engine(cfg.n, std::nullopt, sim::Model::FSYNC,
                             cfg.engine);
          for (int i = 0; i < 2; ++i) {
            if (deterministic) {
              engine.add_agent(static_cast<NodeId>(i * n / 2),
                               i == 0 ? agent::kChiralOrientation
                                      : agent::kMirroredOrientation,
                               std::make_unique<algo::UnconsciousExploration>());
            } else {
              engine.add_agent(
                  static_cast<NodeId>(i * n / 2),
                  i == 0 ? agent::kChiralOrientation
                         : agent::kMirroredOrientation,
                  std::make_unique<algo::RandomWalk>(1000ULL * seed + i));
            }
          }
          adversary::TargetedRandomAdversary adv(0.7, 1.0, 23ULL * seed + n);
          engine.set_adversary(&adv);
          sim::StopPolicy stop;
          stop.max_rounds = budget;
          stop.stop_when_explored = true;
          stop.stop_when_all_terminated = false;
          const sim::RunResult r = engine.run(stop);
          if (r.explored) {
            ++explored;
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
          }
        }
        t.add_row({std::to_string(n),
                   deterministic ? "UnconsciousExploration (Th. 5)"
                                 : "RandomWalk baseline [4]",
                   std::to_string(explored) + "/" + std::to_string(seeds),
                   util::fmt_count(worst),
                   explored ? util::fmt_double(double(sum) / explored, 1)
                            : "-"});
      }
    }
    t.print(std::cout);
    std::cout << "The deterministic protocol explores in O(n) against the "
                 "targeted adversary; the random walk's expected cover time "
                 "is quadratic and degrades much faster with n.\n";
  }
  return 0;
}
