// Possibility-side artifacts: Table 2 (FSYNC), Table 4 (SSYNC) and the
// price-of-liveness study.  Grids, folds and renderers are cell-for-cell
// the retired bench pipelines (Table 2 is additionally pinned against a
// verbatim legacy replica in tests/artifact_test.cpp).
#include <algorithm>
#include <sstream>

#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/artifact.hpp"
#include "ring/evolving_ring.hpp"
#include "sim/trace_io.hpp"
#include "util/table.hpp"

namespace dring::core {

namespace {

std::string joined_sizes(const std::vector<NodeId>& sizes) {
  std::string out;
  for (const NodeId n : sizes) out += std::to_string(n) + " ";
  return out;
}

// --- Table 2 ----------------------------------------------------------------

/// The legacy bench's per-sweep fold: worst measured termination round
/// across the runs that explored and fully terminated cleanly.
struct Table2Fold {
  std::int64_t worst_round = 0;
  NodeId worst_n = 0;
  int runs = 0;
  int failures = 0;
};

void table2_account(Table2Fold& fold, const CampaignRow& row) {
  fold.runs += 1;
  if (!row.outcome.explored || row.outcome.premature_termination ||
      !row.outcome.all_terminated || row.outcome.violations != 0) {
    fold.failures += 1;
    return;
  }
  if (row.outcome.last_termination > fold.worst_round) {
    fold.worst_round = row.outcome.last_termination;
    fold.worst_n = row.spec.n;
  }
}

/// One theorem row of Table 2: the scenario grid parameters plus the
/// rendered-cell texts that depend on the fold.
struct Table2RowDef {
  const char* algorithm;
  Round budget_per_n;  ///< max_rounds = budget_per_n * n + 1000
  bool with_fig2;      ///< add the exact Figure 2 worst case (n >= 6)
};

constexpr Table2RowDef kTable2Rows[] = {
    {"KnownNNoChirality", 10, true},
    {"LandmarkWithChirality", 4000, false},
    {"LandmarkNoChirality", 100000, false},
};

std::vector<ArtifactScenario> table2_scenarios(
    const std::vector<NodeId>& sizes, int seeds) {
  std::vector<ArtifactScenario> scenarios;
  for (int group = 0; group < 3; ++group) {
    const Table2RowDef& def = kTable2Rows[group];
    for (const NodeId n : sizes) {
      for (int seed = 0; seed <= seeds; ++seed) {
        ArtifactScenario s;
        s.spec.algorithm = def.algorithm;
        s.spec.n = n;
        s.spec.max_rounds = def.budget_per_n * n + 1000;
        s.spec.seed = static_cast<std::uint64_t>(1000 * n + seed);
        if (seed == 0) {
          s.spec.adversary.family = "null";
          s.label = "static";
        } else if (seed == 1) {
          s.spec.adversary.family = "block-agent";
          s.spec.adversary.victim = 0;
          s.label = "obs1-block";
        } else {
          s.spec.adversary.family = "targeted-random";
          s.spec.adversary.target_prob = 0.7;
          s.spec.adversary.activation_prob = 1.0;
          s.label = "targeted-random#" + std::to_string(seed);
        }
        s.group = group;
        scenarios.push_back(std::move(s));
      }
      if (def.with_fig2 && n >= 6) {
        ArtifactScenario s;
        s.spec.algorithm = def.algorithm;
        s.spec.n = n;
        s.spec.start_nodes = {2, 3};
        s.spec.orientations = "cc";
        s.spec.max_rounds = 10 * n;
        s.spec.adversary.family = "fig2";
        s.spec.adversary.edge = 2;
        s.label = "fig2";
        s.group = group;
        scenarios.push_back(std::move(s));
      }
    }
  }
  return scenarios;
}

std::string render_table2(const std::vector<NodeId>& sizes, int seeds,
                          const std::vector<ArtifactScenario>& scenarios,
                          const std::vector<const CampaignRow*>& rows) {
  Table2Fold folds[3];
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    table2_account(folds[scenarios[i].group], *rows[i]);

  std::ostringstream out;
  out << "=== Table 2: possibility results for FSYNC ===\n"
      << "sizes swept: " << joined_sizes(sizes)
      << "| adversaries: static, obs1-block, targeted-random x" << seeds
      << "\n\n";

  util::Table table({"N. Agents", "Assumptions", "Paper bound",
                     "Worst measured termination", "at n", "Runs",
                     "Failures"});
  {
    const Table2Fold& r = folds[0];
    const NodeId n = r.worst_n;
    table.add_row({"2", "Known bound N", "3N-6 (Th. 3)",
                   util::fmt_count(r.worst_round) + "  (3n-5 = " +
                       util::fmt_count(3 * n - 5) + " incl. detect round)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const Table2Fold& r = folds[1];
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    table.add_row({"2", "Chirality, Landmark", "O(n) (Th. 6)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(static_cast<double>(r.worst_round) / n,
                                        1) +
                       " * n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const Table2Fold& r = folds[2];
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    const double nlogn = static_cast<double>(n) * algo::ceil_log2(n);
    table.add_row({"2", "Landmark (no chirality)", "O(n log n) (Th. 8)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(r.worst_round / nlogn, 1) +
                       " * n log n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  table.print(out);
  out << "\nFailures = runs that did not explore, terminated "
         "prematurely, or violated an invariant (expected: 0).\n";
  return out.str();
}

// --- Table 4 ----------------------------------------------------------------

struct Table4RowDef {
  const char* algorithm;
  const char* model;
  const char* agents;
  const char* assume;
  const char* claim;
  bool terminating;
  bool sliding;
};

constexpr Table4RowDef kTable4Rows[] = {
    {"PTBoundWithChirality", "PT", "2", "Chirality, Known bound N",
     "O(N^2) moves (Th. 12)", true, true},
    {"PTLandmarkWithChirality", "PT", "2", "Chirality, Landmark",
     "O(n^2) moves (Th. 14)", true, true},
    {"PTBoundNoChirality", "PT", "3", "Known bound N", "O(N^2) moves (Th. 16)",
     true, false},
    {"PTLandmarkNoChirality", "PT", "3", "Landmark", "O(n^2) moves (Th. 17)",
     true, false},
    {"ETUnconscious", "ET", "2", "Chirality",
     "unconscious exploration (Th. 18)", false, false},
    {"ETBoundNoChirality", "ET", "3", "Known n",
     "partial termination (Th. 20)", true, false},
};

struct Table4Fold {
  long long worst_moves = 0;
  NodeId worst_n = 1;
  int runs = 0;
  int failures = 0;
  int full_terminations = 0;
  int partial_terminations = 0;
};

void table4_account(Table4Fold& fold, const CampaignRow& row,
                    bool termination_required) {
  fold.runs += 1;
  const bool any_terminated = row.outcome.terminated_agents > 0;
  const bool ok = row.outcome.explored &&
                  !row.outcome.premature_termination &&
                  row.outcome.violations == 0 &&
                  (!termination_required || any_terminated);
  if (!ok) {
    fold.failures += 1;
    return;
  }
  if (row.outcome.all_terminated) fold.full_terminations += 1;
  if (any_terminated) fold.partial_terminations += 1;
  if (row.outcome.total_moves > fold.worst_moves) {
    fold.worst_moves = row.outcome.total_moves;
    fold.worst_n = row.spec.n;
  }
}

std::string quad_ratio(const Table4Fold& fold) {
  const double nn = static_cast<double>(fold.worst_n) * fold.worst_n;
  return util::fmt_count(fold.worst_moves) + "  (= " +
         util::fmt_double(fold.worst_moves / nn, 2) + " * n^2)";
}

std::vector<ArtifactScenario> table4_scenarios(
    const std::vector<NodeId>& sizes, int seeds) {
  std::vector<ArtifactScenario> scenarios;
  for (int group = 0; group < 6; ++group) {
    const Table4RowDef& def = kTable4Rows[group];
    for (const NodeId n : sizes) {
      for (int seed = 0; seed <= seeds; ++seed) {
        ArtifactScenario s;
        s.spec.algorithm = def.algorithm;
        s.spec.n = n;
        s.spec.max_rounds = 200'000LL + 4000LL * n * n;
        s.spec.seed = 7919ULL * static_cast<std::uint64_t>(n) +
                      static_cast<std::uint64_t>(seed);
        if (seed == 0) {
          s.spec.adversary.family = "null";
          s.label = "static";
        } else {
          s.spec.adversary.family = "targeted-random";
          s.spec.adversary.target_prob = 0.6;
          s.spec.adversary.activation_prob = 0.5 + 0.1 * (seed % 5);
          s.label = "targeted-random#" + std::to_string(seed);
        }
        s.group = group;
        scenarios.push_back(std::move(s));
      }
      if (def.sliding) {
        ArtifactScenario s;
        s.spec.algorithm = def.algorithm;
        s.spec.n = n;
        s.spec.start_nodes = {static_cast<NodeId>(n / 2 - 1), 0};
        s.spec.orientations = "cc";
        s.spec.landmark = 1;  // applied only when the algorithm has one
        s.spec.fairness_window = 65536;
        s.spec.max_rounds = 200'000LL + 4000LL * n * n;
        s.spec.stop_explored_one_terminated = true;
        s.spec.adversary.family = "sliding-window";
        s.label = "sliding-window";
        s.group = group;
        scenarios.push_back(std::move(s));
      }
    }
  }
  return scenarios;
}

std::string render_table4(const std::vector<NodeId>& sizes, int seeds,
                          const std::vector<ArtifactScenario>& scenarios,
                          const std::vector<const CampaignRow*>& rows) {
  Table4Fold folds[6];
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    table4_account(folds[scenarios[i].group], *rows[i],
                   kTable4Rows[scenarios[i].group].terminating);

  std::ostringstream out;
  out << "=== Table 4: possibility results for SSYNC models ===\n"
      << "sizes: " << joined_sizes(sizes)
      << "| adversaries: static, targeted-random x" << seeds
      << ", sliding-window (2-agent rows)\n\n";

  util::Table table({"Model", "N. Agents", "Assumptions", "Paper claim",
                     "Worst moves measured", "at n", "Term.", "Runs",
                     "Failures"});
  for (int group = 0; group < 6; ++group) {
    const Table4RowDef& def = kTable4Rows[group];
    const Table4Fold& fold = folds[group];
    std::string term;
    if (!def.terminating) {
      term = "none (ok)";
    } else {
      term = std::to_string(fold.partial_terminations) + " partial / " +
             std::to_string(fold.full_terminations) + " full";
    }
    table.add_row({def.model, def.agents, def.assume, def.claim,
                   quad_ratio(fold), std::to_string(fold.worst_n), term,
                   std::to_string(fold.runs), std::to_string(fold.failures)});
  }
  table.print(out);
  out << "\nFailures = runs that did not explore / terminated prematurely "
         "(expected: 0).  The sliding-window adversary realises the "
         "quadratic lower bound, so the 2-agent PT rows measure Theta(n^2) "
         "moves; the paper's O(N^2)/O(n^2) claims hold with small "
         "constants.\n";
  return out.str();
}

// --- Price of liveness ------------------------------------------------------

std::vector<ArtifactScenario> price_of_liveness_scenarios(
    const std::vector<NodeId>& random_sizes,
    const std::vector<NodeId>& fig2_sizes, int seeds) {
  std::vector<ArtifactScenario> scenarios;
  for (const NodeId n : random_sizes) {
    for (int seed = 1; seed <= seeds; ++seed) {
      ArtifactScenario s;
      s.spec.algorithm = "KnownNNoChirality";
      s.spec.n = n;
      s.spec.max_rounds = 40 * n;
      s.spec.seed = 505ULL * static_cast<std::uint64_t>(seed) +
                    static_cast<std::uint64_t>(n);
      s.spec.adversary.family = "targeted-random";
      s.spec.adversary.target_prob = 0.7;
      s.spec.adversary.activation_prob = 1.0;
      s.label = "targeted-random#" + std::to_string(seed);
      s.group = 0;
      s.trace = true;  // the offline replanner needs the edge schedule
      scenarios.push_back(std::move(s));
    }
  }
  for (const NodeId n : fig2_sizes) {
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = n;
    s.spec.start_nodes = {2, 3};
    s.spec.orientations = "cc";
    s.spec.max_rounds = 10 * n;
    s.spec.adversary.family = "fig2";
    s.spec.adversary.edge = 2;
    s.label = "figure-2 worst case";
    s.group = 1;
    s.trace = true;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ArtifactExtras price_of_liveness_enrich(const ArtifactScenario& scenario,
                                        const SweepRun& run) {
  const bool fig2 = scenario.spec.adversary.family == "fig2";
  if (!fig2 && !run.result.explored) return {};
  const NodeId n = scenario.spec.n;
  const Round horizon = fig2 ? 10 * n : run.result.rounds + 4 * n;
  const ring::EvolvingRing ring =
      fig2 ? ring::EvolvingRing::from_script(
                 n, adversary::make_fig2_script(n, 2), horizon)
           : ring::EvolvingRing::from_script(
                 n, sim::edge_schedule_of(run.trace), horizon);
  const ExplorationConfig cfg = build_config(scenario.spec);
  const Round offline = ring::offline_two_agent_exploration_time(
      ring, cfg.start_nodes[0], cfg.start_nodes[1], horizon);
  ArtifactExtras extras;
  extras.numbers["offline"] = offline;
  return extras;
}

std::string render_price_of_liveness(
    const std::vector<ArtifactScenario>& scenarios,
    const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  out << "=== Price of liveness: live exploration vs the offline "
         "optimum on the same schedule ===\n\n";

  util::Table table({"schedule", "n", "live algorithm", "live explored@",
                     "offline 2-agent optimum", "ratio"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ArtifactScenario& scenario = scenarios[i];
    const CampaignOutcome& live = rows[i]->outcome;
    const bool fig2 = scenario.group == 1;
    if (!fig2 && !live.explored) continue;
    const long long offline = stored_extra(*rows[i], "offline", 0);
    table.add_row(
        {scenario.label, std::to_string(scenario.spec.n), "KnownNNoChirality",
         std::to_string(live.explored_round), std::to_string(offline),
         offline > 0
             ? util::fmt_double(
                   static_cast<double>(live.explored_round) / offline, 2)
             : "-"});
  }
  table.print(out);
  out << "\nThe offline planner, knowing the schedule, explores in ~n/2..n "
         "rounds; the live agents pay up to 3n-6 on the same schedule — "
         "the gap is the information price the paper's live model "
         "isolates.\n";
  return out.str();
}

}  // namespace

// --- builders ----------------------------------------------------------------

Artifact make_table2_artifact(std::vector<NodeId> sizes, int seeds) {
  Artifact artifact;
  artifact.name = "table2_fsync";
  artifact.title = "Table 2: FSYNC possibility results (worst termination vs "
                   "the paper bounds)";
  artifact.report_file = "table2_fsync.md";
  artifact.scenarios = table2_scenarios(sizes, seeds);
  artifact.render = [sizes, seeds](
                        const std::vector<ArtifactScenario>& scenarios,
                        const std::vector<const CampaignRow*>& rows) {
    return render_table2(sizes, seeds, scenarios, rows);
  };
  return artifact;
}

Artifact make_table4_artifact(std::vector<NodeId> sizes, int seeds) {
  Artifact artifact;
  artifact.name = "table4_ssync";
  artifact.title = "Table 4: SSYNC possibility results (worst moves vs the "
                   "paper claims)";
  artifact.report_file = "table4_ssync.md";
  artifact.scenarios = table4_scenarios(sizes, seeds);
  artifact.render = [sizes, seeds](
                        const std::vector<ArtifactScenario>& scenarios,
                        const std::vector<const CampaignRow*>& rows) {
    return render_table4(sizes, seeds, scenarios, rows);
  };
  return artifact;
}

Artifact make_price_of_liveness_artifact(std::vector<NodeId> random_sizes,
                                         std::vector<NodeId> fig2_sizes,
                                         int seeds) {
  Artifact artifact;
  artifact.name = "price_of_liveness";
  artifact.title = "Price of liveness: live exploration vs the offline "
                   "optimum on the same schedule";
  artifact.report_file = "price_of_liveness.md";
  artifact.scenarios =
      price_of_liveness_scenarios(random_sizes, fig2_sizes, seeds);
  artifact.enrich = price_of_liveness_enrich;
  artifact.render = render_price_of_liveness;
  return artifact;
}

}  // namespace dring::core
