// Reproduces Figures 9, 10 and 11 of the paper: the ID-assignment worked
// examples and the direction schedule of an agent with ID = 1.
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the computation and formatting live in the
// "fig9_11_id_machinery" artifact — a pure-computation artifact with zero
// scenarios, whose committed examples/paper/fig9_11_id_machinery.md
// report is re-derived by CI (dring_artifact).  Output is byte-identical
// to the pre-migration bench; the exit status still reports whether every
// computed ID matches the paper.
#include <iostream>

#include "core/artifact.hpp"

int main() {
  using namespace dring;
  const core::Artifact artifact = core::make_fig9_11_artifact();
  const core::ArtifactDerivation derivation =
      core::derive(artifact, core::run_artifact_rows(artifact, 1));
  std::cout << derivation.report;
  return derivation.status;
}
