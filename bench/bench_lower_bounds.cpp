// Reproduces the paper's lower bounds by running the adversary schedules
// from the proofs against our (asymptotically optimal) algorithms:
// Observation 3 (2n-3 rounds via the Figure 2 schedule), Theorem 4 (the
// simultaneous ring family), Theorems 13/15 (the sliding-window adversary
// forcing Theta(n^2) moves).
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario grids, the adversary-shift counters
// and the formatting live in the "lower_bounds" artifact, whose campaign
// store also backs the committed examples/paper/lower_bounds.md report
// (dring_artifact).  Output is byte-identical to the pre-migration bench
// (pinned against a verbatim legacy replica in tests/artifact_test.cpp).
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const NodeId max_n = static_cast<NodeId>(cli.get_int("max-n", 48));
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact = core::make_lower_bounds_artifact(max_n);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
