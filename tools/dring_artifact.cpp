// Paper-artifact driver: run the campaigns behind the paper's tables and
// figures and (re)derive the committed reports under examples/paper/.
//
//   dring_artifact --list
//   dring_artifact --run NAME [--store s.jsonl] [--threads N] [--resume]
//       [--shard i/m]
//   dring_artifact --render NAME --store s.jsonl [--store ...] [--out FILE]
//   dring_artifact --regen [NAME] [--threads N] [--dir examples/paper]
//   dring_artifact --check [NAME] [--threads N] [--dir examples/paper]
//
// An artifact (core/artifact.hpp) is a fixed scenario list plus a
// byte-stable derivation: --run executes (a shard of) the scenarios with
// run_campaign store semantics (resume by fingerprint, canonical bytes,
// shards merge losslessly via `dring_campaign --merge`); --render derives
// the report from stores alone; --regen refreshes the committed report
// files; --check re-derives every committed report and fails on drift —
// the CI gate that keeps examples/paper/ honest.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/analysis.hpp"
#include "core/artifact.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_artifact",
                        "run paper-artifact campaigns and derive the "
                        "committed reports");
  flags.synopsis("dring_artifact --list | --names")
      .synopsis("dring_artifact --run NAME [--store s.jsonl] [--threads N]"
                " [--resume] [--shard i/m]")
      .synopsis("dring_artifact --render NAME --store s.jsonl [--store ...]"
                " [--out FILE]")
      .synopsis("dring_artifact --regen [NAME] [--threads N] [--dir DIR]")
      .synopsis("dring_artifact --check [NAME] [--threads N] [--dir DIR]")
      .flag("list", "", "print the full artifact registry (name, scenario "
                        "count, committed report, description)")
      .flag("names", "", "print one `name report_file` pair per registered "
                         "artifact (script-friendly; CI's registry check)")
      .flag("run", "NAME", "execute the artifact's scenarios")
      .flag("render", "NAME", "derive the report from --store rows only")
      .flag("regen", "[NAME]", "run + rewrite committed report(s) under --dir")
      .flag("check", "[NAME]", "run + diff against committed report(s); "
                               "exit 1 on drift")
      .flag("store", "FILE", "result store to write (--run) or read "
                             "(--render, repeatable)")
      .flag("out", "FILE", "write the rendered report here (default stdout)")
      .flag("dir", "DIR", "committed-report directory (default "
                          "examples/paper)")
      .flag("threads", "N", "worker threads (0 = all hardware threads)")
      .flag("resume", "", "skip scenarios whose fingerprint is stored")
      .flag("shard", "i/m", "run only cells with fingerprint % m == i");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("artifacts: run `dring_artifact --list`; stores are canonical "
            "JSONL (dring_campaign --merge/--diff work on them)");
  return flags;
}

/// `--flag NAME` value, rejecting the bare-boolean form.
std::string named_value(const util::Cli& cli, const std::string& flag) {
  const std::string value = cli.get(flag, "");
  return value == "true" ? "" : value;
}

int run_list(const std::string& dir) {
  util::Table table({"artifact", "scenarios", "committed report",
                     "description"});
  for (const core::Artifact& artifact : core::paper_artifacts())
    table.add_row({artifact.name, std::to_string(artifact.scenarios.size()),
                   dir + "/" + artifact.report_file, artifact.title});
  table.print(std::cout);
  std::cout << "\nstores: `--run NAME --store FILE` writes a canonical "
               "campaign store (schema v4, provenance-stamped); reports "
               "derive from stores alone (`--render`).\n";
  return 0;
}

int run_names() {
  for (const core::Artifact& artifact : core::paper_artifacts())
    std::cout << artifact.name << " " << artifact.report_file << "\n";
  return 0;
}

int run_run(const util::Cli& cli, const std::string& name) {
  const core::Artifact& artifact = core::artifact_by_name(name);
  core::ArtifactRunOptions options;
  options.threads = static_cast<int>(cli.get_int("threads", 0));
  options.store_path = cli.get("store", "");
  options.resume = cli.get_bool("resume", false);
  if (!util::parse_shard(cli.get("shard", ""), options.shard_index,
                         options.shard_count)) {
    std::cerr << "bad --shard (want i/m with 0 <= i < m): "
              << cli.get("shard", "") << "\n";
    return 2;
  }

  const core::ArtifactRunReport report = core::run_artifact(artifact, options);
  std::cout << "artifact '" << artifact.name << "': " << report.total
            << " scenarios, ";
  if (options.shard_count > 1)
    std::cout << report.sharded_out << " on other shards, ";
  std::cout << report.executed << " executed, " << report.skipped
            << " resumed from "
            << (options.store_path.empty() ? "(no store)" : options.store_path)
            << "\n";
  return 0;
}

int run_render(const util::Cli& cli, const std::string& name) {
  const core::Artifact& artifact = core::artifact_by_name(name);
  std::vector<std::string> stores = cli.get_all("store");
  for (const std::string& p : cli.positional()) stores.push_back(p);
  if (stores.empty()) {
    std::cerr << "--render needs at least one --store\n";
    return 2;
  }
  const std::string report =
      core::derive_report(artifact, core::load_result_stores(stores).rows);
  const std::string out_path = cli.get("out", "");
  if (out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    out << report;
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

/// The artifacts a --regen/--check invocation addresses: the named one, or
/// all of them.
std::vector<const core::Artifact*> selected(const std::string& name) {
  std::vector<const core::Artifact*> artifacts;
  if (name.empty()) {
    for (const core::Artifact& artifact : core::paper_artifacts())
      artifacts.push_back(&artifact);
  } else {
    artifacts.push_back(&core::artifact_by_name(name));
  }
  return artifacts;
}

int run_regen_or_check(const util::Cli& cli, const std::string& name,
                       bool check) {
  const std::string dir = cli.get("dir", "examples/paper");
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  int drifted = 0;
  for (const core::Artifact* artifact : selected(name)) {
    const std::string path = dir + "/" + artifact->report_file;
    const std::string derived = core::derive_report(
        *artifact, core::run_artifact_rows(*artifact, threads));
    if (check) {
      std::ifstream in(path);
      std::stringstream committed;
      committed << in.rdbuf();
      if (!in || committed.str() != derived) {
        std::cout << artifact->name << ": DRIFT vs " << path
                  << (in ? "" : " (missing)")
                  << " — regenerate with `dring_artifact --regen "
                  << artifact->name << "`\n";
        ++drifted;
      } else {
        std::cout << artifact->name << ": ok (" << path << ")\n";
      }
    } else {
      std::ofstream out(path, std::ios::trunc);
      out << derived;
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
      std::cout << artifact->name << ": wrote " << path << "\n";
    }
  }
  return drifted > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();

  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  try {
    if (cli.has("list")) return run_list(cli.get("dir", "examples/paper"));
    if (cli.has("names")) return run_names();
    if (cli.has("run")) return run_run(cli, named_value(cli, "run"));
    if (cli.has("render")) return run_render(cli, named_value(cli, "render"));
    if (cli.has("regen"))
      return run_regen_or_check(cli, named_value(cli, "regen"), false);
    if (cli.has("check"))
      return run_regen_or_check(cli, named_value(cli, "check"), true);
  } catch (const std::exception& e) {
    std::cerr << "dring_artifact: " << e.what() << "\n";
    return 1;
  }

  std::cerr << flags.help_text();
  return 2;
}
