#include "ring/dynamic_ring.hpp"

#include <cassert>
#include <stdexcept>

namespace dring::ring {

DynamicRing::DynamicRing(NodeId n, std::optional<NodeId> landmark)
    : n_(n), landmark_(landmark) {
  if (n < 3) throw std::invalid_argument("DynamicRing requires n >= 3");
  if (landmark_ && (*landmark_ < 0 || *landmark_ >= n))
    throw std::invalid_argument("landmark out of range");
  port_holder_.assign(static_cast<std::size_t>(n) * 2, std::nullopt);
}

NodeId DynamicRing::neighbour(NodeId v, GlobalDir d) const {
  assert(v >= 0 && v < n_);
  return d == GlobalDir::Ccw ? wrap(v + 1) : wrap(v - 1);
}

EdgeId DynamicRing::edge_from(NodeId v, GlobalDir d) const {
  assert(v >= 0 && v < n_);
  return d == GlobalDir::Ccw ? v : wrap(v - 1);
}

std::pair<NodeId, NodeId> DynamicRing::endpoints(EdgeId e) const {
  assert(e >= 0 && e < n_);
  return {e, wrap(e + 1)};
}

NodeId DynamicRing::distance(NodeId a, NodeId b, GlobalDir d) const {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_);
  return d == GlobalDir::Ccw ? wrap(b - a) : wrap(a - b);
}

bool DynamicRing::remove_edge(EdgeId e) {
  assert(e >= 0 && e < n_);
  if (missing_ && *missing_ != e) return false;  // 1-interval connectivity
  missing_ = e;
  return true;
}

void DynamicRing::restore_edges() { missing_.reset(); }

bool DynamicRing::edge_present(EdgeId e) const {
  assert(e >= 0 && e < n_);
  return !(missing_ && *missing_ == e);
}

std::size_t DynamicRing::port_index(const PortRef& p) const {
  assert(p.node >= 0 && p.node < n_);
  return static_cast<std::size_t>(p.node) * 2 +
         (p.side == GlobalDir::Ccw ? 0 : 1);
}

std::optional<AgentId> DynamicRing::port_holder(const PortRef& p) const {
  return port_holder_[port_index(p)];
}

bool DynamicRing::acquire_port(const PortRef& p, AgentId agent) {
  auto& holder = port_holder_[port_index(p)];
  if (holder && *holder != agent) return false;
  holder = agent;
  return true;
}

void DynamicRing::release_port(const PortRef& p, AgentId agent) {
  auto& holder = port_holder_[port_index(p)];
  if (holder && *holder == agent) holder.reset();
}

void DynamicRing::release_ports_of(AgentId agent) {
  for (auto& holder : port_holder_)
    if (holder && *holder == agent) holder.reset();
}

std::optional<PortRef> DynamicRing::port_of(AgentId agent) const {
  for (NodeId v = 0; v < n_; ++v) {
    for (GlobalDir d : {GlobalDir::Ccw, GlobalDir::Cw}) {
      const PortRef p{v, d};
      const auto holder = port_holder_[port_index(p)];
      if (holder && *holder == agent) return p;
    }
  }
  return std::nullopt;
}

}  // namespace dring::ring
