// Ablation studies for the design choices DESIGN.md calls out — not paper
// tables, but the natural "what if" questions around them: bound
// looseness (A), the unconscious guess policy (B), the sliding-window
// size parabola (C), determinism vs randomness (D).
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario matrix — including the hand-built
// engines behind run_custom (guess policies, random-walk brains) — lives
// in the "ablations" artifact, whose campaign store also backs the
// committed examples/paper/ablations.md report (dring_artifact).  Output
// is byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact = core::make_ablations_artifact(seeds);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
