#include "algo/registry.hpp"

#include <stdexcept>

#include "algo/et_unconscious.hpp"
#include "algo/known_n_no_chirality.hpp"
#include "algo/landmark_no_chirality.hpp"
#include "algo/landmark_with_chirality.hpp"
#include "algo/pt_two_agents.hpp"
#include "algo/three_agents_no_chirality.hpp"
#include "algo/unconscious_exploration.hpp"

namespace dring::algo {

const std::vector<AlgorithmInfo>& all_algorithms() {
  static const std::vector<AlgorithmInfo> kAll = {
      {AlgorithmId::KnownNNoChirality, "KnownNNoChirality", "Th. 3",
       sim::Model::FSYNC, 2, true, false, false, false, true, "3N-6 rounds"},
      {AlgorithmId::UnconsciousExploration, "UnconsciousExploration", "Th. 5",
       sim::Model::FSYNC, 2, false, false, false, false, false, "O(n) rounds"},
      {AlgorithmId::LandmarkWithChirality, "LandmarkWithChirality", "Th. 6",
       sim::Model::FSYNC, 2, false, false, true, true, true, "O(n) rounds"},
      {AlgorithmId::StartFromLandmarkNoChirality,
       "StartFromLandmarkNoChirality", "Th. 7", sim::Model::FSYNC, 2, false,
       false, true, false, true, "O(n log n) rounds"},
      {AlgorithmId::LandmarkNoChirality, "LandmarkNoChirality", "Th. 8",
       sim::Model::FSYNC, 2, false, false, true, false, true,
       "O(n log n) rounds"},
      {AlgorithmId::PTBoundWithChirality, "PTBoundWithChirality", "Th. 12",
       sim::Model::SSYNC_PT, 2, true, false, false, true, true,
       "O(N^2) moves"},
      {AlgorithmId::PTLandmarkWithChirality, "PTLandmarkWithChirality",
       "Th. 14", sim::Model::SSYNC_PT, 2, false, false, true, true, true,
       "O(n^2) moves"},
      {AlgorithmId::PTBoundNoChirality, "PTBoundNoChirality", "Th. 16",
       sim::Model::SSYNC_PT, 3, true, false, false, false, true,
       "O(N^2) moves"},
      {AlgorithmId::PTLandmarkNoChirality, "PTLandmarkNoChirality", "Th. 17",
       sim::Model::SSYNC_PT, 3, false, false, true, false, true,
       "O(n^2) moves"},
      {AlgorithmId::ETUnconscious, "ETUnconscious", "Th. 18",
       sim::Model::SSYNC_ET, 2, false, false, false, true, false,
       "unconscious"},
      {AlgorithmId::ETBoundNoChirality, "ETBoundNoChirality", "Th. 20",
       sim::Model::SSYNC_ET, 3, false, true, false, false, true,
       "finite (unbounded)"},
  };
  return kAll;
}

const AlgorithmInfo& info(AlgorithmId id) {
  for (const AlgorithmInfo& a : all_algorithms())
    if (a.id == id) return a;
  throw std::invalid_argument("unknown algorithm id");
}

const AlgorithmInfo& info_by_name(const std::string& name) {
  for (const AlgorithmInfo& a : all_algorithms())
    if (a.name == name) return a;
  throw std::invalid_argument("unknown algorithm: " + name);
}

std::unique_ptr<agent::Brain> make_brain(AlgorithmId id,
                                         agent::Knowledge knowledge) {
  const AlgorithmInfo& meta = info(id);
  if (meta.needs_upper_bound && !knowledge.has_upper_bound())
    throw std::invalid_argument(meta.name + " requires an upper bound N");
  if (meta.needs_exact_n && !knowledge.has_exact_n())
    throw std::invalid_argument(meta.name + " requires exact knowledge of n");

  switch (id) {
    case AlgorithmId::KnownNNoChirality:
      return std::make_unique<KnownNNoChirality>(knowledge);
    case AlgorithmId::UnconsciousExploration:
      return std::make_unique<UnconsciousExploration>();
    case AlgorithmId::LandmarkWithChirality:
      return std::make_unique<LandmarkWithChirality>();
    case AlgorithmId::StartFromLandmarkNoChirality:
      return std::make_unique<LandmarkNoChirality>(
          LandmarkNoChirality::Variant::StartAtLandmark);
    case AlgorithmId::LandmarkNoChirality:
      return std::make_unique<LandmarkNoChirality>(
          LandmarkNoChirality::Variant::ArbitraryStart);
    case AlgorithmId::PTBoundWithChirality:
      return std::make_unique<PTTwoAgents>(PTTwoAgents::Variant::KnownBound,
                                           knowledge);
    case AlgorithmId::PTLandmarkWithChirality:
      return std::make_unique<PTTwoAgents>(PTTwoAgents::Variant::Landmark,
                                           knowledge);
    case AlgorithmId::PTBoundNoChirality:
      return std::make_unique<ThreeAgentsNoChirality>(
          ThreeAgentsNoChirality::Variant::KnownBound, knowledge);
    case AlgorithmId::PTLandmarkNoChirality:
      return std::make_unique<ThreeAgentsNoChirality>(
          ThreeAgentsNoChirality::Variant::Landmark, knowledge);
    case AlgorithmId::ETUnconscious:
      return std::make_unique<ETUnconscious>();
    case AlgorithmId::ETBoundNoChirality:
      return std::make_unique<ThreeAgentsNoChirality>(
          ThreeAgentsNoChirality::Variant::EventualTransport, knowledge);
  }
  throw std::invalid_argument("unknown algorithm id");
}

}  // namespace dring::algo
