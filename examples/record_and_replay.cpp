// Record & replay workflow: capture a hostile execution, export it as
// CSV, recover the adversary's schedule, and replay it bit-for-bit — the
// debugging loop for investigating any surprising run.
//
//   ./record_and_replay [--n=10] [--seed=7] [--csv=trace.csv]
#include <fstream>
#include <iostream>

#include "adversary/basic_adversaries.hpp"
#include "core/runner.hpp"
#include "ring/evolving_ring.hpp"
#include "sim/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 10));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. Record a hostile run.
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::LandmarkWithChirality, n);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 10'000;
  adversary::TargetedRandomAdversary hostile(0.7, 1.0, seed);
  auto original = core::make_engine(cfg, &hostile);
  const sim::RunResult first = original->run(cfg.stop);
  std::cout << "recorded run:  explored@" << first.explored_round
            << ", rounds=" << first.rounds << ", moves=" << first.total_moves
            << ", terminated=" << first.terminated_agents << "/2\n";

  // 2. Export the trace as CSV.
  const std::string csv_path = cli.get("csv", "trace.csv");
  {
    std::ofstream out(csv_path);
    sim::write_trace_csv(original->trace(), out);
  }
  std::cout << "trace written: " << csv_path << " ("
            << original->trace().size() << " rounds)\n";

  // 3. Replay the exact schedule: identical outcome, guaranteed.
  sim::ReplayAdversary replay(original->trace());
  auto second = core::make_engine(cfg, &replay);
  const sim::RunResult again = second->run(cfg.stop);
  const bool identical = again.rounds == first.rounds &&
                         again.total_moves == first.total_moves &&
                         again.explored_round == first.explored_round;
  std::cout << "replayed run:  explored@" << again.explored_round
            << ", rounds=" << again.rounds << ", moves=" << again.total_moves
            << "  -> " << (identical ? "IDENTICAL" : "DIVERGED (bug!)")
            << "\n";

  // 4. Bonus: what would an omniscient planner have done on this very
  //    schedule?
  const auto evolving = ring::EvolvingRing::from_script(
      n, sim::edge_schedule_of(original->trace()), first.rounds + 4 * n);
  const Round offline = ring::offline_two_agent_exploration_time(
      evolving, cfg.start_nodes[0], cfg.start_nodes[1], first.rounds + 4 * n);
  std::cout << "offline optimum on the same schedule: " << offline
            << " rounds (live paid "
            << (offline > 0
                    ? util::fmt_double(
                          static_cast<double>(first.explored_round) / offline,
                          2)
                    : "-")
            << "x)\n";
  return identical ? 0 : 1;
}
