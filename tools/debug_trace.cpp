// Scratch debug driver: print a full trace of one scenario.
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"

using namespace dring;

namespace {

util::FlagTable flag_table() {
  util::FlagTable flags("debug_trace",
                        "print a full per-round trace of one scenario");
  flags.synopsis("debug_trace [--algo NAME] [--n N] [--seed S] [--rounds R]")
      .flag("algo", "NAME", "algorithm registry name (default "
                            "LandmarkNoChirality)")
      .flag("n", "N", "ring size (default 5)")
      .flag("seed", "S", "0 = static, 1 = block-agent, else targeted-random "
                         "(default 1)")
      .flag("rounds", "R", "round cap (default 60)")
      .flag("help", "", "print this help")
      .note("scratch tool: trace lines are `r<round> miss=<edge> | "
            "a<id>@<node>[/port] <state>`");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }

  const NodeId n = static_cast<NodeId>(cli.get_int("n", 5));
  const int seed = static_cast<int>(cli.get_int("seed", 1));
  const Round max_rounds = cli.get_int("rounds", 60);
  const std::string algo_name = cli.get("algo", "LandmarkNoChirality");

  core::ExplorationConfig cfg =
      core::default_config(algo::info_by_name(algo_name).id, n);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = max_rounds;
  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else if (seed == 1) {
    adv = std::make_unique<adversary::BlockAgentAdversary>(0);
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0,
                                                               1000 * n + seed);
  }
  auto engine = core::make_engine(cfg, adv.get());
  const sim::RunResult r = engine->run(cfg.stop);

  for (const sim::RoundTrace& rt : engine->trace()) {
    std::cout << "r" << rt.round << " miss="
              << (rt.missing ? std::to_string(*rt.missing) : "-") << " ";
    for (const auto& at : rt.agents) {
      std::cout << " | a" << at.id << "@" << at.node
                << (at.on_port
                        ? (at.port_side == GlobalDir::Ccw ? "/ccw" : "/cw")
                        : "")
                << " " << at.state << (at.active ? "" : " zz")
                << (at.terminated ? " TERM" : "");
    }
    std::cout << "\n";
  }
  std::cout << "explored=" << r.explored << " @" << r.explored_round
            << " premature=" << r.premature_termination
            << " terminated=" << r.terminated_agents << "\n";
  return 0;
}
