// Reproduces the paper's lower bounds by running the adversary schedules
// from the proofs against our (asymptotically optimal) algorithms:
//
//   * Observation 3: exploration by two agents needs >= 2n-3 rounds in the
//     worst case — the Figure 2 schedule forces 3n-6 >= 2n-3.
//   * Theorem 4: partial termination with an upper bound N needs >= N-1
//     rounds — the simultaneous-ring-family argument: on static rings of
//     every size 3..N the termination round is identical, and coverage at
//     round N-2 on the largest ring is still incomplete.
//   * Theorem 13: Omega(N*n) moves in PT with chirality and bound N — the
//     sliding-window adversary forces ~x*(N-x) moves (x = n/2).
//   * Theorem 15: Omega(n^2) moves in PT with chirality and a landmark.
//
// Each section's scenarios run on the worker pool (--threads=N); rows are
// folded in task order, so output is byte-identical for any thread count.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const NodeId max_n = static_cast<NodeId>(cli.get_int("max-n", 48));
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));

  // --- Observation 3 ---------------------------------------------------------
  std::cout << "=== Observation 3: time lower bound 2n-3 (FSYNC, 2 agents) "
               "===\n\n";
  {
    util::Table t({"n", "lower bound 2n-3", "forced rounds (Fig. 2 schedule)",
                   "ratio"});
    std::vector<core::ScenarioTask> tasks;
    std::vector<NodeId> sizes;
    for (NodeId n : {8, 16, 32}) {
      if (n > max_n) continue;
      core::ScenarioTask task;
      task.cfg =
          core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.start_nodes = {2, 3};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * n;
      task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::ScriptedEdgeAdversary>(
            adversary::make_fig2_script(n, 2));
      };
      tasks.push_back(std::move(task));
      sizes.push_back(n);
    }
    const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId n = sizes[i];
      const sim::RunResult& r = results[i];
      t.add_row({std::to_string(n), std::to_string(2 * n - 3),
                 std::to_string(r.explored_round),
                 util::fmt_double(static_cast<double>(r.explored_round) /
                                      (2 * n - 3),
                                  2)});
    }
    t.print(std::cout);
  }

  // --- Theorem 4 --------------------------------------------------------------
  std::cout << "\n=== Theorem 4: termination needs >= N-1 rounds "
               "(simultaneous ring family) ===\n\n";
  {
    const NodeId N = std::min<NodeId>(16, max_n);
    util::Table t({"ring size n", "termination round", "explored by then?"});
    std::vector<core::ScenarioTask> tasks;
    for (NodeId n = 3; n <= N; ++n) {
      core::ScenarioTask task;
      task.cfg =
          core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.upper_bound = N;
      task.cfg.start_nodes = {0, 1};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * N;
      tasks.push_back(std::move(task));  // no adversary = NullAdversary
    }
    const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);
    Round common_term = -1;
    bool identical = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId n = static_cast<NodeId>(3 + i);
      const sim::RunResult& r = results[i];
      const Round term = r.agents[0].termination_round;
      if (common_term < 0) common_term = term;
      identical = identical && term == common_term;
      t.add_row({std::to_string(n), std::to_string(term),
                 r.explored ? "yes" : "NO (would be incorrect!)"});
    }
    t.print(std::cout);
    std::cout << "\nOn a static ring all executions are indistinguishable: "
              << (identical ? "termination rounds are identical across the "
                              "whole family (as Theorem 4's argument needs), "
                              "and they exceed N-1 = " +
                                  std::to_string(N - 1) + "."
                            : "MISMATCH — executions diverged!")
              << "\n";
  }

  // --- Theorems 13 and 15 ------------------------------------------------------
  std::cout << "\n=== Theorems 13/15: Omega(N*n) / Omega(n^2) moves in PT "
               "(sliding-window adversary) ===\n\n";
  {
    util::Table t({"variant", "n", "x", "x*(N-x)", "forced moves", "ratio",
                   "window shifts", "terminated"});
    struct Case {
      bool landmark;
      NodeId n;
    };
    std::vector<core::ScenarioTask> tasks;
    std::vector<Case> cases;
    for (const bool landmark : {false, true}) {
      for (NodeId n : {8, 12, 16, 24, 32, 48}) {
        if (n > max_n) continue;
        tasks.emplace_back();
        cases.push_back({landmark, n});
      }
    }
    // The sliding-window adversary is interrogated after the run (its
    // shift count is a table column), which the factory path cannot
    // express — run_custom builds the adversary in the worker and parks
    // the count in a per-task slot.
    std::vector<long long> shifts(tasks.size(), 0);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto [landmark, n] = cases[i];
      const NodeId x = n / 2;
      core::ExplorationConfig cfg = core::default_config(
          landmark ? algo::AlgorithmId::PTLandmarkWithChirality
                   : algo::AlgorithmId::PTBoundWithChirality,
          n);
      if (landmark) cfg.landmark = 1;
      cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
      cfg.orientations = {agent::kChiralOrientation,
                          agent::kChiralOrientation};
      cfg.engine.fairness_window = 1 << 20;
      cfg.stop.max_rounds = 400'000LL + 2000LL * n * n;
      cfg.stop.stop_when_explored_and_one_terminated = true;
      tasks[i].run_custom = [cfg, i, &shifts]() {
        adversary::SlidingWindowAdversary adv(0, 1);
        const sim::RunResult r = core::run_exploration(cfg, &adv);
        shifts[i] = adv.shifts();
        return r;
      };
    }
    const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto [landmark, n] = cases[i];
      const NodeId x = n / 2;
      const sim::RunResult& r = results[i];
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({landmark ? "landmark (Th. 15)" : "bound N=n (Th. 13)",
                 std::to_string(n), std::to_string(x),
                 util::fmt_count(ref), util::fmt_count(r.total_moves),
                 util::fmt_double(static_cast<double>(r.total_moves) / ref,
                                  2),
                 std::to_string(shifts[i]),
                 std::to_string(r.terminated_agents) + "/2"});
    }
    t.print(std::cout);
    std::cout << "\nThe forced move count scales as x*(N-x) = Theta(n^2) "
                 "with a constant >= 1, exactly the Omega(N*n) / Omega(n^2) "
                 "shape; only one agent ever terminates (the pinned leader "
                 "waits forever), matching Theorem 11.\n";
  }
  return 0;
}
