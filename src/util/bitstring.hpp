// Bit-string helpers for the ID machinery of Section 3.2.3 of the paper.
//
// The no-chirality algorithms derive agent IDs by interleaving the binary
// representations of three counters (k1, k2, k3), then expand the ID into a
// per-phase direction schedule via S(ID) = "10" + b(ID) + "0" and character
// duplication Dup(S, k).  These operations are kept here as pure functions
// over std::string bit strings ("0"/"1" characters) so they can be unit
// tested against the worked examples in Figures 9, 10 and 11 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dring::util {

/// Word-packed bitset with an explicit test-and-set, used by the batched
/// engine as a flat visited-node arena across lanes (std::vector<bool>
/// cannot be cheaply range-cleared or shared at word granularity).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits) { resize(bits); }

  /// Grow or shrink to `bits`; newly exposed bits are zero.
  void resize(std::size_t bits);
  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  /// Set bit `i`; returns true iff it was previously clear.
  bool test_and_set(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool fresh = (w & mask) == 0;
    w |= mask;
    return fresh;
  }

  /// Clear bits [begin, end).
  void reset_range(std::size_t begin, std::size_t end);
  /// Number of set bits.
  std::size_t count() const;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Minimal binary representation of `v` (MSB first). b(0) == "0".
std::string to_binary(std::uint64_t v);

/// Parse an MSB-first bit string into a number. Accepts leading zeros.
/// Empty strings parse to 0.
std::uint64_t from_binary(const std::string& bits);

/// Left-pad `bits` with '0' up to `width` characters. If `bits` is already
/// at least `width` long it is returned unchanged.
std::string pad_left(const std::string& bits, std::size_t width);

/// Interleave three equal-length bit strings a,b,c MSB-first:
/// result = a0 b0 c0 a1 b1 c1 ...  Inputs of different lengths are first
/// left-padded with zeros to the longest length (paper, Section 3.2.3:
/// "Each ki string of bits is padded by a prefix 0 until its length is
/// equal to the biggest of the three").
std::string interleave3(const std::string& a, const std::string& b,
                        const std::string& c);

/// Compute the paper's agent ID from counters k1,k2,k3: interleave the
/// padded binary representations and read the result as a binary number
/// (leading zeros are ignored by the numeric conversion, as in Figure 9).
std::uint64_t interleaved_id(std::uint64_t k1, std::uint64_t k2,
                             std::uint64_t k3);

/// Dup(S, k): repeat every character of S `k` times.
/// Dup("1010", 2) == "11001100".
std::string dup(const std::string& s, std::size_t k);

}  // namespace dring::util
