// Private orientation of an agent (paper, Section 2.1: the function
// lambda_j that consistently designates ports as "left"/"right").
//
// An orientation maps the agent's local Dir onto the simulator's GlobalDir.
// With chirality, every agent is constructed with the same orientation; in
// the no-chirality setting the adversary (or a test) assigns them.
#pragma once

#include "ring/types.hpp"

namespace dring::agent {

/// Agent-private orientation: which global direction its "left" points to.
struct Orientation {
  GlobalDir left = GlobalDir::Ccw;

  GlobalDir to_global(Dir d) const {
    return d == Dir::Left ? left : opposite(left);
  }

  Dir to_local(GlobalDir g) const {
    return g == left ? Dir::Left : Dir::Right;
  }

  friend constexpr bool operator==(const Orientation&, const Orientation&) =
      default;
};

/// Canonical orientation used when chirality holds: left == Ccw.
inline constexpr Orientation kChiralOrientation{GlobalDir::Ccw};

/// The mirrored orientation: left == Cw.
inline constexpr Orientation kMirroredOrientation{GlobalDir::Cw};

}  // namespace dring::agent
