// T-interval connectivity (Kuhn–Lynch–Oshman), the first follow-up model
// axis beyond the paper's 1-interval ring: every window of T consecutive
// rounds must admit one stable connected spanning subgraph.
//
// On a ring with at most one missing edge per round this has an exact
// characterisation: two rounds that miss *different* edges must be at least
// T rounds apart (a window containing both would have to exclude both edges
// and the ring minus two edges is disconnected).  T = 1 places no
// constraint beyond "one edge per round" — exactly the paper's model.
//
// TIntervalAdversary is a decorator enforcing that invariant over any inner
// adversary: the inner adversary is consulted every round, and a removal
// request that would switch the missing edge too early is downgraded to
// "no removal" (the previously stable spanning path survives untouched and
// the switch becomes legal once T-1 clean rounds have elapsed).  Requests
// for the currently-held edge extend the hold.  Activation choices,
// tie-breaking and the capability flags are forwarded verbatim, so with
// T = 1 the decorator is an exact pass-through (pinned bit-for-bit against
// the golden digests).
//
// The enforcement is adversary-side: it constrains what the adversary
// *requests*.  Engine-side interventions (the ET veto) only ever cancel a
// removal, which cannot violate interval connectivity.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/adversary.hpp"

namespace dring::adversary {

class TIntervalAdversary : public sim::Adversary {
 public:
  /// `interval`: the T of T-interval connectivity (>= 1).  `inner` is the
  /// wrapped adversary whose removal requests are filtered (may be null:
  /// behaves like NullAdversary).
  TIntervalAdversary(Round interval, std::unique_ptr<sim::Adversary> inner);

  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  void order_port_contenders(const sim::WorldView& view, PortRef port,
                             std::vector<AgentId>& contenders) override;
  bool observes_intents() const override;
  bool reorders_contenders() const override;
  std::string name() const override;
  void report_metrics(
      std::map<std::string, long long>& metrics) const override {
    if (inner_) inner_->report_metrics(metrics);
  }

  /// Removal requests downgraded to "no removal" by the interval guard.
  long long vetoes() const { return vetoes_; }

 private:
  Round interval_;
  std::unique_ptr<sim::Adversary> inner_;
  std::optional<EdgeId> held_;  ///< most recently missing edge
  Round held_round_ = 0;        ///< last round held_ was missing
  long long vetoes_ = 0;
};

}  // namespace dring::adversary
