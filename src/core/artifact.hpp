// Paper artifacts: the declarative layer that turns campaign stores into
// the paper's tables and figures.
//
// Until PR 4 the headline results (Table 2/4 possibility, the
// price-of-liveness figure) were produced by bespoke bench binaries with
// hand-rolled scenario loops and formatting, while the campaign subsystem
// (core/campaign.hpp) and analytics (core/analysis.hpp) already provided
// exactly the needed machinery: declarative scenario specs, a canonical
// sharded JSONL store, byte-stable derivation.  An Artifact is the glue —
// one named unit of:
//
//   * a fixed scenario list (ScenarioSpecs with explicit seeds, matching
//     the legacy bench grids cell for cell);
//   * an optional per-run enrichment hook that computes extra metrics
//     from the traced execution (e.g. the offline optimum a
//     price-of-liveness row needs) and persists them in the store row;
//   * a byte-stable renderer from store rows to the committed report.
//
// Execution rides run_sweep with run_campaign semantics (resume by
// fingerprint, --shard i/m partitioning, canonical store bytes), so an
// artifact's campaign can run across machines and merge losslessly; the
// derivation is a pure function of the store, so committed reports under
// examples/paper/ re-derive byte-identically in CI (dring_artifact
// --check).  The migrated bench binaries are thin shims: build the
// artifact, run it in-memory, print the derived report — their stdout is
// byte-identical to the pre-migration output (pinned by
// tests/artifact_test.cpp).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dring::core {

/// One cell of an artifact's scenario list: the spec plus the display
/// identity its renderer needs (row label, table-section index).
struct ArtifactScenario {
  ScenarioSpec spec;
  std::string label;  ///< renderer row label (e.g. "targeted-random#3")
  int group = 0;      ///< renderer-defined section (e.g. table row index)
};

/// A named paper artifact.
struct Artifact {
  std::string name;         ///< CLI identity (e.g. "table2_fsync")
  std::string title;        ///< one-line description for --list
  std::string report_file;  ///< file name under the artifact directory
  std::vector<ArtifactScenario> scenarios;
  /// Optional post-run enrichment: extra per-run metrics computed from the
  /// traced execution, persisted in the row ("extra" store member).  When
  /// set, the artifact executes on run_sweep_traced.  Must be a pure
  /// function of (scenario, run) — store bytes stay deterministic.
  std::function<std::map<std::string, long long>(const ArtifactScenario&,
                                                 const SweepRun&)>
      enrich;
  /// Derive the report from rows positionally parallel to `scenarios`.
  std::function<std::string(const std::vector<ArtifactScenario>&,
                            const std::vector<const CampaignRow*>&)>
      render;
};

// --- the registry -----------------------------------------------------------

/// Every paper artifact at its paper-default grid, in a stable order.
const std::vector<Artifact>& paper_artifacts();

/// Lookup by name; throws std::invalid_argument listing the valid names.
const Artifact& artifact_by_name(const std::string& name);

// --- parameterized builders (tests, bench --seeds/--max-n flags) ------------

/// Table 2 (FSYNC possibility): per theorem row, sweep `sizes` under
/// static / obs1-block / targeted-random adversaries (`seeds` randomized
/// runs per size) plus the exact Figure 2 worst case, and report the worst
/// measured termination round against the paper bound.
Artifact make_table2_artifact(std::vector<NodeId> sizes, int seeds);

/// Table 4 (SSYNC possibility): per theorem row, sweep `sizes` under
/// hostile randomized dynamics and — for the 2-agent PT rows — the
/// sliding-window move-forcing adversary, and report the worst measured
/// move count against the paper's asymptotic claim.
Artifact make_table4_artifact(std::vector<NodeId> sizes, int seeds);

/// Price of liveness: live exploration versus the offline optimum on the
/// same schedule (targeted-random schedules over `random_sizes`, `seeds`
/// each, plus the Figure 2 worst case over `fig2_sizes`).  The offline
/// optimum is computed at run time from the recorded trace (enrich hook)
/// and persisted, so the report derives from the store alone.
Artifact make_price_of_liveness_artifact(std::vector<NodeId> random_sizes,
                                         std::vector<NodeId> fig2_sizes,
                                         int seeds);

// --- execution --------------------------------------------------------------

/// Execution knobs (run_campaign semantics over the scenario list).
struct ArtifactRunOptions {
  int threads = 0;
  std::string store_path;  ///< empty = no store
  bool resume = false;     ///< skip fingerprints already stored
  int shard_index = 0;
  int shard_count = 1;
};

struct ArtifactRunReport {
  std::size_t total = 0;
  std::size_t sharded_out = 0;
  std::size_t skipped = 0;
  std::size_t executed = 0;
  std::vector<CampaignRow> rows;  ///< executed rows, scenario order
};

/// Run (a shard of) the artifact's scenarios and maintain its store.
ArtifactRunReport run_artifact(const Artifact& artifact,
                               const ArtifactRunOptions& options);

/// Execute every scenario in-memory (no store); rows in scenario order.
std::vector<CampaignRow> run_artifact_rows(const Artifact& artifact,
                                           int threads);

/// Derive the committed report from store rows: every scenario fingerprint
/// must be present (rows from other campaigns sharing the store are
/// ignored); throws std::runtime_error naming the artifact and the number
/// of missing rows otherwise.
std::string derive_report(const Artifact& artifact,
                          const std::vector<CampaignRow>& rows);

}  // namespace dring::core
