// Algorithms PTBoundNoChirality (paper, Figure 18 / Theorem 16),
// PTLandmarkNoChirality (Theorem 17) and ETBoundNoChirality (Theorem 20).
//
// SSYNC, three anonymous agents, NO chirality.  Explores with strong
// partial termination (one agent always explicitly terminates, the others
// terminate or wait perpetually on a port) in O(N^2) edge traversals.
//
// Agents bounce only when catching another agent waiting on a missing edge
// ("zig-zag tour").  Each agent maintains the distance d travelled between
// direction changes; whenever a new leg is not strictly longer than the
// previous one the agents must have pinned each other against the missing
// edge and the ring is explored:
//
//   Init:     Explore(left | DONE: Terminate; catches: Bounce)
//   Bounce:   CheckD(Esteps)
//             Explore(right | DONE: Terminate; meeting: MeetingB;
//                             catches: Reverse)
//   Reverse:  if d = 0 then d <- Esteps else CheckD(Esteps)
//             Explore(left | DONE: Terminate; meeting: MeetingR;
//                            catches: Bounce)
//   MeetingR: if Esteps <= d then Terminate
//             ExploreNoResetEsteps(left | DONE: Terminate; catches: Bounce)
//   MeetingB: symmetric, direction right, catches -> Reverse
//   CheckD(x): if d > 0 { if x <= d: Terminate else d <- x }
//
// Variants:
//   * KnownBound (PT):  DONE = "Tnodes >= N" (upper bound N known);
//   * Landmark  (PT):   DONE = "n is known" (loop around the landmark);
//   * EventualTransport: exact n known; DONE = "Tnodes >= n"; CheckD and
//     the Meeting check use the strict inequality (Esteps < d).  The paper
//     phrases this as "N is set to n-1" while counting traversed edges;
//     with Tnodes counting *nodes* the equivalent threshold is n
//     (DESIGN.md, D9).
#pragma once

#include "agent/explore_base.hpp"

namespace dring::algo {

class ThreeAgentsNoChirality final
    : public agent::CloneableMachine<ThreeAgentsNoChirality> {
 public:
  enum State : int { Init, Bounce, Reverse, MeetingR, MeetingB };
  enum class Variant {
    KnownBound,         ///< PTBoundNoChirality (needs upper_bound)
    Landmark,           ///< PTLandmarkNoChirality
    EventualTransport,  ///< ETBoundNoChirality (needs exact_n)
  };

  ThreeAgentsNoChirality(Variant variant, agent::Knowledge k);

  std::string algorithm_name() const override;

  std::int64_t d() const { return d_; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  void enter_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int state) const override;

 private:
  bool done() const;
  void check_d(std::int64_t x);
  /// Strict in ET ("Esteps < d"), non-strict in PT ("Esteps <= d").
  bool leg_too_short(std::int64_t x) const {
    return variant_ == Variant::EventualTransport ? x < d_ : x <= d_;
  }

  Variant variant_;
  std::int64_t threshold_ = -1;  ///< N (bound) or n (ET); -1 for landmark
  std::int64_t d_ = 0;
  bool want_terminate_ = false;
};

}  // namespace dring::algo
