// Campaign driver: expand a declarative campaign spec, run it on the
// worker pool, and persist one JSON line per scenario in the result store.
//
//   dring_campaign --spec examples/campaign_smoke.json \
//       [--out results.jsonl] [--threads N] [--resume] [--dry-run] \
//       [--shard i/m]
//   dring_campaign --merge a.jsonl b.jsonl ... --out merged.jsonl
//   dring_campaign --diff old.jsonl new.jsonl
//
// The store is canonical JSONL (lines sorted by fingerprint): bytes are
// identical for any --threads value and for any shard split.  --shard i/m
// runs only the cells whose fingerprint lands on shard i of m, so a
// campaign can run on m processes/machines; --merge unions the partial
// stores losslessly (conflicting payloads for one fingerprint are an
// error).  Re-running with --resume executes only scenarios whose
// fingerprint is not yet stored, and --diff compares two stores row by
// row (the cross-commit regression workflow), reporting rows present in
// only one store separately from rows whose payload changed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/campaign.hpp"
#include "core/orchestrate.hpp"
#include "core/query.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <optional>

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_campaign",
                        "expand and run declarative scenario campaigns into "
                        "canonical JSONL result stores");
  flags.synopsis("dring_campaign --spec campaign.json [--out s.jsonl]"
                 " [--threads N] [--resume] [--dry-run] [--shard i/m]")
      .synopsis("dring_campaign --merge a.jsonl b.jsonl ... --out merged.jsonl")
      .synopsis("dring_campaign --diff old.jsonl new.jsonl")
      .flag("spec", "FILE", "campaign definition to expand and run")
      .flag("out", "FILE", "result store to write")
      .flag("threads", "N", "worker threads (0 = all hardware threads)")
      .flag("batch", "W", "batched lockstep lanes per worker thread "
                          "(0 = scalar engine; store bytes are identical "
                          "either way)")
      .flag("resume", "", "run only scenarios missing from the store")
      .flag("dry-run", "", "print the shard's scenario list, fingerprint "
                           "range and store path; run nothing")
      .flag("shard", "i/m", "run only cells with fingerprint % m == i")
      .flag("progress", "FILE", "heartbeat file rewritten as \"done total\" "
                                "after every cell (liveness for "
                                "dring_orchestrate)")
      .flag("merge", "FILE", "union partial stores losslessly (conflicts "
                             "are an error)")
      .flag("diff", "FILE", "compare two stores row by row")
      .flag("telemetry", "", "write metrics + event-log sidecars next to "
                             "the store (<out>.metrics.json, "
                             "<out>.events.jsonl); store bytes unchanged")
      .flag("stream-aggregate", "AXES", "fold an aggregate over the given "
                                        "comma-separated group axes at "
                                        "task-completion time and print it "
                                        "after the run; without --out the "
                                        "rows are never materialized "
                                        "(Monte-Carlo-scale mode)")
      .flag("metric", "NAME", "metric for --stream-aggregate: "
                              "explored_round (default), rounds, moves");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("stores are canonical JSONL: bytes identical for any --threads "
            "and any shard split, and for --telemetry on or off (see "
            "README \"Campaign subsystem\")")
      .note("env " + std::string(dring::core::kFaultInjectEnv) +
            "=crash:p,hang:p,trunc:p (+ _SEED, _ATTEMPT) arms the "
            "deterministic fault-injection harness (CI / orchestrator "
            "testing only)");
  return flags;
}

/// Paths given as a flag value and/or positionals (`--diff a b`,
/// `--merge=a b c`).
std::vector<std::string> flag_paths(const util::Cli& cli,
                                    const std::string& flag) {
  std::vector<std::string> paths;
  const std::string value = cli.get(flag, "");
  if (!value.empty() && value != "true" && value != "1")
    paths.push_back(value);
  for (const std::string& p : cli.positional()) paths.push_back(p);
  return paths;
}

/// Read every store, or fail with a clean diagnostic (bad path, malformed
/// line, schema-version mismatch).
bool read_stores(const std::vector<std::string>& paths,
                 std::vector<core::ResultStore>& stores) {
  for (const std::string& path : paths) {
    try {
      stores.push_back(core::read_result_store_file(path));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return false;
    }
  }
  return true;
}

int run_diff(const std::vector<std::string>& paths) {
  if (paths.size() != 2) {
    std::cerr << "--diff needs exactly two store paths\n";
    return 2;
  }
  std::vector<core::ResultStore> stores;
  if (!read_stores(paths, stores)) return 2;
  // Unlike --merge, --diff welcomes cross-provenance inputs — comparing
  // the stores of two engine versions is its job — but says so up front.
  if (!(stores[0].provenance == stores[1].provenance))
    std::cout << "provenance differs: " << describe(stores[0].provenance)
              << " vs " << describe(stores[1].provenance) << "\n";
  const core::StoreDiff diff =
      core::diff_result_stores(stores[0].rows, stores[1].rows);
  std::cout << "only in " << paths[0] << ": " << diff.only_a.size()
            << "\nonly in " << paths[1] << ": " << diff.only_b.size()
            << "\nchanged payloads: " << diff.changed.size() << "\n";
  for (const core::CampaignRow& row : diff.only_a)
    std::cout << "  < " << core::to_json(row.spec).dump() << "\n";
  for (const core::CampaignRow& row : diff.only_b)
    std::cout << "  > " << core::to_json(row.spec).dump() << "\n";
  for (const auto& [a, b] : diff.changed) {
    std::cout << "  " << core::to_json(a.spec).dump() << "\n    - "
              << core::to_json(a).at("result").dump() << "\n    + "
              << core::to_json(b).at("result").dump() << "\n";
    if (core::to_json(a.spec).dump() != core::to_json(b.spec).dump())
      std::cout << "    spec differs: " << core::to_json(b.spec).dump()
                << "\n";
  }
  return diff.identical() ? 0 : 1;
}

int run_merge(const std::vector<std::string>& paths,
              const std::string& out_path) {
  if (paths.size() < 2) {
    std::cerr << "--merge needs at least two store paths\n";
    return 2;
  }
  std::vector<core::ResultStore> stores;
  if (!read_stores(paths, stores)) return 2;
  core::StoreMerge merge;
  try {
    merge = core::merge_result_stores(stores);
  } catch (const std::exception& e) {
    std::cerr << "merge failed: " << e.what() << "\n";
    return 1;
  }
  if (!merge.ok()) {
    std::cerr << "merge conflict: " << merge.conflicts.size()
              << " fingerprint(s) carry different payloads\n";
    for (const auto& [kept, clashing] : merge.conflicts)
      std::cerr << "  " << core::hex_u64(kept.fingerprint) << "\n    - "
                << core::to_json(kept).at("result").dump() << "\n    + "
                << core::to_json(clashing).at("result").dump() << "\n";
    return 1;
  }
  if (out_path.empty()) {
    std::cout << core::provenance_line(merge.provenance) << "\n";
    for (const core::CampaignRow& row : merge.rows)
      std::cout << core::row_line(row) << "\n";
  } else {
    core::ResultStore out;
    out.provenance = merge.provenance;
    out.rows = merge.rows;
    const std::size_t row_count = out.rows.size();
    core::write_result_store(out_path, std::move(out));
    std::cout << "merged " << paths.size() << " stores, " << row_count
              << " rows -> " << out_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();

  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  if (cli.has("diff")) return run_diff(flag_paths(cli, "diff"));
  if (cli.has("merge"))
    return run_merge(flag_paths(cli, "merge"), cli.get("out", ""));

  const std::string spec_path = cli.get("spec", "");
  if (spec_path.empty()) {
    std::cerr << flags.help_text();
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "cannot open spec: " << spec_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  core::CampaignSpec campaign;
  try {
    campaign = core::campaign_spec_from_json(util::Json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::cerr << spec_path << ": " << e.what() << "\n";
    return 2;
  }

  core::CampaignOptions options;
  options.threads = static_cast<int>(cli.get_int("threads", 0));
  options.batch_width = static_cast<int>(cli.get_int("batch", 0));
  options.out_path = cli.get("out", "");
  options.resume = cli.get_bool("resume", false);
  if (!util::parse_shard(cli.get("shard", ""), options.shard_index,
                         options.shard_count)) {
    std::cerr << "bad --shard (want i/m with 0 <= i < m): "
              << cli.get("shard", "") << "\n";
    return 2;
  }
  options.progress_path = cli.get("progress", "");

  // Streaming aggregation: fold rows cell-group by cell-group as tasks
  // complete.  Without --out the rows are discarded right after the fold,
  // so the run's memory stays O(workers) however large the grid.
  std::optional<core::StreamingAggregator> stream;
  if (cli.has("stream-aggregate")) {
    const std::string axes_arg = cli.get("stream-aggregate", "");
    std::vector<std::string> axes;
    if (axes_arg != "true" && axes_arg != "1") {
      std::string current;
      for (const char c : axes_arg + ",") {
        if (c == ',') {
          if (!current.empty()) axes.push_back(current);
          current.clear();
        } else {
          current += c;
        }
      }
    }
    try {
      stream.emplace(axes,
                     core::metric_from_string(
                         cli.get("metric", "explored_round")));
    } catch (const std::exception& e) {
      std::cerr << "bad --stream-aggregate: " << e.what() << "\n";
      return 2;
    }
    options.stream = &*stream;
  }

  if (cli.get_bool("telemetry", false)) {
    if (options.out_path.empty()) {
      std::cerr << "--telemetry needs --out (sidecars live next to the "
                   "store)\n";
      return 2;
    }
    try {
      core::telemetry().enable(options.out_path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  // Deterministic fault-injection harness (orchestrator/CI testing): the
  // DRING_FAULT_* env vars arm a crash / hang / torn-store fault for this
  // attempt, drawn purely from (seed, shard, attempt) — see
  // core/orchestrate.hpp.  Crash and hang fire mid-sweep (after half the
  // cells) so the failure happens while work is in flight; trunc fires
  // after the store write, simulating output torn in transit.
  core::FaultKind fault = core::FaultKind::None;
  int fault_attempt = 1;
  if (const char* inject = std::getenv(core::kFaultInjectEnv);
      inject && *inject) {
    std::uint64_t fault_seed = 0;
    if (const char* s = std::getenv(core::kFaultSeedEnv))
      fault_seed = std::strtoull(s, nullptr, 0);
    if (const char* a = std::getenv(core::kFaultAttemptEnv))
      fault_attempt = std::atoi(a);
    core::FaultPlan plan;
    try {
      plan = core::parse_fault_plan(inject, fault_seed);
    } catch (const std::exception& e) {
      std::cerr << "bad " << core::kFaultInjectEnv << ": " << e.what() << "\n";
      return 2;
    }
    fault = core::fault_draw(
        plan, static_cast<std::uint64_t>(options.shard_index), fault_attempt);
    if (fault != core::FaultKind::None)
      core::log_line(core::LogLevel::kInfo,
                     "fault injection armed: " +
                         std::string(core::to_string(fault)) + " (shard " +
                         std::to_string(options.shard_index) + ", attempt " +
                         std::to_string(fault_attempt) + ")");
    if (fault == core::FaultKind::Crash || fault == core::FaultKind::Hang) {
      const bool hang = fault == core::FaultKind::Hang;
      options.on_progress = [hang](std::size_t done, std::size_t total) {
        if (done < std::max<std::size_t>(1, total / 2)) return;
        if (hang) {
          // Stop making progress without exiting: the heartbeat goes
          // stale and the supervisor must notice and kill us.
          std::this_thread::sleep_for(std::chrono::hours(1));
          std::_Exit(core::kFaultExitCrash);
        }
        std::_Exit(core::kFaultExitCrash);  // no store write, no cleanup
      };
    }
  }

  if (cli.get_bool("dry-run", false)) {
    const auto specs = core::shard_filter(core::expand(campaign),
                                          options.shard_index,
                                          options.shard_count);
    std::cout << "campaign '" << campaign.name << "': " << specs.size()
              << " scenarios";
    if (options.shard_count > 1)
      std::cout << " on shard " << options.shard_index << "/"
                << options.shard_count;
    std::cout << "\n";
    // Enough context to sanity-check a sharded cross-machine dispatch
    // before burning core hours: which fingerprints land here, and where
    // the rows would go.
    if (!specs.empty()) {
      std::uint64_t lo = core::fingerprint(specs.front());
      std::uint64_t hi = lo;
      for (const auto& spec : specs) {
        const std::uint64_t fp = core::fingerprint(spec);
        lo = std::min(lo, fp);
        hi = std::max(hi, fp);
      }
      std::cout << "  fingerprints: " << core::hex_u64(lo) << " .. "
                << core::hex_u64(hi) << " (mod " << options.shard_count
                << " == " << options.shard_index << ")\n";
    }
    std::cout << "  store: "
              << (options.out_path.empty() ? "(none)" : options.out_path)
              << (options.resume ? " (resume: run only missing rows)" : "")
              << "\n";
    for (const auto& spec : specs)
      std::cout << core::to_json(spec).dump() << "\n";
    return 0;
  }

  // A fresh run replaces the store file; make losing prior rows an
  // explicit choice, not a surprise.
  if (!options.resume && !options.out_path.empty()) {
    std::ifstream existing(options.out_path);
    if (existing && existing.peek() != std::ifstream::traits_type::eof())
      core::log_line(core::LogLevel::kInfo,
                     "note: replacing existing store " + options.out_path +
                         " (use --resume to keep its rows)");
  }

  core::CampaignReport report;
  try {
    report = core::run_campaign(campaign, options);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return 1;
  }

  if (report.recovery.dropped_partial)
    core::log_line(core::LogLevel::kInfo,
                   "note: " + options.out_path + " line " +
                       std::to_string(report.recovery.line_no) +
                       " was a torn trailing row (interrupted write): " +
                       report.recovery.snippet +
                       " — dropped it and re-ran that cell");

  // Injected torn output: tear the freshly-written store mid-row and die
  // non-zero, as if the process had been killed while its bytes were in
  // transit.  The next attempt's --resume must recover (drop the torn
  // row, re-run exactly that cell).
  if (fault == core::FaultKind::Trunc && !options.out_path.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const auto size = fs::file_size(options.out_path, ec);
    // Find the last line's length so the cut always lands inside it, and
    // only tear actual rows — never the provenance header (a headerless
    // store is unrecoverable corruption, not a torn tail).
    std::size_t last_len = 0, lines = 0;
    {
      std::ifstream in(options.out_path);
      std::string line;
      while (std::getline(in, line)) {
        last_len = line.size();
        ++lines;
      }
    }
    if (!ec && lines >= 2 && last_len > 2) {
      const std::uint64_t cut =
          2 + static_cast<std::uint64_t>(
                  13 * options.shard_index + 7 * fault_attempt) %
                  std::min<std::uint64_t>(last_len - 1, 39);
      fs::resize_file(options.out_path, size - cut, ec);
      core::log_line(core::LogLevel::kInfo,
                     "fault injection: tore " + std::to_string(cut) +
                         " bytes off " + options.out_path);
    }
    std::_Exit(core::kFaultExitTrunc);
  }

  std::cout << "campaign '" << campaign.name << "': " << report.total
            << " scenarios, ";
  if (options.shard_count > 1)
    std::cout << report.sharded_out << " on other shards, ";
  std::cout << report.executed << " executed, " << report.skipped
            << " resumed from "
            << (options.out_path.empty() ? "(no store)" : options.out_path)
            << "\n";

  // Console summary of the rows executed in this invocation.
  if (!report.rows.empty()) {
    int explored = 0, premature = 0, violations = 0;
    Round worst_rounds = 0;
    std::string worst_spec;
    for (const core::CampaignRow& row : report.rows) {
      if (row.outcome.explored) ++explored;
      if (row.outcome.premature_termination) ++premature;
      violations += row.outcome.violations;
      if (row.outcome.rounds > worst_rounds) {
        worst_rounds = row.outcome.rounds;
        worst_spec = core::to_json(row.spec).dump();
      }
    }
    util::Table t({"executed", "explored", "premature", "violations",
                   "worst rounds"});
    t.add_row({std::to_string(report.rows.size()), std::to_string(explored),
               std::to_string(premature), std::to_string(violations),
               std::to_string(worst_rounds)});
    t.print(std::cout);
    if (!worst_spec.empty())
      std::cout << "worst-case scenario: " << worst_spec << "\n";
  }
  if (stream) {
    std::cout << "\n" << stream->render(core::ReportFormat::Markdown);
  }
  if (core::telemetry().enabled()) {
    core::log_line(core::LogLevel::kDebug,
                   "telemetry sidecars: " + core::telemetry().events_path() +
                       ", " + core::telemetry().metrics_path());
    core::telemetry().shutdown();  // flush events, write <out>.metrics.json
  }
  return 0;
}
