// The paper's headline deliverable is a *map* of feasibility (Tables 1-4):
// which combinations of synchrony, knowledge, landmark and chirality make
// live exploration solvable, with how many agents, and at what cost.
//
// FeasibilityMap re-derives that map empirically: for every algorithm it
// runs a matrix of scenarios (ring sizes x adversaries x seeds) under the
// algorithm's stated assumptions and records worst-case measured cost and
// correctness (exploration completed; no premature termination; the
// termination kind achieved).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/runner.hpp"

namespace dring::core {

/// Aggregated outcome of an algorithm's scenario sweep.
struct FeasibilityRow {
  algo::AlgorithmInfo meta;
  int runs = 0;
  int explored = 0;            ///< runs that explored the whole ring
  int premature = 0;           ///< runs with a premature termination (bug!)
  int full_termination = 0;    ///< runs in which every agent terminated
  int partial_termination = 0; ///< runs with >= 1 terminated agent
  std::int64_t worst_rounds = 0;
  std::int64_t worst_moves = 0;
  NodeId worst_rounds_n = 0;   ///< ring size achieving worst_rounds

  bool ok() const { return explored == runs && premature == 0; }
};

/// Sweep parameters for the map.
struct FeasibilitySweep {
  std::vector<NodeId> sizes = {4, 5, 6, 8, 11, 16};
  int seeds_per_size = 5;
  double edge_removal_prob = 0.6;
  double activation_prob = 0.6;  ///< SSYNC only
  Round max_rounds = 2'000'000;
  /// Worker threads for the scenario sweep (0 = hardware concurrency,
  /// 1 = serial). Rows are bit-identical for every thread count.
  int threads = 0;
};

/// Run the sweep for one algorithm under its published assumptions.
FeasibilityRow evaluate_algorithm(algo::AlgorithmId id,
                                  const FeasibilitySweep& sweep);

/// Run the sweep for every algorithm and render the map.
std::vector<FeasibilityRow> build_feasibility_map(
    const FeasibilitySweep& sweep);

/// Pretty-print rows in the style of the paper's Tables 2 and 4.
void print_feasibility_map(const std::vector<FeasibilityRow>& rows,
                           std::ostream& os);

}  // namespace dring::core
