#include "ring/evolving_ring.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace dring::ring {

EvolvingRing::EvolvingRing(NodeId n,
                           std::vector<std::optional<EdgeId>> missing_per_round)
    : n_(n), missing_(std::move(missing_per_round)) {
  if (n < 3) throw std::invalid_argument("EvolvingRing requires n >= 3");
}

EvolvingRing EvolvingRing::from_script(
    NodeId n, const std::function<std::optional<EdgeId>(Round)>& script,
    Round horizon) {
  std::vector<std::optional<EdgeId>> missing;
  missing.reserve(static_cast<std::size_t>(horizon));
  for (Round r = 1; r <= horizon; ++r) missing.push_back(script(r));
  return EvolvingRing(n, std::move(missing));
}

bool EvolvingRing::edge_present(EdgeId e, Round r) const {
  assert(e >= 0 && e < n_);
  if (r < 1 || r > horizon()) return true;
  const auto& missing = missing_[static_cast<std::size_t>(r - 1)];
  return !(missing && *missing == e);
}

std::optional<EdgeId> EvolvingRing::missing_at(Round r) const {
  if (r < 1 || r > horizon()) return std::nullopt;
  return missing_[static_cast<std::size_t>(r - 1)];
}

namespace {

// Single-agent state: the visited set of a ring walk is a contiguous arc
// [-l .. +r] of offsets around the start node; the agent stands at offset
// p within it.  Encoded densely as ((l * n) + r) * n + (p + l).
struct ArcCodec {
  explicit ArcCodec(NodeId n) : n(n) {}
  NodeId n;

  std::size_t states() const {
    return static_cast<std::size_t>(n) * n * n;
  }
  std::size_t encode(int l, int r, int p) const {
    return (static_cast<std::size_t>(l) * n + static_cast<std::size_t>(r)) *
               n +
           static_cast<std::size_t>(p + l);
  }
};

/// Global edge crossed when moving Ccw from offset `o` (start node s).
EdgeId edge_ccw(NodeId n, NodeId s, int o) {
  return static_cast<EdgeId>(((s + o) % n + n) % n);
}
/// Global edge crossed when moving Cw from offset `o`.
EdgeId edge_cw(NodeId n, NodeId s, int o) {
  return static_cast<EdgeId>(((s + o - 1) % n + n) % n);
}

}  // namespace

Round offline_exploration_time(const EvolvingRing& ring, NodeId start,
                               Round max_rounds) {
  const NodeId n = ring.size();
  if (n == 1) return 0;
  const ArcCodec codec(n);
  std::vector<char> cur(codec.states(), 0), next;
  cur[codec.encode(0, 0, 0)] = 1;

  for (Round round = 1; round <= max_rounds; ++round) {
    next.assign(codec.states(), 0);
    bool any = false;
    for (int l = 0; l < n; ++l) {
      for (int r = 0; l + r < n; ++r) {
        for (int p = -l; p <= r; ++p) {
          if (!cur[codec.encode(l, r, p)]) continue;
          any = true;
          // Wait.
          next[codec.encode(l, r, p)] = 1;
          // Move Ccw (towards +).
          if (l + r < n - 1 || p < r) {  // moving inside or extending
            if (ring.edge_present(edge_ccw(n, start, p), round)) {
              const int np = p + 1;
              const int nr = np > r ? np : r;
              if (nr < n - l) {
                next[codec.encode(l, nr, np)] = 1;
                if (l + nr == n - 1) return round;
              }
            }
          }
          // Move Cw (towards -).
          if (l + r < n - 1 || p > -l) {
            if (ring.edge_present(edge_cw(n, start, p), round)) {
              const int np = p - 1;
              const int nl = -np > l ? -np : l;
              if (nl + r < n) {
                next[codec.encode(nl, r, np)] = 1;
                if (nl + r == n - 1) return round;
              }
            }
          }
        }
      }
    }
    if (!any) break;
    cur.swap(next);
  }
  return -1;
}

Round offline_two_agent_exploration_time(const EvolvingRing& ring,
                                         NodeId start_a, NodeId start_b,
                                         Round max_rounds) {
  const NodeId n = ring.size();
  const ArcCodec codec(n);
  const std::size_t per_agent = codec.states();

  // Coverage test: do the two arcs jointly cover the ring?
  std::vector<char> mark(static_cast<std::size_t>(n));
  auto covered = [&](int la, int ra, int lb, int rb) {
    std::fill(mark.begin(), mark.end(), 0);
    for (int o = -la; o <= ra; ++o)
      mark[static_cast<std::size_t>(((start_a + o) % n + n) % n)] = 1;
    for (int o = -lb; o <= rb; ++o)
      mark[static_cast<std::size_t>(((start_b + o) % n + n) % n)] = 1;
    for (char m : mark)
      if (!m) return false;
    return true;
  };

  std::vector<char> cur(per_agent * per_agent, 0), next;
  cur[codec.encode(0, 0, 0) * per_agent + codec.encode(0, 0, 0)] = 1;
  if (covered(0, 0, 0, 0)) return 0;

  // Per-agent one-round successor lists, recomputed each round (the edge
  // schedule changes per round).
  struct Succ {
    int l, r, p;
  };
  auto successors = [&](NodeId start, int l, int r, int p, Round round,
                        std::vector<Succ>& out) {
    out.clear();
    out.push_back({l, r, p});  // wait
    if (ring.edge_present(edge_ccw(n, start, p), round)) {
      const int np = p + 1;
      const int nr = np > r ? np : r;
      if (nr + l < n) out.push_back({l, nr, np});
    }
    if (ring.edge_present(edge_cw(n, start, p), round)) {
      const int np = p - 1;
      const int nl = -np > l ? -np : l;
      if (nl + r < n) out.push_back({nl, r, np});
    }
  };

  std::vector<Succ> succ_a, succ_b;
  for (Round round = 1; round <= max_rounds; ++round) {
    next.assign(per_agent * per_agent, 0);
    bool any = false;
    for (int la = 0; la < n; ++la) {
      for (int ra = 0; la + ra < n; ++ra) {
        for (int pa = -la; pa <= ra; ++pa) {
          const std::size_t ia = codec.encode(la, ra, pa);
          for (int lb = 0; lb < n; ++lb) {
            for (int rb = 0; lb + rb < n; ++rb) {
              for (int pb = -lb; pb <= rb; ++pb) {
                const std::size_t ib = codec.encode(lb, rb, pb);
                if (!cur[ia * per_agent + ib]) continue;
                any = true;
                successors(start_a, la, ra, pa, round, succ_a);
                successors(start_b, lb, rb, pb, round, succ_b);
                for (const Succ& sa : succ_a) {
                  for (const Succ& sb : succ_b) {
                    if (covered(sa.l, sa.r, sb.l, sb.r)) return round;
                    next[codec.encode(sa.l, sa.r, sa.p) * per_agent +
                         codec.encode(sb.l, sb.r, sb.p)] = 1;
                  }
                }
              }
            }
          }
        }
      }
    }
    if (!any) break;
    cur.swap(next);
  }
  return -1;
}

}  // namespace dring::ring
