// Tests for the paper-artifact layer (core/artifact.hpp): the transition
// pin (artifact-derived Table 2 is byte-identical to the pre-migration
// bench pipeline, replicated here verbatim on a reduced grid), store
// round-trips including the enrich extras, run_artifact's resume/shard
// semantics, derivation guard rails, and the ScenarioSpec proof-override
// fields the artifact grids rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/artifact.hpp"
#include "util/table.hpp"

namespace dring::core {
namespace {

// --- the legacy bench_table2 pipeline, replicated verbatim ---------------------
//
// This is the exact pre-migration code of bench_table2_fsync_possibility
// (scenario loop, fold, formatting), kept here as the transition pin: the
// declarative artifact must reproduce its output byte for byte.  If the
// artifact grid or renderer drifts from the retired bench, this test is
// the tripwire.

struct LegacyRowResult {
  std::int64_t worst_round = 0;
  NodeId worst_n = 0;
  int runs = 0;
  int failures = 0;
};

std::int64_t legacy_last_termination(const sim::RunResult& r) {
  std::int64_t worst = 0;
  for (const sim::AgentResult& a : r.agents)
    worst = std::max(worst, a.termination_round);
  return worst;
}

void legacy_account(LegacyRowResult& row, const sim::RunResult& r, NodeId n) {
  row.runs += 1;
  if (!r.explored || r.premature_termination || !r.all_terminated ||
      !r.violations.empty()) {
    row.failures += 1;
    return;
  }
  const std::int64_t t = legacy_last_termination(r);
  if (t > row.worst_round) {
    row.worst_round = t;
    row.worst_n = n;
  }
}

LegacyRowResult legacy_sweep(algo::AlgorithmId id,
                             const std::vector<NodeId>& sizes, int seeds,
                             Round round_budget_per_n) {
  std::vector<ScenarioTask> tasks;
  std::vector<NodeId> task_n;
  for (const NodeId n : sizes) {
    for (int seed = 0; seed <= seeds; ++seed) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.stop.max_rounds = round_budget_per_n * n + 1000;
      task.seed = static_cast<std::uint64_t>(1000 * n + seed);
      if (seed == 0) {
        task.make_adversary = [] {
          return std::make_unique<sim::NullAdversary>();
        };
      } else if (seed == 1) {
        task.make_adversary = []() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::BlockAgentAdversary>(0);
        };
      } else {
        const std::uint64_t s = task.seed;
        task.make_adversary = [s]() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0,
                                                                      s);
        };
      }
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
    if (id == algo::AlgorithmId::KnownNNoChirality && n >= 6) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.start_nodes = {2, 3};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * n;
      task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::ScriptedEdgeAdversary>(
            adversary::make_fig2_script(n, 2), "fig2");
      };
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
  }

  SweepOptions pool;
  pool.threads = 2;
  const std::vector<sim::RunResult> results = run_sweep(tasks, pool);
  LegacyRowResult row;
  for (std::size_t i = 0; i < results.size(); ++i)
    legacy_account(row, results[i], task_n[i]);
  return row;
}

std::string legacy_table2_output(const std::vector<NodeId>& sizes,
                                 int seeds) {
  std::ostringstream out;
  out << "=== Table 2: possibility results for FSYNC ===\n"
      << "sizes swept: ";
  for (NodeId n : sizes) out << n << " ";
  out << "| adversaries: static, obs1-block, targeted-random x" << seeds
      << "\n\n";

  util::Table table({"N. Agents", "Assumptions", "Paper bound",
                     "Worst measured termination", "at n", "Runs",
                     "Failures"});
  {
    const LegacyRowResult r =
        legacy_sweep(algo::AlgorithmId::KnownNNoChirality, sizes, seeds, 10);
    const NodeId n = r.worst_n;
    table.add_row({"2", "Known bound N", "3N-6 (Th. 3)",
                   util::fmt_count(r.worst_round) + "  (3n-5 = " +
                       util::fmt_count(3 * n - 5) + " incl. detect round)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const LegacyRowResult r = legacy_sweep(
        algo::AlgorithmId::LandmarkWithChirality, sizes, seeds, 4000);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    table.add_row({"2", "Chirality, Landmark", "O(n) (Th. 6)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(static_cast<double>(r.worst_round) / n,
                                        1) +
                       " * n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const LegacyRowResult r = legacy_sweep(
        algo::AlgorithmId::LandmarkNoChirality, sizes, seeds, 100000);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    const double nlogn = static_cast<double>(n) * algo::ceil_log2(n);
    table.add_row({"2", "Landmark (no chirality)", "O(n log n) (Th. 8)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(r.worst_round / nlogn, 1) +
                       " * n log n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  table.print(out);
  out << "\nFailures = runs that did not explore, terminated "
         "prematurely, or violated an invariant (expected: 0).\n";
  return out.str();
}

TEST(ArtifactTransition, Table2MatchesTheLegacyBenchByteForByte) {
  const std::vector<NodeId> sizes = {5, 6, 8};
  const int seeds = 2;
  const Artifact artifact = make_table2_artifact(sizes, seeds);
  EXPECT_EQ(derive_report(artifact, run_artifact_rows(artifact, 2)),
            legacy_table2_output(sizes, seeds));
}

// --- spec proof-override fields ------------------------------------------------

TEST(ArtifactSpec, ProofOverridesRoundTripAndExtendTheFingerprint) {
  ScenarioSpec spec;
  spec.algorithm = "PTBoundWithChirality";
  spec.n = 10;
  spec.adversary.family = "sliding-window";
  spec.start_nodes = {4, 0};
  spec.orientations = "cc";
  spec.landmark = 1;
  spec.fairness_window = 65536;
  spec.stop_explored_one_terminated = true;
  spec.max_rounds = 600'000;

  const ScenarioSpec back =
      scenario_spec_from_json(util::Json::parse(to_json(spec).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(spec).dump());
  EXPECT_EQ(back.start_nodes, spec.start_nodes);
  EXPECT_EQ(back.orientations, "cc");
  EXPECT_EQ(back.landmark, 1);
  EXPECT_EQ(back.fairness_window, 65536);
  EXPECT_TRUE(back.stop_explored_one_terminated);

  // Every override separates the fingerprint.
  const std::uint64_t fp = fingerprint(spec);
  ScenarioSpec other = spec;
  other.start_nodes = {3, 0};
  EXPECT_NE(fingerprint(other), fp);
  other = spec;
  other.orientations = "cm";
  EXPECT_NE(fingerprint(other), fp);
  other = spec;
  other.fairness_window = 0;
  EXPECT_NE(fingerprint(other), fp);

  // And a default-valued spec serializes without the new keys, so the
  // fingerprints of every pre-PR-4 campaign cell are untouched (the
  // committed frontier/smoke reports re-derive byte-identically).
  ScenarioSpec plain;
  plain.algorithm = "KnownNNoChirality";
  plain.n = 8;
  const std::string dump = to_json(plain).dump();
  for (const char* key : {"start_nodes", "orientations", "landmark",
                          "fairness_window", "stop_explored_one_terminated"})
    EXPECT_EQ(dump.find(key), std::string::npos) << key;
}

TEST(ArtifactSpec, BuildConfigAppliesTheOverrides) {
  ScenarioSpec spec;
  spec.algorithm = "PTLandmarkWithChirality";
  spec.n = 12;
  spec.start_nodes = {5, 0};
  spec.orientations = "cc";
  spec.landmark = 1;
  spec.fairness_window = 65536;
  spec.stop_explored_one_terminated = true;

  const ExplorationConfig cfg = build_config(spec);
  EXPECT_EQ(cfg.start_nodes, (std::vector<NodeId>{5, 0}));
  ASSERT_EQ(cfg.orientations.size(), 2u);
  EXPECT_EQ(cfg.orientations[0], agent::kChiralOrientation);
  EXPECT_EQ(cfg.orientations[1], agent::kChiralOrientation);
  ASSERT_TRUE(cfg.landmark.has_value());
  EXPECT_EQ(*cfg.landmark, 1);
  EXPECT_EQ(cfg.engine.fairness_window, 65536);
  EXPECT_TRUE(cfg.stop.stop_when_explored_and_one_terminated);

  // The landmark override never adds a landmark to a landmark-free
  // algorithm.
  ScenarioSpec no_landmark;
  no_landmark.algorithm = "KnownNNoChirality";
  no_landmark.n = 8;
  no_landmark.landmark = 1;
  EXPECT_FALSE(build_config(no_landmark).landmark.has_value());

  ScenarioSpec bad = spec;
  bad.orientations = "cx";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
}

// --- registry -------------------------------------------------------------------

TEST(ArtifactRegistry, NamesResolveAndScenariosAreDistinct) {
  EXPECT_EQ(paper_artifacts().size(), 3u);
  for (const Artifact& artifact : paper_artifacts()) {
    EXPECT_EQ(&artifact_by_name(artifact.name), &artifact);
    std::set<std::uint64_t> fps;
    for (const ArtifactScenario& scenario : artifact.scenarios)
      fps.insert(fingerprint(scenario.spec));
    EXPECT_EQ(fps.size(), artifact.scenarios.size())
        << artifact.name << ": duplicate scenario fingerprints";
  }
  EXPECT_THROW(artifact_by_name("no_such_table"), std::invalid_argument);
}

// --- execution / store ----------------------------------------------------------

TEST(ArtifactRun, StoreRoundTripPreservesTheDerivedReport) {
  const std::string path = testing::TempDir() + "artifact_store_test.jsonl";
  std::remove(path.c_str());

  // Small price-of-liveness grid: exercises the enrich hook (the offline
  // optimum must survive the store round trip for the report to derive).
  const Artifact artifact =
      make_price_of_liveness_artifact({6}, {8}, /*seeds=*/2);
  const std::string direct =
      derive_report(artifact, run_artifact_rows(artifact, 2));

  ArtifactRunOptions options;
  options.threads = 2;
  options.store_path = path;
  const ArtifactRunReport report = run_artifact(artifact, options);
  EXPECT_EQ(report.executed, artifact.scenarios.size());

  const std::vector<CampaignRow> stored = read_result_store_file(path);
  EXPECT_EQ(derive_report(artifact, stored), direct);

  // The enrich extras are in the store bytes, not recomputed on read.
  bool saw_offline = false;
  for (const CampaignRow& row : stored)
    saw_offline = saw_offline || row.outcome.extra.count("offline") > 0;
  EXPECT_TRUE(saw_offline);

  // Resume executes nothing.
  options.resume = true;
  EXPECT_EQ(run_artifact(artifact, options).executed, 0u);

  std::remove(path.c_str());
}

TEST(ArtifactRun, ShardsPartitionAndMergeToTheFullStore) {
  const Artifact artifact = make_table2_artifact({5, 6}, /*seeds=*/1);

  const std::string full = testing::TempDir() + "artifact_full.jsonl";
  const std::string s0 = testing::TempDir() + "artifact_s0.jsonl";
  const std::string s1 = testing::TempDir() + "artifact_s1.jsonl";

  ArtifactRunOptions options;
  options.threads = 2;
  options.store_path = full;
  run_artifact(artifact, options);

  options.shard_count = 2;
  options.shard_index = 0;
  options.store_path = s0;
  const ArtifactRunReport r0 = run_artifact(artifact, options);
  options.shard_index = 1;
  options.store_path = s1;
  const ArtifactRunReport r1 = run_artifact(artifact, options);
  EXPECT_EQ(r0.executed + r1.executed, artifact.scenarios.size());
  EXPECT_EQ(r0.sharded_out, r1.executed);

  const StoreMerge merge = merge_result_stores(
      {read_result_store_file(s0), read_result_store_file(s1)});
  ASSERT_TRUE(merge.ok());
  const std::vector<CampaignRow> full_rows = read_result_store_file(full);
  ASSERT_EQ(merge.rows.size(), full_rows.size());
  for (std::size_t i = 0; i < full_rows.size(); ++i)
    EXPECT_EQ(row_line(merge.rows[i]), row_line(full_rows[i]));

  // A partial store cannot derive the report.
  EXPECT_THROW(derive_report(artifact, read_result_store_file(s0)),
               std::runtime_error);
  // The merged one can, and matches the unsharded derivation.
  EXPECT_EQ(derive_report(artifact, merge.rows),
            derive_report(artifact, full_rows));

  EXPECT_THROW(
      [&] {
        ArtifactRunOptions bad;
        bad.shard_index = 2;
        bad.shard_count = 2;
        run_artifact(artifact, bad);
      }(),
      std::invalid_argument);

  std::remove(full.c_str());
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

}  // namespace
}  // namespace dring::core
