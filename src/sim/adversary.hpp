// The adversary interface.
//
// The paper's adversary is omniscient: it knows the (deterministic)
// protocol, the full configuration, and decides (a) which agents are active
// each round (SSYNC), (b) which single edge is missing, and (c) how ties on
// port acquisition break.  The engine exposes the full world state plus a
// *probe* facility — "what would this agent do if activated now" — realised
// by cloning the agent's brain, which is exactly the predictive power the
// proofs use (e.g. Observation 1: "always removing the edge over which the
// agent wants to leave").
//
// Concrete adversaries live in src/adversary; the interface lives here so
// the engine does not depend on them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "agent/snapshot.hpp"
#include "ring/types.hpp"

namespace dring::sim {

class Engine;

/// Read-only view of the world handed to adversaries.
class WorldView {
 public:
  explicit WorldView(const Engine& engine) : engine_(&engine) {}

  Round round() const;
  NodeId ring_size() const;
  int num_agents() const;

  NodeId node_of(AgentId a) const;
  bool on_port(AgentId a) const;
  /// Global side of the held port (valid iff on_port).
  GlobalDir port_side(AgentId a) const;
  bool terminated(AgentId a) const;
  bool active_last_round(AgentId a) const;
  /// Rounds since the agent was last active (0 if active last round).
  Round idle_rounds(AgentId a) const;

  /// Probe: the global direction the agent would try to move if activated
  /// right now (clone of its brain; the real state is untouched).
  /// std::nullopt if it would stay / step off / terminate.
  std::optional<GlobalDir> probe_move(AgentId a) const;

  /// Probe the full intent (local frame) plus termination decision.
  agent::Intent probe_intent(AgentId a) const;

  /// Ground-truth visited set (adversaries in lower-bound constructions
  /// track the explored region).
  const std::vector<bool>& visited() const;

  /// Edge the agent would traverse if it moved in global direction `d`.
  EdgeId edge_towards(AgentId a, GlobalDir d) const;

 private:
  const Engine* engine_;
};

/// Intents of the agents activated this round, in global terms, as
/// presented to the edge adversary.
struct IntentRecord {
  AgentId agent = -1;
  agent::Intent intent;            ///< local frame (as computed)
  std::optional<GlobalDir> move;   ///< global direction if Kind::Move
  EdgeId target_edge = kNoEdge;    ///< edge it would traverse, if moving
  bool port_acquired = false;      ///< outcome of the acquisition phase
};

/// Adversary: activation schedule + edge removal + tie-breaking.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Choose the set of active agents for this round (SSYNC).  The engine
  /// post-processes the choice: terminated agents are dropped, fairness
  /// and the ET condition are enforced, and an empty set is replaced by
  /// "everyone" (a round must activate a non-empty subset).
  /// Default: all agents (FSYNC behaviour).
  virtual std::vector<bool> select_active(const WorldView& view);

  /// Choose at most one edge to be missing this round, after observing the
  /// active agents' intents and acquisition outcomes. Default: none.
  virtual std::optional<EdgeId> choose_missing_edge(
      const WorldView& view, const std::vector<IntentRecord>& intents);

  /// Whether choose_missing_edge reads the IntentRecord vector. Adversaries
  /// that decide from the WorldView (or not at all) return false and the
  /// engine skips building the records on its hot path; they then receive
  /// an empty vector.
  virtual bool observes_intents() const { return true; }

  /// Order in which contenders attempt to acquire a port (first wins).
  /// Default: ascending agent id.
  virtual void order_port_contenders(const WorldView& view, PortRef port,
                                     std::vector<AgentId>& contenders);

  /// Whether order_port_contenders may actually reorder. When false the
  /// engine resolves port mutex directly in arrival order (identical
  /// outcome to a no-op tie-break) and skips the per-port callback.
  /// Conservatively true; adversaries that keep the default tie-break
  /// should return false.
  virtual bool reorders_contenders() const { return true; }

  /// Whether this adversary is behaviourally the NullAdversary: never
  /// removes an edge, never restricts activation, never reorders. The
  /// BatchEngine uses this capability flag to route FSYNC+null lanes onto
  /// its SoA fast path (which elides the adversary entirely); decorators
  /// must NOT forward — a T-interval wrapper around null still changes
  /// edge availability. Conservatively false.
  virtual bool is_null() const { return false; }

  /// Adversary-side measurements of the finished run (e.g. the
  /// sliding-window shift count of Theorems 13/15, the pinned edge of the
  /// Theorem 10 construction).  Called by the runner after the run;
  /// implementations insert named counters into `metrics` (absent keys
  /// mean "not measured").  Surfaced as RunResult::adversary_metrics so
  /// sweep- and artifact-level consumers need no access to the adversary
  /// instance itself.  Decorators forward to their inner adversary.
  virtual void report_metrics(std::map<std::string, long long>& metrics) const {
    (void)metrics;
  }

  virtual std::string name() const = 0;
};

/// The benign adversary: everyone active, no edge ever missing.
class NullAdversary : public Adversary {
 public:
  bool observes_intents() const override { return false; }
  bool reorders_contenders() const override { return false; }
  bool is_null() const override { return true; }
  std::string name() const override { return "null"; }
};

}  // namespace dring::sim
