// Failure-path coverage for the fault-tolerant campaign orchestrator:
// retry/backoff schedule math, the deterministic fault-injection plan,
// subprocess supervision (timeout -> kill -> reschedule, heartbeats),
// straggler speculation idempotence, partial-failure manifests, and the
// headline guarantee — under injected crash/hang/trunc faults the merged
// store converges byte-identically to the single-process store, and a
// --resume run completes exactly the holes a failed run left.
//
// End-to-end tests spawn the real dring_campaign binary (built next to
// this test executable); they skip when it is absent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/campaign.hpp"
#include "core/orchestrate.hpp"
#include "core/scenario_spec.hpp"
#include "core/telemetry.hpp"
#include "util/json.hpp"
#include "util/subprocess.hpp"

namespace dring::core {
namespace {

namespace fs = std::filesystem;

// --- backoff schedule math -----------------------------------------------------

TEST(Backoff, FirstAttemptIsImmediate) {
  BackoffPolicy policy;
  EXPECT_EQ(policy.delay_ms(0, 1), 0);
  EXPECT_EQ(policy.delay_ms(7, 1), 0);
  EXPECT_EQ(policy.delay_ms(0, 0), 0);
}

TEST(Backoff, ExponentialDoublingWithCap) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.cap_ms = 750;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.delay_ms(3, 2), 100);
  EXPECT_EQ(policy.delay_ms(3, 3), 200);
  EXPECT_EQ(policy.delay_ms(3, 4), 400);
  EXPECT_EQ(policy.delay_ms(3, 5), 750);  // 800 capped
  EXPECT_EQ(policy.delay_ms(3, 6), 750);
  EXPECT_EQ(policy.delay_ms(3, 60), 750);  // deep attempts stay capped
}

TEST(Backoff, JitterIsBoundedDeterministicAndPerShard) {
  BackoffPolicy policy;
  policy.base_ms = 1000;
  policy.cap_ms = 100000;
  policy.jitter = 0.5;
  policy.seed = 42;
  std::set<long long> seen;
  for (int shard = 0; shard < 8; ++shard) {
    for (int attempt = 2; attempt <= 5; ++attempt) {
      const long long raw = 1000LL << (attempt - 2);
      const long long delay = policy.delay_ms(shard, attempt);
      EXPECT_GE(delay, raw / 2) << shard << "/" << attempt;
      EXPECT_LE(delay, raw) << shard << "/" << attempt;
      // A pure function of (seed, shard, attempt).
      EXPECT_EQ(delay, policy.delay_ms(shard, attempt));
      seen.insert(delay);
    }
  }
  // The jitter actually spreads the fleet (not everyone retries at raw).
  EXPECT_GT(seen.size(), 8u);
}

// --- fault plan ----------------------------------------------------------------

TEST(FaultPlan, ParsesSpecsAndRejectsGarbage) {
  const FaultPlan plan = parse_fault_plan("crash:0.4,hang:0.2,trunc:0.1", 9);
  EXPECT_DOUBLE_EQ(plan.crash, 0.4);
  EXPECT_DOUBLE_EQ(plan.hang, 0.2);
  EXPECT_DOUBLE_EQ(plan.trunc, 0.1);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_TRUE(plan.any());

  EXPECT_FALSE(parse_fault_plan("", 0).any());
  EXPECT_DOUBLE_EQ(parse_fault_plan("hang:1", 0).hang, 1.0);

  EXPECT_THROW(parse_fault_plan("crash", 0), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1.5", 0), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:-0.1", 0), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("boom:0.1", 0), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:0.2,crash:0.1", 0),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:0.6,hang:0.6", 0),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:abc", 0), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:0.5x", 0), std::invalid_argument);
}

TEST(FaultPlan, DrawIsDeterministicAndHonorsProbabilities) {
  FaultPlan none;
  EXPECT_EQ(fault_draw(none, 3, 1), FaultKind::None);

  FaultPlan certain;
  certain.crash = 1.0;
  for (int attempt = 1; attempt <= 5; ++attempt)
    EXPECT_EQ(fault_draw(certain, 0, attempt), FaultKind::Crash);

  const FaultPlan plan = parse_fault_plan("crash:0.3,hang:0.2,trunc:0.2", 5);
  int counts[4] = {0, 0, 0, 0};
  for (std::uint64_t key = 0; key < 40; ++key) {
    for (int attempt = 1; attempt <= 25; ++attempt) {
      const FaultKind kind = fault_draw(plan, key, attempt);
      EXPECT_EQ(kind, fault_draw(plan, key, attempt));  // pure function
      counts[static_cast<int>(kind)]++;
    }
  }
  // 1000 draws; each kind lands within a loose band of its probability.
  EXPECT_GT(counts[static_cast<int>(FaultKind::None)], 200);
  EXPECT_GT(counts[static_cast<int>(FaultKind::Crash)], 200);
  EXPECT_GT(counts[static_cast<int>(FaultKind::Hang)], 100);
  EXPECT_GT(counts[static_cast<int>(FaultKind::Trunc)], 100);

  // Retrying a sub-certain plan converges: every key reaches a clean
  // attempt reasonably fast.
  for (std::uint64_t key = 0; key < 40; ++key) {
    int first_clean = -1;
    for (int attempt = 1; attempt <= 50 && first_clean < 0; ++attempt)
      if (fault_draw(plan, key, attempt) == FaultKind::None)
        first_clean = attempt;
    EXPECT_GT(first_clean, 0) << "key " << key;
  }
}

// --- subprocess ----------------------------------------------------------------

TEST(Subprocess, ExitCodeEnvAndRedirect) {
  const std::string out = testing::TempDir() + "subprocess_out.txt";
  std::remove(out.c_str());
  util::SpawnSpec spec;
  spec.argv = {"/bin/sh", "-c", "printf '%s' \"$DRING_TEST_VALUE\"; exit 7"};
  spec.env = {{"DRING_TEST_VALUE", "hello-fleet"}};
  spec.output_path = out;
  util::Subprocess child = util::Subprocess::spawn(spec);
  EXPECT_EQ(child.exit_code_blocking(), 7);
  EXPECT_FALSE(child.signaled());
  std::ifstream in(out);
  std::stringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), "hello-fleet");
}

TEST(Subprocess, KillHardReportsSignalDeath) {
  util::SpawnSpec spec;
  spec.argv = {"/bin/sh", "-c", "sleep 30"};
  util::Subprocess child = util::Subprocess::spawn(spec);
  EXPECT_TRUE(child.running());
  child.kill_hard();
  EXPECT_EQ(child.exit_code_blocking(), 128 + 9);
  EXPECT_TRUE(child.signaled());
  EXPECT_FALSE(child.running());
}

// --- end-to-end orchestration --------------------------------------------------

std::string campaign_binary() {
  const std::string dir = util::executable_dir();
  if (dir.empty()) return "";
  const std::string path = dir + "/dring_campaign";
  return fs::exists(path) ? path : "";
}

/// The shared fleet-test campaign: 16 cheap cells.
CampaignSpec fleet_campaign() {
  CampaignSpec campaign;
  campaign.name = "fleet";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {5, 6};
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.5;
  campaign.adversaries = {targeted};
  campaign.t_intervals = {1, 3};
  campaign.seeds_per_cell = 2;
  campaign.salt = 7;
  campaign.max_rounds = 3000;
  return campaign;
}

/// A fresh work area holding the spec file and the reference store
/// (written by the in-process single-path run — the bytes every fleet
/// configuration must reproduce).
struct FleetFixture {
  std::string dir;
  std::string spec_path;
  std::string ref_path;

  explicit FleetFixture(const std::string& name) {
    dir = testing::TempDir() + "orch_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    spec_path = dir + "/campaign.json";
    std::ofstream(spec_path) << to_json(fleet_campaign()).dump() << "\n";
    ref_path = dir + "/reference.jsonl";
    CampaignOptions options;
    options.threads = 2;
    options.out_path = ref_path;
    run_campaign(fleet_campaign(), options);
  }

  OrchestrateOptions base_options(int shards, int workers) const {
    OrchestrateOptions options;
    options.spec_path = spec_path;
    options.shards = shards;
    options.workers = workers;
    options.threads_per_worker = 1;
    options.work_dir = dir + "/work";
    options.out_path = dir + "/merged.jsonl";
    options.campaign_binary = campaign_binary();
    options.poll_s = 0.01;
    options.backoff.base_ms = 10;
    options.backoff.cap_ms = 50;
    return options;
  }
};

std::string file_bytes(const std::string& path) {
  std::ifstream in(path);
  std::stringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

/// Attempt on which `shard` first runs clean under `plan` (the number of
/// attempts the orchestrator will launch for it), or -1 when it exhausts
/// `max_attempts` first.  The orchestrator's schedule is a pure function
/// of the plan, so tests predict outcomes exactly.
int first_clean_attempt(const FaultPlan& plan, int shard, int max_attempts) {
  for (int attempt = 1; attempt <= max_attempts; ++attempt)
    if (fault_draw(plan, static_cast<std::uint64_t>(shard), attempt) ==
        FaultKind::None)
      return attempt;
  return -1;
}

TEST(Orchestrate, FaultFreeFleetMatchesSingleProcess) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  FleetFixture fx("clean");
  OrchestrateOptions options = fx.base_options(3, 3);
  const OrchestrationResult result = run_orchestration(options);
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_EQ(result.merged_rows, 16u);
  EXPECT_EQ(file_bytes(options.out_path), file_bytes(fx.ref_path));
  // One attempt per shard, nothing speculative.
  for (const ShardOutcome& shard : result.shards) {
    EXPECT_TRUE(shard.completed);
    EXPECT_EQ(shard.attempts, 1);
    EXPECT_EQ(shard.failures, 0);
  }
  // The manifest records the clean run too.
  const util::Json manifest =
      util::Json::parse(file_bytes(result.manifest_path));
  EXPECT_EQ(manifest.at("campaign").as_string(), "fleet");
  EXPECT_EQ(manifest.at("missing").as_array().size(), 0u);
  EXPECT_EQ(manifest.at("completed").as_array().size(), 3u);
}

TEST(Orchestrate, ConvergesByteIdenticallyUnderInjectedFaults) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  // Pick, deterministically, a seed whose schedule (a) converges within
  // the attempt cap on every shard, (b) exercises crash AND trunc, and
  // (c) hangs exactly once (each hang costs ~stale_s of wall clock).
  const int kShards = 3, kMaxAttempts = 6;
  std::uint64_t seed = 0;
  FaultPlan plan;
  bool found = false;
  for (std::uint64_t candidate = 0; candidate < 500 && !found; ++candidate) {
    plan = parse_fault_plan("crash:0.35,hang:0.12,trunc:0.3", candidate);
    bool converges = true;
    int crashes = 0, hangs = 0, truncs = 0;
    for (int shard = 0; shard < kShards; ++shard) {
      const int clean = first_clean_attempt(plan, shard, kMaxAttempts);
      if (clean < 0) {
        converges = false;
        break;
      }
      for (int attempt = 1; attempt < clean; ++attempt) {
        const FaultKind kind =
            fault_draw(plan, static_cast<std::uint64_t>(shard), attempt);
        crashes += kind == FaultKind::Crash;
        hangs += kind == FaultKind::Hang;
        truncs += kind == FaultKind::Trunc;
      }
    }
    if (converges && crashes >= 1 && truncs >= 1 && hangs == 1) {
      seed = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no converging fault seed in the search range";

  FleetFixture fx("faulty");
  OrchestrateOptions options = fx.base_options(kShards, kShards);
  options.max_attempts = kMaxAttempts;
  options.inject = "crash:0.35,hang:0.12,trunc:0.3";
  options.inject_seed = seed;
  options.stale_s = 1.5;  // the injected hang is caught by the heartbeat
  const OrchestrationResult result = run_orchestration(options);

  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_TRUE(result.missing.empty());
  // Headline guarantee: byte-identical to the fault-free single process.
  EXPECT_EQ(file_bytes(options.out_path), file_bytes(fx.ref_path));
  // The schedule is deterministic, so attempt counts match the
  // prediction exactly — retries happened and stopped when foretold.
  int total_attempts = 0;
  for (const ShardOutcome& shard : result.shards) {
    EXPECT_TRUE(shard.completed);
    EXPECT_EQ(shard.attempts,
              first_clean_attempt(plan, shard.shard, kMaxAttempts))
        << "shard " << shard.shard;
    total_attempts += shard.attempts;
  }
  EXPECT_GT(total_attempts, kShards);  // faults actually fired
}

TEST(Orchestrate, ExhaustionWritesManifestAndResumeFillsTheHoles) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  // Find a seed where, with a cap of 2 attempts, at least one shard
  // completes and at least one exhausts — the partial-merge case.
  const int kShards = 3, kMaxAttempts = 2;
  std::uint64_t seed = 0;
  std::set<int> expect_missing;
  bool found = false;
  for (std::uint64_t candidate = 0; candidate < 500 && !found; ++candidate) {
    const FaultPlan plan = parse_fault_plan("crash:0.75", candidate);
    std::set<int> missing;
    for (int shard = 0; shard < kShards; ++shard)
      if (first_clean_attempt(plan, shard, kMaxAttempts) < 0)
        missing.insert(shard);
    if (!missing.empty() && missing.size() < kShards) {
      seed = candidate;
      expect_missing = missing;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  FleetFixture fx("holes");
  OrchestrateOptions options = fx.base_options(kShards, kShards);
  options.max_attempts = kMaxAttempts;
  options.inject = "crash:0.75";
  options.inject_seed = seed;
  const OrchestrationResult result = run_orchestration(options);

  // Distinct exit code, exact hole list, graceful partial merge.
  EXPECT_EQ(result.exit_code, kExitMissingShards);
  EXPECT_EQ(std::set<int>(result.missing.begin(), result.missing.end()),
            expect_missing);
  EXPECT_FALSE(result.merged_path.empty());
  EXPECT_GT(result.merged_rows, 0u);
  EXPECT_LT(result.merged_rows, 16u);

  const util::Json manifest =
      util::Json::parse(file_bytes(result.manifest_path));
  std::set<int> manifest_missing;
  for (const util::Json& shard : manifest.at("missing").as_array())
    manifest_missing.insert(static_cast<int>(shard.as_int()));
  EXPECT_EQ(manifest_missing, expect_missing);
  for (const int shard : expect_missing) {
    EXPECT_EQ(manifest.at("attempts").at(std::to_string(shard)).as_int(),
              kMaxAttempts);
    // No store entry for a hole.
    EXPECT_FALSE(manifest.at("stores").has(std::to_string(shard)));
  }
  EXPECT_EQ(manifest.at("resume_hint").as_string().find("--resume") !=
                std::string::npos,
            true);

  // Resume-the-holes: same work dir, no injection — only the missing
  // shards run, and the merged store converges to the reference bytes.
  OrchestrateOptions repair = fx.base_options(kShards, kShards);
  repair.resume = true;
  const OrchestrationResult repaired = run_orchestration(repair);
  EXPECT_EQ(repaired.exit_code, kExitOk);
  EXPECT_TRUE(repaired.missing.empty());
  EXPECT_EQ(file_bytes(repair.out_path), file_bytes(fx.ref_path));
}

TEST(Orchestrate, TimeoutKillsAndReschedules) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  FleetFixture fx("timeout");
  OrchestrateOptions options = fx.base_options(1, 1);
  options.max_attempts = 2;
  options.inject = "hang:1.0";  // every attempt wedges mid-sweep
  options.inject_seed = 1;
  options.stale_s = 0;     // heartbeat watchdog off: exercise the hard
  options.timeout_s = 1.0; // per-attempt timeout instead
  const OrchestrationResult result = run_orchestration(options);
  EXPECT_EQ(result.exit_code, kExitMissingShards);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_FALSE(result.shards[0].completed);
  EXPECT_EQ(result.shards[0].failures, 2);  // killed, rescheduled, killed
  EXPECT_NE(result.shards[0].last_error.find("timeout"), std::string::npos)
      << result.shards[0].last_error;
}

TEST(Orchestrate, StaleHeartbeatKillsHungWorker) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  FleetFixture fx("stale");
  OrchestrateOptions options = fx.base_options(1, 1);
  options.max_attempts = 1;
  options.inject = "hang:1.0";
  options.inject_seed = 1;
  options.stale_s = 1.0;
  const OrchestrationResult result = run_orchestration(options);
  EXPECT_EQ(result.exit_code, kExitMissingShards);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_NE(result.shards[0].last_error.find("stale"), std::string::npos)
      << result.shards[0].last_error;
}

TEST(Orchestrate, StragglerSpeculationIsIdempotent) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  // One shard hangs on its first attempt (and would hang forever — the
  // watchdogs are off); the only rescue is the speculative duplicate,
  // whose own attempt draws clean.  Pick such a seed deterministically.
  const std::string inject = "hang:0.5";
  std::uint64_t seed = 0;
  bool found = false;
  for (std::uint64_t candidate = 0; candidate < 500 && !found; ++candidate) {
    const FaultPlan plan = parse_fault_plan(inject, candidate);
    if (fault_draw(plan, 0, 1) == FaultKind::None &&
        fault_draw(plan, 1, 1) == FaultKind::Hang &&
        fault_draw(plan, 1, 2) == FaultKind::None) {
      seed = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  FleetFixture fx("straggler");
  OrchestrateOptions options = fx.base_options(2, 3);
  options.max_attempts = 3;
  options.inject = inject;
  options.inject_seed = seed;
  options.stale_s = 0;       // no watchdog: speculation must do the rescue
  options.timeout_s = 30;    // safety net so a regression can't wedge CI
  options.straggler_factor = 0.25;
  options.straggler_quorum = 0.4;
  const OrchestrationResult result = run_orchestration(options);

  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.shards[1].speculated);
  EXPECT_EQ(result.shards[1].attempts, 2);  // the hung one + the rescue
  // Idempotence: two attempts racing on one shard still produce exactly
  // the single-process bytes after the merge.
  EXPECT_EQ(file_bytes(options.out_path), file_bytes(fx.ref_path));
}

TEST(Orchestrate, HeartbeatProgressFileTracksCompletion) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  FleetFixture fx("heartbeat");
  const std::string store = fx.dir + "/direct.jsonl";
  const std::string progress = store + ".progress";
  util::SpawnSpec spec;
  spec.argv = {campaign_binary(), "--spec", fx.spec_path, "--out", store,
               "--threads", "2", "--progress", progress};
  spec.output_path = fx.dir + "/direct.log";
  util::Subprocess child = util::Subprocess::spawn(spec);
  EXPECT_EQ(child.exit_code_blocking(), 0);
  std::ifstream in(progress);
  std::size_t done = 0, total = 0;
  in >> done >> total;
  EXPECT_EQ(done, 16u);
  EXPECT_EQ(total, 16u);
}

TEST(Orchestrate, RejectsBadGeometryAndMissingSpec) {
  OrchestrateOptions options;
  options.spec_path = testing::TempDir() + "does_not_exist.json";
  options.work_dir = testing::TempDir() + "orch_bad";
  EXPECT_THROW(run_orchestration(options), std::runtime_error);
  options.shards = 0;
  EXPECT_THROW(run_orchestration(options), std::invalid_argument);
}

TEST(Orchestrate, ManifestJsonNamesHolesAndStores) {
  OrchestrateOptions options;
  options.spec_path = "spec.json";
  options.shards = 2;
  options.work_dir = "/w";
  OrchestrationResult result;
  ShardOutcome done;
  done.shard = 0;
  done.completed = true;
  done.attempts = 1;
  done.store_path = "/w/shard_0of2.jsonl";
  ShardOutcome hole;
  hole.shard = 1;
  hole.completed = false;
  hole.attempts = 3;
  result.shards = {done, hole};
  result.missing = {1};
  result.merged_path = "/w/merged.jsonl";
  result.merged_rows = 8;
  const util::Json j = manifest_json(options, result, "demo");
  EXPECT_EQ(j.at("campaign").as_string(), "demo");
  EXPECT_EQ(j.at("shards").as_int(), 2);
  EXPECT_EQ(j.at("completed").as_array().size(), 1u);
  EXPECT_EQ(j.at("missing").as_array()[0].as_int(), 1);
  EXPECT_EQ(j.at("attempts").at("1").as_int(), 3);
  EXPECT_EQ(j.at("stores").at("0").as_string(), "/w/shard_0of2.jsonl");
  EXPECT_NE(j.at("resume_hint").as_string().find("--resume"),
            std::string::npos);
}

// --- fault-exit stderr capture -------------------------------------------------

TEST(Subprocess, CapturesStderrOnFaultExitCodes) {
  // The orchestrator reads worker attempt logs post-mortem; stderr from a
  // worker dying with the fault codes must land in output_path.
  for (const int code : {kFaultExitCrash, kFaultExitTrunc}) {
    const std::string out = testing::TempDir() + "fault_stderr_" +
                            std::to_string(code) + ".log";
    std::remove(out.c_str());
    util::SpawnSpec spec;
    spec.argv = {"/bin/sh", "-c",
                 "echo diagnostic-before-death >&2; exit " +
                     std::to_string(code)};
    spec.output_path = out;
    util::Subprocess child = util::Subprocess::spawn(spec);
    EXPECT_EQ(child.exit_code_blocking(), code);
    EXPECT_FALSE(child.signaled());
    EXPECT_NE(file_bytes(out).find("diagnostic-before-death"),
              std::string::npos)
        << "exit " << code;
  }
}

TEST(Subprocess, CapturesWorkerStderrOnInjectedCrashAndTrunc) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  FleetFixture fx("fault_stderr");

  const auto run_with_fault = [&](const std::string& inject,
                                  const std::string& tag) {
    const std::string store = fx.dir + "/" + tag + ".jsonl";
    const std::string log = store + ".log";
    util::SpawnSpec spec;
    spec.argv = {campaign_binary(), "--spec", fx.spec_path,
                 "--out", store, "--resume"};
    spec.env = {{kFaultInjectEnv, inject}, {kFaultSeedEnv, "0"},
                {kFaultAttemptEnv, "1"}};
    spec.output_path = log;
    util::Subprocess child = util::Subprocess::spawn(spec);
    const int code = child.exit_code_blocking();
    return std::make_pair(code, file_bytes(log));
  };

  // crash:1.0 -> mid-sweep _Exit(70); the armed-fault note reached the log.
  const auto [crash_code, crash_log] = run_with_fault("crash:1.0", "crash");
  EXPECT_EQ(crash_code, kFaultExitCrash);
  EXPECT_NE(crash_log.find("fault injection armed: crash"),
            std::string::npos);

  // trunc:1.0 -> store torn after the write, _Exit(71), tear note logged.
  const auto [trunc_code, trunc_log] = run_with_fault("trunc:1.0", "trunc");
  EXPECT_EQ(trunc_code, kFaultExitTrunc);
  EXPECT_NE(trunc_log.find("fault injection armed: trunc"),
            std::string::npos);
  EXPECT_NE(trunc_log.find("tore"), std::string::npos);
}

// --- telemetry end-to-end ------------------------------------------------------

TEST(Orchestrate, TelemetryTimelineIsDeterministicUnderFaults) {
  if (campaign_binary().empty()) GTEST_SKIP() << "dring_campaign not built";
  // A crash/trunc-only schedule (no hangs: kill timing is wall-clock, and
  // no speculation) makes the full per-shard event sequence a pure
  // function of the plan — the property this test pins.
  const int kShards = 3, kMaxAttempts = 6;
  const std::string kInject = "crash:0.4,trunc:0.3";
  std::uint64_t seed = 0;
  FaultPlan plan;
  bool found = false;
  for (std::uint64_t candidate = 0; candidate < 500 && !found; ++candidate) {
    plan = parse_fault_plan(kInject, candidate);
    bool converges = true;
    int faults = 0;
    for (int shard = 0; shard < kShards; ++shard) {
      const int clean = first_clean_attempt(plan, shard, kMaxAttempts);
      if (clean < 0) {
        converges = false;
        break;
      }
      faults += clean - 1;
    }
    if (converges && faults >= 2) {
      seed = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no converging fault seed in the search range";

  const auto run_once = [&](const std::string& name) {
    FleetFixture fx(name);
    OrchestrateOptions options = fx.base_options(kShards, kShards);
    options.max_attempts = kMaxAttempts;
    options.inject = kInject;
    options.inject_seed = seed;
    options.telemetry = true;  // workers write their own sidecars
    telemetry().enable(options.out_path);
    const OrchestrationResult result = run_orchestration(options);
    telemetry().shutdown();
    EXPECT_EQ(result.exit_code, kExitOk);
    // Telemetry on: merged bytes still match the fault-free reference.
    EXPECT_EQ(file_bytes(options.out_path), file_bytes(fx.ref_path));
    // Worker sidecars landed next to the shard stores.
    EXPECT_TRUE(fs::exists(shard_store_path(options, 0) + ".events.jsonl"));
    EXPECT_TRUE(fs::exists(shard_store_path(options, 0) + ".metrics.json"));
    return render_timeline(
        read_events_file(options.out_path + ".events.jsonl"));
  };

  const std::string timeline = run_once("telemetry_a");

  // The rendered timeline narrates the predicted schedule: every faulty
  // attempt dispatches with its fault named, exits non-zero, retries, and
  // the clean attempt completes the shard.
  for (int shard = 0; shard < kShards; ++shard) {
    const int clean = first_clean_attempt(plan, shard, kMaxAttempts);
    EXPECT_NE(timeline.find("## shard " + std::to_string(shard)),
              std::string::npos);
    for (int attempt = 1; attempt < clean; ++attempt) {
      const FaultKind kind =
          fault_draw(plan, static_cast<std::uint64_t>(shard), attempt);
      EXPECT_NE(timeline.find("orchestrate.dispatch attempt=" +
                              std::to_string(attempt) + " fault=" +
                              to_string(kind)),
                std::string::npos)
          << "shard " << shard << " attempt " << attempt;
      const int code =
          kind == FaultKind::Trunc ? kFaultExitTrunc : kFaultExitCrash;
      EXPECT_NE(timeline.find("attempt=" + std::to_string(attempt) +
                              " code=" + std::to_string(code)),
                std::string::npos)
          << "shard " << shard << " attempt " << attempt;
    }
    EXPECT_NE(timeline.find("orchestrate.shard_complete attempt=" +
                            std::to_string(clean)),
              std::string::npos)
        << "shard " << shard;
  }
  EXPECT_NE(timeline.find("orchestrate.merge rows=16"), std::string::npos);

  // Determinism: a second full run renders byte-identically.
  EXPECT_EQ(run_once("telemetry_b"), timeline);
}

}  // namespace
}  // namespace dring::core
