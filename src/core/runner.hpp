// Public entry point of the library: configure a scenario (ring, model,
// algorithm, knowledge, placements, adversary) and run it.
//
// Typical use (see examples/quickstart.cpp):
//
//   dring::core::ExplorationConfig cfg =
//       dring::core::default_config(dring::algo::AlgorithmId::
//                                       LandmarkWithChirality, /*n=*/12);
//   dring::adversary::RandomAdversary adv(0.5, 1.0, /*seed=*/42);
//   dring::sim::RunResult r = dring::core::run_exploration(cfg, &adv);
//
// The result reports ground truth: whether the ring was explored, when,
// how many moves were spent, which agents terminated and — crucially —
// whether any agent terminated before exploration was complete (the
// correctness condition of the paper).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "agent/orientation.hpp"
#include "algo/registry.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "sim/models.hpp"

namespace dring::core {

/// Full description of a run.
struct ExplorationConfig {
  NodeId n = 8;                       ///< ring size (>= 3)
  std::optional<NodeId> landmark;     ///< landmark node, if any
  sim::Model model = sim::Model::FSYNC;
  algo::AlgorithmId algorithm = algo::AlgorithmId::KnownNNoChirality;
  int num_agents = 0;                 ///< 0 = use the theorem's agent count
  std::vector<NodeId> start_nodes;    ///< empty = evenly spread placements
  /// One orientation per agent; empty = all agents share kChiralOrientation.
  std::vector<agent::Orientation> orientations;
  std::optional<std::int64_t> upper_bound;  ///< knowledge: N >= n
  std::optional<std::int64_t> exact_n;      ///< knowledge: exact n
  sim::EngineOptions engine;
  sim::StopPolicy stop;
};

/// A config pre-filled with the assumptions the algorithm's theorem makes:
/// agent count, landmark at node 0 when needed, tight bound N = n, exact n,
/// shared orientations when chirality is required (mirrored otherwise), and
/// a stop policy matching the termination kind (explicit / partial /
/// unconscious).  Start nodes default to an even spread (or the landmark
/// for StartFromLandmarkNoChirality).
ExplorationConfig default_config(algo::AlgorithmId id, NodeId n);

/// Same, for a team of `num_agents` agents (0 = the theorem's count): the
/// placement/orientation policy above is applied to k agents — the
/// many-agent extension axis used by the campaign subsystem.
ExplorationConfig default_config(algo::AlgorithmId id, NodeId n,
                                 int num_agents);

/// Resolve a config into a batch lane: the same validation, placement,
/// orientation and knowledge resolution as make_engine — the single source
/// of truth both execution paths share, which the batch/scalar bit-identity
/// pin depends on. The adversary is owned by the lane (nullptr =
/// NullAdversary semantics).
sim::BatchLaneConfig make_lane_config(
    const ExplorationConfig& cfg, std::unique_ptr<sim::Adversary> adversary);

/// Build the engine for a config (adds agents, installs the adversary).
/// Exposed for tests that need to drive the engine round by round.
std::unique_ptr<sim::Engine> make_engine(const ExplorationConfig& cfg,
                                         sim::Adversary* adversary);

/// Run to completion under the config's stop policy.
sim::RunResult run_exploration(const ExplorationConfig& cfg,
                               sim::Adversary* adversary);

}  // namespace dring::core
