#include "util/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dring::util {

Histogram::Histogram(std::vector<long long> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "histogram: bounds must be strictly increasing (bound " +
          std::to_string(bounds_[i]) + " after " +
          std::to_string(bounds_[i - 1]) + ")");
  counts_.assign(bounds_.size() + 1, 0);
}

std::size_t Histogram::bucket_index(long long value) const {
  // First bound >= value (buckets are upper-inclusive, Prometheus "le"
  // style); everything above the last bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(long long value) {
  const std::size_t bucket = bucket_index(value);
  std::lock_guard<std::mutex> lock(mutex_);
  counts_[bucket] += 1;
  count_ += 1;
  sum_ += value;
}

std::vector<long long> Histogram::exponential_bounds(long long start,
                                                     int count) {
  if (start < 1 || count < 1)
    throw std::invalid_argument("histogram: exponential_bounds needs "
                                "start >= 1 and count >= 1");
  std::vector<long long> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  long long bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    if (bound > (1LL << 61)) break;  // saturate before doubling overflows
    bound *= 2;
  }
  return bounds;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || histograms_.count(name))
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another type");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || histograms_.count(name))
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another type");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<long long>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name))
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another type");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

Json MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Empty sections still render as {} so the snapshot shape is constant.
  Json counters{Json::Object{}};
  for (const auto& [name, counter] : counters_)
    counters.set(name, counter->value());
  Json gauges{Json::Object{}};
  for (const auto& [name, gauge] : gauges_) gauges.set(name, gauge->value());
  Json histograms{Json::Object{}};
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    Json::Array buckets;
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      Json bucket;
      bucket.set("count", snap.counts[i]);
      // The overflow bucket's bound is the string "inf": keeping the value
      // integral elsewhere means no float formatting anywhere in the
      // histogram section.
      if (i < snap.bounds.size())
        bucket.set("le", snap.bounds[i]);
      else
        bucket.set("le", "inf");
      buckets.push_back(std::move(bucket));
    }
    Json h;
    h.set("buckets", Json(std::move(buckets)));
    h.set("count", snap.count);
    h.set("sum", snap.sum);
    histograms.set(name, std::move(h));
  }
  Json j;
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace dring::util
