// Reproduces Table 4 of the paper (SSYNC possibility results):
//
//   | PT | 2 | chirality + bound N    | partial termination, O(N^2) moves |
//   | PT | 2 | chirality + landmark   | partial termination, O(n^2) moves |
//   | PT | 3 | bound N                | partial termination, O(N^2) moves |
//   | PT | 3 | landmark               | partial termination, O(n^2) moves |
//   | ET | 2 | chirality              | unconscious exploration           |
//   | ET | 3 | known n                | partial termination               |
//
// Since PR 4 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario grid (hostile randomized dynamics
// plus the sliding-window move-forcing adversary on the 2-agent rows),
// the worst-moves fold and the table formatting live in the
// "table4_ssync" artifact, whose campaign store also backs the committed
// examples/paper/table4_ssync.md report (dring_artifact).  Output is
// byte-identical to the pre-migration bench.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 6));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  std::vector<NodeId> sizes = {5, 6, 8, 11, 16, 24};
  if (cli.has("max-n")) {
    const NodeId cap = static_cast<NodeId>(cli.get_int("max-n", 24));
    sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                               [&](NodeId n) { return n > cap; }),
                sizes.end());
  }

  const core::Artifact artifact = core::make_table4_artifact(sizes, seeds);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
