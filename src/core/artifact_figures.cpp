// Figure artifacts: the Figure 2 worst-case schedule sweep, the execution
// figures 12/15/16 (per-round TraceSeries persisted in the store, so the
// committed reports derive from rows alone), and the Figure 9/10/11
// ID-machinery worked examples (pure computation, zero scenarios).
// Formatting is cell-for-cell the retired bench pipelines.
#include <algorithm>
#include <sstream>

#include "algo/id_encoding.hpp"
#include "core/artifact.hpp"
#include "util/bitstring.hpp"
#include "util/table.hpp"

namespace dring::core {

namespace {

// --- Figure 2 worst-case schedule -------------------------------------------

std::vector<ArtifactScenario> fig2_scenarios(
    const std::vector<NodeId>& sizes) {
  std::vector<ArtifactScenario> scenarios;
  for (const NodeId n : sizes) {
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = n;
    s.spec.start_nodes = {2, 3};
    s.spec.orientations = "cc";
    s.spec.max_rounds = 10 * n;
    s.spec.adversary.family = "fig2";
    s.spec.adversary.edge = 2;
    s.label = "n=" + std::to_string(n);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

bool fig2_match(const CampaignRow& row) {
  return row.outcome.explored &&
         row.outcome.explored_round == 3 * row.spec.n - 6 &&
         !row.outcome.premature_termination;
}

std::string render_fig2(const std::vector<ArtifactScenario>& scenarios,
                        const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  out << "=== Figure 2: worst-case schedule for KnownNNoChirality "
         "(Theorem 3 tightness) ===\n\n";

  util::Table table({"n", "r1 = n-3", "r2 = 2n-5", "r3 = 3n-6 (paper)",
                     "explored round (measured)", "termination round",
                     "match"});
  bool all_match = true;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const NodeId n = scenarios[i].spec.n;
    const CampaignOutcome& r = rows[i]->outcome;
    const bool match = fig2_match(*rows[i]);
    all_match = all_match && match;
    const Round term = std::max<Round>(r.last_termination, 0);
    table.add_row({std::to_string(n), std::to_string(n - 3),
                   std::to_string(2 * n - 5), std::to_string(3 * n - 6),
                   std::to_string(r.explored_round), std::to_string(term),
                   match ? "yes" : "NO"});
  }

  table.print(out);
  out << "\nThe schedule forces exploration to take exactly 3n-6 "
         "rounds, matching the paper's tightness claim for Theorem 3"
      << (all_match ? "." : " — MISMATCH DETECTED!") << "\n";
  return out.str();
}

// --- Figures 12 / 15 / 16 ---------------------------------------------------

constexpr NodeId kFig12N = 7;   // odd: both agents reach the antipode together
constexpr NodeId kFig15N = 14;
constexpr NodeId kFig16N = 10;

std::vector<ArtifactScenario> fig_runs_scenarios() {
  std::vector<ArtifactScenario> scenarios;

  // Figure 12: both agents bounce on the antipodal edge and return to the
  // landmark simultaneously.
  {
    ArtifactScenario s;
    s.spec.algorithm = "StartFromLandmarkNoChirality";
    s.spec.n = kFig12N;
    s.spec.orientations = "cm";
    s.spec.max_rounds = 100;
    s.spec.adversary.family = "edge-window";
    s.spec.adversary.edge = (kFig12N - 1) / 2;
    s.spec.adversary.window_lo = (kFig12N - 1) / 2;
    s.spec.adversary.window_hi = (kFig12N - 1) / 2 + 2;
    s.label = "figure-12";
    s.group = 0;
    s.trace = true;
    scenarios.push_back(std::move(s));
  }

  // Figure 15: the PT bounce/reverse run.
  {
    ArtifactScenario s;
    s.spec.algorithm = "PTBoundWithChirality";
    s.spec.n = kFig15N;
    s.spec.start_nodes = {static_cast<NodeId>(kFig15N / 2 - 1), 0};
    s.spec.orientations = "cc";
    s.spec.fairness_window = 1 << 20;
    s.spec.max_rounds = 40'000;
    s.spec.stop_explored_one_terminated = true;
    s.spec.adversary.family = "sliding-window";
    s.label = "figure-15";
    s.group = 1;
    s.trace = true;
    scenarios.push_back(std::move(s));
  }

  // Figure 16: the Theorem 13 window dance, first 60 rounds.
  {
    ArtifactScenario s;
    s.spec.algorithm = "PTBoundWithChirality";
    s.spec.n = kFig16N;
    s.spec.start_nodes = {static_cast<NodeId>(kFig16N / 2 - 1), 0};
    s.spec.orientations = "cc";
    s.spec.fairness_window = 1 << 20;
    s.spec.max_rounds = 60;
    s.spec.stop_mode = "horizon";
    s.spec.adversary.family = "sliding-window";
    s.label = "figure-16";
    s.group = 2;
    s.trace = true;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ArtifactExtras fig_runs_enrich(const ArtifactScenario& scenario,
                               const SweepRun& run) {
  ArtifactExtras extras;
  TraceSeries series;
  if (scenario.group == 0) {
    // Figure 12: round | missing | "node state" per agent.
    for (const sim::RoundTrace& rt : run.trace)
      series.add({std::to_string(rt.round),
                  rt.missing ? std::to_string(*rt.missing) : "-",
                  std::to_string(rt.agents[0].node) + " " +
                      rt.agents[0].state,
                  std::to_string(rt.agents[1].node) + " " +
                      rt.agents[1].state});
  } else if (scenario.group == 1) {
    // Figure 15: reconstruct the chaser's legs from its state changes.
    std::string cur_state;
    long long leg = 0;
    int leg_no = 0;
    NodeId prev_node = -1;
    bool first = true;
    for (const sim::RoundTrace& rt : run.trace) {
      const sim::AgentTrace& ch = rt.agents[1];
      if (first) {
        cur_state = ch.state;
        prev_node = ch.node;
        first = false;
        continue;
      }
      if (ch.node != prev_node) ++leg;
      prev_node = ch.node;
      if (ch.state != cur_state || ch.terminated) {
        if (leg > 0)
          series.add({std::to_string(++leg_no), cur_state,
                      std::to_string(leg)});
        cur_state = ch.state;
        leg = 0;
        if (ch.terminated) break;
      }
    }
  } else {
    // Figure 16: round | missing | leader (+[port]) | chaser (+state);
    // a window shift = a passive transport of the leader.
    long long shifts = 0;
    NodeId prev_leader_node = static_cast<NodeId>(kFig16N / 2 - 1);
    for (const sim::RoundTrace& rt : run.trace) {
      if (rt.agents[0].node != prev_leader_node && !rt.agents[0].active)
        ++shifts;
      prev_leader_node = rt.agents[0].node;
      series.add(
          {std::to_string(rt.round),
           rt.missing ? std::to_string(*rt.missing) : "-",
           std::to_string(rt.agents[0].node) +
               (rt.agents[0].on_port ? " [port]" : ""),
           std::to_string(rt.agents[1].node) + " " + rt.agents[1].state});
    }
    extras.numbers["shifts"] = shifts;
  }
  extras.text["series"] = series.encode();
  return extras;
}

/// The row's decoded per-round series, as stored by the enrich hook.
TraceSeries stored_series(const CampaignRow& row) {
  const auto it = row.outcome.extra_text.find("series");
  return TraceSeries::decode(it == row.outcome.extra_text.end() ? ""
                                                                : it->second);
}

std::string render_fig_runs(const std::vector<ArtifactScenario>& scenarios,
                            const std::vector<const CampaignRow*>& rows) {
  (void)scenarios;
  std::ostringstream out;

  // --- Figure 12 ------------------------------------------------------------
  out << "=== Figure 12: termination from state AtLandmark ===\n\n";
  {
    const CampaignOutcome& r = rows[0]->outcome;
    util::Table t({"round", "missing", "agent a (node, state)",
                   "agent b (node, state)"});
    for (std::vector<std::string>& row : stored_series(*rows[0]).rows)
      t.add_row(std::move(row));
    t.print(out);
    out << "explored=" << (r.explored ? "yes" : "NO")
        << ", both terminated="
        << (r.all_terminated ? "yes" : "NO")
        << ", premature=" << (r.premature_termination ? "YES" : "no")
        << "  (both agents bounced on edge " << (kFig12N - 1) / 2
        << " and met again at the landmark)\n";
  }

  // --- Figure 15 ------------------------------------------------------------
  out << "\n=== Figure 15: delta grows at each Bounce-Reverse of the "
         "chaser ===\n\n";
  {
    util::Table t({"leg#", "chaser state", "leg length (moves)"});
    for (std::vector<std::string>& row : stored_series(*rows[1]).rows)
      t.add_row(std::move(row));
    t.print(out);
    out << "total moves=" << rows[1]->outcome.total_moves
        << ", terminated=" << rows[1]->outcome.terminated_agents << "/2"
        << "  (each left leg is one node longer than the previous "
           "right leg, so the rightSteps >= leftSteps termination "
           "check never fires early)\n";
  }

  // --- Figure 16 ------------------------------------------------------------
  out << "\n=== Figure 16: the Theorem 13 window dance (first phases) "
         "===\n\n";
  {
    util::Table t({"round", "missing edge", "leader (node, on-port?)",
                   "chaser (node, state)"});
    for (std::vector<std::string>& row : stored_series(*rows[2]).rows)
      t.add_row(std::move(row));
    t.print(out);
    out << "window shifts so far: " << stored_extra(*rows[2], "shifts", 0)
        << "  (the leader is passively transported one node per "
           "phase, exactly when the chaser is blocked at the other "
           "window boundary)\n";
  }
  return out.str();
}

// --- Figures 9 / 10 / 11 ----------------------------------------------------

struct IdCase {
  const char* fig;
  const char* agent;
  std::uint64_t k1, k2, k3, expect;
};

constexpr IdCase kIdCases[] = {
    {"Fig. 9", "a", 2, 2, 0, 48},
    {"Fig. 9", "b", 3, 4, 0, 164},
    {"Fig. 10", "a", 2, 1, 2, 42},
    {"Fig. 10", "b", 6, 2, 0, 304},
};

bool fig9_11_ok() {
  for (const IdCase& c : kIdCases)
    if (algo::compute_agent_id(c.k1, c.k2, c.k3) != c.expect) return false;
  return algo::IdSchedule(1).phase_string(3) == "11001100";
}

std::string render_fig9_11(const std::vector<ArtifactScenario>&,
                           const std::vector<const CampaignRow*>&) {
  std::ostringstream out;
  out << "=== Figures 9 and 10: ID assignment worked examples ===\n\n";
  util::Table ids({"Figure", "Agent", "k1", "k2", "k3", "interleaved",
                   "ID (paper)", "ID (computed)", "match"});
  for (const IdCase& c : kIdCases) {
    const std::uint64_t id = algo::compute_agent_id(c.k1, c.k2, c.k3);
    ids.add_row({c.fig, c.agent, util::to_binary(c.k1), util::to_binary(c.k2),
                 util::to_binary(c.k3),
                 util::interleave3(util::to_binary(c.k1),
                                   util::to_binary(c.k2),
                                   util::to_binary(c.k3)),
                 std::to_string(c.expect), std::to_string(id),
                 id == c.expect ? "yes" : "NO"});
  }
  ids.print(out);

  out << "\n=== Figure 11: direction schedule for ID = 1 ===\n\n";
  algo::IdSchedule sched(1);
  out << "S(ID)  = " << sched.padded_s() << "   (\"10\" + b(1) + \"0\")\n"
      << "jbar   = " << sched.jbar() << "\n"
      << "phase 3 string = " << sched.phase_string(3)
      << "   (paper: 11001100)\n"
      << "phase 4 string = " << sched.phase_string(4) << "\n\n";

  util::Table dirs({"round", "phase", "direction (0=left, 1=right)"});
  for (std::int64_t r = 1; r <= 23; ++r) {
    dirs.add_row({std::to_string(r),
                  std::to_string(algo::phase_of_round(r)),
                  sched.direction(r) == Dir::Left ? "0 (left)" : "1 (right)"});
  }
  dirs.print(out);

  out << "\nFigure 11 phase-3 expansion "
      << (sched.phase_string(3) == "11001100" ? "matches" : "DOES NOT match")
      << " the paper.\n";
  return out.str();
}

}  // namespace

// --- builders ----------------------------------------------------------------

Artifact make_fig2_worstcase_artifact(std::vector<NodeId> sizes) {
  Artifact artifact;
  artifact.name = "fig2_worstcase";
  artifact.title = "Figure 2: the worst-case schedule forcing exactly 3n-6 "
                   "rounds (Theorem 3 tightness)";
  artifact.report_file = "fig2_worstcase.md";
  artifact.scenarios = fig2_scenarios(sizes);
  artifact.render = render_fig2;
  artifact.status = [](const std::vector<ArtifactScenario>&,
                       const std::vector<const CampaignRow*>& rows) {
    for (const CampaignRow* row : rows)
      if (!fig2_match(*row)) return 1;
    return 0;
  };
  return artifact;
}

Artifact make_fig_runs_artifact() {
  Artifact artifact;
  artifact.name = "fig_runs";
  artifact.title = "Figures 12/15/16: the paper's execution figures as "
                   "recorded per-round runs";
  artifact.report_file = "fig_runs.md";
  artifact.scenarios = fig_runs_scenarios();
  artifact.enrich = fig_runs_enrich;
  artifact.render = render_fig_runs;
  return artifact;
}

Artifact make_fig9_11_artifact() {
  Artifact artifact;
  artifact.name = "fig9_11_id_machinery";
  artifact.title = "Figures 9/10/11: ID assignment worked examples and the "
                   "ID = 1 direction schedule (pure computation)";
  artifact.report_file = "fig9_11_id_machinery.md";
  artifact.render = render_fig9_11;
  artifact.status = [](const std::vector<ArtifactScenario>&,
                       const std::vector<const CampaignRow*>&) {
    return fig9_11_ok() ? 0 : 1;
  };
  return artifact;
}

}  // namespace dring::core
