// Fault-tolerant campaign orchestrator: dispatch a campaign's shards to a
// supervised pool of dring_campaign subprocess workers, retry/reschedule
// failures, merge the completed shards, and name the holes.
//
//   dring_orchestrate --spec campaign.json --shards 8 --workers 4 \
//       --work-dir /tmp/fleet --out merged.jsonl \
//       [--threads N] [--max-attempts K] [--timeout-s T] [--stale-s S] \
//       [--backoff-base-ms B] [--backoff-cap-ms C] [--backoff-jitter J] \
//       [--straggler-factor F] [--straggler-quorum Q] [--resume] \
//       [--inject crash:p,hang:p,trunc:p --inject-seed SEED]
//
// Exit codes: 0 = every shard completed and merged; 1 = hard error;
// 2 = usage; 3 = some shards exhausted their retries — the completed ones
// are merged anyway, <out>.manifest.json lists exactly the missing shards,
// and re-running with --resume completes only the holes.
//
// Under a fixed --inject-seed the injected crash/hang/trunc schedule is
// deterministic, and the converged merged store is byte-identical to the
// fault-free single-process `dring_campaign --spec ... --out` store (the
// CI gate).
#include <iostream>

#include "core/orchestrate.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_orchestrate",
                        "supervise a fleet of dring_campaign shard workers "
                        "with retry, backoff and fault tolerance");
  flags.synopsis("dring_orchestrate --spec campaign.json --shards M "
                 "--workers W --work-dir DIR --out merged.jsonl [options]")
      .flag("spec", "FILE", "campaign definition to shard and run")
      .flag("shards", "M", "grid partitions (one worker unit each)")
      .flag("workers", "W", "max concurrent worker subprocesses")
      .flag("threads", "N", "worker threads per subprocess (default 1)")
      .flag("batch", "W", "batched lockstep lanes per worker thread, "
                          "forwarded to workers (0 = scalar engine)")
      .flag("work-dir", "DIR", "shard stores, heartbeats and worker logs")
      .flag("out", "FILE", "merged result store")
      .flag("resume", "", "keep existing shard stores and fill the holes")
      .flag("max-attempts", "K", "per-shard failure cap (default 3)")
      .flag("timeout-s", "T", "hard per-attempt timeout (0 = none)")
      .flag("stale-s", "S", "kill a worker whose heartbeat is older than S "
                            "seconds (default 30; 0 = off)")
      .flag("backoff-base-ms", "B", "first retry delay (default 500)")
      .flag("backoff-cap-ms", "C", "retry delay ceiling (default 10000)")
      .flag("backoff-jitter", "J", "jitter fraction in [0,1] (default 0.5)")
      .flag("backoff-seed", "SEED", "jitter stream seed (default 0)")
      .flag("straggler-factor", "F", "speculate a shard running F x the "
                                     "median shard time (0 = off)")
      .flag("straggler-quorum", "Q", "fraction of shards that must finish "
                                     "before speculating (default 0.5)")
      .flag("inject", "SPEC", "fault injection: crash:p,hang:p,trunc:p "
                              "(deterministic per seed/shard/attempt)")
      .flag("inject-seed", "SEED", "fault schedule seed (default 0)")
      .flag("campaign-bin", "PATH", "worker binary (default: dring_campaign "
                                    "next to this executable)")
      .flag("poll-s", "S", "supervisor poll interval (default 0.05)")
      .flag("telemetry", "", "write supervisor metrics + attempt event-log "
                             "sidecars next to --out (and forward "
                             "--telemetry to every worker); merged store "
                             "bytes unchanged");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("exit codes:")
      .note("  0  every shard completed; merged store + manifest written")
      .note("  1  hard error (bad spec, merge conflict, missing worker "
            "binary)")
      .note("  2  usage error (unknown flag, bad geometry, bad --inject)")
      .note("  3  some shards exhausted --max-attempts; completed shards "
            "are merged anyway, <out>.manifest.json names the holes, "
            "re-running with --resume fills exactly them")
      .note("worker exits it supervises: 0 ok, 70 injected crash/hang "
            "(killed), 71 injected torn store; any non-zero exit or a "
            "stale heartbeat triggers retry with backoff")
      .note("shards are idempotent and store writes atomic, so retries, "
            "speculation and resume never corrupt or duplicate rows");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();

  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return core::kExitOk;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return core::kExitUsage;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  core::OrchestrateOptions options;
  options.spec_path = cli.get("spec", "");
  options.shards = static_cast<int>(cli.get_int("shards", 1));
  options.workers = static_cast<int>(cli.get_int("workers", 2));
  options.threads_per_worker = static_cast<int>(cli.get_int("threads", 1));
  options.batch_width = static_cast<int>(cli.get_int("batch", 0));
  options.work_dir = cli.get("work-dir", "");
  options.out_path = cli.get("out", "");
  options.resume = cli.get_bool("resume", false);
  options.max_attempts = static_cast<int>(cli.get_int("max-attempts", 3));
  options.timeout_s = cli.get_double("timeout-s", 0);
  options.stale_s = cli.get_double("stale-s", 30);
  options.poll_s = cli.get_double("poll-s", 0.05);
  options.backoff.base_ms = cli.get_int("backoff-base-ms", 500);
  options.backoff.cap_ms = cli.get_int("backoff-cap-ms", 10000);
  options.backoff.jitter = cli.get_double("backoff-jitter", 0.5);
  options.backoff.seed =
      static_cast<std::uint64_t>(cli.get_int("backoff-seed", 0));
  options.straggler_factor = cli.get_double("straggler-factor", 0);
  options.straggler_quorum = cli.get_double("straggler-quorum", 0.5);
  options.inject = cli.get("inject", "");
  options.inject_seed =
      static_cast<std::uint64_t>(cli.get_int("inject-seed", 0));
  options.campaign_binary = cli.get("campaign-bin", "");
  options.telemetry = cli.get_bool("telemetry", false);

  if (options.spec_path.empty() || options.work_dir.empty()) {
    std::cerr << flags.help_text();
    return core::kExitUsage;
  }
  if (options.shards < 1 || options.workers < 1 || options.max_attempts < 1 ||
      options.backoff.jitter < 0 || options.backoff.jitter > 1) {
    std::cerr << "bad geometry: need shards/workers/max-attempts >= 1 and "
                 "backoff-jitter in [0,1]\n";
    return core::kExitUsage;
  }
  if (!options.inject.empty()) {
    try {
      (void)core::parse_fault_plan(options.inject, options.inject_seed);
    } catch (const std::exception& e) {
      std::cerr << "bad --inject: " << e.what() << "\n";
      return core::kExitUsage;
    }
  }

  if (options.telemetry) {
    // Supervisor sidecars land next to the merged store (or in the work
    // dir when no merge target was given).
    const std::string base = options.out_path.empty()
                                 ? options.work_dir + "/orchestrate"
                                 : options.out_path;
    try {
      core::telemetry().enable(base);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return core::kExitError;
    }
  }

  core::OrchestrationResult result;
  try {
    result = core::run_orchestration(
        options, core::log_enabled(core::LogLevel::kInfo) ? &std::cerr
                                                          : nullptr);
  } catch (const std::exception& e) {
    std::cerr << "orchestration failed: " << e.what() << "\n";
    return core::kExitError;
  }
  core::telemetry().shutdown();  // no-op unless --telemetry

  std::size_t completed = 0;
  int attempts = 0;
  for (const core::ShardOutcome& shard : result.shards) {
    if (shard.completed) ++completed;
    attempts += shard.attempts;
  }
  std::cout << "orchestrated " << options.shards << " shards on "
            << options.workers << " workers: " << completed << " completed, "
            << result.missing.size() << " missing, " << attempts
            << " attempts total\n";
  if (!result.merged_path.empty())
    std::cout << "merged store: " << result.merged_path << " ("
              << result.merged_rows << " rows)\n";
  std::cout << "manifest: " << result.manifest_path << "\n";
  if (!result.missing.empty()) {
    std::cout << "missing shards:";
    for (const int shard : result.missing) std::cout << " " << shard;
    std::cout << "\nre-run with --resume to fill exactly the holes\n";
  }
  return result.exit_code;
}
