// Telemetry renderer: per-shard attempt timelines, metrics summaries and
// the engine perf trend, from the sidecar files the other tools emit.
//
//   dring_metrics --events run.jsonl.events.jsonl [--times]
//   dring_metrics --metrics run.jsonl.metrics.json
//   dring_metrics --bench BENCH_engine.json [--emit-archive FILE]
//   any of the above with --format md|csv|json
//
// `--events` renders the orchestrator attempt timeline grouped by shard:
// every dispatch, worker exit, kill, retry (with its backoff delay),
// give-up and speculation event, in emission order.  Timestamps are
// omitted unless --times, so for a fixed fault schedule the default
// rendering is byte-stable — CI pins the timeline of the fault-injected
// gate run.  `--metrics` summarizes a metrics snapshot (counters, gauges,
// histogram means, derived rates such as the probe-memo hit rate).
// `--bench` folds the committed BENCH_engine.json into a trend table
// (including the rebaseline `history` eras) — the perf data spine of the
// trend dashboard.  --format json re-emits the parsed document
// canonically (sorted keys); --format csv renders one flat plot-ready
// table through the shared render_cells renderer.  With --bench,
// --emit-archive FILE writes the marks + rebaseline history as an
// archive fragment `dring_dashboard --collect --perf FILE` consumes.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/archive.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_metrics",
                        "render telemetry sidecars: per-shard attempt "
                        "timelines, metrics summaries, perf trends");
  flags.synopsis("dring_metrics --events FILE.events.jsonl [--times]"
                 " [--format md|csv|json]")
      .synopsis("dring_metrics --metrics FILE.metrics.json"
                " [--format md|csv|json]")
      .synopsis("dring_metrics --bench BENCH_engine.json"
                " [--format md|csv|json] [--emit-archive FILE]")
      .flag("events", "FILE", "event log to render as a per-shard timeline")
      .flag("times", "", "include wall-clock stamps and span durations "
                         "(timing varies run to run; off by default so the "
                         "timeline is byte-stable)")
      .flag("metrics", "FILE", "metrics snapshot to summarize")
      .flag("bench", "FILE", "perf snapshot (BENCH_engine.json) to render "
                             "as a trend table")
      .flag("emit-archive", "FILE", "with --bench: also write the marks + "
                                    "rebaseline history as an archive "
                                    "fragment for dring_dashboard --collect "
                                    "--perf")
      .flag("format", "F", "md (default), csv or json");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("sidecars: dring_campaign/dring_orchestrate --telemetry write "
            "<out>.events.jsonl and <out>.metrics.json next to the store");
  return flags;
}

util::Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return util::Json::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  core::ReportFormat format;
  try {
    format = core::report_format_from_string(cli.get("format", "md"));
  } catch (const std::exception& e) {
    std::cerr << "dring_metrics: " << e.what() << "\n";
    return 2;
  }
  const int selected = (cli.has("events") ? 1 : 0) +
                       (cli.has("metrics") ? 1 : 0) +
                       (cli.has("bench") ? 1 : 0);
  if (selected != 1) {
    std::cerr << "dring_metrics: pass exactly one of --events, --metrics, "
                 "--bench\n"
              << flags.help_text();
    return 2;
  }
  if (cli.has("emit-archive") && !cli.has("bench")) {
    std::cerr << "dring_metrics: --emit-archive needs --bench\n";
    return 2;
  }

  try {
    if (cli.has("events")) {
      const std::vector<core::TelemetryEvent> events =
          core::read_events_file(cli.get("events", ""));
      core::log_line(core::LogLevel::kDebug,
                     "loaded " + std::to_string(events.size()) + " events");
      if (format == core::ReportFormat::Json) {
        util::Json::Array out;
        for (const auto& event : events)
          out.push_back(core::to_json(event));
        std::cout << util::Json(std::move(out)).dump() << "\n";
      } else {
        std::cout << core::render_timeline(events,
                                           cli.get_bool("times", false),
                                           format);
      }
    } else if (cli.has("metrics")) {
      const util::Json metrics = read_json_file(cli.get("metrics", ""));
      if (format == core::ReportFormat::Json)
        std::cout << metrics.dump() << "\n";
      else
        std::cout << core::render_metrics_summary(metrics, format);
    } else {
      const util::Json bench = read_json_file(cli.get("bench", ""));
      if (cli.has("emit-archive")) {
        const std::string path = cli.get("emit-archive", "");
        std::ofstream out(path, std::ios::trunc);
        if (!out) throw std::runtime_error("cannot write " + path);
        out << core::archive_perf_json(
                   core::perf_marks_from_bench(bench, "current"),
                   core::bench_history_from_bench(bench))
                   .dump()
            << "\n";
        core::log_line(core::LogLevel::kInfo,
                       "wrote archive perf fragment " + path);
      }
      if (format == core::ReportFormat::Json)
        std::cout << bench.dump() << "\n";
      else
        std::cout << core::render_bench_trend(bench, format);
    }
  } catch (const std::exception& e) {
    std::cerr << "dring_metrics: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
