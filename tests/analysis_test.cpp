// Tests for the campaign analytics subsystem (core/analysis.hpp):
// axis extraction, hand-computed aggregates and quantiles, numeric-aware
// group ordering, frontier detection on a synthetic monotone grid,
// multi-store loading, byte-stable report rendering — and the equivalence
// of the generic aggregate/frontier queries with the hand-rolled
// core/feasibility_map sweep on overlapping cells.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/analysis.hpp"
#include "core/feasibility_map.hpp"

namespace dring::core {
namespace {

/// A synthetic store row (no engine run): `explored` decides success.
CampaignRow fake_row(const std::string& algorithm, NodeId n, Round t,
                     std::uint64_t seed, bool explored, Round explored_round,
                     Round rounds, long long moves) {
  CampaignRow row;
  row.spec.algorithm = algorithm;
  row.spec.n = n;
  row.spec.adversary.family = "targeted-random";
  row.spec.adversary.t_interval = t;
  row.spec.seed = seed;
  row.fingerprint = fingerprint(row.spec);
  row.outcome.explored = explored;
  row.outcome.explored_round = explored ? explored_round : -1;
  row.outcome.rounds = rounds;
  row.outcome.total_moves = moves;
  row.outcome.stop_reason = explored ? "explored" : "max_rounds";
  return row;
}

// --- axes ----------------------------------------------------------------------

TEST(AnalysisAxes, CanonicalizationAndValues) {
  EXPECT_EQ(canonical_axis("k"), "agents");
  EXPECT_EQ(canonical_axis("family"), "adversary");
  EXPECT_EQ(canonical_axis("T"), "t_interval");
  EXPECT_EQ(canonical_axis("n"), "n");
  EXPECT_THROW(canonical_axis("bogus"), std::invalid_argument);

  const CampaignRow row = fake_row("KnownNNoChirality", 10, 3, 1, true, 7, 9, 5);
  EXPECT_EQ(axis_value(row, "algorithm"), "KnownNNoChirality");
  EXPECT_EQ(axis_value(row, "n"), "10");
  EXPECT_EQ(axis_value(row, "t_interval"), "3");
  EXPECT_EQ(axis_value(row, "adversary"), "targeted-random");
  EXPECT_EQ(axis_value(row, "model"), "native");
  EXPECT_EQ(axis_value(row, "target_prob"), "0.5");
  EXPECT_DOUBLE_EQ(axis_number(row, "n"), 10.0);
  EXPECT_THROW(axis_number(row, "algorithm"), std::invalid_argument);
  EXPECT_TRUE(axis_is_numeric("t_interval"));
  EXPECT_FALSE(axis_is_numeric("model"));
}

// --- quantiles and aggregates --------------------------------------------------

TEST(AnalysisAggregate, QuantileInterpolatesLinearly) {
  const std::vector<double> s = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(s, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(s, 0.95), 1.0 + 0.95 * 3.0);  // 3.85
  EXPECT_DOUBLE_EQ(quantile({7}, 0.5), 7.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(AnalysisAggregate, HandComputedStatistics) {
  // Four successes with explored rounds {10, 20, 30, 40} and one failure.
  std::vector<CampaignRow> rows;
  rows.push_back(fake_row("A", 8, 1, 1, true, 10, 12, 20));
  rows.push_back(fake_row("A", 8, 1, 2, true, 20, 22, 40));
  rows.push_back(fake_row("A", 8, 1, 3, true, 30, 32, 60));
  rows.push_back(fake_row("A", 8, 1, 4, true, 40, 42, 80));
  rows.push_back(fake_row("A", 8, 1, 5, false, 0, 99, 7));

  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"algorithm"}, Metric::ExploredRound);
  ASSERT_EQ(groups.size(), 1u);
  const Aggregate& agg = groups[0].agg;
  EXPECT_EQ(groups[0].key, std::vector<std::string>{"A"});
  EXPECT_EQ(agg.runs, 5);
  EXPECT_EQ(agg.successes, 4);
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.8);
  // The failure contributes no explored_round sample.
  EXPECT_EQ(agg.samples, 4);
  EXPECT_DOUBLE_EQ(agg.min, 10.0);
  EXPECT_DOUBLE_EQ(agg.max, 40.0);
  EXPECT_DOUBLE_EQ(agg.mean, 25.0);
  EXPECT_DOUBLE_EQ(agg.median, 25.0);
  EXPECT_DOUBLE_EQ(agg.p95, 10.0 + 0.95 * 3.0 * 10.0);  // 38.5
  // Population stddev of {10,20,30,40}: sqrt(125).
  EXPECT_DOUBLE_EQ(agg.stddev, std::sqrt(125.0));

  // Metric::Rounds samples every run, including the failure.
  const std::vector<GroupRow> all_runs =
      aggregate_rows(rows, {"algorithm"}, Metric::Rounds);
  EXPECT_EQ(all_runs[0].agg.samples, 5);
  EXPECT_DOUBLE_EQ(all_runs[0].agg.max, 99.0);
}

TEST(AnalysisAggregate, GroupsSortNumericAware) {
  std::vector<CampaignRow> rows;
  for (const NodeId n : {11, 6, 16, 9})
    rows.push_back(fake_row("A", n, 1, 1, true, n, n, n));
  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"n"}, Metric::Rounds);
  ASSERT_EQ(groups.size(), 4u);
  // Lexicographic order would be 11, 16, 6, 9.
  EXPECT_EQ(groups[0].key[0], "6");
  EXPECT_EQ(groups[1].key[0], "9");
  EXPECT_EQ(groups[2].key[0], "11");
  EXPECT_EQ(groups[3].key[0], "16");
}

// --- frontier ------------------------------------------------------------------

/// A monotone synthetic grid: algorithm A succeeds for n <= boundary.
std::vector<CampaignRow> monotone_grid(const std::string& algorithm,
                                       NodeId boundary) {
  std::vector<CampaignRow> rows;
  for (const NodeId n : {4, 6, 8, 10})
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      rows.push_back(fake_row(algorithm, n, 1, seed, n <= boundary,
                              static_cast<Round>(3 * n), 3 * n, 2 * n));
  return rows;
}

TEST(AnalysisFrontier, FindsTheCrossingOnAMonotoneGrid) {
  std::vector<CampaignRow> rows = monotone_grid("A", 6);
  const std::vector<CampaignRow> more = monotone_grid("B", 8);
  rows.insert(rows.end(), more.begin(), more.end());

  const std::vector<FrontierGroup> groups =
      detect_frontier(rows, {"algorithm"}, "n", 0.75);
  ASSERT_EQ(groups.size(), 2u);

  EXPECT_EQ(groups[0].key, std::vector<std::string>{"A"});
  ASSERT_EQ(groups[0].curve.size(), 4u);
  EXPECT_DOUBLE_EQ(groups[0].curve[0].axis, 4.0);
  EXPECT_DOUBLE_EQ(groups[0].curve[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(groups[0].curve[2].rate, 0.0);
  ASSERT_EQ(groups[0].crossings.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].crossings[0].axis_before, 6.0);
  EXPECT_DOUBLE_EQ(groups[0].crossings[0].axis_after, 8.0);
  EXPECT_TRUE(groups[0].crossings[0].falling);

  // B's boundary sits one cell later.
  ASSERT_EQ(groups[1].crossings.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[1].crossings[0].axis_before, 8.0);
  EXPECT_DOUBLE_EQ(groups[1].crossings[0].axis_after, 10.0);

  // A uniformly-feasible group has no crossing.
  const std::vector<FrontierGroup> flat =
      detect_frontier(monotone_grid("A", 10), {"algorithm"}, "n", 0.75);
  EXPECT_TRUE(flat[0].crossings.empty());

  // Guard rails: non-numeric axis, axis repeated as group key.
  EXPECT_THROW(detect_frontier(rows, {}, "algorithm", 0.5),
               std::invalid_argument);
  EXPECT_THROW(detect_frontier(rows, {"n"}, "n", 0.5),
               std::invalid_argument);
}

// --- multi-store loading -------------------------------------------------------

TEST(AnalysisLoad, UnionsStoresAndRejectsConflicts) {
  const std::string a_path = testing::TempDir() + "analysis_a.jsonl";
  const std::string b_path = testing::TempDir() + "analysis_b.jsonl";

  std::vector<CampaignRow> rows = monotone_grid("A", 6);
  const std::vector<CampaignRow> front(rows.begin(), rows.begin() + 6);
  const std::vector<CampaignRow> back(rows.begin() + 6, rows.end());
  write_result_store(a_path, front);
  write_result_store(b_path, back);

  const std::vector<CampaignRow> loaded =
      load_result_stores({a_path, b_path});
  EXPECT_EQ(loaded.size(), rows.size());
  sort_canonical(rows);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(row_line(loaded[i]), row_line(rows[i]));

  // Conflicting payload for a stored fingerprint is refused.
  std::vector<CampaignRow> clashing = front;
  clashing[0].outcome.rounds += 1;
  write_result_store(b_path, clashing);
  EXPECT_THROW(load_result_stores({a_path, b_path}), std::runtime_error);

  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

// --- rendering -----------------------------------------------------------------

TEST(AnalysisRender, MarkdownAndCsvAreByteStable) {
  std::vector<CampaignRow> rows;
  rows.push_back(fake_row("A", 8, 1, 1, true, 10, 12, 20));
  rows.push_back(fake_row("A", 8, 1, 2, true, 20, 22, 40));
  rows.push_back(fake_row("A", 8, 1, 3, false, 0, 99, 7));

  const std::vector<GroupRow> groups =
      aggregate_rows(rows, {"algorithm", "n"}, Metric::ExploredRound);
  EXPECT_EQ(
      render_aggregate_report(groups, {"algorithm", "n"},
                              Metric::ExploredRound, ReportFormat::Markdown),
      "Metric: explored_round; ok = explored && !premature; "
      "sd = population stddev.\n"
      "\n"
      "| algorithm | n | runs | ok | rate | samples | min | mean | median |"
      " p95 | max | sd |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|---|\n"
      "| A | 8 | 3 | 2 | 0.6667 | 2 | 10 | 15 | 15 | 19.5 | 20 | 5 |\n");
  EXPECT_EQ(
      render_aggregate_report(groups, {"algorithm", "n"},
                              Metric::ExploredRound, ReportFormat::Csv),
      "algorithm,n,runs,ok,rate,samples,min,mean,median,p95,max,sd\n"
      "A,8,3,2,0.6667,2,10,15,15,19.5,20,5\n");

  const std::vector<FrontierGroup> frontier =
      detect_frontier(monotone_grid("A", 6), {"algorithm"}, "n", 0.75);
  EXPECT_EQ(
      render_frontier_report(frontier, {"algorithm"}, "n", 0.75,
                             ReportFormat::Markdown),
      "Frontier: axis n, threshold 0.7500; rate = explored && "
      "!premature.\n"
      "\n"
      "| algorithm | curve (n:rate) | frontier |\n"
      "|---|---|---|\n"
      "| A | 4:1.0000 6:1.0000 8:0.0000 10:0.0000 | "
      "6->8 (1.0000->0.0000, falling) |\n");

  // JSON parses back and is canonical.
  const std::string json = render_aggregate_report(
      groups, {"algorithm", "n"}, Metric::ExploredRound, ReportFormat::Json);
  const util::Json doc = util::Json::parse(json);
  EXPECT_EQ(doc.at("metric").as_string(), "explored_round");
  EXPECT_EQ(doc.at("groups").as_array().size(), 1u);
  EXPECT_EQ(doc.dump() + "\n", json);
}

// --- equivalence with core/feasibility_map -------------------------------------

/// Mirror FeasibilityMap's scenario matrix (core/feasibility_map.cpp
/// build_tasks) as declarative specs: seed 0 runs the static ring, the
/// rest run targeted hostile dynamics, seeds 0x9d5*s + 17n.
std::vector<ScenarioSpec> feasibility_specs(const std::string& algorithm,
                                            const FeasibilitySweep& sweep) {
  std::vector<ScenarioSpec> specs;
  for (const NodeId n : sweep.sizes) {
    for (int seed = 0; seed < sweep.seeds_per_size; ++seed) {
      ScenarioSpec spec;
      spec.algorithm = algorithm;
      spec.n = n;
      spec.seed = 0x9d5ULL * static_cast<std::uint64_t>(seed) + 17 * n;
      spec.max_rounds = sweep.max_rounds;
      if (seed == 0) {
        spec.adversary.family = "null";
      } else {
        spec.adversary.family = "targeted-random";
        spec.adversary.target_prob = sweep.edge_removal_prob;
        spec.adversary.activation_prob = sweep.activation_prob;
      }
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(AnalysisFeasibilityEquivalence, ReproducesTheFeasibilityMapBoundary) {
  FeasibilitySweep sweep;
  sweep.sizes = {4, 5, 6, 8};
  sweep.seeds_per_size = 3;
  sweep.max_rounds = 200'000;
  sweep.threads = 2;

  const std::string name = "KnownNNoChirality";
  const algo::AlgorithmId id = algo::info_by_name(name).id;

  // The hand-rolled sweep...
  const FeasibilityRow feas = evaluate_algorithm(id, sweep);
  // ...and the same cells through the campaign store + analysis path.
  const std::vector<CampaignRow> rows =
      run_scenarios(feasibility_specs(name, sweep), 2);

  const std::vector<GroupRow> overall =
      aggregate_rows(rows, {"algorithm"}, Metric::Rounds);
  ASSERT_EQ(overall.size(), 1u);
  EXPECT_EQ(overall[0].agg.runs, feas.runs);
  EXPECT_EQ(overall[0].agg.successes, feas.explored);
  EXPECT_EQ(overall[0].agg.premature, feas.premature);
  EXPECT_DOUBLE_EQ(overall[0].agg.max,
                   static_cast<double>(feas.worst_rounds));

  // The frontier curve over n matches per-size feasibility: each axis
  // point's success rate equals the explored fraction of a single-size
  // hand-rolled sweep.
  const std::vector<FrontierGroup> frontier =
      detect_frontier(rows, {"algorithm"}, "n", 1.0);
  ASSERT_EQ(frontier.size(), 1u);
  ASSERT_EQ(frontier[0].curve.size(), sweep.sizes.size());
  for (std::size_t i = 0; i < sweep.sizes.size(); ++i) {
    FeasibilitySweep one = sweep;
    one.sizes = {sweep.sizes[i]};
    const FeasibilityRow per_size = evaluate_algorithm(id, one);
    EXPECT_DOUBLE_EQ(frontier[0].curve[i].axis,
                     static_cast<double>(sweep.sizes[i]));
    EXPECT_EQ(frontier[0].curve[i].runs, per_size.runs);
    EXPECT_DOUBLE_EQ(frontier[0].curve[i].rate,
                     static_cast<double>(per_size.explored) / per_size.runs);
  }
}

}  // namespace
}  // namespace dring::core
