// The trivial unconscious exploration protocol for ET (paper, Theorem 18).
//
// SSYNC with Eventual Transport, two anonymous agents WITH chirality:
// "A trivial algorithm in which an agent changes direction only when it
// catches someone solves the exploration in ET."
//
// The agent walks in its current direction forever and flips direction on
// `catches`. It never terminates (unconscious exploration).
#pragma once

#include "agent/explore_base.hpp"

namespace dring::algo {

class ETUnconscious final : public agent::CloneableMachine<ETUnconscious> {
 public:
  ETUnconscious();

  std::string algorithm_name() const override { return "ETUnconscious"; }
  Dir dir() const { return dir_; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int state) const override;

 private:
  Dir dir_ = Dir::Left;
};

}  // namespace dring::algo
