// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (random adversaries, random
// activation schedulers, randomized start positions in tests/benches) draws
// from a dring::util::Rng so that a run is a pure function of its
// configuration + seed.  The generator is splitmix64-seeded xoshiro256**,
// small, fast, and reproducible across platforms (unlike std::mt19937
// paired with std::uniform_int_distribution, whose output is
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace dring::util {

/// xoshiro256** pseudo random generator with splitmix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, but prefer the member helpers
/// (`next_u64`, `below`, `in_range`, `chance`) which are portable across
/// standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next_u64(); }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is exactly uniform and portable.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in the inclusive range [lo, hi].
  std::int64_t in_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle of a vector (uniform over permutations).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dring::util
