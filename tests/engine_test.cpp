// Engine semantics tests: Look-Compute-Move rounds, port mutual exclusion,
// blocking, silent crossings, passive transport (PT), the ET simultaneity
// condition, activation fairness, feedback delivery and ground truth.
//
// These tests drive the engine with purpose-built script/walker brains
// rather than the paper's algorithms, so each model rule is checked in
// isolation.
#include <gtest/gtest.h>

#include <deque>

#include "adversary/basic_adversaries.hpp"
#include "sim/engine.hpp"

namespace dring::sim {
namespace {

using agent::Feedback;
using agent::Intent;
using agent::Snapshot;

/// Brain that replays a fixed list of intents (then stays forever) and
/// records the feedback it received.
class ScriptBrain final : public agent::Brain {
 public:
  explicit ScriptBrain(std::deque<Intent> script) : script_(std::move(script)) {}

  Intent on_activate(const Snapshot& snap, const Feedback& fb) override {
    last_snapshot_ = snap;
    feedback_log_.push_back(fb);
    if (script_.empty()) return Intent::stay();
    Intent next = script_.front();
    script_.pop_front();
    if (next.kind == Intent::Kind::Terminate) terminated_ = true;
    return next;
  }

  bool terminated() const override { return terminated_; }
  std::unique_ptr<agent::Brain> clone() const override {
    return std::make_unique<ScriptBrain>(*this);
  }
  std::string state_name() const override { return "script"; }
  std::string algorithm_name() const override { return "ScriptBrain"; }

  const std::vector<Feedback>& feedback_log() const { return feedback_log_; }
  const Snapshot& last_snapshot() const { return last_snapshot_; }

 private:
  std::deque<Intent> script_;
  std::vector<Feedback> feedback_log_;
  Snapshot last_snapshot_;
  bool terminated_ = false;
};

/// Brain that always moves in one local direction.
class WalkerBrain final : public agent::Brain {
 public:
  explicit WalkerBrain(Dir dir) : dir_(dir) {}
  Intent on_activate(const Snapshot&, const Feedback&) override {
    return Intent::move(dir_);
  }
  bool terminated() const override { return false; }
  std::unique_ptr<agent::Brain> clone() const override {
    return std::make_unique<WalkerBrain>(*this);
  }
  std::string state_name() const override { return "walk"; }
  std::string algorithm_name() const override { return "WalkerBrain"; }

 private:
  Dir dir_;
};

std::deque<Intent> moves(std::initializer_list<Intent> list) { return list; }

TEST(Engine, WalkerTraversesRing) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  for (int i = 0; i < 4; ++i) e.step();
  // Left = Ccw for the canonical orientation: 0 -> 1 -> 2 -> 3 -> 4.
  EXPECT_EQ(e.body(0).node, 4);
  EXPECT_EQ(e.body(0).moves, 4);
  EXPECT_TRUE(e.explored());
  EXPECT_EQ(e.explored_round(), 4);
}

TEST(Engine, MirroredOrientationWalksClockwise) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kMirroredOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  e.step();
  EXPECT_EQ(e.body(0).node, 4);  // mirrored left = Cw
}

TEST(Engine, MissingEdgeBlocksAndLeavesAgentOnPort) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  adversary::FixedEdgeAdversary adv(0);
  e.set_adversary(&adv);
  for (int i = 0; i < 3; ++i) e.step();
  EXPECT_EQ(e.body(0).node, 0);
  EXPECT_TRUE(e.body(0).on_port);
  EXPECT_EQ(e.body(0).port_side, GlobalDir::Ccw);
  EXPECT_EQ(e.body(0).moves, 0);
}

TEST(Engine, FeedbackReportsBlockedThenMoved) {
  Engine e(5, std::nullopt, Model::FSYNC);
  auto brain = std::make_unique<ScriptBrain>(
      moves({Intent::move(Dir::Left), Intent::move(Dir::Left),
             Intent::stay()}));
  ScriptBrain* raw = brain.get();
  e.add_agent(0, agent::kChiralOrientation, std::move(brain));

  // Round 1: edge 0 missing -> blocked. Round 2: present -> moves.
  adversary::ScriptedEdgeAdversary adv(
      [](Round r) -> std::optional<EdgeId> {
        return r == 1 ? std::optional<EdgeId>(0) : std::nullopt;
      });
  e.set_adversary(&adv);
  e.step();
  e.step();
  e.step();

  const auto& log = raw->feedback_log();
  ASSERT_EQ(log.size(), 3u);
  // First activation: nothing attempted yet.
  EXPECT_FALSE(log[0].attempted_move);
  // Second: the round-1 attempt was blocked on the port.
  EXPECT_TRUE(log[1].attempted_move);
  EXPECT_TRUE(log[1].port_acquired);
  EXPECT_FALSE(log[1].moved);
  EXPECT_TRUE(log[1].blocked());
  // Third: the round-2 attempt succeeded.
  EXPECT_TRUE(log[2].moved);
  EXPECT_EQ(e.body(0).node, 1);
}

TEST(Engine, PortMutualExclusionMakesLoserFail) {
  Engine e(5, std::nullopt, Model::FSYNC);
  auto b0 = std::make_unique<ScriptBrain>(moves({Intent::move(Dir::Left)}));
  auto b1 = std::make_unique<ScriptBrain>(moves({Intent::move(Dir::Left)}));
  ScriptBrain* raw1 = b1.get();
  e.add_agent(0, agent::kChiralOrientation, std::move(b0));  // same node!
  e.add_agent(0, agent::kChiralOrientation, std::move(b1));
  e.step();
  e.step();  // deliver feedback

  // Default tie-break: ascending id, so agent 0 wins the port.
  EXPECT_EQ(e.body(0).node, 1);
  const auto& log = raw1->feedback_log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_TRUE(log[1].attempted_move);
  EXPECT_FALSE(log[1].port_acquired);
  EXPECT_TRUE(log[1].failed());
  EXPECT_EQ(e.body(1).node, 0);
  EXPECT_FALSE(e.body(1).on_port);
}

TEST(Engine, SilentCrossingOnSameEdge) {
  // Agents at the two endpoints of edge 2 moving in opposite global
  // directions traverse simultaneously and swap positions.
  Engine e(6, std::nullopt, Model::FSYNC);
  e.add_agent(2, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));  // Ccw: 2 -> 3
  e.add_agent(3, agent::kMirroredOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));  // Cw: 3 -> 2
  e.step();
  EXPECT_EQ(e.body(0).node, 3);
  EXPECT_EQ(e.body(1).node, 2);
  EXPECT_EQ(e.body(0).moves, 1);
  EXPECT_EQ(e.body(1).moves, 1);
}

TEST(Engine, BlockedAgentDeniesPortToOthers) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  auto b1 = std::make_unique<ScriptBrain>(
      moves({Intent::stay(), Intent::move(Dir::Left), Intent::stay()}));
  ScriptBrain* raw1 = b1.get();
  e.add_agent(0, agent::kChiralOrientation, std::move(b1));  // same node

  adversary::FixedEdgeAdversary adv(0);  // block agent 0 forever at node 0
  e.set_adversary(&adv);
  e.step();  // agent 0 takes the port, blocked
  e.step();  // agent 1 tries the same port -> mutual exclusion failure
  e.step();
  const auto& log = raw1->feedback_log();
  ASSERT_GE(log.size(), 3u);
  EXPECT_TRUE(log[2].failed());
  // The loser also observes the blocked agent on the port in its snapshot.
  EXPECT_EQ(raw1->last_snapshot().others_on_left_port, 1);
}

TEST(Engine, PassiveTransportMovesSleepingPortAgent) {
  Engine e(5, std::nullopt, Model::SSYNC_PT);
  auto b0 = std::make_unique<ScriptBrain>(moves({Intent::move(Dir::Left)}));
  ScriptBrain* raw0 = b0.get();
  e.add_agent(0, agent::kChiralOrientation, std::move(b0));
  e.add_agent(1, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Right));

  // Round 1: activate both, remove edge 0 so agent 0 is blocked on the port.
  // Round 2: only agent 1 active; edge 0 present -> agent 0 is transported.
  class PtScenario : public Adversary {
   public:
    std::vector<bool> select_active(const WorldView& view) override {
      if (view.round() == 1) return {true, true};
      return {false, true};
    }
    std::optional<EdgeId> choose_missing_edge(
        const WorldView& view, const std::vector<IntentRecord>&) override {
      return view.round() == 1 ? std::optional<EdgeId>(0) : std::nullopt;
    }
    std::string name() const override { return "pt-scenario"; }
  } adv;
  e.set_adversary(&adv);

  e.step();
  EXPECT_TRUE(e.body(0).on_port);
  e.step();
  EXPECT_FALSE(e.body(0).on_port);
  EXPECT_EQ(e.body(0).node, 1);
  EXPECT_EQ(e.body(0).passive_moves, 1);
  EXPECT_EQ(e.body(0).moves, 0);

  // Round 3: wake agent 0; the transport must be reported in feedback.
  class WakeAll : public Adversary {
   public:
    std::string name() const override { return "wake-all"; }
  } wake;
  e.set_adversary(&wake);
  e.step();
  const auto& log = raw0->feedback_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].transported);
  EXPECT_EQ(log[1].transport_dir, Dir::Left);
}

TEST(Engine, NoTransportInNsModel) {
  Engine e(5, std::nullopt, Model::SSYNC_NS);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(moves({Intent::move(Dir::Left)})));
  e.add_agent(1, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Right));
  class NsScenario : public Adversary {
   public:
    std::vector<bool> select_active(const WorldView& view) override {
      if (view.round() == 1) return {true, true};
      return {false, true};
    }
    std::optional<EdgeId> choose_missing_edge(
        const WorldView& view, const std::vector<IntentRecord>&) override {
      return view.round() == 1 ? std::optional<EdgeId>(0) : std::nullopt;
    }
    std::string name() const override { return "ns-scenario"; }
  } adv;
  e.set_adversary(&adv);
  e.step();
  e.step();
  e.step();
  // Sleeping agent stays on its port even though the edge is present.
  EXPECT_TRUE(e.body(0).on_port);
  EXPECT_EQ(e.body(0).node, 0);
  EXPECT_EQ(e.body(0).passive_moves, 0);
}

TEST(Engine, EtConditionForcesActivationAndVetoesRemoval) {
  EngineOptions opts;
  opts.et_budget = 3;
  Engine e(5, std::nullopt, Model::SSYNC_ET, opts);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  e.add_agent(1, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Right));

  // Adversary: round 1 blocks edge 0 with agent 0 active; afterwards it
  // leaves the edge present but never activates agent 0.  The ET condition
  // must eventually force agent 0 across.
  class EtHostile : public Adversary {
   public:
    std::vector<bool> select_active(const WorldView& view) override {
      if (view.round() == 1) return {true, true};
      return {false, true};
    }
    std::optional<EdgeId> choose_missing_edge(
        const WorldView& view, const std::vector<IntentRecord>&) override {
      return view.round() == 1 ? std::optional<EdgeId>(0) : std::nullopt;
    }
    std::string name() const override { return "et-hostile"; }
  } adv;
  e.set_adversary(&adv);

  for (int i = 0; i < 10 && e.body(0).node == 0; ++i) e.step();
  EXPECT_EQ(e.body(0).node, 1);       // eventually crossed...
  EXPECT_EQ(e.body(0).passive_moves, 0);  // ...actively, not via transport
  EXPECT_GT(e.fairness_interventions(), 0);
}

TEST(Engine, ActivationFairnessWindow) {
  EngineOptions opts;
  opts.fairness_window = 5;
  Engine e(6, std::nullopt, Model::SSYNC_NS, opts);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  e.add_agent(3, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));

  class Starver : public Adversary {
   public:
    std::vector<bool> select_active(const WorldView&) override {
      return {true, false};  // never activate agent 1
    }
    std::string name() const override { return "starver"; }
  } adv;
  e.set_adversary(&adv);
  for (int i = 0; i < 12; ++i) e.step();
  // The fairness window guarantees agent 1 got activated and moved.
  EXPECT_GT(e.body(1).moves, 0);
  EXPECT_GT(e.fairness_interventions(), 0);
}

TEST(Engine, TerminatedAgentNeverMovesAgain) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(
                  moves({Intent::move(Dir::Left), Intent::terminate()})));
  e.add_agent(1, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  for (int i = 0; i < 6; ++i) e.step();
  EXPECT_TRUE(e.body(0).terminated);
  EXPECT_EQ(e.body(0).termination_round, 2);
  EXPECT_EQ(e.body(0).moves, 1);
  EXPECT_EQ(e.body(0).node, 1);
}

TEST(Engine, PrematureTerminationIsFlagged) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(moves({Intent::terminate()})));
  e.step();
  EXPECT_TRUE(e.premature_termination());
}

TEST(Engine, TerminationAfterExplorationIsClean) {
  Engine e(3, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(
                  moves({Intent::move(Dir::Left), Intent::move(Dir::Left),
                         Intent::terminate()})));
  auto result = e.run(StopPolicy{});
  EXPECT_TRUE(result.explored);
  EXPECT_FALSE(result.premature_termination);
  EXPECT_TRUE(result.all_terminated);
  EXPECT_EQ(result.stop_reason, "all_terminated");
}

TEST(Engine, StepOffLeavesPort) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(
                  moves({Intent::move(Dir::Left), Intent::step_off(),
                         Intent::stay()})));
  adversary::FixedEdgeAdversary adv(0);
  e.set_adversary(&adv);
  e.step();
  EXPECT_TRUE(e.body(0).on_port);
  e.step();
  EXPECT_FALSE(e.body(0).on_port);
  EXPECT_EQ(e.body(0).node, 0);
}

TEST(Engine, SnapshotSeesOthersByLocalDirection) {
  Engine e(5, std::nullopt, Model::FSYNC);
  // Agent 0 blocked on node 2's Ccw port; agent 1 (mirrored orientation)
  // observes it on its *right* port.
  e.add_agent(2, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  e.add_agent(2, agent::kMirroredOrientation,
              std::make_unique<ScriptBrain>(moves({Intent::stay()})));
  adversary::FixedEdgeAdversary adv(2);
  e.set_adversary(&adv);
  e.step();
  const agent::Snapshot snap = e.make_snapshot(1);
  EXPECT_EQ(snap.others_on_right_port, 1);  // mirrored: Ccw is its right
  EXPECT_EQ(snap.others_on_left_port, 0);
  EXPECT_EQ(snap.others_in_node, 0);
}

TEST(Engine, LandmarkVisibleInSnapshot) {
  Engine e(5, 3, Model::FSYNC);
  e.add_agent(3, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(moves({Intent::stay()})));
  EXPECT_TRUE(e.make_snapshot(0).is_landmark);
  Engine e2(5, 2, Model::FSYNC);
  e2.add_agent(3, agent::kChiralOrientation,
               std::make_unique<ScriptBrain>(moves({Intent::stay()})));
  EXPECT_FALSE(e2.make_snapshot(0).is_landmark);
}

TEST(Engine, TraceRecordsRounds) {
  EngineOptions opts;
  opts.record_trace = true;
  Engine e(4, std::nullopt, Model::FSYNC, opts);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  e.step();
  e.step();
  ASSERT_EQ(e.trace().size(), 2u);
  EXPECT_EQ(e.trace()[0].round, 1);
  EXPECT_EQ(e.trace()[1].agents[0].node, 2);
}

TEST(Engine, RunStopsWhenExplored) {
  Engine e(6, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<WalkerBrain>(Dir::Left));
  StopPolicy stop;
  stop.stop_when_explored = true;
  stop.stop_when_all_terminated = false;
  const RunResult r = e.run(stop);
  EXPECT_TRUE(r.explored);
  EXPECT_EQ(r.stop_reason, "explored");
  EXPECT_EQ(r.explored_round, 5);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Engine, DirectionSwitchReleasesOldPort) {
  Engine e(5, std::nullopt, Model::FSYNC);
  e.add_agent(0, agent::kChiralOrientation,
              std::make_unique<ScriptBrain>(
                  moves({Intent::move(Dir::Left), Intent::move(Dir::Right)})));
  adversary::FixedEdgeAdversary adv(0);  // blocks the Ccw move from node 0
  e.set_adversary(&adv);
  e.step();
  EXPECT_TRUE(e.body(0).on_port);
  EXPECT_EQ(e.body(0).port_side, GlobalDir::Ccw);
  e.step();
  // Switched to the Cw port; edge 4 is present, so the agent moved to 4.
  EXPECT_EQ(e.body(0).node, 4);
  EXPECT_FALSE(e.ring().port_holder({0, GlobalDir::Ccw}).has_value());
}

}  // namespace
}  // namespace dring::sim
