// Tests for trace export (CSV) and exact replay of recorded schedules.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/basic_adversaries.hpp"
#include "adversary/composed.hpp"
#include "core/runner.hpp"
#include "sim/trace_io.hpp"

namespace dring::sim {
namespace {

using algo::AlgorithmId;

TEST(TraceIo, CsvHasHeaderAndOneRowPerAgentRound) {
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::KnownNNoChirality, 6);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 5;
  cfg.stop.stop_when_all_terminated = false;
  NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);

  std::ostringstream ss;
  write_trace_csv(engine->trace(), ss);
  const std::string out = ss.str();
  // Header + 5 rounds x 2 agents = 11 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 11);
  EXPECT_NE(out.find("round,missing_edge,agent"), std::string::npos);
}

TEST(TraceIo, EdgeScheduleRoundTrips) {
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::UnconsciousExploration, 7);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 40;
  cfg.stop.stop_when_explored = false;
  adversary::TargetedRandomAdversary adv(0.6, 1.0, 4242);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);

  const auto schedule = edge_schedule_of(engine->trace());
  for (const RoundTrace& rt : engine->trace())
    EXPECT_EQ(schedule(rt.round), rt.missing) << "round " << rt.round;
  EXPECT_FALSE(schedule(10'000).has_value());
}

TEST(TraceIo, ReplayReproducesRunExactly) {
  // Record a hostile FSYNC run, then replay its schedule: identical
  // positions every round.
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::KnownNNoChirality, 9);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 100;
  adversary::TargetedRandomAdversary adv(0.7, 1.0, 777);
  auto original = core::make_engine(cfg, &adv);
  original->run(cfg.stop);

  ReplayAdversary replay(original->trace());
  auto replayed = core::make_engine(cfg, &replay);
  replayed->run(cfg.stop);

  ASSERT_EQ(original->trace().size(), replayed->trace().size());
  for (std::size_t i = 0; i < original->trace().size(); ++i) {
    const RoundTrace& a = original->trace()[i];
    const RoundTrace& b = replayed->trace()[i];
    EXPECT_EQ(a.missing, b.missing) << "round " << a.round;
    for (std::size_t j = 0; j < a.agents.size(); ++j) {
      EXPECT_EQ(a.agents[j].node, b.agents[j].node)
          << "round " << a.round << " agent " << j;
      EXPECT_EQ(a.agents[j].state, b.agents[j].state)
          << "round " << a.round << " agent " << j;
    }
  }
}

TEST(TraceIo, ReplayReproducesSsyncActivations) {
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::PTBoundNoChirality, 8);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 300;
  adversary::TargetedRandomAdversary adv(0.5, 0.5, 99);
  auto original = core::make_engine(cfg, &adv);
  original->run(cfg.stop);

  ReplayAdversary replay(original->trace());
  auto replayed = core::make_engine(cfg, &replay);
  replayed->run(cfg.stop);

  ASSERT_EQ(original->trace().size(), replayed->trace().size());
  for (std::size_t i = 0; i < original->trace().size(); ++i) {
    const RoundTrace& a = original->trace()[i];
    const RoundTrace& b = replayed->trace()[i];
    for (std::size_t j = 0; j < a.agents.size(); ++j) {
      EXPECT_EQ(a.agents[j].active, b.agents[j].active)
          << "round " << a.round << " agent " << j;
      EXPECT_EQ(a.agents[j].node, b.agents[j].node)
          << "round " << a.round << " agent " << j;
    }
  }
}

TEST(ComposedAdversary, HooksAreHonoured) {
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::UnconsciousExploration, 6);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 10;
  cfg.stop.stop_when_explored = false;
  adversary::ComposedAdversary adv(
      nullptr,
      [](const WorldView& view, const std::vector<IntentRecord>&)
          -> std::optional<EdgeId> {
        return view.round() % 2 == 0 ? std::optional<EdgeId>(2) : std::nullopt;
      });
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  for (const RoundTrace& rt : engine->trace()) {
    if (rt.round % 2 == 0) {
      EXPECT_EQ(rt.missing, std::optional<EdgeId>(2));
    } else {
      EXPECT_FALSE(rt.missing.has_value());
    }
  }
}

TEST(ComposedAdversary, TieBreakReordersWinners) {
  // Two agents at the same node contending for the same port; the
  // tie-break hook reverses the default id order.
  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::KnownNNoChirality, 6);
  cfg.start_nodes = {3, 3};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 1;
  cfg.stop.stop_when_all_terminated = false;
  adversary::ComposedAdversary adv(
      nullptr, nullptr,
      [](const WorldView&, PortRef, std::vector<AgentId>& contenders) {
        std::reverse(contenders.begin(), contenders.end());
      });
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Agent 1 won the port and moved; agent 0 failed and stayed.
  EXPECT_EQ(engine->body(1).node, 4);
  EXPECT_EQ(engine->body(0).node, 3);
}

}  // namespace
}  // namespace dring::sim
