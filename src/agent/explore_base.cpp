#include "agent/explore_base.hpp"

#include <cstdlib>

namespace dring::agent {

namespace {
// A single activation may chain several "process it in the same round"
// transitions (e.g. Ready -> Reverse).  The paper never chains more than a
// couple; a generous cap turns an accidental cycle into a Stay instead of a
// hang, and the engine's verifier flags it.
constexpr int kMaxTransitionChain = 16;
}  // namespace

ExploreMachine::ExploreMachine(Knowledge k, int initial_state)
    : k_(k), state_(initial_state) {
  if (k_.has_exact_n()) size_ = k_.exact_n;
}

Intent ExploreMachine::on_activate(const Snapshot& snap, const Feedback& fb) {
  if (terminated_) return Intent::stay();

  ingest_feedback(fb);
  observe(snap);

  Intent result = Intent::stay();
  just_entered_ = false;
  for (int hops = 0;; ++hops) {
    if (hops >= kMaxTransitionChain) {
      result = Intent::stay();  // defensive: broken transition cycle
      break;
    }
    const StepResult r = run_state(state_, snap);
    if (r.tag == StepResult::Tag::Act) {
      result = r.intent;
      break;
    }
    set_state_raw(r.next_state, snap);
  }

  if (result.kind == Intent::Kind::Terminate) terminated_ = true;

  // End-of-activation bookkeeping: counters describe *completed*
  // activations when the next Compute reads them.
  c_.Ttime += 1;
  c_.Etime += 1;
  if (size_) c_.Ntime += 1;
  return result;
}

void ExploreMachine::ingest_feedback(const Feedback& fb) {
  fb_ = fb;
  arrived_by_move_ = false;
  if (fb.moved) {
    c_.apply_step(fb.attempted_dir == Dir::Left ? +1 : -1);
    arrived_by_move_ = true;
  } else if (fb.transported) {
    c_.apply_step(fb.transport_dir == Dir::Left ? +1 : -1);
    arrived_by_move_ = true;
  }
  c_.Btime = fb.blocked() ? c_.Btime + 1 : 0;

  if (fb.blocked()) {
    if (!in_wait_ || wait_dir_ != fb.attempted_dir) {
      ++wait_events_;
      wait_dir_ = fb.attempted_dir;
    }
    in_wait_ = true;
  } else {
    in_wait_ = false;
  }
}

void ExploreMachine::observe(const Snapshot& snap) {
  if (!snap.is_landmark) return;
  if (!lm_seen_) {
    lm_seen_ = true;
    lm_ref_net_ = c_.net;
    return;
  }
  if (!size_ && c_.net != lm_ref_net_) {
    // Back at the landmark with non-zero net displacement: the agent has
    // completed a full loop, so |net - ref| == n (see DESIGN.md, Semantics
    // decision 7).
    size_ = std::llabs(c_.net - lm_ref_net_);
  }
}

void ExploreMachine::enter_state(int /*state*/, const Snapshot& /*snap*/) {}

void ExploreMachine::set_state_raw(int state, const Snapshot& snap) {
  state_ = state;
  just_entered_ = true;
  enter_state(state, snap);
  const std::int64_t keep_esteps = c_.Esteps;
  c_.reset_explore();
  if (suppress_esteps_reset_) {
    c_.Esteps = keep_esteps;
    suppress_esteps_reset_ = false;
  }
}

void ExploreMachine::reset_landmark_tracking() {
  lm_seen_ = false;
  lm_ref_net_ = 0;
  size_.reset();
  c_.Ntime = 0;
}

std::optional<std::int64_t> ExploreMachine::landmark_distance() const {
  if (!lm_seen_) return std::nullopt;
  return c_.net - lm_ref_net_;
}

std::string ExploreMachine::state_name() const {
  return terminated_ ? "Terminate" : name_of(state_);
}

std::string ExploreMachine::name_of(int state) const {
  return "S" + std::to_string(state);
}

}  // namespace dring::agent
