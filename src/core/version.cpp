#include "core/version.hpp"

#include <cstdio>

namespace dring::core {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// One string describing everything about this build that could make two
/// binaries of the same source behave or perform differently.
std::string build_identity() {
  std::string id;
#if defined(__VERSION__)
  id += __VERSION__;
#endif
  id += "|std=" + std::to_string(__cplusplus);
#if defined(NDEBUG)
  id += "|ndebug";
#endif
#if defined(__OPTIMIZE__)
  id += "|optimize";
#endif
#if defined(__SANITIZE_ADDRESS__)
  id += "|asan";
#endif
  return id;
}

}  // namespace

std::string engine_version() {
  return "dring-" + std::to_string(kEngineVersionMajor) + "." +
         std::to_string(kEngineVersionMinor) + "." +
         std::to_string(kEngineVersionPatch);
}

std::uint64_t build_flags_fingerprint() {
  static const std::uint64_t kHash = fnv1a(build_identity());
  return kHash;
}

std::string build_flags_hash() {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(build_flags_fingerprint()));
  return buf;
}

}  // namespace dring::core
