// Tests for the paper-artifact layer (core/artifact.hpp): the transition
// pin (artifact-derived Table 2 is byte-identical to the pre-migration
// bench pipeline, replicated here verbatim on a reduced grid), store
// round-trips including the enrich extras, run_artifact's resume/shard
// semantics, derivation guard rails, and the ScenarioSpec proof-override
// fields the artifact grids rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/artifact.hpp"
#include "util/table.hpp"

namespace dring::core {
namespace {

// --- the legacy bench_table2 pipeline, replicated verbatim ---------------------
//
// This is the exact pre-migration code of bench_table2_fsync_possibility
// (scenario loop, fold, formatting), kept here as the transition pin: the
// declarative artifact must reproduce its output byte for byte.  If the
// artifact grid or renderer drifts from the retired bench, this test is
// the tripwire.

struct LegacyRowResult {
  std::int64_t worst_round = 0;
  NodeId worst_n = 0;
  int runs = 0;
  int failures = 0;
};

std::int64_t legacy_last_termination(const sim::RunResult& r) {
  std::int64_t worst = 0;
  for (const sim::AgentResult& a : r.agents)
    worst = std::max(worst, a.termination_round);
  return worst;
}

void legacy_account(LegacyRowResult& row, const sim::RunResult& r, NodeId n) {
  row.runs += 1;
  if (!r.explored || r.premature_termination || !r.all_terminated ||
      !r.violations.empty()) {
    row.failures += 1;
    return;
  }
  const std::int64_t t = legacy_last_termination(r);
  if (t > row.worst_round) {
    row.worst_round = t;
    row.worst_n = n;
  }
}

LegacyRowResult legacy_sweep(algo::AlgorithmId id,
                             const std::vector<NodeId>& sizes, int seeds,
                             Round round_budget_per_n) {
  std::vector<ScenarioTask> tasks;
  std::vector<NodeId> task_n;
  for (const NodeId n : sizes) {
    for (int seed = 0; seed <= seeds; ++seed) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.stop.max_rounds = round_budget_per_n * n + 1000;
      task.seed = static_cast<std::uint64_t>(1000 * n + seed);
      if (seed == 0) {
        task.make_adversary = [] {
          return std::make_unique<sim::NullAdversary>();
        };
      } else if (seed == 1) {
        task.make_adversary = []() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::BlockAgentAdversary>(0);
        };
      } else {
        const std::uint64_t s = task.seed;
        task.make_adversary = [s]() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0,
                                                                      s);
        };
      }
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
    if (id == algo::AlgorithmId::KnownNNoChirality && n >= 6) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.start_nodes = {2, 3};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * n;
      task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::ScriptedEdgeAdversary>(
            adversary::make_fig2_script(n, 2), "fig2");
      };
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
  }

  SweepOptions pool;
  pool.threads = 2;
  const std::vector<sim::RunResult> results = run_sweep(tasks, pool);
  LegacyRowResult row;
  for (std::size_t i = 0; i < results.size(); ++i)
    legacy_account(row, results[i], task_n[i]);
  return row;
}

std::string legacy_table2_output(const std::vector<NodeId>& sizes,
                                 int seeds) {
  std::ostringstream out;
  out << "=== Table 2: possibility results for FSYNC ===\n"
      << "sizes swept: ";
  for (NodeId n : sizes) out << n << " ";
  out << "| adversaries: static, obs1-block, targeted-random x" << seeds
      << "\n\n";

  util::Table table({"N. Agents", "Assumptions", "Paper bound",
                     "Worst measured termination", "at n", "Runs",
                     "Failures"});
  {
    const LegacyRowResult r =
        legacy_sweep(algo::AlgorithmId::KnownNNoChirality, sizes, seeds, 10);
    const NodeId n = r.worst_n;
    table.add_row({"2", "Known bound N", "3N-6 (Th. 3)",
                   util::fmt_count(r.worst_round) + "  (3n-5 = " +
                       util::fmt_count(3 * n - 5) + " incl. detect round)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const LegacyRowResult r = legacy_sweep(
        algo::AlgorithmId::LandmarkWithChirality, sizes, seeds, 4000);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    table.add_row({"2", "Chirality, Landmark", "O(n) (Th. 6)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(static_cast<double>(r.worst_round) / n,
                                        1) +
                       " * n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const LegacyRowResult r = legacy_sweep(
        algo::AlgorithmId::LandmarkNoChirality, sizes, seeds, 100000);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    const double nlogn = static_cast<double>(n) * algo::ceil_log2(n);
    table.add_row({"2", "Landmark (no chirality)", "O(n log n) (Th. 8)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(r.worst_round / nlogn, 1) +
                       " * n log n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  table.print(out);
  out << "\nFailures = runs that did not explore, terminated "
         "prematurely, or violated an invariant (expected: 0).\n";
  return out.str();
}

TEST(ArtifactTransition, Table2MatchesTheLegacyBenchByteForByte) {
  const std::vector<NodeId> sizes = {5, 6, 8};
  const int seeds = 2;
  const Artifact artifact = make_table2_artifact(sizes, seeds);
  EXPECT_EQ(derive_report(artifact, run_artifact_rows(artifact, 2)),
            legacy_table2_output(sizes, seeds));
}

// --- the legacy bench_lower_bounds pipeline, replicated verbatim ---------------
//
// PR 5's transition pin: the exact pre-migration code of
// bench_lower_bounds (scenario loops, run_custom shift counting,
// formatting), kept here verbatim on a reduced grid.  The declarative
// "lower_bounds" artifact must reproduce its output byte for byte.

std::string legacy_lower_bounds_output(NodeId max_n) {
  std::ostringstream out;
  SweepOptions pool;
  pool.threads = 2;

  // --- Observation 3 ---------------------------------------------------------
  out << "=== Observation 3: time lower bound 2n-3 (FSYNC, 2 agents) "
         "===\n\n";
  {
    util::Table t({"n", "lower bound 2n-3", "forced rounds (Fig. 2 schedule)",
                   "ratio"});
    std::vector<ScenarioTask> tasks;
    std::vector<NodeId> sizes;
    for (NodeId n : {8, 16, 32}) {
      if (n > max_n) continue;
      ScenarioTask task;
      task.cfg =
          default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.start_nodes = {2, 3};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * n;
      task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::ScriptedEdgeAdversary>(
            adversary::make_fig2_script(n, 2));
      };
      tasks.push_back(std::move(task));
      sizes.push_back(n);
    }
    const std::vector<sim::RunResult> results = run_sweep(tasks, pool);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId n = sizes[i];
      const sim::RunResult& r = results[i];
      t.add_row({std::to_string(n), std::to_string(2 * n - 3),
                 std::to_string(r.explored_round),
                 util::fmt_double(static_cast<double>(r.explored_round) /
                                      (2 * n - 3),
                                  2)});
    }
    t.print(out);
  }

  // --- Theorem 4 --------------------------------------------------------------
  out << "\n=== Theorem 4: termination needs >= N-1 rounds "
         "(simultaneous ring family) ===\n\n";
  {
    const NodeId N = std::min<NodeId>(16, max_n);
    util::Table t({"ring size n", "termination round", "explored by then?"});
    std::vector<ScenarioTask> tasks;
    for (NodeId n = 3; n <= N; ++n) {
      ScenarioTask task;
      task.cfg =
          default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.upper_bound = N;
      task.cfg.start_nodes = {0, 1};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * N;
      tasks.push_back(std::move(task));  // no adversary = NullAdversary
    }
    const std::vector<sim::RunResult> results = run_sweep(tasks, pool);
    Round common_term = -1;
    bool identical = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId n = static_cast<NodeId>(3 + i);
      const sim::RunResult& r = results[i];
      const Round term = r.agents[0].termination_round;
      if (common_term < 0) common_term = term;
      identical = identical && term == common_term;
      t.add_row({std::to_string(n), std::to_string(term),
                 r.explored ? "yes" : "NO (would be incorrect!)"});
    }
    t.print(out);
    out << "\nOn a static ring all executions are indistinguishable: "
        << (identical ? "termination rounds are identical across the "
                        "whole family (as Theorem 4's argument needs), "
                        "and they exceed N-1 = " +
                            std::to_string(N - 1) + "."
                      : "MISMATCH — executions diverged!")
        << "\n";
  }

  // --- Theorems 13 and 15 ------------------------------------------------------
  out << "\n=== Theorems 13/15: Omega(N*n) / Omega(n^2) moves in PT "
         "(sliding-window adversary) ===\n\n";
  {
    util::Table t({"variant", "n", "x", "x*(N-x)", "forced moves", "ratio",
                   "window shifts", "terminated"});
    struct Case {
      bool landmark;
      NodeId n;
    };
    std::vector<ScenarioTask> tasks;
    std::vector<Case> cases;
    for (const bool landmark : {false, true}) {
      for (NodeId n : {8, 12, 16, 24, 32, 48}) {
        if (n > max_n) continue;
        tasks.emplace_back();
        cases.push_back({landmark, n});
      }
    }
    std::vector<long long> shifts(tasks.size(), 0);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto [landmark, n] = cases[i];
      const NodeId x = n / 2;
      ExplorationConfig cfg = default_config(
          landmark ? algo::AlgorithmId::PTLandmarkWithChirality
                   : algo::AlgorithmId::PTBoundWithChirality,
          n);
      if (landmark) cfg.landmark = 1;
      cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
      cfg.orientations = {agent::kChiralOrientation,
                          agent::kChiralOrientation};
      cfg.engine.fairness_window = 1 << 20;
      cfg.stop.max_rounds = 400'000LL + 2000LL * n * n;
      cfg.stop.stop_when_explored_and_one_terminated = true;
      tasks[i].run_custom = [cfg, i, &shifts]() {
        adversary::SlidingWindowAdversary adv(0, 1);
        const sim::RunResult r = run_exploration(cfg, &adv);
        shifts[i] = adv.shifts();
        return r;
      };
    }
    const std::vector<sim::RunResult> results = run_sweep(tasks, pool);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto [landmark, n] = cases[i];
      const NodeId x = n / 2;
      const sim::RunResult& r = results[i];
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({landmark ? "landmark (Th. 15)" : "bound N=n (Th. 13)",
                 std::to_string(n), std::to_string(x),
                 util::fmt_count(ref), util::fmt_count(r.total_moves),
                 util::fmt_double(static_cast<double>(r.total_moves) / ref,
                                  2),
                 std::to_string(shifts[i]),
                 std::to_string(r.terminated_agents) + "/2"});
    }
    t.print(out);
    out << "\nThe forced move count scales as x*(N-x) = Theta(n^2) "
           "with a constant >= 1, exactly the Omega(N*n) / Omega(n^2) "
           "shape; only one agent ever terminates (the pinned leader "
           "waits forever), matching Theorem 11.\n";
  }
  return out.str();
}

TEST(ArtifactTransition, LowerBoundsMatchesTheLegacyBenchByteForByte) {
  const NodeId max_n = 16;
  const Artifact artifact = make_lower_bounds_artifact(max_n);
  EXPECT_EQ(derive_report(artifact, run_artifact_rows(artifact, 2)),
            legacy_lower_bounds_output(max_n));
}

// --- spec proof-override fields ------------------------------------------------

TEST(ArtifactSpec, ProofOverridesRoundTripAndExtendTheFingerprint) {
  ScenarioSpec spec;
  spec.algorithm = "PTBoundWithChirality";
  spec.n = 10;
  spec.adversary.family = "sliding-window";
  spec.start_nodes = {4, 0};
  spec.orientations = "cc";
  spec.landmark = 1;
  spec.fairness_window = 65536;
  spec.stop_explored_one_terminated = true;
  spec.max_rounds = 600'000;

  const ScenarioSpec back =
      scenario_spec_from_json(util::Json::parse(to_json(spec).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(spec).dump());
  EXPECT_EQ(back.start_nodes, spec.start_nodes);
  EXPECT_EQ(back.orientations, "cc");
  EXPECT_EQ(back.landmark, 1);
  EXPECT_EQ(back.fairness_window, 65536);
  EXPECT_TRUE(back.stop_explored_one_terminated);

  // Every override separates the fingerprint.
  const std::uint64_t fp = fingerprint(spec);
  ScenarioSpec other = spec;
  other.start_nodes = {3, 0};
  EXPECT_NE(fingerprint(other), fp);
  other = spec;
  other.orientations = "cm";
  EXPECT_NE(fingerprint(other), fp);
  other = spec;
  other.fairness_window = 0;
  EXPECT_NE(fingerprint(other), fp);

  // And a default-valued spec serializes without the new keys, so the
  // fingerprints of every pre-PR-4 campaign cell are untouched (the
  // committed frontier/smoke reports re-derive byte-identically).
  ScenarioSpec plain;
  plain.algorithm = "KnownNNoChirality";
  plain.n = 8;
  const std::string dump = to_json(plain).dump();
  for (const char* key : {"start_nodes", "orientations", "landmark",
                          "fairness_window", "stop_explored_one_terminated"})
    EXPECT_EQ(dump.find(key), std::string::npos) << key;
}

TEST(ArtifactSpec, BuildConfigAppliesTheOverrides) {
  ScenarioSpec spec;
  spec.algorithm = "PTLandmarkWithChirality";
  spec.n = 12;
  spec.start_nodes = {5, 0};
  spec.orientations = "cc";
  spec.landmark = 1;
  spec.fairness_window = 65536;
  spec.stop_explored_one_terminated = true;

  const ExplorationConfig cfg = build_config(spec);
  EXPECT_EQ(cfg.start_nodes, (std::vector<NodeId>{5, 0}));
  ASSERT_EQ(cfg.orientations.size(), 2u);
  EXPECT_EQ(cfg.orientations[0], agent::kChiralOrientation);
  EXPECT_EQ(cfg.orientations[1], agent::kChiralOrientation);
  ASSERT_TRUE(cfg.landmark.has_value());
  EXPECT_EQ(*cfg.landmark, 1);
  EXPECT_EQ(cfg.engine.fairness_window, 65536);
  EXPECT_TRUE(cfg.stop.stop_when_explored_and_one_terminated);

  // The landmark override never adds a landmark to a landmark-free
  // algorithm.
  ScenarioSpec no_landmark;
  no_landmark.algorithm = "KnownNNoChirality";
  no_landmark.n = 8;
  no_landmark.landmark = 1;
  EXPECT_FALSE(build_config(no_landmark).landmark.has_value());

  ScenarioSpec bad = spec;
  bad.orientations = "cx";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
}

// --- registry -------------------------------------------------------------------

TEST(ArtifactRegistry, NamesResolveAndScenariosAreDistinct) {
  // PR 5 finished the bench migration: every paper table and figure is a
  // registered artifact.
  EXPECT_EQ(paper_artifacts().size(), 11u);
  std::set<std::string> names, reports;
  for (const Artifact& artifact : paper_artifacts()) {
    EXPECT_EQ(&artifact_by_name(artifact.name), &artifact);
    EXPECT_TRUE(names.insert(artifact.name).second)
        << artifact.name << ": duplicate artifact name";
    EXPECT_TRUE(reports.insert(artifact.report_file).second)
        << artifact.name << ": duplicate report file";
    EXPECT_TRUE(artifact.render) << artifact.name << ": no renderer";
    std::set<std::uint64_t> fps;
    for (const ArtifactScenario& scenario : artifact.scenarios)
      fps.insert(fingerprint(scenario.spec));
    EXPECT_EQ(fps.size(), artifact.scenarios.size())
        << artifact.name << ": duplicate scenario fingerprints";
  }
  EXPECT_THROW(artifact_by_name("no_such_table"), std::invalid_argument);
}

// --- execution / store ----------------------------------------------------------

TEST(ArtifactRun, StoreRoundTripPreservesTheDerivedReport) {
  const std::string path = testing::TempDir() + "artifact_store_test.jsonl";
  std::remove(path.c_str());

  // Small price-of-liveness grid: exercises the enrich hook (the offline
  // optimum must survive the store round trip for the report to derive).
  const Artifact artifact =
      make_price_of_liveness_artifact({6}, {8}, /*seeds=*/2);
  const std::string direct =
      derive_report(artifact, run_artifact_rows(artifact, 2));

  ArtifactRunOptions options;
  options.threads = 2;
  options.store_path = path;
  const ArtifactRunReport report = run_artifact(artifact, options);
  EXPECT_EQ(report.executed, artifact.scenarios.size());

  const std::vector<CampaignRow> stored = read_result_store_file(path).rows;
  EXPECT_EQ(derive_report(artifact, stored), direct);

  // The enrich extras are in the store bytes, not recomputed on read.
  bool saw_offline = false;
  for (const CampaignRow& row : stored)
    saw_offline = saw_offline || row.outcome.extra.count("offline") > 0;
  EXPECT_TRUE(saw_offline);

  // Resume executes nothing.
  options.resume = true;
  EXPECT_EQ(run_artifact(artifact, options).executed, 0u);

  std::remove(path.c_str());
}

TEST(ArtifactRun, ShardsPartitionAndMergeToTheFullStore) {
  const Artifact artifact = make_table2_artifact({5, 6}, /*seeds=*/1);

  const std::string full = testing::TempDir() + "artifact_full.jsonl";
  const std::string s0 = testing::TempDir() + "artifact_s0.jsonl";
  const std::string s1 = testing::TempDir() + "artifact_s1.jsonl";

  ArtifactRunOptions options;
  options.threads = 2;
  options.store_path = full;
  run_artifact(artifact, options);

  options.shard_count = 2;
  options.shard_index = 0;
  options.store_path = s0;
  const ArtifactRunReport r0 = run_artifact(artifact, options);
  options.shard_index = 1;
  options.store_path = s1;
  const ArtifactRunReport r1 = run_artifact(artifact, options);
  EXPECT_EQ(r0.executed + r1.executed, artifact.scenarios.size());
  EXPECT_EQ(r0.sharded_out, r1.executed);

  const StoreMerge merge = merge_result_stores(
      std::vector<ResultStore>{read_result_store_file(s0),
                               read_result_store_file(s1)});
  ASSERT_TRUE(merge.ok());
  const std::vector<CampaignRow> full_rows = read_result_store_file(full).rows;
  ASSERT_EQ(merge.rows.size(), full_rows.size());
  for (std::size_t i = 0; i < full_rows.size(); ++i)
    EXPECT_EQ(row_line(merge.rows[i]), row_line(full_rows[i]));

  // A partial store cannot derive the report.
  EXPECT_THROW(derive_report(artifact, read_result_store_file(s0).rows),
               std::runtime_error);
  // The merged one can, and matches the unsharded derivation.
  EXPECT_EQ(derive_report(artifact, merge.rows),
            derive_report(artifact, full_rows));

  EXPECT_THROW(
      [&] {
        ArtifactRunOptions bad;
        bad.shard_index = 2;
        bad.shard_count = 2;
        run_artifact(artifact, bad);
      }(),
      std::invalid_argument);

  std::remove(full.c_str());
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

// --- PR 5 capabilities ----------------------------------------------------------

TEST(TraceSeries, EncodeDecodeRoundTrips) {
  TraceSeries series;
  series.add({"1", "-", "3 InitL", "4 InitL"});
  series.add({"2", "3", "", "x y z"});
  const TraceSeries back = TraceSeries::decode(series.encode());
  EXPECT_EQ(back.rows, series.rows);
  EXPECT_TRUE(TraceSeries::decode("").rows.empty());
  // Single field, no separators.
  EXPECT_EQ(TraceSeries::decode("a").rows,
            (std::vector<std::vector<std::string>>{{"a"}}));
}

TEST(ArtifactRun, FigRunsSeriesSurviveTheStoreRoundTrip) {
  const std::string path = testing::TempDir() + "fig_runs_store_test.jsonl";
  std::remove(path.c_str());

  const Artifact artifact = make_fig_runs_artifact();
  const std::string direct =
      derive_report(artifact, run_artifact_rows(artifact, 2));

  ArtifactRunOptions options;
  options.threads = 2;
  options.store_path = path;
  run_artifact(artifact, options);

  // The per-round series derive from store bytes, not recomputation.
  const std::vector<CampaignRow> stored = read_result_store_file(path).rows;
  bool saw_series = false;
  for (const CampaignRow& row : stored)
    saw_series = saw_series || row.outcome.extra_text.count("series") > 0;
  EXPECT_TRUE(saw_series);
  EXPECT_EQ(derive_report(artifact, stored), direct);

  std::remove(path.c_str());
}

TEST(ArtifactStatus, Fig9_11AndFig2ReportSuccess) {
  // The pure-computation artifact: zero scenarios, derivation works on an
  // empty row set, and the status fold asserts the paper's numbers.
  const Artifact fig9 = make_fig9_11_artifact();
  EXPECT_TRUE(fig9.scenarios.empty());
  const std::vector<CampaignRow> no_rows;
  EXPECT_FALSE(derive_report(fig9, no_rows).empty());
  EXPECT_EQ(derive_status(fig9, no_rows), 0);

  // Figure 2 on a real (small) grid matches 3n-6, so the shim exit is 0;
  // artifacts without a status fold report 0.
  const Artifact fig2 = make_fig2_worstcase_artifact({6, 8});
  const std::vector<CampaignRow> rows = run_artifact_rows(fig2, 2);
  EXPECT_EQ(derive_status(fig2, rows), 0);
  EXPECT_EQ(derive_status(make_table2_artifact({5}, 1),
                          run_artifact_rows(make_table2_artifact({5}, 1), 2)),
            0);
}

}  // namespace
}  // namespace dring::core
