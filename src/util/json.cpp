#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dring::util {

const Json& Json::at(const std::string& key) const {
  require(Type::Object, "object");
  const auto it = object_.find(key);
  if (it == object_.end())
    throw std::invalid_argument("json: missing key \"" + key + "\"");
  return it->second;
}

std::int64_t Json::get_int(const std::string& key, std::int64_t def) const {
  return has(key) ? at(key).as_int() : def;
}

double Json::get_double(const std::string& key, double def) const {
  return has(key) ? at(key).as_double() : def;
}

bool Json::get_bool(const std::string& key, bool def) const {
  return has(key) ? at(key).as_bool() : def;
}

std::string Json::get_string(const std::string& key,
                             const std::string& def) const {
  return has(key) ? at(key).as_string() : def;
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  require(Type::Object, "object");
  object_[key] = std::move(value);
}

// --- writer -------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: out += std::to_string(int_); return;
    case Type::Double: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      return;
    }
    case Type::String: dump_string(string_, out); return;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        value.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// --- parser -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* kw) {
    const std::size_t len = std::char_traits<char>::length(kw);
    if (text_.compare(pos_, len, kw) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_keyword("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_keyword("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_keyword("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20)
          fail("unescaped control character in string");
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // the store only ever writes ASCII control escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid number");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(first, last, value);
      if (ec == std::errc() && ptr == last) return Json(value);
      // fall through to double on int64 overflow
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dring::util
