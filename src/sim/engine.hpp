// The round-based simulation engine (paper, Section 2.1).
//
// Each round:
//   1. all edges are restored; the adversary picks a non-empty activation
//      set (engine enforces fairness, the ET simultaneity condition, and
//      FSYNC semantics);
//   2. every active agent Looks (snapshot of its node in its local frame,
//      plus feedback about its previous activation) and Computes an Intent;
//   3. port acquisition resolves under mutual exclusion, with adversarial
//      tie-breaking; losers observe `failed`;
//   4. the adversary — having seen full state and intents — removes at most
//      one edge (1-interval connectivity);
//   5. movement resolves: port holders that computed Move traverse iff
//      their edge is present, otherwise they stay blocked on the port;
//      under PT, agents *sleeping* on a port of a present edge are
//      passively transported. Opposite-direction traversals of the same
//      edge cross silently.
//
// The engine owns ground truth (visited set, move counts, termination
// bookkeeping) and an optional per-round trace; a built-in verifier checks
// model invariants every round and records violations instead of crashing,
// so tests can assert on them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/brain.hpp"
#include "agent/orientation.hpp"
#include "ring/dynamic_ring.hpp"
#include "sim/adversary.hpp"
#include "sim/models.hpp"

namespace dring::sim {

/// Simulator-side state of one agent.
struct AgentBody {
  AgentId id = -1;
  NodeId node = kNoNode;
  bool on_port = false;
  GlobalDir port_side = GlobalDir::Ccw;  // valid iff on_port
  agent::Orientation orientation;
  bool terminated = false;
  Round termination_round = -1;
  long long moves = 0;          ///< active traversals
  long long passive_moves = 0;  ///< PT transports

  // Outcome record accumulated since the agent's last activation; delivered
  // as Feedback at the next activation.
  agent::Feedback outcome;

  Round last_active_round = 0;  ///< 0 = never active yet
  Round et_missed_present = 0;  ///< rounds slept on a port with edge present
};

/// One agent's slice of a trace record.
struct AgentTrace {
  AgentId id;
  NodeId node;
  bool on_port;
  GlobalDir port_side;
  bool active;
  bool terminated;
  std::string state;
  agent::Intent intent;
};

/// One round of trace.
struct RoundTrace {
  Round round;
  std::optional<EdgeId> missing;
  std::vector<AgentTrace> agents;
};

/// Per-agent summary in a run result.
struct AgentResult {
  AgentId id;
  bool terminated = false;
  Round termination_round = -1;
  long long moves = 0;
  long long passive_moves = 0;
  NodeId final_node = kNoNode;
  std::string final_state;
};

/// Summary of a run.
struct RunResult {
  bool explored = false;
  Round explored_round = -1;
  Round rounds = 0;
  long long total_moves = 0;    ///< active + passive traversals
  long long active_moves = 0;
  long long passive_moves = 0;
  int terminated_agents = 0;
  bool all_terminated = false;
  /// An agent entered the terminal state before the ring was explored:
  /// the paper's correctness condition was violated.
  bool premature_termination = false;
  /// Number of engine overrides of the adversary (fairness forcing, ET
  /// vetoes). Non-zero values are legal; they show the adversary pushed
  /// against its obligations.
  long long fairness_interventions = 0;
  std::vector<AgentResult> agents;
  std::vector<std::string> violations;  ///< verifier findings (empty = ok)
  std::string stop_reason;

  bool any_terminated() const { return terminated_agents > 0; }
  bool ok() const { return violations.empty() && !premature_termination; }
};

/// The simulation engine.
class Engine {
 public:
  /// `landmark`: index of the landmark node, if the ring has one.
  Engine(NodeId n, std::optional<NodeId> landmark, Model model,
         EngineOptions options = {});

  // Non-copyable, non-movable: WorldView and the adversary hold pointers
  // into the engine.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Add an agent at `start` with the given orientation and protocol.
  /// Returns its id (dense, starting at 0).
  AgentId add_agent(NodeId start, agent::Orientation orientation,
                    std::unique_ptr<agent::Brain> brain);

  /// Install the adversary (must outlive the engine). If never called, a
  /// NullAdversary is used.
  void set_adversary(Adversary* adversary);

  /// Execute one round. Returns false when no further progress is possible
  /// (all agents terminated).
  bool step();

  /// Run until the stop policy triggers; returns the summary.
  RunResult run(const StopPolicy& stop);

  // --- inspection -----------------------------------------------------------
  const ring::DynamicRing& ring() const { return ring_; }
  Model model() const { return model_; }
  Round round() const { return round_; }
  int num_agents() const { return static_cast<int>(bodies_.size()); }
  const AgentBody& body(AgentId a) const { return bodies_.at(a); }
  const agent::Brain& brain(AgentId a) const { return *brains_.at(a); }
  const std::vector<bool>& visited() const { return visited_; }
  bool explored() const { return visited_count_ == ring_.size(); }
  Round explored_round() const { return explored_round_; }
  const std::vector<RoundTrace>& trace() const { return trace_; }
  const std::vector<std::string>& violations() const { return violations_; }
  bool premature_termination() const { return premature_termination_; }
  long long fairness_interventions() const { return fairness_interventions_; }

  /// Build the Look snapshot for an agent (local frame). Public so that
  /// WorldView probing and tests can reuse the exact engine semantics.
  agent::Snapshot make_snapshot(AgentId a) const;

 private:
  friend class WorldView;

  std::vector<bool> decide_activation();
  void mark_visited(NodeId v);

  ring::DynamicRing ring_;
  Model model_;
  EngineOptions options_;
  NullAdversary null_adversary_;
  Adversary* adversary_;

  std::vector<AgentBody> bodies_;
  std::vector<std::unique_ptr<agent::Brain>> brains_;

  Round round_ = 0;
  std::vector<bool> visited_;
  NodeId visited_count_ = 0;
  Round explored_round_ = -1;
  bool premature_termination_ = false;
  long long fairness_interventions_ = 0;

  std::vector<RoundTrace> trace_;
  std::vector<std::string> violations_;
};

}  // namespace dring::sim
