// Adversarial gauntlet: run every algorithm in the library against a
// battery of adversaries under its stated assumptions and report a
// pass/fail matrix.  This is the "does the whole map hold up" example —
// the one-stop sanity check a downstream user can run after modifying
// anything.
//
//   ./adversarial_gauntlet [--n=9] [--seeds=3] [--verbose]
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

struct GauntletResult {
  bool explored = true;
  bool clean = true;  // no premature termination / violations
  long long worst_rounds = 0;
};

GauntletResult run_battery(algo::AlgorithmId id, NodeId n, int seeds,
                           bool verbose) {
  const algo::AlgorithmInfo& meta = algo::info(id);
  GauntletResult out;

  struct Scenario {
    std::string name;
    std::unique_ptr<sim::Adversary> adv;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"static", std::make_unique<sim::NullAdversary>()});
  scenarios.push_back(
      {"fixed-edge", std::make_unique<adversary::FixedEdgeAdversary>(1)});
  scenarios.push_back(
      {"obs1-block(0)", std::make_unique<adversary::BlockAgentAdversary>(0)});
  for (int s = 1; s <= seeds; ++s) {
    scenarios.push_back(
        {"random#" + std::to_string(s),
         std::make_unique<adversary::RandomAdversary>(0.5, 0.7, 97 * s + n)});
    scenarios.push_back({"targeted#" + std::to_string(s),
                         std::make_unique<adversary::TargetedRandomAdversary>(
                             0.7, 0.6, 31 * s + n)});
  }
  if (sim::is_ssync(meta.model)) {
    scenarios.push_back({"rotation",
                         std::make_unique<
                             adversary::RotationActivationAdversary>(3)});
  }

  for (Scenario& sc : scenarios) {
    core::ExplorationConfig cfg = core::default_config(id, n);
    cfg.stop.max_rounds =
        400'000LL + 400LL * algo::no_chirality_time_bound(n);
    const sim::RunResult r = core::run_exploration(cfg, sc.adv.get());
    const bool term_ok = !meta.terminating || r.any_terminated();
    const bool ok = r.explored && !r.premature_termination &&
                    r.violations.empty() && term_ok;
    out.explored = out.explored && r.explored;
    out.clean = out.clean && ok;
    out.worst_rounds = std::max(out.worst_rounds, (long long)r.rounds);
    if (verbose || !ok) {
      std::cout << "  " << meta.name << " vs " << sc.name << ": "
                << (ok ? "ok" : "FAIL") << " (explored=" << r.explored
                << ", rounds=" << r.rounds
                << ", moves=" << r.total_moves
                << ", terminated=" << r.terminated_agents << "/"
                << r.agents.size()
                << (r.premature_termination ? ", PREMATURE" : "") << ")\n";
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 9));
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bool verbose = cli.get_bool("verbose", false);

  std::cout << "Adversarial gauntlet on rings of size " << n << "\n\n";
  util::Table table(
      {"Algorithm", "Theorem", "Model", "All explored", "Clean",
       "Worst rounds"});
  bool all_ok = true;
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms()) {
    const GauntletResult r = run_battery(meta.id, n, seeds, verbose);
    all_ok = all_ok && r.clean;
    table.add_row({meta.name, meta.theorem, sim::to_string(meta.model),
                   r.explored ? "yes" : "NO", r.clean ? "yes" : "NO",
                   util::fmt_count(r.worst_rounds)});
  }
  table.print(std::cout);
  std::cout << (all_ok ? "\nAll algorithms survive the gauntlet.\n"
                       : "\nFAILURES detected — see the lines above.\n");
  return all_ok ? 0 : 1;
}
