// Reproduces Table 3 of the paper (SSYNC impossibility results):
//
//   | NS  | any # | exploration impossible (Th. 9)                        |
//   | PT  | 2     | no chirality: exploration impossible (Th. 10)         |
//   | PT  | 2     | explicit termination of both impossible (Th. 11)      |
//   | ET  | any # | unknown n: partial termination impossible (Th. 19)    |
//
// Each row replays the corresponding proof construction against the
// strongest applicable protocols of the library.
#include <iostream>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const Round horizon = cli.get_int("horizon", 50'000);

  std::cout << "=== Table 3: impossibility results in SSYNC models "
               "(replayed constructions) ===\n\n";
  util::Table table(
      {"Model", "Construction", "Paper claim", "Protocol", "Outcome"});

  // --- Theorem 9 (NS) -------------------------------------------------------
  for (const algo::AlgorithmId id :
       {algo::AlgorithmId::PTBoundWithChirality,
        algo::AlgorithmId::PTBoundNoChirality,
        algo::AlgorithmId::ETBoundNoChirality}) {
    core::ExplorationConfig cfg = core::default_config(id, 8);
    cfg.model = sim::Model::SSYNC_NS;
    cfg.engine.fairness_window = 1'000'000;  // Th. 9's scheduler is fair
    cfg.stop.max_rounds = horizon;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
    adversary::NsFirstMoverAdversary adv;
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    table.add_row({"NS", "Th. 9 first-mover blocker",
                   "exploration impossible, any # agents",
                   algo::info(id).name,
                   (r.explored ? "EXPLORED (unexpected!)"
                               : "unexplored") +
                       std::string(", total moves ") +
                       std::to_string(r.total_moves) + " after " +
                       util::fmt_count(r.rounds) + " rounds"});
  }

  // --- Theorem 10 (PT, 2 agents, no chirality) ------------------------------
  {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTLandmarkWithChirality, 9);
    cfg.orientations = {agent::kChiralOrientation,
                        agent::kMirroredOrientation};  // chirality violated
    cfg.start_nodes = {2, 7};
    cfg.stop.max_rounds = horizon;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
    adversary::HeadOnPinAdversary adv(0, 1);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    table.add_row(
        {"PT", "Th. 10 head-on pin",
         "2 agents w/o chirality cannot explore (even with landmark, n)",
         "PTLandmark (mirrored)",
         (r.explored ? "EXPLORED (unexpected!)" : "unexplored") +
             std::string(", pinned edge ") +
             (adv.pinned() ? std::to_string(*adv.pinned()) : "-") +
             ", both agents starved"});
  }

  // --- Theorem 11 (PT: only partial termination) ----------------------------
  {
    const NodeId n = 16;
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.start_nodes = {static_cast<NodeId>(n / 2 - 1), 0};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.fairness_window = 4096;
    cfg.stop.max_rounds = horizon;
    cfg.stop.stop_when_explored_and_one_terminated = true;
    adversary::SlidingWindowAdversary adv(0, 1);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    table.add_row(
        {"PT", "Th. 11 sliding window",
         "only partial termination is guaranteed", "PTBoundWithChirality",
         "explored=" + std::string(r.explored ? "yes" : "no") +
             ", terminated " + std::to_string(r.terminated_agents) + "/2 " +
             "(the pinned leader waits on its port forever)"});
  }

  // --- Theorem 19 (ET with a bound only) ------------------------------------
  {
    const NodeId n2 = 12;
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::ETBoundNoChirality, n2);
    cfg.exact_n = 8;  // R1's size: true in R1, a lie in R2
    cfg.start_nodes = {1, 4, 6};
    cfg.engine.et_budget = 1'000'000;
    cfg.engine.fairness_window = 1'000'000;
    cfg.stop.max_rounds = horizon;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
    adversary::SegmentSealAdversary adv(7, 11);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    table.add_row(
        {"ET", "Th. 19 segment seal (R1 vs R2)",
         "partial termination impossible with bound only",
         "ETBoundNoChirality (believes n=8 on ring of 12)",
         std::string(r.premature_termination
                         ? "terminated on the sealed segment as if it were "
                           "R1 — premature on R2"
                         : "no premature termination (unexpected!)") +
             ", explored=" + (r.explored ? "yes" : "no")});
  }

  table.print(std::cout);
  std::cout << "\nEvery construction defeats the protocol exactly as the "
               "paper's proof predicts.\n";
  return 0;
}
