// Reproduces Table 1 of the paper (FSYNC impossibility results) by
// replaying the proofs' constructions against concrete protocols:
// Observation 1 (a blocked single agent), Observation 2 (the
// meeting-prevention adversary), Theorems 1/2 (indistinguishability under
// a size hypothesis).
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the expect-failure scenario rows live in the
// "table1_fsync" artifact, whose campaign store also backs the committed
// examples/paper/table1_fsync.md report (dring_artifact).  Output is
// byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const Round horizon = cli.get_int("horizon", 100'000);
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact = core::make_table1_artifact(horizon);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
