// White-box behaviour tests for the SSYNC protocols: the leftSteps /
// rightSteps crossing detection of PTTwoAgents (Figure 14), the CheckD
// distance discipline of the three-agent family (Figure 18), the strict
// inequality of the ET variant, Tnodes-based termination, and passive
// transport accounting inside the protocols.
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/pt_two_agents.hpp"
#include "algo/three_agents_no_chirality.hpp"
#include "core/runner.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;

TEST(PTTwoAgents, TerminatesAfterNLeftStepsOnFreeRing) {
  // Unopposed, an agent walks left; Tnodes >= N fires after N-1 steps.
  const NodeId n = 10;
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  cfg.stop.max_rounds = 100;
  sim::NullAdversary adv;
  const sim::RunResult r = core::run_exploration(cfg, &adv);
  EXPECT_TRUE(r.explored);
  EXPECT_TRUE(r.all_terminated);
  for (const auto& a : r.agents) {
    // N-1 moves to perceive N nodes, +1 activation to detect.
    EXPECT_LE(a.termination_round, n + 1);
    EXPECT_GE(a.moves, n - 1);
  }
}

TEST(PTTwoAgents, BounceOnCatchThenReverseOnBlock) {
  const NodeId n = 8;
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  cfg.start_nodes = {4, 2};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 8;
  cfg.stop.stop_when_all_terminated = false;
  // Pin agent 0 so agent 1 catches it, then block agent 1's rightward
  // bounce so it reverses.
  adversary::BlockAgentAdversary adv(0);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Round 3: agent 1 arrived at node 4 and sees agent 0 on the left port.
  std::string s3, s4;
  for (const auto& rt : engine->trace()) {
    if (rt.round == 3) s3 = rt.agents[1].state;
  }
  EXPECT_EQ(s3, "Bounce");
}

TEST(PTTwoAgents, CrossingDetectionTerminates) {
  // Construct the rightSteps >= leftSteps situation: both agents blocked
  // on the same edge from both sides; agent catching after a shrinking
  // return leg terminates (the agents have crossed / pinned the edge).
  const NodeId n = 8;
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  cfg.start_nodes = {3, 0};
  cfg.engine.fairness_window = 1 << 20;
  cfg.stop.max_rounds = 4000;
  cfg.stop.stop_when_explored_and_one_terminated = true;
  adversary::SlidingWindowAdversary adv(0, 1);
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);
  EXPECT_TRUE(r.explored);
  EXPECT_GE(r.terminated_agents, 1);
  EXPECT_FALSE(r.premature_termination);
  // The chaser's brain must have recorded both legs.
  const auto* chaser =
      dynamic_cast<const algo::PTTwoAgents*>(&engine->brain(1));
  ASSERT_NE(chaser, nullptr);
  EXPECT_GE(chaser->left_steps(), 0);
}

TEST(PTTwoAgents, PassiveTransportCountsTowardsTnodes) {
  // An agent carried across edges while asleep perceives the traversals:
  // a PT run where one agent's motion is mostly passive still terminates.
  const NodeId n = 6;
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  cfg.stop.max_rounds = 200'000;
  adversary::RandomAdversary adv(0.3, 0.35, 1234);  // lots of sleeping
  const sim::RunResult r = core::run_exploration(cfg, &adv);
  EXPECT_TRUE(r.explored);
  EXPECT_GE(r.terminated_agents, 1);
  EXPECT_FALSE(r.premature_termination);
}

TEST(ThreeAgents, CheckDGrowthRecorded) {
  const NodeId n = 9;
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, n);
  cfg.stop.max_rounds = 400'000;
  adversary::TargetedRandomAdversary adv(0.7, 0.6, 99);
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);
  EXPECT_TRUE(r.explored);
  EXPECT_GE(r.terminated_agents, 1);
  for (AgentId a = 0; a < engine->num_agents(); ++a) {
    const auto* brain =
        dynamic_cast<const algo::ThreeAgentsNoChirality*>(&engine->brain(a));
    ASSERT_NE(brain, nullptr);
    EXPECT_GE(brain->d(), 0);
  }
}

TEST(ThreeAgents, EtVariantRequiresExactN) {
  EXPECT_THROW(algo::ThreeAgentsNoChirality(
                   algo::ThreeAgentsNoChirality::Variant::EventualTransport,
                   agent::Knowledge{}),
               std::invalid_argument);
}

TEST(ThreeAgents, EtTerminationNotOneNodeEarly) {
  // D9 regression: with exact n, termination happens at Tnodes >= n, not
  // n-1 — on a free ring the agents must have perceived ALL n nodes when
  // the first one halts.
  for (NodeId n : {5, 8, 12}) {
    ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, n);
    cfg.stop.max_rounds = 50'000;
    sim::NullAdversary adv;
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << n;
    EXPECT_FALSE(r.premature_termination) << n;
    EXPECT_GE(r.terminated_agents, 1) << n;
  }
}

TEST(ThreeAgents, SurvivesPerpetualEdgeRemoval) {
  // "If the adversary keeps an edge perpetually removed, eventually the
  // algorithm terminates due to condition Esteps = d" (Th. 16 proof):
  // two agents end up on the missing edge's ports, the third shuttles and
  // terminates.
  for (NodeId n : {6, 9, 12}) {
    ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, n);
    cfg.stop.max_rounds = 400'000;
    adversary::FixedEdgeAdversary adv(2);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_GE(r.terminated_agents, 1) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

TEST(ThreeAgents, EtSurvivesPerpetualEdgeRemoval) {
  for (NodeId n : {6, 9}) {
    ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, n);
    cfg.stop.max_rounds = 400'000;
    adversary::FixedEdgeAdversary adv(0);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_GE(r.terminated_agents, 1) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

TEST(PTTwoAgents, SurvivesPerpetualEdgeRemoval) {
  // Theorem 12's proof: with an edge perpetually missing the agents pin
  // it from both sides and the rightSteps >= leftSteps check fires.
  for (NodeId n : {6, 10}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, n);
    cfg.stop.max_rounds = 400'000;
    adversary::FixedEdgeAdversary adv(3);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_GE(r.terminated_agents, 1) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

TEST(ETUnconscious, FlipsOnlyOnCatches) {
  const NodeId n = 7;
  ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, n);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 200;
  sim::NullAdversary adv;  // free ring: no catches, no flips
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Without catches both agents circle forever in their initial direction:
  // move counts equal round counts.
  EXPECT_EQ(engine->body(0).moves + engine->body(1).moves,
            2 * engine->round());
}

}  // namespace
}  // namespace dring
