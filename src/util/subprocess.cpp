#include "util/subprocess.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#ifdef _WIN32
#error "util/subprocess is POSIX-only (the dring toolchain targets Linux)"
#endif

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace dring::util {

Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = other.pid_;
  exit_code_ = other.exit_code_;
  signaled_ = other.signaled_;
  started_ = other.started_;
  reaped_ = other.reaped_;
  other.pid_ = -1;
  other.started_ = false;
  other.reaped_ = false;
  return *this;
}

Subprocess Subprocess::spawn(const SpawnSpec& spec) {
  if (spec.argv.empty())
    throw std::runtime_error("subprocess: empty argv");

  // Build the argv vector before forking — no allocation between fork and
  // exec (the child may run with async-signal-safety constraints).
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& a : spec.argv)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("subprocess: fork failed: ") +
                             std::strerror(errno));
  if (pid == 0) {
    // Child.  Failures here cannot throw — report through the exit code.
    for (const auto& [key, value] : spec.env)
      ::setenv(key.c_str(), value.c_str(), /*overwrite=*/1);
    if (!spec.output_path.empty()) {
      const int fd = ::open(spec.output_path.c_str(),
                            O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    ::execvp(argv[0], argv.data());
    ::_exit(127);  // exec failed (binary missing / not executable)
  }

  Subprocess child;
  child.pid_ = pid;
  child.started_ = true;
  return child;
}

namespace {

/// Fold a waitpid status into the shell convention.
int fold_status(int status, bool& signaled) {
  if (WIFEXITED(status)) {
    signaled = false;
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    signaled = true;
    return 128 + WTERMSIG(status);
  }
  signaled = false;
  return -1;
}

}  // namespace

bool Subprocess::running() {
  if (!started_ || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return true;  // still running
  // r == pid: exited now; r < 0 (ECHILD): someone else reaped it — treat
  // as finished with an unknown status rather than spinning forever.
  reaped_ = true;
  exit_code_ = (r > 0) ? fold_status(status, signaled_) : -1;
  return false;
}

int Subprocess::exit_code_blocking() {
  if (!started_ || reaped_) return exit_code_;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  reaped_ = true;
  exit_code_ = (r > 0) ? fold_status(status, signaled_) : -1;
  return exit_code_;
}

void Subprocess::kill_hard() {
  if (!started_ || reaped_) return;
  ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

std::string executable_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

}  // namespace dring::util
