// Unit tests for src/util: deterministic RNG, bit-string helpers (checked
// against the paper's worked examples), table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitstring.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dring::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  Rng parent2(42);
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Bitstring, ToBinary) {
  EXPECT_EQ(to_binary(0), "0");
  EXPECT_EQ(to_binary(1), "1");
  EXPECT_EQ(to_binary(2), "10");
  EXPECT_EQ(to_binary(6), "110");
  EXPECT_EQ(to_binary(164), "10100100");
}

TEST(Bitstring, FromBinaryRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 5ULL, 48ULL, 164ULL, 304ULL,
                          1023ULL, 123456789ULL}) {
    EXPECT_EQ(from_binary(to_binary(v)), v);
  }
  EXPECT_EQ(from_binary("000110000"), 48u);  // leading zeros ignored
}

TEST(Bitstring, PadLeft) {
  EXPECT_EQ(pad_left("11", 4), "0011");
  EXPECT_EQ(pad_left("1111", 4), "1111");
  EXPECT_EQ(pad_left("11111", 4), "11111");
}

// Figure 9 of the paper: agent a with k1=010, k2=010, k3=000 -> ID 48.
TEST(Bitstring, Figure9AgentA) {
  EXPECT_EQ(interleave3("010", "010", "000"), "000110000");
  EXPECT_EQ(interleaved_id(2, 2, 0), 48u);
}

// Figure 9, agent b: k1=011, k2=100, k3=000 -> ID 164.
TEST(Bitstring, Figure9AgentB) {
  EXPECT_EQ(interleave3("011", "100", "000"), "010100100");
  EXPECT_EQ(interleaved_id(3, 4, 0), 164u);
}

// Figure 10, agent a: k1=10, k2=01, k3=10 -> ID 42.
TEST(Bitstring, Figure10AgentA) {
  EXPECT_EQ(interleave3("10", "01", "10"), "101010");
  EXPECT_EQ(interleaved_id(2, 1, 2), 42u);
}

// Figure 10, agent b: k1=110, k2=010, k3=000 -> ID 304.
TEST(Bitstring, Figure10AgentB) {
  EXPECT_EQ(interleave3("110", "010", "000"), "100110000");
  EXPECT_EQ(interleaved_id(6, 2, 0), 304u);
}

TEST(Bitstring, InterleavePadsShorterInputs) {
  // Different lengths: all padded to the longest before interleaving:
  // "001", "010", "100" -> a0 b0 c0 a1 b1 c1 a2 b2 c2.
  EXPECT_EQ(interleave3("1", "10", "100"), "001010100");
}

TEST(Bitstring, DupMatchesPaperExample) {
  EXPECT_EQ(dup("1010", 2), "11001100");  // paper, Section 3.2.3
  EXPECT_EQ(dup("01", 3), "000111");
  EXPECT_EQ(dup("", 5), "");
  EXPECT_EQ(dup("1", 1), "1");
}

TEST(BitVec, SetTestResetAcrossWordBoundaries) {
  util::BitVec v(130);  // spans three 64-bit words
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(v.test(i));
    v.set(i);
    EXPECT_TRUE(v.test(i));
  }
  EXPECT_EQ(v.count(), 6u);
  v.reset(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.count(), 5u);
}

TEST(BitVec, TestAndSetReportsFreshnessOnce) {
  util::BitVec v(70);
  EXPECT_TRUE(v.test_and_set(69));
  EXPECT_FALSE(v.test_and_set(69));
  EXPECT_TRUE(v.test(69));
  EXPECT_EQ(v.count(), 1u);
}

TEST(BitVec, ResetRangeClearsExactlyTheHalfOpenInterval) {
  util::BitVec v(200);
  for (std::size_t i = 0; i < 200; ++i) v.set(i);
  v.reset_range(10, 140);  // head bits, full middle words, tail bits
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_EQ(v.test(i), i < 10 || i >= 140) << "bit " << i;
  EXPECT_EQ(v.count(), 70u);
  v.reset_range(50, 50);  // empty interval is a no-op
  EXPECT_EQ(v.count(), 70u);
}

TEST(BitVec, ResizeZeroesNewlyExposedBits) {
  util::BitVec v(10);
  for (std::size_t i = 0; i < 10; ++i) v.set(i);
  v.resize(5);   // shrink: the dropped bits must not survive a regrow
  v.resize(80);
  EXPECT_EQ(v.count(), 5u);
  for (std::size_t i = 5; i < 80; ++i) EXPECT_FALSE(v.test(i));
}

TEST(Bitstring, DistinctKTriplesGiveDistinctIds) {
  // "Two IDs are equal if and only if their ki's are equal."
  std::set<std::uint64_t> ids;
  int count = 0;
  for (std::uint64_t k1 = 0; k1 < 6; ++k1)
    for (std::uint64_t k2 = 0; k2 < 6; ++k2)
      for (std::uint64_t k3 = 0; k3 < 6; ++k3) {
        ids.insert(interleaved_id(k1, k2, k3));
        ++count;
      }
  EXPECT_EQ(static_cast<int>(ids.size()), count);
}

TEST(Table, RendersAlignedCells) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4    |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "hello,world"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "x,y\n1,\"hello,world\"\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234), "-1,234");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note: a bare flag followed by a non-flag token would consume it as its
  // value, so boolean flags go last or use the --flag=true form.
  const char* argv[] = {"prog", "--n=12", "--seed", "7", "pos1", "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

}  // namespace
}  // namespace dring::util
