// Rebuild the paper's map of feasibility (the headline contribution):
// every algorithm from Tables 2 and 4, swept over ring sizes and
// adversaries under its stated assumptions, with measured worst-case cost
// and the termination discipline achieved.
//
//   ./feasibility_map [--seeds=5] [--sizes=4,5,6,8,11,16] [--threads=N]
//
// --threads=0 (default) uses every hardware thread; the emitted rows are
// bit-identical for any thread count.
#include <iostream>
#include <sstream>

#include "core/feasibility_map.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);

  core::FeasibilitySweep sweep;
  sweep.seeds_per_size = static_cast<int>(cli.get_int("seeds", 5));
  sweep.threads = static_cast<int>(cli.get_int("threads", 0));
  if (cli.has("sizes")) {
    sweep.sizes.clear();
    std::stringstream ss(cli.get("sizes", ""));
    std::string token;
    while (std::getline(ss, token, ','))
      sweep.sizes.push_back(static_cast<NodeId>(std::stoi(token)));
  }

  core::SweepOptions pool;
  pool.threads = sweep.threads;
  std::cout << "Rebuilding the feasibility map (Tables 2 and 4) over sizes ";
  for (NodeId n : sweep.sizes) std::cout << n << " ";
  std::cout << "with " << sweep.seeds_per_size << " seeds each on "
            << core::resolve_threads(pool) << " worker thread(s)...\n\n";

  const auto rows = core::build_feasibility_map(sweep);
  core::print_feasibility_map(rows, std::cout);

  bool all_ok = true;
  for (const auto& row : rows) all_ok = all_ok && row.ok();
  std::cout << (all_ok
                    ? "\nEvery published possibility result reproduces: all "
                      "runs explore, and no run terminates prematurely.\n"
                    : "\nSome rows FAILED — the map does not reproduce!\n");
  return all_ok ? 0 : 1;
}
