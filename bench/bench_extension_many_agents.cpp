// Extension study (beyond the paper): how the paper's 2-agent unconscious
// protocols behave with MORE agents, and how team size affects
// exploration time under hostile dynamics.
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the protocol x team-size x seed matrix — all
// run_custom cells, since the teams mix non-registry brains — lives in
// the "extension_many_agents" artifact, whose campaign store also backs
// the committed examples/paper/extension_many_agents.md report
// (dring_artifact).  Output is byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 16));
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  const Round budget = cli.get_int("budget", 200'000);
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact =
      core::make_extension_many_agents_artifact(n, seeds, budget);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
