// Campaign driver: expand a declarative campaign spec, run it on the
// worker pool, and append one JSON line per scenario to the result store.
//
//   dring_campaign --spec examples/campaign_smoke.json \
//       [--out results.jsonl] [--threads N] [--resume] [--dry-run]
//   dring_campaign --diff old.jsonl new.jsonl
//
// The store is canonical JSONL: bytes are identical for any --threads
// value, re-running with --resume executes only scenarios whose
// fingerprint is not yet stored, and --diff compares two stores row by
// row (the cross-commit regression workflow).
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

int run_diff(const std::vector<std::string>& paths) {
  if (paths.size() != 2) {
    std::cerr << "--diff needs exactly two store paths\n";
    return 2;
  }
  std::vector<std::vector<core::CampaignRow>> stores;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    stores.push_back(core::read_result_store(in));
  }
  const core::StoreDiff diff =
      core::diff_result_stores(stores[0], stores[1]);
  std::cout << "only in " << paths[0] << ": " << diff.only_a.size()
            << "\nonly in " << paths[1] << ": " << diff.only_b.size()
            << "\nchanged outcomes: " << diff.changed.size() << "\n";
  for (const auto& [a, b] : diff.changed) {
    std::cout << "  " << core::to_json(a).at("spec").dump() << "\n    - "
              << core::to_json(a).at("result").dump() << "\n    + "
              << core::to_json(b).at("result").dump() << "\n";
  }
  return diff.identical() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  if (cli.has("diff")) {
    // `--diff a.jsonl b.jsonl`: the two stores arrive as the flag value
    // (when written `--diff=a.jsonl`) and/or positionals.
    std::vector<std::string> paths;
    const std::string value = cli.get("diff", "");
    if (!value.empty() && value != "true" && value != "1")
      paths.push_back(value);
    for (const std::string& p : cli.positional()) paths.push_back(p);
    return run_diff(paths);
  }

  const std::string spec_path = cli.get("spec", "");
  if (spec_path.empty()) {
    std::cerr << "usage: dring_campaign --spec campaign.json [--out s.jsonl]"
                 " [--threads N] [--resume] [--dry-run]\n"
                 "       dring_campaign --diff old.jsonl new.jsonl\n";
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "cannot open spec: " << spec_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  core::CampaignSpec campaign;
  try {
    campaign = core::campaign_spec_from_json(util::Json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::cerr << spec_path << ": " << e.what() << "\n";
    return 2;
  }

  core::CampaignOptions options;
  options.threads = static_cast<int>(cli.get_int("threads", 0));
  options.out_path = cli.get("out", "");
  options.resume = cli.get_bool("resume", false);

  if (cli.get_bool("dry-run", false)) {
    const auto specs = core::expand(campaign);
    std::cout << "campaign '" << campaign.name << "': " << specs.size()
              << " scenarios\n";
    for (const auto& spec : specs)
      std::cout << core::to_json(spec).dump() << "\n";
    return 0;
  }

  core::CampaignReport report;
  try {
    report = core::run_campaign(campaign, options);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return 1;
  }

  std::cout << "campaign '" << campaign.name << "': " << report.total
            << " scenarios, " << report.executed << " executed, "
            << report.skipped << " resumed from "
            << (options.out_path.empty() ? "(no store)" : options.out_path)
            << "\n";

  // Console summary of the rows executed in this invocation.
  if (!report.rows.empty()) {
    int explored = 0, premature = 0, violations = 0;
    Round worst_rounds = 0;
    std::string worst_spec;
    for (const core::CampaignRow& row : report.rows) {
      if (row.outcome.explored) ++explored;
      if (row.outcome.premature_termination) ++premature;
      violations += row.outcome.violations;
      if (row.outcome.rounds > worst_rounds) {
        worst_rounds = row.outcome.rounds;
        worst_spec = core::to_json(row.spec).dump();
      }
    }
    util::Table t({"executed", "explored", "premature", "violations",
                   "worst rounds"});
    t.add_row({std::to_string(report.rows.size()), std::to_string(explored),
               std::to_string(premature), std::to_string(violations),
               std::to_string(worst_rounds)});
    t.print(std::cout);
    if (!worst_spec.empty())
      std::cout << "worst-case scenario: " << worst_spec << "\n";
  }
  return 0;
}
