#include "util/bitstring.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace dring::util {

std::string to_binary(std::uint64_t v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back((v & 1) != 0 ? '1' : '0');
    v >>= 1;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t from_binary(const std::string& bits) {
  std::uint64_t v = 0;
  for (char c : bits) {
    assert(c == '0' || c == '1');
    v = (v << 1) | static_cast<std::uint64_t>(c == '1');
  }
  return v;
}

std::string pad_left(const std::string& bits, std::size_t width) {
  if (bits.size() >= width) return bits;
  return std::string(width - bits.size(), '0') + bits;
}

std::string interleave3(const std::string& a, const std::string& b,
                        const std::string& c) {
  const std::size_t w = std::max({a.size(), b.size(), c.size()});
  const std::string pa = pad_left(a, w);
  const std::string pb = pad_left(b, w);
  const std::string pc = pad_left(c, w);
  std::string out;
  out.reserve(3 * w);
  for (std::size_t i = 0; i < w; ++i) {
    out.push_back(pa[i]);
    out.push_back(pb[i]);
    out.push_back(pc[i]);
  }
  return out;
}

std::uint64_t interleaved_id(std::uint64_t k1, std::uint64_t k2,
                             std::uint64_t k3) {
  return from_binary(interleave3(to_binary(k1), to_binary(k2), to_binary(k3)));
}

std::string dup(const std::string& s, std::size_t k) {
  std::string out;
  out.reserve(s.size() * k);
  for (char c : s) out.append(k, c);
  return out;
}

void BitVec::resize(std::size_t bits) {
  words_.resize((bits + 63) / 64, 0);
  // When shrinking, zero the tail of the last word so a later re-grow
  // exposes clear bits only.
  if (bits < bits_ && bits % 64 != 0)
    words_[bits >> 6] &= (std::uint64_t{1} << (bits & 63)) - 1;
  bits_ = bits;
}

void BitVec::reset_range(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  const std::size_t first = begin >> 6;
  const std::size_t last = (end - 1) >> 6;
  const std::uint64_t head = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t tail =
      (end & 63) == 0 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (end & 63)) - 1;
  if (first == last) {
    words_[first] &= ~(head & tail);
    return;
  }
  words_[first] &= ~head;
  for (std::size_t w = first + 1; w < last; ++w) words_[w] = 0;
  words_[last] &= ~tail;
}

std::size_t BitVec::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

}  // namespace dring::util
