#include "sim/trace_io.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace dring::sim {

void write_trace_csv(const std::vector<RoundTrace>& trace, std::ostream& os) {
  os << "round,missing_edge,agent,node,on_port,port_side,active,terminated,"
        "state\n";
  for (const RoundTrace& rt : trace) {
    for (const AgentTrace& at : rt.agents) {
      os << rt.round << ','
         << (rt.missing ? std::to_string(*rt.missing) : "") << ',' << at.id
         << ',' << at.node << ',' << (at.on_port ? 1 : 0) << ','
         << (at.on_port ? to_string(at.port_side) : "") << ','
         << (at.active ? 1 : 0) << ',' << (at.terminated ? 1 : 0) << ','
         << at.state << '\n';
    }
  }
}

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool b) { byte(b ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint64_t trace_digest(const std::vector<RoundTrace>& trace) {
  Fnv1a d;
  d.u64(trace.size());
  for (const RoundTrace& rt : trace) {
    d.i64(rt.round);
    d.i64(rt.missing ? *rt.missing : -1);
    d.u64(rt.agents.size());
    for (const AgentTrace& at : rt.agents) {
      d.i64(at.id);
      d.i64(at.node);
      d.boolean(at.on_port);
      d.byte(at.on_port && at.port_side == GlobalDir::Cw ? 1 : 0);
      d.boolean(at.active);
      d.boolean(at.terminated);
      d.str(at.state);
      d.byte(static_cast<std::uint8_t>(at.intent.kind));
      d.byte(at.intent.kind == agent::Intent::Kind::Move &&
                     at.intent.dir == Dir::Right
                 ? 1
                 : 0);
    }
  }
  return d.h;
}

std::uint64_t result_digest(const RunResult& r) {
  Fnv1a d;
  d.boolean(r.explored);
  d.i64(r.explored_round);
  d.i64(r.rounds);
  d.i64(r.total_moves);
  d.i64(r.active_moves);
  d.i64(r.passive_moves);
  d.i64(r.terminated_agents);
  d.boolean(r.all_terminated);
  d.boolean(r.premature_termination);
  d.i64(r.fairness_interventions);
  d.str(r.stop_reason);
  d.u64(r.agents.size());
  for (const AgentResult& a : r.agents) {
    d.i64(a.id);
    d.boolean(a.terminated);
    d.i64(a.termination_round);
    d.i64(a.moves);
    d.i64(a.passive_moves);
    d.i64(a.final_node);
    d.str(a.final_state);
  }
  d.u64(r.violations.size());
  for (const std::string& v : r.violations) d.str(v);
  return d.h;
}

std::function<std::optional<EdgeId>(Round)> edge_schedule_of(
    const std::vector<RoundTrace>& trace) {
  auto schedule = std::make_shared<std::map<Round, EdgeId>>();
  for (const RoundTrace& rt : trace)
    if (rt.missing) (*schedule)[rt.round] = *rt.missing;
  return [schedule](Round r) -> std::optional<EdgeId> {
    const auto it = schedule->find(r);
    if (it == schedule->end()) return std::nullopt;
    return it->second;
  };
}

std::function<std::vector<bool>(Round)> activation_schedule_of(
    const std::vector<RoundTrace>& trace) {
  auto schedule = std::make_shared<std::map<Round, std::vector<bool>>>();
  for (const RoundTrace& rt : trace) {
    std::vector<bool> act(rt.agents.size());
    for (std::size_t i = 0; i < rt.agents.size(); ++i)
      act[i] = rt.agents[i].active;
    (*schedule)[rt.round] = std::move(act);
  }
  return [schedule](Round r) -> std::vector<bool> {
    const auto it = schedule->find(r);
    if (it == schedule->end()) return {};
    return it->second;
  };
}

}  // namespace dring::sim
