// Telemetry: a process-global metrics registry, a structured JSONL event
// log, and leveled stderr logging on one monotonic clock.
//
// The repo's runtime visibility used to be ad-hoc stderr lines that died
// with the process — when a shard retried three times or a straggler got
// speculated, nothing durable recorded why.  This layer makes those
// quantities first-class, with one hard contract:
//
//   TELEMETRY NEVER TOUCHES CANONICAL BYTES.  Metrics and events go to
//   *sibling* files (`<base>.metrics.json`, `<base>.events.jsonl`) next to
//   the result store, so every store, committed report and golden digest
//   is byte-identical whether telemetry is on or off (CI-gated).
//
// Telemetry is disabled by default and costs one relaxed atomic load per
// instrumentation site until a CLI enables it (`--telemetry`).  Events are
// spans (begin/end pairs labelled with a shared id) and points, each
// stamped with a sequence number and microseconds on the process-wide
// monotonic clock:
//
//   {"kind":"point","labels":{"attempt":"1","shard":"2"},
//    "name":"orchestrate.dispatch","seq":7,"t_us":1234}
//
// The per-shard label-ordered event stream is deterministic for a fixed
// fault schedule; only the timestamps vary, which is why the timeline
// renderer (render_timeline) omits them unless asked — its output is a
// byte-stable record of what happened to every shard attempt.
#pragma once

#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace dring::core {

// --- leveled logging ---------------------------------------------------------

/// Stderr verbosity shared by the FlagTable CLIs (--quiet / --verbose).
enum class LogLevel {
  kQuiet = 0,  ///< errors only
  kInfo = 1,   ///< default: progress notes, replace warnings
  kDebug = 2,  ///< verbose: per-decision narration
};

void set_log_level(LogLevel level);
LogLevel log_level();
bool log_enabled(LogLevel level);

/// `--quiet` wins over `--verbose`; neither = kInfo.
LogLevel log_level_from_cli(const util::Cli& cli);

/// Declare the shared `--quiet`/`--verbose` pair on a tool's FlagTable —
/// every FlagTable CLI presents the same two spellings.
util::FlagTable& add_log_flags(util::FlagTable& flags);

/// Print "[+  12.345s] message" to stderr when `level` is enabled.  The
/// stamp is the telemetry clock (telemetry_now_us), so interleaved worker
/// and supervisor logs line up with the event timestamps.
void log_line(LogLevel level, const std::string& message);

/// Microseconds on the process-wide monotonic clock (0 at first use).
/// Event timestamps and log stamps both come from here.
long long telemetry_now_us();

/// The shared time-histogram ladder: 64us doubling through ~0.5h.  One
/// fixed layout for every duration histogram, so snapshots from different
/// layers (and different runs) line up bucket for bucket.
const std::vector<long long>& telemetry_time_bounds();

/// The shared round-count ladder: 1 doubling through ~8M rounds (the
/// default StopPolicy max), for histograms over simulated rounds rather
/// than wall time (e.g. batch lane lifetimes).
const std::vector<long long>& telemetry_round_bounds();

// --- event log + metrics sink ------------------------------------------------

/// One parsed event-log line.
struct TelemetryEvent {
  long long seq = 0;   ///< process-wide emission order
  long long t_us = 0;  ///< telemetry_now_us() at emission
  std::string name;    ///< dotted, layer-prefixed: "orchestrate.dispatch"
  std::string kind;    ///< "point" | "begin" | "end"
  std::map<std::string, std::string> labels;
};

util::Json to_json(const TelemetryEvent& event);
TelemetryEvent telemetry_event_from_json(const util::Json& j);

class Telemetry {
 public:
  /// True once enable() ran; every instrumentation site gates on this.
  bool enabled() const;

  /// Arm telemetry with sidecar base `base`: truncates and opens
  /// `<base>.events.jsonl` for the event stream and arranges for
  /// write_metrics() to land in `<base>.metrics.json`.  Throws
  /// std::runtime_error when the event file cannot be opened.
  void enable(const std::string& base);

  /// Flush + close the event stream, write the metrics sidecar, drop all
  /// metrics, and return to the disabled state (tests, and end-of-main).
  void shutdown();

  util::MetricsRegistry& metrics() { return metrics_; }

  /// Emit a point event (no-op when disabled).
  void event(const std::string& name,
             std::map<std::string, std::string> labels = {});

  /// RAII span: begin event at construction, end event (same name and
  /// labels, plus duration_us) at destruction.  Inert when telemetry was
  /// disabled at construction.
  class Span {
   public:
    Span(Telemetry& telemetry, std::string name,
         std::map<std::string, std::string> labels);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Telemetry* telemetry_;  ///< nullptr when inert
    std::string name_;
    std::map<std::string, std::string> labels_;
    long long t0_us_ = 0;
  };
  Span span(const std::string& name,
            std::map<std::string, std::string> labels = {});

  /// Write `<base>.metrics.json` (canonical dump + newline) from the
  /// current registry state.  Safe to call repeatedly; no-op when
  /// disabled.
  void write_metrics();

  std::string events_path() const;
  std::string metrics_path() const;

 private:
  void emit(const std::string& kind, const std::string& name,
            const std::map<std::string, std::string>& labels);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards the event stream + seq
  std::string base_;
  std::ofstream events_;
  long long seq_ = 0;
  util::MetricsRegistry metrics_;
};

/// The process-global instance (one per worker process; the orchestrator
/// and each dring_campaign worker own separate sidecars).
Telemetry& telemetry();

// --- rendering (dring_metrics) -----------------------------------------------

/// Read every event line of `<path>`; throws std::runtime_error when the
/// file cannot be opened and std::invalid_argument (with a line number) on
/// malformed lines.
std::vector<TelemetryEvent> read_events_file(const std::string& path);

/// Render the per-shard attempt timeline of an orchestrator event stream
/// ("orchestrate.*" events).  Events group by their "shard" label
/// (shard-less events land in a leading "run" section/series) and keep
/// emission order within the group.  Timestamps and durations are omitted
/// unless `with_times` — without them the output is byte-stable for a
/// fixed fault schedule, so CI can pin it.  Markdown renders grouped
/// sections; Csv renders one flat (shard, kind, name, labels) table
/// through the shared render_cells renderer.  (Json callers re-emit the
/// parsed events instead.)
std::string render_timeline(const std::vector<TelemetryEvent>& events,
                            bool with_times = false,
                            ReportFormat format = ReportFormat::Markdown);

/// Render a metrics snapshot (the `<base>.metrics.json` document):
/// counters, gauges, histograms, and derived rates (probe-memo hit rate,
/// resume-cache hit rate) when their inputs are present.  Markdown is the
/// sectioned summary; Csv is one flat (kind, name, value, count, sum)
/// table.
std::string render_metrics_summary(const util::Json& metrics,
                                   ReportFormat format =
                                       ReportFormat::Markdown);

/// Render the BENCH_engine.json perf trajectory (baseline vs current vs
/// speedup, plus the rebaseline `history` eras when present) — the data
/// spine of the trend dashboard (core/archive.hpp).  Markdown is the
/// trend table (+ a history section); Csv is one flat
/// (benchmark, era, real_time_ns, items_per_second, speedup) table.
std::string render_bench_trend(const util::Json& bench,
                               ReportFormat format = ReportFormat::Markdown);

}  // namespace dring::core
