#include "adversary/basic_adversaries.hpp"

namespace dring::adversary {

std::vector<bool> RandomAdversary::select_active(const sim::WorldView& view) {
  std::vector<bool> active(static_cast<std::size_t>(view.num_agents()));
  for (auto&& flag : active) flag = rng_.chance(activation_prob_);
  return active;
}

std::optional<EdgeId> RandomAdversary::choose_missing_edge(
    const sim::WorldView& view,
    const std::vector<sim::IntentRecord>& /*intents*/) {
  if (!rng_.chance(remove_prob_)) return std::nullopt;
  return static_cast<EdgeId>(
      rng_.below(static_cast<std::uint64_t>(view.ring_size())));
}

std::vector<bool> TargetedRandomAdversary::select_active(
    const sim::WorldView& view) {
  std::vector<bool> active(static_cast<std::size_t>(view.num_agents()));
  for (auto&& flag : active) flag = rng_.chance(activation_prob_);
  return active;
}

std::optional<EdgeId> TargetedRandomAdversary::choose_missing_edge(
    const sim::WorldView& view,
    const std::vector<sim::IntentRecord>& intents) {
  std::vector<EdgeId> targets;
  for (const sim::IntentRecord& rec : intents)
    if (rec.move && rec.port_acquired) targets.push_back(rec.target_edge);
  if (!targets.empty() && rng_.chance(target_prob_)) {
    return targets[rng_.below(targets.size())];
  }
  if (rng_.chance(target_prob_ / 2)) {
    return static_cast<EdgeId>(
        rng_.below(static_cast<std::uint64_t>(view.ring_size())));
  }
  return std::nullopt;
}

std::vector<bool> RotationActivationAdversary::select_active(
    const sim::WorldView& view) {
  const int n = view.num_agents();
  std::vector<bool> active(static_cast<std::size_t>(n), false);
  // Pick the next live agent in rotation; dwell keeps it active for a few
  // consecutive rounds.
  const Round slot = tick_++ / std::max<Round>(dwell_, 1);
  for (int k = 0; k < n; ++k) {
    const int candidate = static_cast<int>((slot + k) % n);
    if (!view.terminated(candidate)) {
      active[static_cast<std::size_t>(candidate)] = true;
      return active;
    }
  }
  return active;  // everyone terminated; engine handles the empty set
}

}  // namespace dring::adversary
