// Fundamental identifiers and direction types shared across the library.
//
// Global frame (simulator-side, invisible to agents):
//   * nodes are numbered 0..n-1; node indices are never exposed to agents;
//   * edge i connects node i and node (i+1) mod n;
//   * GlobalDir::Ccw is the direction of increasing node index
//     (v_i -> v_{i+1}), GlobalDir::Cw the opposite.
//
// Agent frame:
//   * each agent has a private orientation lambda mapping its local
//     Dir::Left / Dir::Right onto global directions (paper, Section 2.1);
//   * with chirality all agents share the same mapping.
#pragma once

#include <cstdint>

namespace dring {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using AgentId = std::int32_t;
using Round = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

/// Direction in the global frame of the simulator.
enum class GlobalDir : std::uint8_t {
  Ccw,  ///< from v_i towards v_{i+1}
  Cw,   ///< from v_i towards v_{i-1}
};

/// Direction in an agent's private frame (paper: "left"/"right" w.r.t. the
/// agent's own orientation lambda).
enum class Dir : std::uint8_t {
  Left,
  Right,
};

constexpr GlobalDir opposite(GlobalDir d) {
  return d == GlobalDir::Ccw ? GlobalDir::Cw : GlobalDir::Ccw;
}

constexpr Dir opposite(Dir d) { return d == Dir::Left ? Dir::Right : Dir::Left; }

constexpr const char* to_string(GlobalDir d) {
  return d == GlobalDir::Ccw ? "ccw" : "cw";
}

constexpr const char* to_string(Dir d) {
  return d == Dir::Left ? "left" : "right";
}

/// A port slot: the access point of `node` onto the incident edge in global
/// direction `side`.  Two ports exist per node; ports are held in mutual
/// exclusion (paper, Section 2.1).
struct PortRef {
  NodeId node = kNoNode;
  GlobalDir side = GlobalDir::Ccw;

  friend constexpr bool operator==(const PortRef&, const PortRef&) = default;
};

}  // namespace dring
