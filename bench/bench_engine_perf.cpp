// Engine micro-benchmarks (google-benchmark): simulation throughput as a
// function of ring size, model and adversary. Not a paper experiment —
// this documents the substrate's own cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "core/runner.hpp"

namespace {

using namespace dring;

void BM_FsyncKnownN(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 10 * n;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 7);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.rounds);
    state.counters["rounds"] = static_cast<double>(r.rounds);
  }
}
BENCHMARK(BM_FsyncKnownN)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SsyncPtBound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 100LL * n * n;
    adversary::TargetedRandomAdversary adv(0.5, 0.6, 11);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.total_moves);
  }
}
BENCHMARK(BM_SsyncPtBound)->Arg(8)->Arg(16)->Arg(32);

void BM_RoundsPerSecondRaw(benchmark::State& state) {
  // Pure engine round cost: two walkers on a big static ring.
  const NodeId n = static_cast<NodeId>(state.range(0));
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::UnconsciousExploration, n);
  cfg.engine.verify = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    engine->step();
    ++rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_RoundsPerSecondRaw)->Arg(64)->Arg(1024)->Arg(16384);

// Minimal deterministic protocol for engine microbenches: walk in one
// direction, bounce on contention/blocking. Near-zero Compute cost, so the
// measurement isolates the engine's per-agent machinery (Look snapshots,
// port mutex, movement) rather than any algorithm's bookkeeping.
class BounceWalker final : public agent::Brain {
 public:
  explicit BounceWalker(Dir d) : dir_(d) {}
  agent::Intent on_activate(const agent::Snapshot&,
                            const agent::Feedback& fb) override {
    if (fb.failed() || fb.blocked()) dir_ = opposite(dir_);
    return agent::Intent::move(dir_);
  }
  bool terminated() const override { return false; }
  std::unique_ptr<agent::Brain> clone() const override {
    return std::make_unique<BounceWalker>(*this);
  }
  std::string state_name() const override { return "Walk"; }
  std::string algorithm_name() const override { return "BounceWalker"; }

 private:
  Dir dir_;
};

void BM_BatchRoundsPerSecond(benchmark::State& state) {
  // Batched per-scenario round cost: `width` copies of the
  // BM_RoundsPerSecondRaw/64 scenario stepped in lockstep on one core.
  // items/sec counts lane-rounds, so it compares directly against the
  // scalar mark's rounds/sec: the batch's amortized dispatch should put
  // per-scenario throughput well above the scalar engine on small rings.
  const int width = static_cast<int>(state.range(0));
  const NodeId n = 64;
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::UnconsciousExploration, n);
  cfg.engine.verify = false;
  // Disable every stop condition so lanes never retire: steady state.
  cfg.stop.stop_when_explored = false;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.max_rounds = std::int64_t{1} << 62;
  sim::BatchEngine batch(width);
  for (int i = 0; i < width; ++i) {
    const bool admitted = batch.admit(
        core::make_lane_config(cfg, nullptr), static_cast<std::size_t>(i));
    if (!admitted) state.SkipWithError("admit failed");
  }
  const auto no_retire = [](std::size_t, sim::RunResult&&,
                            const sim::LanePerf&) {};
  std::int64_t lane_rounds = 0;
  for (auto _ : state) {
    batch.step_round(no_retire);
    lane_rounds += width;
  }
  state.SetItemsProcessed(lane_rounds);
}
BENCHMARK(BM_BatchRoundsPerSecond)->Arg(8)->Arg(32)->Arg(64);

void BM_ManyAgentsSnapshot(benchmark::State& state) {
  // Large teams: k walkers on a ring of k nodes (occupancy ~1, constant
  // collisions). Dominated by per-round Look/snapshot construction.
  const int k = static_cast<int>(state.range(0));
  const NodeId n = std::max<NodeId>(4, static_cast<NodeId>(k));
  sim::EngineOptions opts;
  opts.verify = false;
  sim::Engine engine(n, std::nullopt, sim::Model::FSYNC, opts);
  for (int i = 0; i < k; ++i)
    engine.add_agent(static_cast<NodeId>(i % n), agent::kChiralOrientation,
                     std::make_unique<BounceWalker>(
                         i % 2 == 0 ? Dir::Left : Dir::Right));
  std::int64_t rounds = 0;
  for (auto _ : state) {
    engine.step();
    ++rounds;
  }
  state.SetItemsProcessed(rounds * k);  // agent activations per second
}
BENCHMARK(BM_ManyAgentsSnapshot)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
