// Campaign query service: load result stores ONCE into the in-memory
// fingerprint-indexed cache (core/query.hpp) and answer aggregate /
// frontier / compare / point / cells / stats queries over a
// line-delimited JSON protocol — one request object per line in, one
// response object per line out.
//
//   dring_serve --store results.jsonl [--store more.jsonl ...] --oneshot
//   dring_serve --store results.jsonl --socket /tmp/dring.sock
//
// --oneshot serves stdin/stdout and exits at EOF — the tests/CI mode and
// the right tool for shell pipelines:
//
//   echo '{"op":"aggregate","group_by":"algorithm,n"}' \
//     | dring_serve --oneshot --raw --store results.jsonl
//
// --socket PATH listens on a local AF_UNIX stream socket and serves
// connections sequentially until killed — the daemon mode: the JSONL
// parse cost is paid once at startup, every query after that runs
// against indexed memory.  Responses are deterministic for a fixed
// store set + request; per-query latency and cache hit/miss go to the
// telemetry sidecars (--telemetry), never into the response.  A query
// touching missing cells (op "cells") answers with what exists plus a
// machine-readable manifest whose shard list plugs straight into
// `dring_orchestrate --resume` — simulation is cache-fill.
//
// Serving never writes the store: CI gates that store bytes are
// untouched after a serve session.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "core/query.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_serve",
                        "in-memory campaign query service over result "
                        "stores (load once, answer many)");
  flags.synopsis("dring_serve --store results.jsonl [--store more.jsonl ...]"
                 " --oneshot [--raw]")
      .synopsis("dring_serve --store results.jsonl --socket PATH")
      .flag("store", "FILE", "result store to load (repeatable; unioned by "
                             "fingerprint)")
      .flag("oneshot", "", "serve line-delimited JSON requests from stdin "
                           "to stdout, exit at EOF (tests/CI)")
      .flag("raw", "", "oneshot only: print each response's rendered "
                       "\"report\" (or manifest) bytes instead of the JSON "
                       "envelope — diffable against dring_report output; "
                       "error responses go to stderr and fail the exit "
                       "code")
      .flag("socket", "PATH", "listen on a local AF_UNIX stream socket and "
                              "serve until killed")
      .flag("telemetry", "BASE", "write metrics + event-log sidecars "
                                 "(BASE.metrics.json, BASE.events.jsonl): "
                                 "query.cache.{hits,misses}, "
                                 "query.latency_us, per-query spans");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("ops: aggregate, frontier, compare, point, cells, stats — one "
            "JSON object per line, {\"op\":...}; see core/query.hpp for "
            "the full request/response shapes")
      .note("a cells query returns a missing-cell manifest compatible "
            "with dring_orchestrate resume semantics: the fill path for "
            "cache misses is a supervised campaign run");
  return flags;
}

/// Serve one request line; returns false when the response was an error.
bool serve_line(const core::ResultCache& cache, const std::string& line,
                std::ostream& out, bool raw) {
  const util::Json response = core::handle_query_line(cache, line);
  const bool ok = response.get_bool("ok", false);
  if (!raw) {
    out << response.dump() << "\n";
    return ok;
  }
  if (!ok) {
    std::cerr << "dring_serve: " << response.get_string("error", "error")
              << "\n";
    return false;
  }
  // Raw mode: the rendered report bytes (or the manifest document), so
  // shell pipelines can diff serve output against dring_report directly.
  if (response.has("report"))
    out << response.at("report").as_string();
  else if (response.has("manifest"))
    out << response.at("manifest").dump() << "\n";
  else
    out << response.dump() << "\n";
  return true;
}

int serve_stdin(const core::ResultCache& cache, bool raw) {
  bool all_ok = true;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!serve_line(cache, line, std::cout, raw)) all_ok = false;
    std::cout.flush();
  }
  // Non-raw mode always exits 0 (errors are well-formed responses, the
  // protocol's point); raw mode is the CI diff path, where a failed
  // query must fail the pipeline.
  return raw && !all_ok ? 1 : 0;
}

#ifdef __unix__
int serve_socket(const core::ResultCache& cache, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "dring_serve: cannot create socket\n";
    return 1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "dring_serve: socket path too long: " << path << "\n";
    ::close(listener);
    return 1;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 8) < 0) {
    std::cerr << "dring_serve: cannot bind/listen on " << path << "\n";
    ::close(listener);
    return 1;
  }
  core::log_line(core::LogLevel::kInfo,
                 "serving " + std::to_string(cache.size()) + " rows on " +
                     path);

  // Sequential accept loop: one connection at a time, one response line
  // per request line.  The cache is read-only, so this could go
  // multi-threaded without locking — sequential keeps the daemon's
  // telemetry event order deterministic.
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while ((newline = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        if (line.empty()) continue;
        const std::string response =
            core::handle_query_line(cache, line).dump() + "\n";
        std::size_t sent = 0;
        while (sent < response.size()) {
          const ssize_t w = ::write(conn, response.data() + sent,
                                    response.size() - sent);
          if (w <= 0) break;
          sent += static_cast<std::size_t>(w);
        }
      }
    }
    ::close(conn);
  }
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();

  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  std::vector<std::string> stores = cli.get_all("store");
  for (const std::string& p : cli.positional()) stores.push_back(p);
  if (stores.empty()) {
    std::cerr << flags.help_text();
    return 2;
  }
  const bool oneshot = cli.get_bool("oneshot", false);
  const bool raw = cli.get_bool("raw", false);
  const std::string socket_path = cli.get("socket", "");
  if (!oneshot && socket_path.empty()) {
    std::cerr << "dring_serve: pick a transport: --oneshot (stdin/stdout) "
                 "or --socket PATH\n";
    return 2;
  }
  if (raw && !oneshot) {
    std::cerr << "dring_serve: --raw only applies to --oneshot\n";
    return 2;
  }

  if (cli.has("telemetry")) {
    try {
      core::telemetry().enable(cli.get("telemetry", ""));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  int rc = 0;
  try {
    // The whole point: parse the JSONL once, here, then serve every
    // query from indexed memory.
    const core::ResultCache cache = core::ResultCache::load(stores);
    core::log_line(core::LogLevel::kInfo,
                   "loaded " + std::to_string(cache.size()) + " rows from " +
                       std::to_string(stores.size()) + " store(s), " +
                       core::describe(cache.provenance()));
    if (oneshot) {
      rc = serve_stdin(cache, raw);
    } else {
#ifdef __unix__
      rc = serve_socket(cache, socket_path);
#else
      std::cerr << "dring_serve: --socket needs a unix platform; use "
                   "--oneshot\n";
      rc = 2;
#endif
    }
  } catch (const std::exception& e) {
    std::cerr << "dring_serve: " << e.what() << "\n";
    rc = 1;
  }
  if (core::telemetry().enabled()) core::telemetry().shutdown();
  return rc;
}
