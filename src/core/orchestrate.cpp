#include "core/orchestrate.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/campaign.hpp"
#include "core/sweep.hpp"
#include "core/telemetry.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"

namespace dring::core {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// --- backoff -----------------------------------------------------------------

long long BackoffPolicy::delay_ms(int shard, int attempt) const {
  if (attempt <= 1) return 0;
  // base * 2^(attempt-2), saturating at cap_ms (the shift below cannot
  // overflow: 2^62 ms is ~146 million years, capped long before).
  long long raw = base_ms;
  for (int i = 2; i < attempt && raw < cap_ms; ++i) raw *= 2;
  raw = std::min(raw, cap_ms);
  if (jitter <= 0.0 || raw <= 0) return raw;
  // Deterministic jitter stream: one draw per (seed, shard, attempt).
  util::Rng rng(task_seed(task_seed(seed, static_cast<std::size_t>(shard)),
                          static_cast<std::size_t>(attempt)));
  const double u = rng.uniform01();
  const double scaled = static_cast<double>(raw) * (1.0 - jitter * u);
  return std::max<long long>(0, static_cast<long long>(scaled));
}

// --- fault injection ---------------------------------------------------------

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Crash: return "crash";
    case FaultKind::Hang: return "hang";
    case FaultKind::Trunc: return "trunc";
  }
  return "?";
}

FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (spec.empty()) return plan;
  bool seen_crash = false, seen_hang = false, seen_trunc = false;
  std::stringstream parts(spec);
  std::string part;
  while (std::getline(parts, part, ',')) {
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("fault spec '" + part +
                                  "': want kind:probability");
    const std::string kind = part.substr(0, colon);
    double p = 0.0;
    try {
      std::size_t used = 0;
      p = std::stod(part.substr(colon + 1), &used);
      if (used != part.size() - colon - 1) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec '" + part +
                                  "': bad probability");
    }
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("fault spec '" + part +
                                  "': probability outside [0,1]");
    bool* seen = nullptr;
    double* slot = nullptr;
    if (kind == "crash") { seen = &seen_crash; slot = &plan.crash; }
    else if (kind == "hang") { seen = &seen_hang; slot = &plan.hang; }
    else if (kind == "trunc") { seen = &seen_trunc; slot = &plan.trunc; }
    else
      throw std::invalid_argument("fault spec '" + part +
                                  "': unknown kind (want crash|hang|trunc)");
    if (*seen)
      throw std::invalid_argument("fault spec: duplicate kind '" + kind + "'");
    *seen = true;
    *slot = p;
  }
  if (plan.crash + plan.hang + plan.trunc > 1.0 + 1e-12)
    throw std::invalid_argument("fault spec: probabilities sum above 1");
  return plan;
}

FaultKind fault_draw(const FaultPlan& plan, std::uint64_t key, int attempt) {
  if (!plan.any()) return FaultKind::None;
  // One uniform draw per (seed, shard, attempt) — both sides of the
  // env-var hook (and any test predicting convergence) compute the same
  // schedule from the same three numbers.
  util::Rng rng(task_seed(task_seed(plan.seed, key),
                          static_cast<std::size_t>(attempt)));
  const double u = rng.uniform01();
  if (u < plan.crash) return FaultKind::Crash;
  if (u < plan.crash + plan.hang) return FaultKind::Hang;
  if (u < plan.crash + plan.hang + plan.trunc) return FaultKind::Trunc;
  return FaultKind::None;
}

// --- orchestration -----------------------------------------------------------

std::string shard_store_path(const OrchestrateOptions& options, int index) {
  return options.work_dir + "/shard_" + std::to_string(index) + "of" +
         std::to_string(options.shards) + ".jsonl";
}

namespace {

/// One live worker subprocess.
struct RunningAttempt {
  int shard = 0;
  int attempt_no = 0;
  bool speculative = false;
  util::Subprocess proc;
  Clock::time_point started;
};

/// Supervisor-side shard bookkeeping.
struct ShardSlot {
  int attempts = 0;   ///< attempts launched (includes speculative)
  int failures = 0;   ///< failed attempts (the cap counts these)
  bool completed = false;
  bool speculated = false;
  Clock::time_point ready_at;  ///< backoff gate for the next launch
  std::string last_error;
  double duration_s = -1.0;  ///< wall time of the winning attempt
};

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Age of the progress-file heartbeat in seconds; +inf when the file does
/// not exist (the worker has not reached its first cell yet — the launch
/// grace period covers that window).
double heartbeat_age_s(const std::string& progress_path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(progress_path, ec);
  if (ec) return std::numeric_limits<double>::infinity();
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

std::string campaign_name_of(const std::string& spec_path) {
  std::ifstream in(spec_path);
  if (!in)
    throw std::runtime_error("cannot open campaign spec: " + spec_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return util::Json::parse(buffer.str()).get_string("name", "");
  } catch (const std::exception& e) {
    throw std::runtime_error(spec_path + ": " + e.what());
  }
}

}  // namespace

util::Json manifest_json(const OrchestrateOptions& options,
                         const OrchestrationResult& result,
                         const std::string& campaign_name) {
  util::Json completed{util::Json::Array{}};
  util::Json missing{util::Json::Array{}};
  util::Json attempts;
  util::Json stores;
  for (const ShardOutcome& shard : result.shards) {
    const std::string key = std::to_string(shard.shard);
    if (shard.completed) {
      completed.as_array().push_back(shard.shard);
      stores.set(key, shard.store_path);
    } else {
      missing.as_array().push_back(shard.shard);
    }
    attempts.set(key, static_cast<long long>(shard.attempts));
  }
  util::Json j;
  j.set("campaign", campaign_name);
  j.set("spec", options.spec_path);
  j.set("shards", static_cast<long long>(options.shards));
  j.set("completed", std::move(completed));
  j.set("missing", std::move(missing));
  j.set("attempts", std::move(attempts));
  j.set("stores", std::move(stores));
  if (!result.merged_path.empty()) {
    j.set("merged", result.merged_path);
    j.set("merged_rows", static_cast<long long>(result.merged_rows));
  }
  // The exact command that fills the holes, so "how do I finish this run"
  // is answered by the manifest itself.
  if (!result.missing.empty())
    j.set("resume_hint",
          "re-run dring_orchestrate with the same flags plus --resume");
  return j;
}

OrchestrationResult run_orchestration(const OrchestrateOptions& options,
                                      std::ostream* log) {
  if (options.shards < 1 || options.workers < 1 || options.max_attempts < 1)
    throw std::invalid_argument(
        "orchestrate: shards, workers and max-attempts must all be >= 1");
  const std::string campaign_name = campaign_name_of(options.spec_path);
  // Parse the injection spec up front — a typo must fail the dispatch,
  // not be discovered worker by worker.
  const FaultPlan fault_plan =
      parse_fault_plan(options.inject, options.inject_seed);

  std::string binary = options.campaign_binary;
  if (binary.empty()) {
    const std::string dir = util::executable_dir();
    binary = dir.empty() ? "dring_campaign" : dir + "/dring_campaign";
  }
  if (!fs::exists(binary))
    throw std::runtime_error("worker binary not found: " + binary +
                             " (build dring_campaign, or pass "
                             "--campaign-bin)");

  fs::create_directories(options.work_dir);

  // Log stamps use the telemetry clock, so the supervisor narrative lines
  // up with the event timestamps in the sidecar.
  const auto say = [&](const std::string& line) {
    if (!log) return;
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "+%.3fs",
                  static_cast<double>(telemetry_now_us()) / 1e6);
    *log << "[orchestrate " << stamp << "] " << line << "\n";
  };

  // Supervisor-side event shorthand: every label is a deterministic
  // function of the fault schedule (no wall times), so the per-shard
  // event sequence — and with it the rendered timeline — is reproducible.
  const auto note = [&](const std::string& name, int shard,
                        std::map<std::string, std::string> labels = {}) {
    if (!telemetry().enabled()) return;
    labels["shard"] = std::to_string(shard);
    telemetry().event("orchestrate." + name, std::move(labels));
  };

  std::vector<ShardSlot> slots(static_cast<std::size_t>(options.shards));
  const Clock::time_point t0 = Clock::now();
  for (ShardSlot& slot : slots) slot.ready_at = t0;

  // Fresh run: wipe every shard's prior artifacts (store, heartbeat,
  // attempt logs, stray tmp files) so --resume inside the workers starts
  // from nothing.  --resume keeps them and fills the holes.
  if (!options.resume) {
    for (int i = 0; i < options.shards; ++i) {
      const std::string prefix =
          fs::path(shard_store_path(options, i)).filename().string();
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(options.work_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) == 0) fs::remove(entry.path(), ec);
      }
    }
  }

  std::vector<RunningAttempt> running;
  std::vector<double> durations;  ///< completed-attempt wall times

  const auto launch = [&](int shard, bool speculative) {
    ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
    const int attempt_no = ++slot.attempts;
    const std::string store = shard_store_path(options, shard);
    util::SpawnSpec spec;
    spec.argv = {binary,
                 "--spec", options.spec_path,
                 "--out", store,
                 "--resume",
                 "--threads", std::to_string(options.threads_per_worker),
                 "--progress", store + ".progress"};
    if (options.batch_width > 0) {
      spec.argv.push_back("--batch");
      spec.argv.push_back(std::to_string(options.batch_width));
    }
    if (options.shards > 1) {
      spec.argv.push_back("--shard");
      spec.argv.push_back(std::to_string(shard) + "/" +
                          std::to_string(options.shards));
    }
    if (!options.inject.empty()) {
      spec.env = {{kFaultInjectEnv, options.inject},
                  {kFaultSeedEnv, std::to_string(options.inject_seed)},
                  {kFaultAttemptEnv, std::to_string(attempt_no)}};
    }
    if (options.telemetry) spec.argv.push_back("--telemetry");
    spec.output_path = store + ".attempt" + std::to_string(attempt_no) + ".log";
    RunningAttempt attempt;
    attempt.shard = shard;
    attempt.attempt_no = attempt_no;
    attempt.speculative = speculative;
    attempt.proc = util::Subprocess::spawn(spec);
    attempt.started = Clock::now();
    {
      // The dispatch event predicts the worker's fault draw — supervisor
      // and worker compute the same schedule from (seed, shard, attempt).
      std::map<std::string, std::string> labels = {
          {"attempt", std::to_string(attempt_no)}};
      if (speculative) labels["speculative"] = "1";
      if (fault_plan.any())
        labels["fault"] = to_string(fault_draw(
            fault_plan, static_cast<std::uint64_t>(shard), attempt_no));
      note("dispatch", shard, std::move(labels));
      if (telemetry().enabled())
        telemetry().metrics().counter("orchestrate.dispatches").add(1);
    }
    say("shard " + std::to_string(shard) + "/" +
        std::to_string(options.shards) + " attempt " +
        std::to_string(attempt_no) +
        (speculative ? " (speculative)" : "") + " -> pid " +
        std::to_string(attempt.proc.pid()));
    running.push_back(std::move(attempt));
  };

  const auto handle_failure = [&](int shard, const std::string& why) {
    ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
    if (slot.completed) return;  // a sibling already won; nothing failed
    ++slot.failures;
    slot.last_error = why;
    if (telemetry().enabled())
      telemetry().metrics().counter("orchestrate.failures").add(1);
    if (slot.failures >= options.max_attempts) {
      note("give_up", shard,
           {{"failures", std::to_string(slot.failures)}, {"why", why}});
      say("shard " + std::to_string(shard) + " attempt failed (" + why +
          "); retry cap " + std::to_string(options.max_attempts) +
          " reached, giving up");
      return;
    }
    const long long delay =
        options.backoff.delay_ms(shard, slot.failures + 1);
    slot.ready_at = Clock::now() + std::chrono::milliseconds(delay);
    note("retry", shard, {{"delay_ms", std::to_string(delay)},
                          {"next_attempt", std::to_string(slot.failures + 1)},
                          {"why", why}});
    if (telemetry().enabled())
      telemetry().metrics().counter("orchestrate.retries").add(1);
    say("shard " + std::to_string(shard) + " attempt failed (" + why +
        "); retry " + std::to_string(slot.failures + 1) + "/" +
        std::to_string(options.max_attempts) + " in " +
        std::to_string(delay) + "ms");
  };

  const auto handle_success = [&](const RunningAttempt& attempt,
                                  double elapsed_s) {
    ShardSlot& slot = slots[static_cast<std::size_t>(attempt.shard)];
    if (slot.completed) return;  // duplicate finisher: same bytes, ignore
    // Exit 0 is the worker's claim; the store is the proof.  Verify it
    // parses (lenient about a torn tail a racing sibling could not have
    // produced — our writes are atomic — but an external copy could).
    const std::string store = shard_store_path(options, attempt.shard);
    StoreReadRecovery recovery;
    try {
      (void)read_result_store_file(store, &recovery);
    } catch (const std::exception& e) {
      // Unreadable mid-file: poisoned; delete so the retry starts clean.
      std::error_code ec;
      fs::remove(store, ec);
      handle_failure(attempt.shard,
                     std::string("store verification failed: ") + e.what());
      return;
    }
    if (recovery.dropped_partial) {
      handle_failure(attempt.shard,
                     "store has a torn trailing row (line " +
                         std::to_string(recovery.line_no) +
                         "); resume will re-run that cell");
      return;
    }
    slot.completed = true;
    slot.duration_s = elapsed_s;
    durations.push_back(elapsed_s);
    note("shard_complete", attempt.shard,
         {{"attempt", std::to_string(attempt.attempt_no)}});
    if (telemetry().enabled())
      telemetry()
          .metrics()
          .histogram("orchestrate.attempt_us", telemetry_time_bounds())
          .observe(static_cast<long long>(elapsed_s * 1e6));
    say("shard " + std::to_string(attempt.shard) + " completed in " +
        std::to_string(elapsed_s) + "s (attempt " +
        std::to_string(attempt.attempt_no) + ")");
    // First finisher wins: reap any sibling attempt of the same shard.
    for (RunningAttempt& other : running)
      if (other.shard == attempt.shard &&
          other.attempt_no != attempt.attempt_no)
        other.proc.kill_hard();
  };

  for (;;) {
    const Clock::time_point now = Clock::now();

    // Reap finished workers and police the live ones.
    for (std::size_t i = 0; i < running.size();) {
      RunningAttempt& attempt = running[i];
      ShardSlot& slot = slots[static_cast<std::size_t>(attempt.shard)];
      const double elapsed = seconds_between(attempt.started, now);
      if (!attempt.proc.running()) {
        const int code = attempt.proc.exit_code();
        if (!slot.completed)
          note("worker_exit", attempt.shard,
               {{"attempt", std::to_string(attempt.attempt_no)},
                {"code", std::to_string(code)}});
        if (slot.completed) {
          // sibling won earlier (or we killed it); drop silently
        } else if (code == 0) {
          handle_success(attempt, elapsed);
        } else {
          handle_failure(attempt.shard,
                         (attempt.proc.signaled() ? "killed, code "
                                                  : "exit ") +
                             std::to_string(code));
        }
        running.erase(running.begin() + static_cast<long>(i));
        continue;
      }
      if (!slot.completed && options.timeout_s > 0 &&
          elapsed > options.timeout_s) {
        attempt.proc.kill_hard();
        attempt.proc.exit_code_blocking();
        note("kill", attempt.shard,
             {{"attempt", std::to_string(attempt.attempt_no)},
              {"reason", "timeout"}});
        if (telemetry().enabled())
          telemetry().metrics().counter("orchestrate.kills").add(1);
        handle_failure(attempt.shard,
                       "timeout after " + std::to_string(options.timeout_s) +
                           "s, killed");
        running.erase(running.begin() + static_cast<long>(i));
        continue;
      }
      if (!slot.completed && options.stale_s > 0 &&
          elapsed > options.stale_s) {
        const std::string progress =
            shard_store_path(options, attempt.shard) + ".progress";
        // Freshness = the younger of "launched" and "last heartbeat": a
        // worker gets stale_s of grace from launch, then must keep the
        // heartbeat moving.
        if (heartbeat_age_s(progress) > options.stale_s) {
          attempt.proc.kill_hard();
          attempt.proc.exit_code_blocking();
          note("kill", attempt.shard,
               {{"attempt", std::to_string(attempt.attempt_no)},
                {"reason", "stale_heartbeat"}});
          if (telemetry().enabled())
            telemetry().metrics().counter("orchestrate.kills").add(1);
          handle_failure(attempt.shard,
                         "heartbeat stale for > " +
                             std::to_string(options.stale_s) + "s, killed");
          running.erase(running.begin() + static_cast<long>(i));
          continue;
        }
      }
      ++i;
    }

    // Launch work: retries/first attempts whose backoff has elapsed, onto
    // free slots, lowest shard first.
    const auto running_count_of = [&](int shard) {
      int n = 0;
      for (const RunningAttempt& a : running)
        if (a.shard == shard) ++n;
      return n;
    };
    for (int shard = 0; shard < options.shards &&
                        running.size() <
                            static_cast<std::size_t>(options.workers);
         ++shard) {
      ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
      if (slot.completed || slot.failures >= options.max_attempts) continue;
      if (running_count_of(shard) > 0) continue;
      if (slot.ready_at > now) continue;
      launch(shard, /*speculative=*/false);
    }

    // Straggler speculation: with a quorum of shards done and idle
    // capacity, duplicate the laggards (idempotent + atomic writes make
    // the race safe; first finisher wins).
    if (options.straggler_factor > 0 && !durations.empty()) {
      std::size_t done = 0;
      for (const ShardSlot& slot : slots)
        if (slot.completed) ++done;
      if (static_cast<double>(done) >=
          options.straggler_quorum * options.shards) {
        std::vector<double> sorted = durations;
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<long>(sorted.size() / 2),
                         sorted.end());
        const double median = sorted[sorted.size() / 2];
        const double limit =
            std::max(options.straggler_factor * median, 1e-3);
        for (int shard = 0; shard < options.shards &&
                            running.size() <
                                static_cast<std::size_t>(options.workers);
             ++shard) {
          ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
          if (slot.completed || slot.speculated) continue;
          if (running_count_of(shard) != 1) continue;
          for (const RunningAttempt& a : running) {
            if (a.shard != shard) continue;
            if (seconds_between(a.started, now) > limit) {
              slot.speculated = true;
              note("speculate", shard,
                   {{"against_attempt", std::to_string(a.attempt_no)}});
              if (telemetry().enabled())
                telemetry().metrics().counter("orchestrate.speculations")
                    .add(1);
              say("shard " + std::to_string(shard) + " is a straggler (> " +
                  std::to_string(limit) + "s); speculating");
              launch(shard, /*speculative=*/true);
            }
            break;
          }
        }
      }
    }

    // Done when nothing runs and nothing may launch again.
    if (running.empty()) {
      bool open = false;
      for (const ShardSlot& slot : slots)
        if (!slot.completed && slot.failures < options.max_attempts)
          open = true;
      if (!open) break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_s));
  }

  // Fold the outcome: merge what completed, name what did not.
  OrchestrationResult result;
  for (int shard = 0; shard < options.shards; ++shard) {
    const ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
    ShardOutcome outcome;
    outcome.shard = shard;
    outcome.attempts = slot.attempts;
    outcome.failures = slot.failures;
    outcome.completed = slot.completed;
    outcome.speculated = slot.speculated;
    outcome.store_path = shard_store_path(options, shard);
    outcome.last_error = slot.last_error;
    result.shards.push_back(std::move(outcome));
    if (!slot.completed) result.missing.push_back(shard);
  }

  const bool any_completed =
      result.missing.size() < static_cast<std::size_t>(options.shards);
  if (!options.out_path.empty() && any_completed) {
    std::vector<ResultStore> stores;
    for (const ShardOutcome& shard : result.shards)
      if (shard.completed)
        stores.push_back(read_result_store_file(shard.store_path));
    StoreMerge merge = merge_result_stores(std::move(stores));
    if (!merge.ok()) {
      // Cannot happen for shards of one campaign (disjoint fingerprints);
      // reaching it means the work dir mixed two different campaigns.
      say("merge conflict: " + std::to_string(merge.conflicts.size()) +
          " fingerprints with divergent payloads (is " + options.work_dir +
          " shared between campaigns?)");
      result.exit_code = kExitError;
    } else {
      ResultStore out;
      out.provenance = merge.provenance;
      out.rows = std::move(merge.rows);
      result.merged_rows = out.rows.size();
      write_result_store(options.out_path, std::move(out));
      result.merged_path = options.out_path;
      telemetry().event(
          "orchestrate.merge",
          {{"rows", std::to_string(result.merged_rows)},
           {"shards_merged",
            std::to_string(options.shards - result.missing.size())}});
      say("merged " + std::to_string(options.shards - result.missing.size()) +
          "/" + std::to_string(options.shards) + " shards, " +
          std::to_string(result.merged_rows) + " rows -> " +
          options.out_path);
    }
  }

  if (result.exit_code == kExitOk && !result.missing.empty())
    result.exit_code = kExitMissingShards;

  // The manifest always lands next to the merged store (or in the work
  // dir when no merge target was given): the machine-readable record of
  // which shards made it and how hard they had to try.
  result.manifest_path = options.out_path.empty()
                             ? options.work_dir + "/manifest.json"
                             : options.out_path + ".manifest.json";
  {
    std::ofstream out(result.manifest_path, std::ios::trunc);
    out << manifest_json(options, result, campaign_name).dump() << "\n";
  }
  if (!result.missing.empty()) {
    std::string holes;
    for (const int shard : result.missing)
      holes += (holes.empty() ? "" : ",") + std::to_string(shard);
    say("INCOMPLETE: shards {" + holes + "} exhausted " +
        std::to_string(options.max_attempts) +
        " attempts; manifest at " + result.manifest_path +
        "; re-run with --resume to fill the holes");
  }
  return result;
}

}  // namespace dring::core
