// Reproduces Table 2 of the paper (FSYNC possibility results):
//
//   | N. Agents | Assumptions          | Exploration with Termination      |
//   | 2         | Known bound N        | Explicit termination in 3N-6      |
//   | 2         | Chirality, Landmark  | Explicit termination in O(n)      |
//   | 2         | Landmark             | Explicit termination in O(n log n)|
//
// For every row we sweep ring sizes and adversaries (static ring, targeted
// random removals, Obs.-1 single-agent blocking and — for Theorem 3 — the
// exact Figure 2 worst case), and report the worst measured termination
// round next to the paper's bound.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

struct RowResult {
  std::int64_t worst_round = 0;
  NodeId worst_n = 0;
  int runs = 0;
  int failures = 0;  // not explored / premature / not terminated
};

std::int64_t last_termination(const sim::RunResult& r) {
  std::int64_t worst = 0;
  for (const sim::AgentResult& a : r.agents)
    worst = std::max(worst, a.termination_round);
  return worst;
}

void account(RowResult& row, const sim::RunResult& r, NodeId n,
             bool need_all_terminated) {
  row.runs += 1;
  const bool terminated =
      need_all_terminated ? r.all_terminated : r.any_terminated();
  if (!r.explored || r.premature_termination || !terminated ||
      !r.violations.empty()) {
    row.failures += 1;
    return;
  }
  const std::int64_t t = last_termination(r);
  if (t > row.worst_round) {
    row.worst_round = t;
    row.worst_n = n;
  }
}

RowResult sweep(algo::AlgorithmId id, const std::vector<NodeId>& sizes,
                int seeds, Round round_budget_per_n,
                const core::SweepOptions& pool) {
  // Build the whole scenario matrix, run it on the worker pool, and fold
  // the results in task order (identical to the old serial loop).
  std::vector<core::ScenarioTask> tasks;
  std::vector<NodeId> task_n;
  for (const NodeId n : sizes) {
    for (int seed = 0; seed <= seeds; ++seed) {
      core::ScenarioTask task;
      task.cfg = core::default_config(id, n);
      task.cfg.stop.max_rounds = round_budget_per_n * n + 1000;
      task.seed = static_cast<std::uint64_t>(1000 * n + seed);
      if (seed == 0) {
        task.make_adversary = [] {
          return std::make_unique<sim::NullAdversary>();
        };
      } else if (seed == 1) {
        task.make_adversary = []() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::BlockAgentAdversary>(0);
        };
      } else {
        const std::uint64_t s = task.seed;
        task.make_adversary = [s]() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0,
                                                                      s);
        };
      }
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
    // Theorem 3 additionally gets its exact worst-case schedule (Figure 2).
    if (id == algo::AlgorithmId::KnownNNoChirality && n >= 6) {
      core::ScenarioTask task;
      task.cfg = core::default_config(id, n);
      task.cfg.start_nodes = {2, 3};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.stop.max_rounds = 10 * n;
      task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::ScriptedEdgeAdversary>(
            adversary::make_fig2_script(n, 2), "fig2");
      };
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
  }

  const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);
  RowResult row;
  for (std::size_t i = 0; i < results.size(); ++i)
    account(row, results[i], task_n[i], true);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 6));
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));
  std::vector<NodeId> sizes = {5, 6, 8, 11, 16, 24, 32};
  if (cli.has("max-n")) {
    const NodeId cap = static_cast<NodeId>(cli.get_int("max-n", 32));
    sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                               [&](NodeId n) { return n > cap; }),
                sizes.end());
  }

  std::cout << "=== Table 2: possibility results for FSYNC ===\n"
            << "sizes swept: ";
  for (NodeId n : sizes) std::cout << n << " ";
  std::cout << "| adversaries: static, obs1-block, targeted-random x" << seeds
            << "\n\n";

  util::Table table({"N. Agents", "Assumptions", "Paper bound",
                     "Worst measured termination", "at n", "Runs",
                     "Failures"});

  {
    const RowResult r = sweep(algo::AlgorithmId::KnownNNoChirality, sizes,
                              seeds, 10, pool);
    const NodeId n = r.worst_n;
    table.add_row({"2", "Known bound N", "3N-6 (Th. 3)",
                   util::fmt_count(r.worst_round) + "  (3n-5 = " +
                       util::fmt_count(3 * n - 5) + " incl. detect round)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const RowResult r = sweep(algo::AlgorithmId::LandmarkWithChirality, sizes,
                              seeds, 4000, pool);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    table.add_row({"2", "Chirality, Landmark", "O(n) (Th. 6)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(static_cast<double>(r.worst_round) / n,
                                        1) +
                       " * n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }
  {
    const RowResult r = sweep(algo::AlgorithmId::LandmarkNoChirality, sizes,
                              seeds, 100000, pool);
    const NodeId n = std::max<NodeId>(r.worst_n, 1);
    const double nlogn = static_cast<double>(n) * algo::ceil_log2(n);
    table.add_row({"2", "Landmark (no chirality)", "O(n log n) (Th. 8)",
                   util::fmt_count(r.worst_round) + "  (= " +
                       util::fmt_double(r.worst_round / nlogn, 1) +
                       " * n log n)",
                   std::to_string(n), std::to_string(r.runs),
                   std::to_string(r.failures)});
  }

  table.print(std::cout);
  std::cout << "\nFailures = runs that did not explore, terminated "
               "prematurely, or violated an invariant (expected: 0).\n";
  return 0;
}
