// The round-based simulation engine (paper, Section 2.1).
//
// Each round:
//   1. all edges are restored; the adversary picks a non-empty activation
//      set (engine enforces fairness, the ET simultaneity condition, and
//      FSYNC semantics);
//   2. every active agent Looks (snapshot of its node in its local frame,
//      plus feedback about its previous activation) and Computes an Intent;
//   3. port acquisition resolves under mutual exclusion, with adversarial
//      tie-breaking; losers observe `failed`;
//   4. the adversary — having seen full state and intents — removes at most
//      one edge (1-interval connectivity);
//   5. movement resolves: port holders that computed Move traverse iff
//      their edge is present, otherwise they stay blocked on the port;
//      under PT, agents *sleeping* on a port of a present edge are
//      passively transported. Opposite-direction traversals of the same
//      edge cross silently.
//
// The engine owns ground truth (visited set, move counts, termination
// bookkeeping) and an optional per-round trace; a built-in verifier checks
// model invariants every round and records violations instead of crashing,
// so tests can assert on them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "agent/brain.hpp"
#include "agent/orientation.hpp"
#include "ring/dynamic_ring.hpp"
#include "sim/adversary.hpp"
#include "sim/models.hpp"

namespace dring::sim {

/// Simulator-side state of one agent.
struct AgentBody {
  AgentId id = -1;
  NodeId node = kNoNode;
  bool on_port = false;
  GlobalDir port_side = GlobalDir::Ccw;  // valid iff on_port
  agent::Orientation orientation;
  bool terminated = false;
  Round termination_round = -1;
  long long moves = 0;          ///< active traversals
  long long passive_moves = 0;  ///< PT transports

  // Outcome record accumulated since the agent's last activation; delivered
  // as Feedback at the next activation.
  agent::Feedback outcome;

  Round last_active_round = 0;  ///< 0 = never active yet
  Round et_missed_present = 0;  ///< rounds slept on a port with edge present
};

/// One agent's slice of a trace record.
struct AgentTrace {
  AgentId id;
  NodeId node;
  bool on_port;
  GlobalDir port_side;
  bool active;
  bool terminated;
  std::string state;
  agent::Intent intent;
};

/// One round of trace.
struct RoundTrace {
  Round round;
  std::optional<EdgeId> missing;
  std::vector<AgentTrace> agents;
};

/// Per-agent summary in a run result.
struct AgentResult {
  AgentId id;
  bool terminated = false;
  Round termination_round = -1;
  long long moves = 0;
  long long passive_moves = 0;
  NodeId final_node = kNoNode;
  std::string final_state;
};

/// Summary of a run.
struct RunResult {
  bool explored = false;
  Round explored_round = -1;
  Round rounds = 0;
  long long total_moves = 0;    ///< active + passive traversals
  long long active_moves = 0;
  long long passive_moves = 0;
  int terminated_agents = 0;
  bool all_terminated = false;
  /// An agent entered the terminal state before the ring was explored:
  /// the paper's correctness condition was violated.
  bool premature_termination = false;
  /// Number of engine overrides of the adversary (fairness forcing, ET
  /// vetoes). Non-zero values are legal; they show the adversary pushed
  /// against its obligations.
  long long fairness_interventions = 0;
  std::vector<AgentResult> agents;
  std::vector<std::string> violations;  ///< verifier findings (empty = ok)
  std::string stop_reason;
  /// Adversary-side counters (Adversary::report_metrics), filled by the
  /// runner/sweep layer after the run — e.g. {"shifts": ...} for the
  /// sliding-window adversary.  Not part of the golden result digest.
  std::map<std::string, long long> adversary_metrics;

  bool any_terminated() const { return terminated_agents > 0; }
  bool ok() const { return violations.empty() && !premature_termination; }
};

/// Per-round scratch buffers used by Engine::step().  Extracted from the
/// engine so many lockstep engines (BatchEngine fallback lanes) can share
/// one scratch: nothing in here carries information across rounds — every
/// vector is either cleared before the phase that fills it or rewritten
/// for all agents at the start of the round — so interleaving rounds of
/// different engines through the same scratch is safe, and B lanes stop
/// paying for B copies of per-round storage.
struct StepScratch {
  struct Computed {
    AgentId agent;
    agent::Intent intent;
  };
  struct PendingMove {
    AgentId agent;
    NodeId to;
    bool passive;
    GlobalDir dir;
  };

  std::vector<char> active;              ///< activation set of this round
  std::vector<Computed> computed;        ///< intents, in activation order
  std::vector<std::int32_t> intent_slot;  ///< agent id -> computed index
  std::vector<IntentRecord> records;     ///< presented to the edge adversary
  std::vector<PendingMove> moves;        ///< resolved traversals
  std::vector<EdgeId> et_protected;      ///< ET-vetoed edges this round
  /// Port contenders as ((port, arrival seq) sort key, agent) pairs; sorted
  /// to reproduce the (node, side)-ordered, arrival-stable grouping the
  /// previous std::map implementation produced.
  std::vector<std::pair<std::uint64_t, AgentId>> contenders;
  std::vector<AgentId> bucket;           ///< contenders of one port

  /// Size the per-agent vectors for an engine with `k` agents. Grow-only,
  /// so a scratch shared across lanes fits the widest lane.
  void ensure(std::size_t k) {
    if (active.size() < k) {
      active.resize(k, 0);
      intent_slot.resize(k, -1);
    }
  }
};

/// The simulation engine.
class Engine {
 public:
  /// `landmark`: index of the landmark node, if the ring has one.
  Engine(NodeId n, std::optional<NodeId> landmark, Model model,
         EngineOptions options = {});

  // Non-copyable, non-movable: WorldView and the adversary hold pointers
  // into the engine.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Add an agent at `start` with the given orientation and protocol.
  /// Returns its id (dense, starting at 0).
  AgentId add_agent(NodeId start, agent::Orientation orientation,
                    std::unique_ptr<agent::Brain> brain);

  /// Install the adversary (must outlive the engine). If never called, a
  /// NullAdversary is used.
  void set_adversary(Adversary* adversary);

  /// Execute one round. Returns false when no further progress is possible
  /// (all agents terminated).
  bool step();

  /// Run until the stop policy triggers; returns the summary.
  RunResult run(const StopPolicy& stop);

  /// One iteration of run(): apply the stop policy, stepping at most one
  /// round. Returns false when the run is over, with `reason` set to the
  /// stop reason run() would report. run(stop) == while (advance_run(...))
  /// {} + collect_result(reason); BatchEngine drives fallback lanes
  /// through this so a lane-per-round interleave is literally the scalar
  /// run loop.
  bool advance_run(const StopPolicy& stop, std::string& reason);

  /// Assemble the RunResult run() returns, given the stop reason.
  RunResult collect_result(std::string reason) const;

  /// Redirect per-round scratch to an external buffer (nullptr restores
  /// the engine's own). The engines sharing a scratch must be stepped from
  /// one thread; contents do not survive across rounds.
  void use_scratch(StepScratch* scratch) {
    scratch_ = scratch != nullptr ? scratch : &own_scratch_;
  }

  // --- inspection -----------------------------------------------------------
  const ring::DynamicRing& ring() const { return ring_; }
  Model model() const { return model_; }
  Round round() const { return round_; }
  int num_agents() const { return static_cast<int>(bodies_.size()); }
  const AgentBody& body(AgentId a) const { return bodies_.at(a); }
  const agent::Brain& brain(AgentId a) const { return *brains_.at(a); }
  const std::vector<bool>& visited() const { return visited_; }
  bool explored() const { return visited_count_ == ring_.size(); }
  Round explored_round() const { return explored_round_; }
  const std::vector<RoundTrace>& trace() const { return trace_; }
  /// Move the recorded trace out (for one-shot consumers that outlive the
  /// engine, e.g. run_sweep_runs); the engine's copy is left empty.
  std::vector<RoundTrace> take_trace() { return std::move(trace_); }
  const std::vector<std::string>& violations() const { return violations_; }
  bool premature_termination() const { return premature_termination_; }
  long long fairness_interventions() const { return fairness_interventions_; }

  /// Build the Look snapshot for an agent (local frame). Public so that
  /// WorldView probing and tests can reuse the exact engine semantics.
  /// O(number of co-located agents) via the per-node occupancy index.
  agent::Snapshot make_snapshot(AgentId a) const;

  /// Probe: the intent the agent would compute if activated on the current
  /// configuration (brain clone; real state untouched). Memoized on the
  /// engine's state version, so omniscient adversaries that probe the same
  /// agent repeatedly within one decision pay for one clone.
  agent::Intent probe_intent(AgentId a) const;

  /// Plain tallies of snapshot/probe-memo activity.  Deliberately not
  /// atomics and not gated on telemetry: a bare increment is cheaper than
  /// the branch that would skip it, which keeps the hot paths inside the
  /// CI perf gate.  The sweep layer folds these into the global telemetry
  /// registry once per run.
  struct PerfCounters {
    long long snapshots = 0;    ///< make_snapshot calls
    long long probe_calls = 0;  ///< probe_intent calls
    long long probe_hits = 0;   ///< probe calls served from the memo
  };
  const PerfCounters& perf_counters() const { return perf_counters_; }

 private:
  friend class WorldView;

  void decide_activation();
  void mark_visited(NodeId v);
  void try_acquire(const PortRef& port, AgentId a);
  void bump_version() { ++state_version_; }

  std::int32_t& port_slot(NodeId node, GlobalDir side) {
    NodeOccupancy& occ = occupancy_[static_cast<std::size_t>(node)];
    return side == GlobalDir::Ccw ? occ.ccw_port : occ.cw_port;
  }
  /// Agent at `node` steps from the node proper onto the `side` port.
  void occ_enter_port(NodeId node, GlobalDir side) {
    occupancy_[static_cast<std::size_t>(node)].in_node -= 1;
    port_slot(node, side) += 1;
  }
  /// Agent at `node` steps off the `side` port back into the node proper.
  void occ_leave_port(NodeId node, GlobalDir side) {
    port_slot(node, side) -= 1;
    occupancy_[static_cast<std::size_t>(node)].in_node += 1;
  }

  ring::DynamicRing ring_;
  Model model_;
  EngineOptions options_;
  NullAdversary null_adversary_;
  Adversary* adversary_;

  std::vector<AgentBody> bodies_;
  std::vector<std::unique_ptr<agent::Brain>> brains_;

  Round round_ = 0;
  std::vector<bool> visited_;
  NodeId visited_count_ = 0;
  Round explored_round_ = -1;
  bool premature_termination_ = false;
  long long fairness_interventions_ = 0;
  int live_agents_ = 0;  ///< maintained incrementally (add_agent / Terminate)

  std::vector<RoundTrace> trace_;
  std::vector<std::string> violations_;

  // --- hot-path state -------------------------------------------------------

  /// Per-node occupancy index (terminated agents included — they remain
  /// observable): how many agents stand in the node proper and which of the
  /// two ports are held. Maintained at every position/port transition, so
  /// make_snapshot is O(1) instead of a scan over all agents.
  struct NodeOccupancy {
    std::int32_t in_node = 0;   ///< agents in the node proper
    std::int32_t ccw_port = 0;  ///< 0/1: the node's Ccw port is occupied
    std::int32_t cw_port = 0;   ///< 0/1: the node's Cw port is occupied
  };
  std::vector<NodeOccupancy> occupancy_;

  /// Monotonic version of the observable configuration (bodies, brains,
  /// port positions). Bumped at every mutation point inside step(); keys
  /// the probe cache.
  std::uint64_t state_version_ = 1;
  struct ProbeEntry {
    std::uint64_t version = 0;  ///< 0 = never filled
    agent::Intent intent;
  };
  mutable std::vector<ProbeEntry> probe_cache_;
  mutable PerfCounters perf_counters_;  ///< bumped inside const hot paths

  // --- per-round scratch, reused across rounds ------------------------------
  // Sized once (per agent count); steady-state rounds allocate nothing.
  // Owned by default; use_scratch() lets BatchEngine share one scratch
  // across its fallback lanes.

  StepScratch own_scratch_;
  StepScratch* scratch_ = &own_scratch_;
};

}  // namespace dring::sim
