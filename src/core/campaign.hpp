// Campaign execution and the JSONL result store.
//
// A campaign is a CampaignSpec (core/scenario_spec.hpp) expanded into a
// flat scenario list and executed on the run_sweep worker pool.  A store
// begins with one provenance line naming the engine that produced it,
// followed by one line of JSON per finished scenario:
//
//   {"dring":{"build":"0x...","engine":"dring-1.5.0","schema":4}}
//   {"fp":"0x...","result":{...},"spec":{...},"v":4}
//
// The dump is canonical (sorted keys, no whitespace), so stores are
// line-diffable across commits, and each row carries the scenario's
// fingerprint plus the store schema version (kStoreSchemaVersion; rows
// without a "v" field predate the versioning and read as version 1 —
// readers reject anything but the current version with a clear error).
// The provenance header (schema v4) records the engine semantic version
// and build-flags hash (core/version.hpp): --resume and --merge refuse to
// blend rows produced by different engines, and paired comparisons
// (dring_report --compare) annotate cross-provenance pairs.
//
// Stores are written in *canonical order*: lines sorted as byte strings,
// which — because the header's first key "dring" sorts before the rows'
// "fp" and every row line starts with the fixed-width fingerprint —
// equals header first, then rows by fingerprint (`LC_ALL=C sort`
// reproduces a store byte for byte).  The row set is a pure function of
// the scenario set, so the store bytes are identical for any --threads
// value AND for any sharding of the grid: running `--shard i/m` on m
// machines and merging the partial stores yields byte-for-byte the
// single-process store.  Resume = load the fingerprints already present,
// run only the missing rows, rewrite the union; because per-cell seeds
// are position-independent (see expand()), growing a campaign's axes and
// resuming executes exactly the new cells.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"

namespace dring::core {

class StreamingAggregator;  // core/query.hpp

/// Version of the row schema this build reads and writes.  Bump when the
/// row layout or the store's ordering contract changes; rows without a
/// "v" field are version 1 (the pre-versioning append-ordered stores).
/// v3 added the "last_termination" outcome member and the optional
/// artifact "extra" map.  v4 added the store-level provenance header line
/// and the optional "extra_text" outcome member (trace-derived series the
/// figure artifacts persist).
inline constexpr long long kStoreSchemaVersion = 4;

/// The provenance block written as the first line of every v4 store:
/// which engine produced the rows.  Two stores with equal provenance were
/// produced by semantically identical builds and may be blended freely
/// (resume, merge); anything else is a cross-version situation the caller
/// must opt into explicitly (fresh run, or a --compare that annotates).
struct StoreProvenance {
  std::string engine;  ///< core::engine_version()
  std::string build;   ///< core::build_flags_hash()
  long long schema = kStoreSchemaVersion;

  friend bool operator==(const StoreProvenance&,
                         const StoreProvenance&) = default;
};

/// The provenance of this build.
StoreProvenance current_provenance();

util::Json to_json(const StoreProvenance& provenance);
StoreProvenance provenance_from_json(const util::Json& j);

/// The header line of a store with this provenance (no trailing newline).
std::string provenance_line(const StoreProvenance& provenance);

/// Human-readable one-liner for error messages and report annotations,
/// e.g. "dring-1.5.0 (build 0x1234..., schema v4)".
std::string describe(const StoreProvenance& provenance);

/// The per-scenario summary persisted in a row (the RunResult fields that
/// are meaningful across heterogeneous scenarios).
struct CampaignOutcome {
  bool explored = false;
  Round explored_round = -1;
  Round rounds = 0;
  long long total_moves = 0;
  int terminated_agents = 0;
  bool all_terminated = false;
  bool premature_termination = false;
  long long fairness_interventions = 0;
  int violations = 0;
  /// Worst per-agent termination round (-1 = no agent terminated) — the
  /// quantity Table 2's "worst measured termination" column reports.
  Round last_termination = -1;
  std::string stop_reason;
  /// Artifact-computed per-run metrics (core/artifact.hpp enrich hooks,
  /// e.g. the price-of-liveness offline optimum); empty for plain
  /// campaign runs and omitted from the store row when empty.
  std::map<std::string, long long> extra;
  /// Artifact-computed per-run text extras — the trace-derived series the
  /// figure artifacts persist (core/artifact.hpp, TraceSeries).  Empty for
  /// plain campaign runs and omitted from the store row when empty.
  std::map<std::string, std::string> extra_text;

  friend bool operator==(const CampaignOutcome&,
                         const CampaignOutcome&) = default;
};

/// One line of the result store.
struct CampaignRow {
  std::uint64_t fingerprint = 0;
  ScenarioSpec spec;
  CampaignOutcome outcome;
};

CampaignOutcome outcome_of(const sim::RunResult& r);
util::Json to_json(const CampaignRow& row);
/// Throws std::invalid_argument when the row's schema version ("v" member,
/// absent = 1) is not kStoreSchemaVersion.
CampaignRow campaign_row_from_json(const util::Json& j);

/// Serialize one row as its store line (no trailing newline).
std::string row_line(const CampaignRow& row);

/// A parsed store: its provenance header plus the rows.
struct ResultStore {
  StoreProvenance provenance;
  std::vector<CampaignRow> rows;
};

/// What a lenient store read recovered from.  A worker killed mid-write
/// can leave a store whose LAST line is torn (the crash-safe tmp+rename
/// write makes this impossible for our own writers, but truncated copies —
/// partial scp, full disk, an injected `trunc` fault — still happen).  A
/// torn trailing row is benign: its cell simply re-runs on resume.  Torn
/// or malformed content anywhere *else* is corruption and always throws.
struct StoreReadRecovery {
  bool dropped_partial = false;  ///< a torn trailing row was discarded
  std::size_t line_no = 0;       ///< its 1-based line number
  std::string snippet;           ///< its first bytes, for the diagnostic
};

/// Parse a whole store: the provenance header line followed by one JSON
/// row per non-empty line.  Malformed lines and schema mismatches throw
/// std::invalid_argument naming the line number and a snippet of the
/// offending line; a store whose rows predate v4 (per-row "v" < 4, no
/// header) is rejected with an error naming the found version and how to
/// regenerate.  An empty stream reads as an empty store with this build's
/// provenance.
///
/// When `recovery` is non-null the read is *lenient about the tail*: a
/// malformed LAST line (after a valid header) is treated as a torn row
/// from an interrupted write — it is dropped, described in `recovery`,
/// and the rest of the store loads normally.  Resume uses this mode so a
/// truncated store means "re-run that cell", not "abort the campaign".
ResultStore read_result_store(std::istream& in,
                              StoreReadRecovery* recovery = nullptr);

/// read_result_store over a file; throws std::runtime_error when the file
/// cannot be opened and std::invalid_argument (prefixed with the path) on
/// malformed content.
ResultStore read_result_store_file(const std::string& path,
                                   StoreReadRecovery* recovery = nullptr);

/// Sort rows into canonical store order (ascending store line, which is
/// ascending fingerprint).
void sort_canonical(std::vector<CampaignRow>& rows);

/// (Over)write a store file: the provenance header, then the rows in
/// canonical order.  Crash-safe: the bytes go to a uniquely-named `.tmp`
/// sibling (suffixed with the pid, so two processes racing on one path —
/// e.g. a speculative re-dispatch of the same shard — never clobber each
/// other's half-written file), are fsync'd, and atomically rename(2)d
/// into place; a killed writer can never leave a torn store, only a stray
/// tmp file.
void write_result_store(const std::string& path, ResultStore store);

/// Convenience: write rows under this build's provenance.
void write_result_store(const std::string& path,
                        std::vector<CampaignRow> rows);

/// Execution knobs.
struct CampaignOptions {
  int threads = 0;        ///< run_sweep worker count (0 = hardware)
  std::string out_path;   ///< result store to write (empty = no store)
  bool resume = false;    ///< skip scenarios whose fingerprint is stored
  /// Deterministic grid partition for multi-process/multi-machine runs:
  /// keep only cells with fingerprint % shard_count == shard_index.  The
  /// assignment depends on cell identity, not grid position, so it is
  /// stable under axis growth.  shard_count == 1 keeps everything.
  int shard_index = 0;
  int shard_count = 1;
  /// When non-empty, a heartbeat file rewritten as "done total\n" before
  /// the sweep starts and after every completed scenario.  Supervisors
  /// (dring_orchestrate) watch its mtime for liveness: a worker that
  /// stops updating it is hung and gets killed + rescheduled.
  std::string progress_path;
  /// Optional per-completion hook, called with (done, total) after the
  /// progress file update.  The fault-injection harness in dring_campaign
  /// rides here; serialized, on a worker thread.
  std::function<void(std::size_t, std::size_t)> on_progress;
  /// Batched lockstep lanes per worker thread (SweepOptions::batch_width):
  /// 0 = scalar engine path.  An execution knob only — store bytes are
  /// identical for every width (CI-gated), and it is deliberately not a
  /// ScenarioSpec field, so fingerprints and provenance never see it.
  int batch_width = 0;
  /// Opt-in streaming aggregation (--stream-aggregate): every *executed*
  /// row is folded into this aggregator at task-completion time
  /// (serialized; rows skipped by resume are already in the store and are
  /// not folded — aggregate those through the query cache).  When
  /// out_path is empty the rows are also discarded right after the fold:
  /// CampaignReport.rows comes back empty while `executed` still counts
  /// the work — the Monte-Carlo-scale mode where a campaign never
  /// materializes its row vector.  With a store configured the rows are
  /// kept (the store write needs them) and the fold is a free rider.
  /// Owned by the caller; must outlive run_campaign.
  StreamingAggregator* stream = nullptr;
};

/// What a campaign run did.
struct CampaignReport {
  std::size_t total = 0;     ///< scenarios in the expanded grid
  std::size_t sharded_out = 0;  ///< assigned to other shards
  std::size_t skipped = 0;   ///< already present in the store (resume)
  std::size_t executed = 0;  ///< run in this invocation
  std::vector<CampaignRow> rows;  ///< executed rows, in task order
  /// Torn-trailing-row recovery from the resume read (see StoreRunResult).
  StoreReadRecovery recovery;
};

/// Run the given scenarios on the pool; rows come back in spec order.
/// `on_task_done` is forwarded to SweepOptions (heartbeats, fault hooks);
/// `batch_width` > 0 routes eligible tasks through the batched engine
/// (identical rows either way).
std::vector<CampaignRow> run_scenarios(
    const std::vector<ScenarioSpec>& specs, int threads,
    const std::function<void(std::size_t, std::size_t)>& on_task_done = {},
    int batch_width = 0);

/// run_scenarios with a per-row streaming hook: `on_row` sees each
/// finished row in completion order (serialized, on a worker thread —
/// keep it cheap, it sits on the sweep's critical path).  With
/// `keep_rows` false the returned vector is empty and no row outlives
/// its hook call; with it true the rows come back in spec order exactly
/// like run_scenarios.
std::vector<CampaignRow> run_scenarios_streaming(
    const std::vector<ScenarioSpec>& specs, int threads,
    const std::function<void(const CampaignRow&)>& on_row, bool keep_rows,
    const std::function<void(std::size_t, std::size_t)>& on_task_done = {},
    int batch_width = 0);

/// The slice of `specs` assigned to shard `index` of `count` (fingerprint
/// modulo count; relative order preserved). Throws std::invalid_argument
/// on a bad shard geometry.
std::vector<ScenarioSpec> shard_filter(const std::vector<ScenarioSpec>& specs,
                                       int index, int count);

/// Expand + shard-filter + (optionally) resume-filter + run + write the
/// store.  A fresh run replaces the store file; a resume run rewrites it
/// with the union of existing and new rows (both in canonical order).
CampaignReport run_campaign(const CampaignSpec& campaign,
                            const CampaignOptions& options);

/// The store-maintenance core shared by run_campaign and run_artifact
/// (core/artifact.hpp): resume-filter `fingerprints` against the store,
/// execute the missing subset via `execute` (called once with the indices
/// into `fingerprints` to run, in order), and rewrite the store — a fresh
/// run replaces it, a resume run rewrites the union of existing and new
/// rows, both in canonical order.  Resuming a store whose provenance is
/// not this build's throws std::runtime_error (blending rows from two
/// engines would poison every downstream comparison); start a fresh store
/// or keep the old engine's binary.  This is the single home of that
/// contract; the shard/merge byte-stability CI pins ride on it.
struct StoreRunResult {
  std::size_t skipped = 0;        ///< fingerprints already stored
  /// Cells the execute callback was asked to run.  Usually rows.size(),
  /// but stays correct when the callback streams rows away instead of
  /// materializing them (CampaignOptions::stream with no store).
  std::size_t executed = 0;
  std::vector<CampaignRow> rows;  ///< executed rows, in `execute` order
  /// Set when resume dropped a torn trailing row from the prior store
  /// (the cell re-ran and the rewrite replaced it with a whole row).
  StoreReadRecovery recovery;
};

StoreRunResult run_with_store(
    const std::vector<std::uint64_t>& fingerprints,
    const std::string& store_path, bool resume,
    const std::function<
        std::vector<CampaignRow>(const std::vector<std::size_t>&)>& execute);

/// Store diff (for comparing campaign outputs across commits): rows
/// present in only one store are reported separately from rows present in
/// both whose payload (spec or outcome) differs.
struct StoreDiff {
  std::vector<CampaignRow> only_a;
  std::vector<CampaignRow> only_b;
  std::vector<std::pair<CampaignRow, CampaignRow>> changed;  ///< (a, b)
  bool identical() const {
    return only_a.empty() && only_b.empty() && changed.empty();
  }
};

StoreDiff diff_result_stores(const std::vector<CampaignRow>& a,
                             const std::vector<CampaignRow>& b);

/// Lossless union of partial stores (shards of one campaign, or several
/// campaigns sharing a store).  Rows with equal fingerprints must be
/// byte-identical; a fingerprint carrying two different payloads is a
/// conflict and lands in `conflicts` instead of `rows`.
struct StoreMerge {
  StoreProvenance provenance;     ///< the shared input provenance
  std::vector<CampaignRow> rows;  ///< canonical order
  std::vector<std::pair<CampaignRow, CampaignRow>> conflicts;  ///< (kept, clashing)
  bool ok() const { return conflicts.empty(); }
};

/// Merge full stores (consumed).  All inputs must carry the same
/// provenance — a mix throws std::runtime_error naming both
/// (cross-version rows must never silently blend into one store; use
/// `dring_report --compare` to compare across versions instead).
StoreMerge merge_result_stores(std::vector<ResultStore> stores);

/// Row-level merge under a single (implicit) provenance — the in-process
/// path used by tests and run_with_store.
StoreMerge merge_result_stores(
    const std::vector<std::vector<CampaignRow>>& stores);

}  // namespace dring::core
