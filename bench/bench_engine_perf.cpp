// Engine micro-benchmarks (google-benchmark): simulation throughput as a
// function of ring size, model and adversary. Not a paper experiment —
// this documents the substrate's own cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "core/analysis.hpp"
#include "core/campaign.hpp"
#include "core/query.hpp"
#include "core/runner.hpp"

namespace {

using namespace dring;

void BM_FsyncKnownN(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 10 * n;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 7);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.rounds);
    state.counters["rounds"] = static_cast<double>(r.rounds);
  }
}
BENCHMARK(BM_FsyncKnownN)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SsyncPtBound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 100LL * n * n;
    adversary::TargetedRandomAdversary adv(0.5, 0.6, 11);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.total_moves);
  }
}
BENCHMARK(BM_SsyncPtBound)->Arg(8)->Arg(16)->Arg(32);

void BM_RoundsPerSecondRaw(benchmark::State& state) {
  // Pure engine round cost: two walkers on a big static ring.
  const NodeId n = static_cast<NodeId>(state.range(0));
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::UnconsciousExploration, n);
  cfg.engine.verify = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    engine->step();
    ++rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_RoundsPerSecondRaw)->Arg(64)->Arg(1024)->Arg(16384);

// Minimal deterministic protocol for engine microbenches: walk in one
// direction, bounce on contention/blocking. Near-zero Compute cost, so the
// measurement isolates the engine's per-agent machinery (Look snapshots,
// port mutex, movement) rather than any algorithm's bookkeeping.
class BounceWalker final : public agent::Brain {
 public:
  explicit BounceWalker(Dir d) : dir_(d) {}
  agent::Intent on_activate(const agent::Snapshot&,
                            const agent::Feedback& fb) override {
    if (fb.failed() || fb.blocked()) dir_ = opposite(dir_);
    return agent::Intent::move(dir_);
  }
  bool terminated() const override { return false; }
  std::unique_ptr<agent::Brain> clone() const override {
    return std::make_unique<BounceWalker>(*this);
  }
  std::string state_name() const override { return "Walk"; }
  std::string algorithm_name() const override { return "BounceWalker"; }

 private:
  Dir dir_;
};

void BM_BatchRoundsPerSecond(benchmark::State& state) {
  // Batched per-scenario round cost: `width` copies of the
  // BM_RoundsPerSecondRaw/64 scenario stepped in lockstep on one core.
  // items/sec counts lane-rounds, so it compares directly against the
  // scalar mark's rounds/sec: the batch's amortized dispatch should put
  // per-scenario throughput well above the scalar engine on small rings.
  const int width = static_cast<int>(state.range(0));
  const NodeId n = 64;
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::UnconsciousExploration, n);
  cfg.engine.verify = false;
  // Disable every stop condition so lanes never retire: steady state.
  cfg.stop.stop_when_explored = false;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.max_rounds = std::int64_t{1} << 62;
  sim::BatchEngine batch(width);
  for (int i = 0; i < width; ++i) {
    const bool admitted = batch.admit(
        core::make_lane_config(cfg, nullptr), static_cast<std::size_t>(i));
    if (!admitted) state.SkipWithError("admit failed");
  }
  const auto no_retire = [](std::size_t, sim::RunResult&&,
                            const sim::LanePerf&) {};
  std::int64_t lane_rounds = 0;
  for (auto _ : state) {
    batch.step_round(no_retire);
    lane_rounds += width;
  }
  state.SetItemsProcessed(lane_rounds);
}
BENCHMARK(BM_BatchRoundsPerSecond)->Arg(8)->Arg(32)->Arg(64);

void BM_ManyAgentsSnapshot(benchmark::State& state) {
  // Large teams: k walkers on a ring of k nodes (occupancy ~1, constant
  // collisions). Dominated by per-round Look/snapshot construction.
  const int k = static_cast<int>(state.range(0));
  const NodeId n = std::max<NodeId>(4, static_cast<NodeId>(k));
  sim::EngineOptions opts;
  opts.verify = false;
  sim::Engine engine(n, std::nullopt, sim::Model::FSYNC, opts);
  for (int i = 0; i < k; ++i)
    engine.add_agent(static_cast<NodeId>(i % n), agent::kChiralOrientation,
                     std::make_unique<BounceWalker>(
                         i % 2 == 0 ? Dir::Left : Dir::Right));
  std::int64_t rounds = 0;
  for (auto _ : state) {
    engine.step();
    ++rounds;
  }
  state.SetItemsProcessed(rounds * k);  // agent activations per second
}
BENCHMARK(BM_ManyAgentsSnapshot)->Arg(64)->Arg(256);

// Synthetic campaign rows for the query-service benches: a plausible
// algorithm × n × seed grid with deterministic outcomes, no simulation.
std::vector<core::CampaignRow> synthetic_rows(int count) {
  static const char* kAlgos[] = {"KnownNNoChirality", "UnconsciousExploration",
                                 "ETUnconscious"};
  std::vector<core::CampaignRow> rows;
  rows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::CampaignRow row;
    row.spec.algorithm = kAlgos[i % 3];
    row.spec.n = static_cast<NodeId>(8 + 2 * ((i / 3) % 8));
    row.spec.seed = static_cast<std::uint64_t>(i);
    row.fingerprint = core::fingerprint(row.spec);
    row.outcome.explored = true;
    row.outcome.explored_round = 2 + i % 17;
    row.outcome.rounds = row.outcome.explored_round;
    row.outcome.total_moves = 3 * row.outcome.explored_round;
    row.outcome.all_terminated = true;
    row.outcome.terminated_agents = 3;
    row.outcome.stop_reason = "explored";
    rows.push_back(row);
  }
  return rows;
}

void BM_QueryCacheLookup(benchmark::State& state) {
  // O(1) point lookups on a warm fingerprint-indexed cache. items/sec is
  // lookups/sec; every probe hits (the fingerprints come from the rows).
  const int count = static_cast<int>(state.range(0));
  const core::ResultCache cache(
      core::ResultStore{core::current_provenance(), synthetic_rows(count)});
  std::vector<std::uint64_t> fps;
  fps.reserve(cache.size());
  for (const core::CampaignRow& row : cache.rows())
    fps.push_back(row.fingerprint);
  std::int64_t lookups = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const core::CampaignRow* row = cache.find(fps[i]);
    benchmark::DoNotOptimize(row);
    if (++i == fps.size()) i = 0;
    ++lookups;
  }
  state.SetItemsProcessed(lookups);
}
BENCHMARK(BM_QueryCacheLookup)->Arg(2048)->Arg(16384);

void BM_StreamingFold(benchmark::State& state) {
  // Cell-by-cell streaming fold: one full pass over the rows per
  // iteration, items/sec is rows folded per second.
  const int count = static_cast<int>(state.range(0));
  const std::vector<core::CampaignRow> rows = synthetic_rows(count);
  const core::Metric metric = core::metric_from_string("explored_round");
  std::int64_t folded = 0;
  for (auto _ : state) {
    core::StreamingAggregator agg({"algorithm", "n"}, metric);
    for (const core::CampaignRow& row : rows) agg.add(row);
    benchmark::DoNotOptimize(agg.rows_folded());
    folded += count;
  }
  state.SetItemsProcessed(folded);
}
BENCHMARK(BM_StreamingFold)->Arg(2048)->Arg(16384);

void BM_QueryAggregateWarm(benchmark::State& state) {
  // The query service's serving path: group-by aggregate over the warm
  // in-memory cache. Compare against BM_QueryAggregateCold — the ratio is
  // what `dring_serve` buys over re-running `dring_report` per query.
  const int count = static_cast<int>(state.range(0));
  const core::ResultCache cache(
      core::ResultStore{core::current_provenance(), synthetic_rows(count)});
  const core::Metric metric = core::metric_from_string("explored_round");
  std::int64_t rows = 0;
  for (auto _ : state) {
    const auto groups = cache.aggregate({"algorithm", "n"}, metric);
    benchmark::DoNotOptimize(groups.data());
    rows += count;
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_QueryAggregateWarm)->Arg(4096);

void BM_QueryAggregateCold(benchmark::State& state) {
  // The cold path the cache replaces: read the store file, parse every
  // JSONL row, then aggregate — what each dring_report invocation pays.
  const int count = static_cast<int>(state.range(0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "dring_bench_query_store.jsonl")
          .string();
  core::write_result_store(path, synthetic_rows(count));
  const core::Metric metric = core::metric_from_string("explored_round");
  std::int64_t rows = 0;
  for (auto _ : state) {
    const core::ResultStore store = core::load_result_stores({path});
    const auto groups =
        core::aggregate_rows(store.rows, {"algorithm", "n"}, metric);
    benchmark::DoNotOptimize(groups.data());
    rows += count;
  }
  state.SetItemsProcessed(rows);
  std::filesystem::remove(path);
}
BENCHMARK(BM_QueryAggregateCold)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
