#include "algo/pt_two_agents.hpp"

#include <stdexcept>

namespace dring::algo {

using agent::Snapshot;
using agent::StepResult;

PTTwoAgents::PTTwoAgents(Variant variant, agent::Knowledge k)
    : CloneableMachine(k, Init), variant_(variant), bound_n_(k.upper_bound) {
  if (variant_ == Variant::KnownBound && !k.has_upper_bound())
    throw std::invalid_argument("PTBoundWithChirality requires a bound N");
}

bool PTTwoAgents::done() const {
  if (variant_ == Variant::KnownBound) return c_.Tnodes() >= bound_n_;
  return n_known();
}

void PTTwoAgents::enter_state(int state, const Snapshot& /*snap*/) {
  switch (state) {
    case Bounce:
      left_steps_ = c_.Esteps;
      // "if in state Reverse the agent catches the other agent at a
      // distance smaller than that in the previous catch, the two agents
      // have crossed and it can safely terminate."
      if (right_steps_ >= 0 && right_steps_ >= left_steps_)
        crossing_detected_ = true;
      break;
    case Reverse:
      right_steps_ = c_.Esteps;
      break;
    default:
      break;
  }
}

StepResult PTTwoAgents::run_state(int state, const Snapshot& snap) {
  switch (state) {
    case Init:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
      }
      return StepResult::move(Dir::Left);
    case Bounce:
      // The crossing check is part of the state's entry body (Figure 14),
      // so it acts even in the entry round.
      if (crossing_detected_) return StepResult::terminate();
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (c_.Btime > 0) return StepResult::go(Reverse);
      }
      return StepResult::move(Dir::Right);
    case Reverse:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
      }
      return StepResult::move(Dir::Left);
    default:
      return StepResult::stay();
  }
}

std::string PTTwoAgents::name_of(int state) const {
  switch (state) {
    case Init: return "Init";
    case Bounce: return "Bounce";
    case Reverse: return "Reverse";
  }
  return "?";
}

}  // namespace dring::algo
