// Algorithms StartFromLandmarkNoChirality (paper, Figure 8 / Theorem 7)
// and LandmarkNoChirality (Figure 13 / Theorem 8).
//
// FSYNC, two anonymous agents, landmark, NO chirality; explores and
// explicitly terminates in O(n log n) rounds.
//
// The difficulty is agents starting in opposite directions that never break
// symmetry.  The protocol turns the rounds of the first two blocked waits
// (and of an intermediate landmark visit) into an ID (k1, k2, k3 bit
// interleaving, Section 3.2.3), then follows the ID-derived direction
// schedule in state Reverse; Lemma 3 guarantees a long common-direction run
// for distinct IDs, after which the LandmarkWithChirality machinery (or a
// ring-size timeout) finishes the job.
//
// The two published variants share this class:
//   * StartFromLandmarkNoChirality: both agents start at the landmark
//     (initial state InitL, states Figure 8);
//   * LandmarkNoChirality: arbitrary start (initial state Init, states
//     Figure 13); when the two agents meet at the landmark during the ID
//     phase they restart as a fresh instance of the start-at-landmark
//     algorithm (reset + InitL).
//
// Interpretation notes (DESIGN.md): D7 (the switch(Ttime) self-transition
// is folded into a per-round direction refresh), D10 (Btime > 0 guards read
// "freshly blocked in this state": Btime <= Etime), D8 (the instance
// restart re-bases all Ttime-derived quantities on an instance clock; both
// agents reset in the same round, so their phase schedules stay aligned).
#pragma once

#include <optional>

#include "algo/id_encoding.hpp"
#include "algo/landmark_core.hpp"

namespace dring::algo {

class LandmarkNoChirality final
    : public agent::CloneableMachine<LandmarkNoChirality, LandmarkCore> {
 public:
  enum class Variant {
    StartAtLandmark,  ///< Figure 8 (Theorem 7)
    ArbitraryStart,   ///< Figure 13 (Theorem 8)
  };

  explicit LandmarkNoChirality(Variant variant);

  std::string algorithm_name() const override {
    return variant_ == Variant::StartAtLandmark
               ? "StartFromLandmarkNoChirality"
               : "LandmarkNoChirality";
  }

  // Test/trace introspection.
  std::int64_t k1() const { return k1_; }
  std::int64_t k2() const { return k2_; }
  std::int64_t k3() const { return k3_; }
  const std::optional<IdSchedule>& schedule() const { return sched_; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  void enter_state(int state, const agent::Snapshot& snap) override;
  Dir current_travel_dir() const override { return dir_; }

 private:
  /// Rounds completed since the current instance started.
  std::int64_t instance_time() const { return c_.Ttime - instance_start_; }
  /// 1-based current round number within the instance.
  std::int64_t instance_round() const { return instance_time() + 1; }

  /// Both agents standing in the node proper of the landmark.
  bool both_at_landmark(const agent::Snapshot& snap) const {
    return snap.is_landmark && !snap.on_port && snap.others_in_node > 0;
  }

  /// The common LExplore guard list of the ID-collection states; returns
  /// the fired transition or std::nullopt.  `wait_threshold` is the number
  /// of distinct waits that advances the ID computation (1 in Init/InitL,
  /// 2 afterwards — "the first two times it waits in a port").
  std::optional<agent::StepResult> landmark_guards(
      const agent::Snapshot& snap, bool with_is_landmark,
      std::int64_t wait_threshold);

  void restart_instance();

  Variant variant_;
  Dir dir_ = Dir::Left;
  std::int64_t k1_ = 0;
  std::int64_t k2_ = 0;
  std::int64_t k3_ = 0;
  std::optional<IdSchedule> sched_;
  std::int64_t instance_start_ = 0;
  std::int64_t last_dir_round_ = -1;
  int at_lmk_step_ = 0;
};

}  // namespace dring::algo
