// Framework base class for the paper's algorithms.
//
// Every protocol in the paper is a small state machine whose states run the
// guarded procedure
//
//   Explore(dir | p1 : s1; p2 : s2; ...; pk : sk)
//
// "the agent performs Look, then evaluates the predicates p1..pk in order;
// as soon as a predicate is satisfied the procedure exits and the agent
// does a transition to the specified state. If no predicate is satisfied,
// the agent tries to Move in the specified direction and the procedure is
// executed again in the next round" (paper, Section 3).
//
// ExploreMachine supplies:
//   * counter maintenance (Ttime/Tsteps/Etime/Esteps/Btime/Ntime/Tnodes),
//     ticking per activation and fed by engine Feedback;
//   * the predicates `failed`, `catches`, `caught`, `meeting`;
//   * LExplore landmark bookkeeping: net displacement from the first
//     landmark visit and ring-size learning ("n is known");
//   * a transition loop where entering a state runs its entry action, then
//     resets the per-Explore counters, then processes the new state in the
//     same activation (the paper's "change state to X and process it").
//
// Subclasses define an integer state space and implement `run_state`
// (per-state guard list and/or bespoke sequential logic) plus optional
// `enter_state` entry actions.  Entry actions run BEFORE the Etime/Esteps
// reset, so they can capture the previous phase's counters (e.g.
// `bounceSteps <- Esteps` in Algorithm LandmarkWithChirality).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "agent/brain.hpp"
#include "agent/counters.hpp"
#include "agent/snapshot.hpp"

namespace dring::agent {

/// What a state handler produces: either a final Intent for this activation
/// or a transition to another state (processed immediately).
struct StepResult {
  enum class Tag : std::uint8_t { Act, Goto };
  Tag tag = Tag::Act;
  Intent intent;
  int next_state = 0;

  static StepResult act(Intent i) { return {Tag::Act, i, 0}; }
  static StepResult move(Dir d) { return act(Intent::move(d)); }
  static StepResult stay() { return act(Intent::stay()); }
  static StepResult terminate() { return act(Intent::terminate()); }
  static StepResult go(int state) {
    return {Tag::Goto, Intent::stay(), state};
  }
};

class ExploreMachine : public Brain {
 public:
  explicit ExploreMachine(Knowledge k, int initial_state);

  Intent on_activate(const Snapshot& snap, const Feedback& fb) final;
  bool terminated() const final { return terminated_; }
  std::string state_name() const override;

  // --- introspection used by tests and traces -----------------------------
  const Counters& counters() const { return c_; }
  int state() const { return state_; }
  bool n_known() const { return size_.has_value(); }
  std::int64_t known_size() const { return size_.value_or(-1); }

 protected:
  /// Run the current state: evaluate guards / bespoke logic and either act
  /// or transition.  Called repeatedly within one activation while states
  /// chain (capped to avoid accidental infinite loops).
  virtual StepResult run_state(int state, const Snapshot& snap) = 0;

  /// Entry action when transitioning into `state` (before Etime/Esteps
  /// reset). Default: nothing.
  virtual void enter_state(int state, const Snapshot& snap);

  /// Name of a state for traces. Subclasses override with their enum names.
  virtual std::string name_of(int state) const;

  // --- predicate helpers (paper, Section 3) -------------------------------
  /// `failed`: the previous Compute tried to enter a port and lost the
  /// mutual exclusion race.
  bool failed() const { return fb_.failed(); }

  /// `catches`: self in the node proper and another agent sits on this
  /// node's port in local direction `dir` (the agent's moving direction).
  bool catches(const Snapshot& snap, Dir dir) const {
    return !snap.on_port && snap.others_on_port(dir) > 0;
  }

  /// `caught`: self on a port after a failed move, another agent in the
  /// node proper.
  bool caught(const Snapshot& snap) const {
    return snap.on_port && snap.others_in_node > 0;
  }

  /// `meeting`: fresh co-location in the node proper — another agent is in
  /// the node and we arrived here by an actual move (active or passive) at
  /// the previous activation.  The freshness requirement prevents the
  /// BComm/FComm handshake stand-together from re-firing `meeting`
  /// (DESIGN.md, deviation D6).
  bool meeting(const Snapshot& snap) const {
    return !snap.on_port && snap.others_in_node > 0 && arrived_by_move_;
  }

  /// Whether the previous activation's move attempt was blocked on a
  /// missing edge (used with Btime).
  bool blocked() const { return fb_.blocked(); }

  /// True while the current state was entered during THIS activation.
  ///
  /// Transition semantics (DESIGN.md, D12): when a guard fires, the agent
  /// transitions and executes the new state's *default action* (its move)
  /// in the same round — the paper's Figure 2 timing requires this — but
  /// the new state's guard list is evaluated only from the next activation
  /// on (otherwise still-true predicates like `caught` would cascade, e.g.
  /// Init -> Forward -> FComm in one round, which breaks the handshake).
  /// Bespoke sequential states (BComm, FComm, AtLandmark, Ready) run their
  /// step logic immediately, as the paper's "process it (in the same
  /// round)" notes dictate.
  bool just_entered() const { return just_entered_; }

  /// Number of distinct waiting events so far: maximal runs of consecutive
  /// blocked rounds in one direction (paper, Section 3.2.3: "the first two
  /// times it waits in a port it immediately changes direction").
  std::int64_t wait_events() const { return wait_events_; }

  // --- knowledge ------------------------------------------------------------
  const Knowledge& knowledge() const { return k_; }
  /// Ring size if known (given exactly, or learned via the landmark).
  std::optional<std::int64_t> size() const { return size_; }

  /// Signed distance from the landmark in local-left units, defined once
  /// the landmark has been seen (paper: "tracks its distance from the
  /// landmark since encountering it for the first time").
  std::optional<std::int64_t> landmark_distance() const;

  Counters c_;
  Feedback fb_;  ///< feedback of the current activation (post-ingest)

  /// Force the per-Explore counters to reset (used by states that restart
  /// their own Explore procedure without a framework transition).
  void restart_explore() { c_.reset_explore(); }

  /// The paper's ExploreNoResetEsteps: make the next state transition keep
  /// the accumulated Esteps (Etime still resets).
  void suppress_esteps_reset_once() { suppress_esteps_reset_ = true; }

  /// Transition helper for bespoke code paths: switch state, run entry
  /// action, reset per-Explore counters. Does NOT process the new state.
  void set_state_raw(int state, const Snapshot& snap);

  /// Full knowledge reset used by Algorithm LandmarkNoChirality when it
  /// restarts as a new instance from the landmark (keeps Ttime/Tsteps).
  void reset_landmark_tracking();

  /// Restart the wait-event counter (instance restarts).
  void reset_wait_events() {
    wait_events_ = 0;
    in_wait_ = false;
  }

 private:
  void ingest_feedback(const Feedback& fb);
  void observe(const Snapshot& snap);

  Knowledge k_;
  int state_;
  bool terminated_ = false;
  bool arrived_by_move_ = false;
  bool suppress_esteps_reset_ = false;
  bool just_entered_ = false;

  // Wait-event detection (a "wait" = maximal run of blocked rounds in one
  // direction).
  bool in_wait_ = false;
  Dir wait_dir_ = Dir::Left;
  std::int64_t wait_events_ = 0;

  // Landmark bookkeeping.
  bool lm_seen_ = false;
  std::int64_t lm_ref_net_ = 0;
  std::optional<std::int64_t> size_;
};

/// CRTP helper providing `clone()` for concrete algorithm classes.
template <typename Derived, typename Base = ExploreMachine>
class CloneableMachine : public Base {
 public:
  using Base::Base;
  std::unique_ptr<Brain> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace dring::agent
