// Adversaries lifted from the paper's impossibility and lower-bound proofs.
//
// Simulation cannot *prove* impossibility, but it can execute the exact
// adversarial constructions the proofs describe and show that concrete
// protocols (including every algorithm in this library, run outside its
// stated assumptions) fail to explore or to terminate under them.
//
//   * BlockAgentAdversary      — Observation 1: always remove the edge the
//                                victim wants to traverse.
//   * PreventMeetingAdversary  — Observation 2: remove an edge only when the
//                                two agents would otherwise end the round at
//                                the same node (head-on silent crossings are
//                                not meetings and are allowed).
//   * NsFirstMoverAdversary    — Theorem 9 (NS): activate all non-movers
//                                plus the single mover that has been passive
//                                longest, and remove that mover's edge.
//   * HeadOnPinAdversary       — Theorem 10 demo (PT, no chirality): steer
//                                two approaching agents onto the two ports
//                                of one edge and remove it forever.
//   * SlidingWindowAdversary   — Theorems 13/15 (and the Th. 11/12
//                                partial-termination behaviour): confine the
//                                agents to a window that shifts by one node
//                                per phase, forcing Theta(x * (N - x)) moves.
//   * SegmentSealAdversary     — Theorem 19 (ET): seal a segment between
//                                two edges, alternating which seal edge is
//                                missing while the agents pressing on the
//                                other are passive.
//
// Plus make_fig2_script: the exact schedule of Figure 2 on which Algorithm
// KnownNNoChirality needs 3n-6 rounds.
#pragma once

#include <optional>
#include <string>

#include "adversary/basic_adversaries.hpp"
#include "sim/adversary.hpp"

namespace dring::adversary {

/// Observation 1: the adversary prevents one agent from ever leaving its
/// node by always removing the edge over which it wants to leave.
class BlockAgentAdversary : public sim::Adversary {
 public:
  explicit BlockAgentAdversary(AgentId victim) : victim_(victim) {}

  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override {
    return "block-agent(" + std::to_string(victim_) + ")";
  }

 private:
  AgentId victim_;
};

/// Observation 2: never remove an edge except when that is the only way to
/// stop two agents from ending the round at the same node. Never blocks
/// both agents in the same round.
class PreventMeetingAdversary : public sim::Adversary {
 public:
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override { return "prevent-meeting"; }
};

/// Theorem 9 (NS model): at each round activate the agents that would not
/// move plus first(t) — the would-be mover that has been passive longest —
/// and remove the edge first(t) would traverse. Fair, yet no agent ever
/// moves.
class NsFirstMoverAdversary : public sim::Adversary {
 public:
  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override { return "ns-first-mover"; }

 private:
  AgentId first_ = -1;
};

/// Theorem 10 demonstration (PT, two agents, no chirality): let the two
/// agents approach head-on, adjust parity so they end up on the two
/// endpoints of a single edge, then remove that edge forever. Both agents
/// starve on the same edge; under PT neither can be transported (the edge
/// is never present) and the rest of the ring stays unexplored.
class HeadOnPinAdversary : public sim::Adversary {
 public:
  HeadOnPinAdversary(AgentId a, AgentId b) : a_(a), b_(b) {}

  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override { return "head-on-pin"; }
  void report_metrics(
      std::map<std::string, long long>& metrics) const override {
    if (pinned_) metrics["pinned_edge"] = *pinned_;
  }

  std::optional<EdgeId> pinned() const { return pinned_; }

 private:
  AgentId a_;
  AgentId b_;
  std::optional<EdgeId> pinned_;
};

/// Theorems 13/15: the sliding-window move-forcing adversary for the
/// two-agent PT algorithms with chirality (agents travel "left" =
/// `left_global`).  The leader is pinned on the left boundary port; the
/// chaser is forced to shuttle across the window; each phase the window
/// slides one node left (the leader is passively transported exactly when
/// the chaser is blocked at the right boundary), so exploration grows by
/// one node per ~|window| traversals.
class SlidingWindowAdversary : public sim::Adversary {
 public:
  /// `relent_at_endgame`: once every node is visited, stop all removals so
  /// both agents can finish (useful for cost measurements). With false
  /// (the default, matching the proofs) the leader stays pinned on its
  /// port forever and only the chaser ever terminates — the Theorem 11
  /// behaviour.
  SlidingWindowAdversary(AgentId leader, AgentId chaser,
                         GlobalDir left_global = GlobalDir::Ccw,
                         bool relent_at_endgame = false)
      : leader_(leader),
        chaser_(chaser),
        left_(left_global),
        relent_(relent_at_endgame) {}

  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override { return "sliding-window"; }
  void report_metrics(
      std::map<std::string, long long>& metrics) const override {
    metrics["shifts"] = shifts_;
  }

  /// Number of window shifts (leader transports) performed so far.
  long long shifts() const { return shifts_; }

 private:
  AgentId leader_;
  AgentId chaser_;
  GlobalDir left_;
  bool relent_;
  long long shifts_ = 0;
};

/// Theorem 19 (ET): seals the segment between two edges eA and eB.  When
/// both seal edges are under pressure (an agent waits on or targets each),
/// alternate which one is missing and keep the agents pressing on the
/// currently-present one passive.  Legal in ET for any finite horizon.
class SegmentSealAdversary : public sim::Adversary {
 public:
  SegmentSealAdversary(EdgeId ea, EdgeId eb) : ea_(ea), eb_(eb) {}

  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  std::string name() const override { return "segment-seal"; }

 private:
  bool pressure_on(const sim::WorldView& view, EdgeId e) const;

  EdgeId ea_;
  EdgeId eb_;
  bool flip_ = false;
  std::optional<EdgeId> plan_remove_;
};

/// The exact Figure 2 schedule: agents a at v_i and b at v_{i+1}, chirality
/// (left = Ccw), N = n.  Removes edge i during rounds 1..n-3 and edge
/// (i-2 mod n) during rounds n-2..3n-6; Algorithm KnownNNoChirality then
/// completes exploration exactly at round 3n-6.
ScriptedEdgeAdversary::Script make_fig2_script(NodeId n, NodeId i);

}  // namespace dring::adversary
