#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace dring::core {

namespace {

std::string fmt(const char* spec, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, value);
  return buf;
}

std::string fmt_rate(double value) { return fmt("%.4f", value); }
std::string fmt_stat(double value) { return fmt("%.6g", value); }

}  // namespace

// --- loading ---------------------------------------------------------------

ResultStore load_result_stores(const std::vector<std::string>& paths) {
  std::vector<ResultStore> stores;
  stores.reserve(paths.size());
  for (const std::string& path : paths)
    stores.push_back(read_result_store_file(path));
  StoreMerge merge = merge_result_stores(stores);
  if (!merge.ok())
    throw std::runtime_error(
        "stores disagree on " + std::to_string(merge.conflicts.size()) +
        " fingerprint(s), first " +
        hex_u64(merge.conflicts.front().first.fingerprint) +
        " — refusing to analyze conflicting data");
  ResultStore result;
  result.provenance = merge.provenance;
  result.rows = std::move(merge.rows);
  return result;
}

// --- axes ------------------------------------------------------------------

const std::vector<std::string>& analysis_axes() {
  static const std::vector<std::string> axes = {
      "algorithm",  "n",          "agents",      "adversary",
      "t_interval", "model",      "max_rounds",  "remove_prob",
      "target_prob", "activation_prob"};
  return axes;
}

std::string canonical_axis(const std::string& key) {
  if (key == "k") return "agents";
  if (key == "family") return "adversary";
  if (key == "T" || key == "t") return "t_interval";
  for (const std::string& axis : analysis_axes())
    if (key == axis) return axis;
  std::string valid;
  for (const std::string& axis : analysis_axes())
    valid += (valid.empty() ? "" : ", ") + axis;
  throw std::invalid_argument("unknown axis '" + key + "' (valid: " + valid +
                              ")");
}

bool axis_is_numeric(const std::string& axis) {
  return axis != "algorithm" && axis != "adversary" && axis != "model";
}

std::string axis_value(const CampaignRow& row, const std::string& axis) {
  const ScenarioSpec& s = row.spec;
  if (axis == "algorithm") return s.algorithm;
  if (axis == "adversary") return s.adversary.family;
  if (axis == "model") return s.model.empty() ? "native" : s.model;
  if (axis == "n") return std::to_string(s.n);
  if (axis == "agents") return std::to_string(s.num_agents);
  if (axis == "t_interval") return std::to_string(s.adversary.t_interval);
  if (axis == "max_rounds") return std::to_string(s.max_rounds);
  if (axis == "remove_prob") return fmt_axis(s.adversary.remove_prob);
  if (axis == "target_prob") return fmt_axis(s.adversary.target_prob);
  if (axis == "activation_prob")
    return fmt_axis(s.adversary.activation_prob);
  throw std::invalid_argument("unknown axis '" + axis + "'");
}

double axis_number(const CampaignRow& row, const std::string& axis) {
  const ScenarioSpec& s = row.spec;
  if (axis == "n") return static_cast<double>(s.n);
  if (axis == "agents") return static_cast<double>(s.num_agents);
  if (axis == "t_interval") return static_cast<double>(s.adversary.t_interval);
  if (axis == "max_rounds") return static_cast<double>(s.max_rounds);
  if (axis == "remove_prob") return s.adversary.remove_prob;
  if (axis == "target_prob") return s.adversary.target_prob;
  if (axis == "activation_prob") return s.adversary.activation_prob;
  throw std::invalid_argument("axis '" + axis + "' is not numeric");
}

std::string fmt_axis(double value) { return fmt_stat(value); }

// --- aggregation -----------------------------------------------------------

Metric metric_from_string(const std::string& name) {
  if (name == "explored_round") return Metric::ExploredRound;
  if (name == "rounds") return Metric::Rounds;
  if (name == "moves") return Metric::Moves;
  throw std::invalid_argument(
      "unknown metric '" + name +
      "' (valid: explored_round, rounds, moves)");
}

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::ExploredRound: return "explored_round";
    case Metric::Rounds: return "rounds";
    case Metric::Moves: return "moves";
  }
  return "?";
}

bool row_success(const CampaignRow& row) {
  return row.outcome.explored && !row.outcome.premature_termination;
}

std::optional<double> metric_sample(const CampaignRow& row, Metric metric) {
  switch (metric) {
    case Metric::ExploredRound:
      if (!row_success(row)) return std::nullopt;
      return static_cast<double>(row.outcome.explored_round);
    case Metric::Rounds:
      return static_cast<double>(row.outcome.rounds);
    case Metric::Moves:
      return static_cast<double>(row.outcome.total_moves);
  }
  return std::nullopt;
}

WilsonInterval wilson_interval(int successes, int runs, double z) {
  if (runs <= 0) return {0.0, 1.0};
  const double n = static_cast<double>(runs);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty())
    throw std::invalid_argument("quantile of an empty sample");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

bool group_key_less(const std::vector<std::string>& a,
                    const std::vector<std::string>& b,
                    const std::vector<bool>& numeric) {
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (numeric[i]) {
      const double x = std::strtod(a[i].c_str(), nullptr);
      const double y = std::strtod(b[i].c_str(), nullptr);
      if (x != y) return x < y;
    }
    return a[i] < b[i];
  }
  return a.size() < b.size();
}

Aggregate fold_rows(const std::vector<const CampaignRow*>& rows,
                    Metric metric) {
  Aggregate agg;
  std::vector<double> samples;
  for (const CampaignRow* row : rows) {
    agg.runs += 1;
    if (row_success(*row)) agg.successes += 1;
    if (row->outcome.premature_termination) agg.premature += 1;
    agg.violations += row->outcome.violations;
    if (const std::optional<double> s = metric_sample(*row, metric))
      samples.push_back(*s);
  }
  agg.rate_ci = wilson_interval(agg.successes, agg.runs);
  agg.samples = static_cast<int>(samples.size());
  if (samples.empty()) return agg;
  std::sort(samples.begin(), samples.end());
  agg.min = samples.front();
  agg.max = samples.back();
  double sum = 0;
  for (const double s : samples) sum += s;
  agg.mean = sum / static_cast<double>(samples.size());
  agg.median = quantile(samples, 0.5);
  agg.p95 = quantile(samples, 0.95);
  double var = 0;
  for (const double s : samples) var += (s - agg.mean) * (s - agg.mean);
  agg.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return agg;
}

namespace {

/// Group rows by their rendered key values; returns (key, member rows)
/// pairs sorted numeric-aware.
std::vector<std::pair<std::vector<std::string>,
                      std::vector<const CampaignRow*>>>
group_by(const std::vector<CampaignRow>& rows,
         const std::vector<std::string>& axes) {
  std::map<std::vector<std::string>, std::vector<const CampaignRow*>> groups;
  for (const CampaignRow& row : rows) {
    std::vector<std::string> key;
    key.reserve(axes.size());
    for (const std::string& axis : axes) key.push_back(axis_value(row, axis));
    groups[std::move(key)].push_back(&row);
  }
  std::vector<bool> numeric;
  numeric.reserve(axes.size());
  for (const std::string& axis : axes) numeric.push_back(axis_is_numeric(axis));
  std::vector<std::pair<std::vector<std::string>,
                        std::vector<const CampaignRow*>>>
      ordered(groups.begin(), groups.end());
  std::sort(ordered.begin(), ordered.end(),
            [&numeric](const auto& a, const auto& b) {
              return group_key_less(a.first, b.first, numeric);
            });
  return ordered;
}

std::vector<std::string> canonicalize(const std::vector<std::string>& keys) {
  std::vector<std::string> canon;
  canon.reserve(keys.size());
  for (const std::string& key : keys) canon.push_back(canonical_axis(key));
  return canon;
}

}  // namespace

std::vector<GroupRow> aggregate_rows(const std::vector<CampaignRow>& rows,
                                     const std::vector<std::string>& group_keys,
                                     Metric metric) {
  const std::vector<std::string> axes = canonicalize(group_keys);
  std::vector<GroupRow> result;
  for (auto& [key, members] : group_by(rows, axes))
    result.push_back({std::move(key), fold_rows(members, metric)});
  return result;
}

// --- paired store comparison ------------------------------------------------

double sign_test_p_value(int wins, int trials) {
  if (trials <= 0) return 1.0;
  const int k = std::min(wins, trials - wins);
  // P[X <= k] for X ~ Binomial(trials, 1/2).  Small trial counts use the
  // exact cumulative of C(trials, i) / 2^trials (bit-exact for the
  // hand-checkable cases); larger ones must go through log space — the
  // direct product has 2^-trials underflowing to 0 and the binomial
  // coefficient overflowing to inf from ~10^3 trials, which would report
  // any drift over a big store as p = 1.
  if (trials <= 60) {
    double coeff = 1.0;  // C(trials, 0)
    double cumulative = 0.0;
    const double scale = std::pow(0.5, trials);
    for (int i = 0; i <= k; ++i) {
      cumulative += coeff * scale;
      coeff =
          coeff * static_cast<double>(trials - i) / static_cast<double>(i + 1);
    }
    return std::min(1.0, 2.0 * cumulative);
  }
  // log C(trials, i) - trials*log 2 via lgamma, summed with the largest
  // term (the last: terms increase up to trials/2) factored out.
  const double log_half = std::log(0.5);
  const double lg_n = std::lgamma(static_cast<double>(trials) + 1.0);
  const auto log_term = [&](int i) {
    return lg_n - std::lgamma(static_cast<double>(i) + 1.0) -
           std::lgamma(static_cast<double>(trials - i) + 1.0) +
           trials * log_half;
  };
  const double log_max = log_term(k);
  double sum = 0.0;
  for (int i = 0; i <= k; ++i) sum += std::exp(log_term(i) - log_max);
  return std::min(1.0, 2.0 * std::exp(log_max) * sum);
}

PairedComparison paired_compare(const std::vector<CampaignRow>& a,
                                const std::vector<CampaignRow>& b,
                                Metric metric) {
  std::map<std::uint64_t, const CampaignRow*> in_b;
  for (const CampaignRow& row : b) in_b[row.fingerprint] = &row;
  std::map<std::uint64_t, const CampaignRow*> in_a;
  for (const CampaignRow& row : a) in_a[row.fingerprint] = &row;

  PairedComparison cmp;
  cmp.only_b = static_cast<int>(in_b.size());
  std::vector<double> deltas;
  for (const auto& [fp, row_a] : in_a) {
    const auto it = in_b.find(fp);
    if (it == in_b.end()) {
      cmp.only_a += 1;
      continue;
    }
    cmp.only_b -= 1;
    cmp.common += 1;
    const CampaignRow* row_b = it->second;

    PairedRow pair;
    pair.fingerprint = fp;
    pair.spec = row_a->spec;
    pair.success_a = row_success(*row_a);
    pair.success_b = row_success(*row_b);
    if (pair.success_a && !pair.success_b) cmp.success_flips_ab += 1;
    if (!pair.success_a && pair.success_b) cmp.success_flips_ba += 1;
    pair.sample_a = metric_sample(*row_a, metric);
    pair.sample_b = metric_sample(*row_b, metric);
    if (pair.sample_a && pair.sample_b) {
      pair.delta = *pair.sample_b - *pair.sample_a;
      cmp.pairs += 1;
      if (*pair.delta < 0)
        cmp.b_lower += 1;
      else if (*pair.delta > 0)
        cmp.b_higher += 1;
      else
        cmp.ties += 1;
      deltas.push_back(*pair.delta);
    }
    cmp.rows.push_back(std::move(pair));
  }

  if (!deltas.empty()) {
    double sum = 0;
    for (const double d : deltas) sum += d;
    cmp.mean_delta = sum / static_cast<double>(deltas.size());
    std::sort(deltas.begin(), deltas.end());
    cmp.median_delta = quantile(deltas, 0.5);
  }
  cmp.sign_test_p = sign_test_p_value(cmp.b_lower, cmp.b_lower + cmp.b_higher);
  return cmp;
}

// --- frontier --------------------------------------------------------------

std::vector<FrontierGroup> detect_frontier(
    const std::vector<CampaignRow>& rows,
    const std::vector<std::string>& group_keys, const std::string& axis,
    double threshold) {
  const std::vector<std::string> axes = canonicalize(group_keys);
  const std::string scan = canonical_axis(axis);
  if (!axis_is_numeric(scan))
    throw std::invalid_argument("frontier axis '" + scan +
                                "' is not numeric");
  for (const std::string& key : axes)
    if (key == scan)
      throw std::invalid_argument("frontier axis '" + scan +
                                  "' cannot also be a group key");

  std::vector<FrontierGroup> result;
  for (auto& [key, members] : group_by(rows, axes)) {
    FrontierGroup group;
    group.key = std::move(key);

    struct Bucket {
      int runs = 0;
      int successes = 0;
    };
    std::map<double, Bucket> buckets;
    for (const CampaignRow* row : members) {
      Bucket& b = buckets[axis_number(*row, scan)];
      b.runs += 1;
      if (row_success(*row)) b.successes += 1;
    }
    for (const auto& [value, bucket] : buckets)
      group.curve.push_back(
          {value, bucket.runs,
           static_cast<double>(bucket.successes) / bucket.runs});

    for (std::size_t i = 1; i < group.curve.size(); ++i) {
      const FrontierPoint& lo = group.curve[i - 1];
      const FrontierPoint& hi = group.curve[i];
      const bool lo_ok = lo.rate >= threshold;
      const bool hi_ok = hi.rate >= threshold;
      if (lo_ok != hi_ok)
        group.crossings.push_back(
            {lo.axis, hi.axis, lo.rate, hi.rate, /*falling=*/lo_ok});
    }
    result.push_back(std::move(group));
  }
  return result;
}

// --- rendering -------------------------------------------------------------

ReportFormat report_format_from_string(const std::string& name) {
  if (name == "md" || name == "markdown") return ReportFormat::Markdown;
  if (name == "csv") return ReportFormat::Csv;
  if (name == "json") return ReportFormat::Json;
  throw std::invalid_argument("unknown format '" + name +
                              "' (valid: md, csv, json)");
}

namespace {

std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string crossing_text(const FrontierCrossing& c) {
  return fmt_axis(c.axis_before) + "->" + fmt_axis(c.axis_after) + " (" +
         fmt_rate(c.rate_before) + "->" + fmt_rate(c.rate_after) +
         (c.falling ? ", falling)" : ", rising)");
}

}  // namespace

std::string render_cells(const std::vector<std::string>& cells,
                         ReportFormat format) {
  std::string line;
  if (format == ReportFormat::Markdown) {
    line = "|";
    for (const std::string& cell : cells) line += " " + cell + " |";
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) line += ',';
      line += csv_cell(cells[i]);
    }
  }
  return line + "\n";
}

std::string md_separator_row(std::size_t columns) {
  std::string line = "|";
  for (std::size_t i = 0; i < columns; ++i) line += "---|";
  return line + "\n";
}

std::string render_aggregate_report(const std::vector<GroupRow>& groups,
                                    const std::vector<std::string>& group_keys,
                                    Metric metric, ReportFormat format) {
  const std::vector<std::string> stat_columns = {
      "runs", "ok", "rate", "rate_lo", "rate_hi", "samples", "min",
      "mean", "median", "p95", "max", "sd"};

  if (format == ReportFormat::Json) {
    util::Json::Array out;
    for (const GroupRow& group : groups) {
      util::Json j;
      util::Json key;
      for (std::size_t i = 0; i < group_keys.size(); ++i)
        key.set(group_keys[i], group.key[i]);
      j.set("key", key.is_null() ? util::Json(util::Json::Object{}) : key);
      j.set("runs", static_cast<long long>(group.agg.runs));
      j.set("ok", static_cast<long long>(group.agg.successes));
      j.set("premature", static_cast<long long>(group.agg.premature));
      j.set("violations", static_cast<long long>(group.agg.violations));
      j.set("rate", group.agg.success_rate());
      j.set("rate_lo", group.agg.rate_ci.lo);
      j.set("rate_hi", group.agg.rate_ci.hi);
      j.set("samples", static_cast<long long>(group.agg.samples));
      if (group.agg.samples > 0) {
        j.set("min", group.agg.min);
        j.set("mean", group.agg.mean);
        j.set("median", group.agg.median);
        j.set("p95", group.agg.p95);
        j.set("max", group.agg.max);
        j.set("sd", group.agg.stddev);
      }
      out.push_back(std::move(j));
    }
    util::Json doc;
    doc.set("group_by", [&] {
      util::Json::Array keys;
      for (const std::string& key : group_keys) keys.emplace_back(key);
      return util::Json(std::move(keys));
    }());
    doc.set("metric", to_string(metric));
    doc.set("groups", util::Json(std::move(out)));
    return doc.dump() + "\n";
  }

  std::string out;
  std::vector<std::string> header = group_keys;
  header.insert(header.end(), stat_columns.begin(), stat_columns.end());
  if (format == ReportFormat::Markdown) {
    out += "Metric: " + to_string(metric) +
           "; ok = explored && !premature; rate_lo/rate_hi = Wilson 95% "
           "interval; sd = population stddev.\n\n";
    out += render_cells(header, format);
    out += md_separator_row(header.size());
  } else {
    out += render_cells(header, format);
  }
  for (const GroupRow& group : groups) {
    std::vector<std::string> cells = group.key;
    cells.push_back(std::to_string(group.agg.runs));
    cells.push_back(std::to_string(group.agg.successes));
    cells.push_back(fmt_rate(group.agg.success_rate()));
    cells.push_back(fmt_rate(group.agg.rate_ci.lo));
    cells.push_back(fmt_rate(group.agg.rate_ci.hi));
    cells.push_back(std::to_string(group.agg.samples));
    if (group.agg.samples > 0) {
      cells.push_back(fmt_stat(group.agg.min));
      cells.push_back(fmt_stat(group.agg.mean));
      cells.push_back(fmt_stat(group.agg.median));
      cells.push_back(fmt_stat(group.agg.p95));
      cells.push_back(fmt_stat(group.agg.max));
      cells.push_back(fmt_stat(group.agg.stddev));
    } else {
      for (int i = 0; i < 6; ++i) cells.push_back("-");
    }
    out += render_cells(cells, format);
  }
  return out;
}

std::string render_frontier_report(const std::vector<FrontierGroup>& groups,
                                   const std::vector<std::string>& group_keys,
                                   const std::string& axis, double threshold,
                                   ReportFormat format) {
  if (format == ReportFormat::Json) {
    util::Json::Array out;
    for (const FrontierGroup& group : groups) {
      util::Json j;
      util::Json key;
      for (std::size_t i = 0; i < group_keys.size(); ++i)
        key.set(group_keys[i], group.key[i]);
      j.set("key", key.is_null() ? util::Json(util::Json::Object{}) : key);
      util::Json::Array curve;
      for (const FrontierPoint& p : group.curve) {
        util::Json point;
        point.set("axis", p.axis);
        point.set("runs", static_cast<long long>(p.runs));
        point.set("rate", p.rate);
        curve.push_back(std::move(point));
      }
      j.set("curve", util::Json(std::move(curve)));
      util::Json::Array crossings;
      for (const FrontierCrossing& c : group.crossings) {
        util::Json crossing;
        crossing.set("axis_before", c.axis_before);
        crossing.set("axis_after", c.axis_after);
        crossing.set("rate_before", c.rate_before);
        crossing.set("rate_after", c.rate_after);
        crossing.set("falling", c.falling);
        crossings.push_back(std::move(crossing));
      }
      j.set("crossings", util::Json(std::move(crossings)));
      out.push_back(std::move(j));
    }
    util::Json doc;
    doc.set("axis", axis);
    doc.set("threshold", threshold);
    doc.set("group_by", [&] {
      util::Json::Array keys;
      for (const std::string& key : group_keys) keys.emplace_back(key);
      return util::Json(std::move(keys));
    }());
    doc.set("groups", util::Json(std::move(out)));
    return doc.dump() + "\n";
  }

  std::string out;
  if (format == ReportFormat::Markdown) {
    out += "Frontier: axis " + axis + ", threshold " + fmt_rate(threshold) +
           "; rate = explored && !premature.\n\n";
    std::vector<std::string> header = group_keys;
    header.push_back("curve (" + axis + ":rate)");
    header.push_back("frontier");
    out += render_cells(header, format);
    out += md_separator_row(header.size());
    for (const FrontierGroup& group : groups) {
      std::vector<std::string> cells = group.key;
      std::string curve;
      for (const FrontierPoint& p : group.curve) {
        if (!curve.empty()) curve += ' ';
        curve += fmt_axis(p.axis) + ":" + fmt_rate(p.rate);
      }
      cells.push_back(curve.empty() ? "-" : curve);
      std::string frontier;
      for (const FrontierCrossing& c : group.crossings) {
        if (!frontier.empty()) frontier += "; ";
        frontier += crossing_text(c);
      }
      cells.push_back(frontier.empty() ? "none" : frontier);
      out += render_cells(cells, format);
    }
    return out;
  }

  // CSV: one row per curve point, with the crossing annotated on the
  // point *after* the threshold was crossed (plot-ready).
  std::vector<std::string> header = group_keys;
  header.push_back(axis);
  header.push_back("runs");
  header.push_back("rate");
  header.push_back("crossing");
  out += render_cells(header, format);
  for (const FrontierGroup& group : groups) {
    for (const FrontierPoint& p : group.curve) {
      std::vector<std::string> cells = group.key;
      cells.push_back(fmt_axis(p.axis));
      cells.push_back(std::to_string(p.runs));
      cells.push_back(fmt_rate(p.rate));
      std::string crossing;
      for (const FrontierCrossing& c : group.crossings)
        if (c.axis_after == p.axis)
          crossing = c.falling ? "falling" : "rising";
      cells.push_back(crossing);
      out += render_cells(cells, format);
    }
  }
  return out;
}

std::string render_paired_report(const PairedComparison& cmp, Metric metric,
                                 ReportFormat format) {
  const auto sample_text = [](const std::optional<double>& s) {
    return s ? fmt_stat(*s) : std::string("-");
  };

  // Annotate only when the caller knew BOTH sides' provenance — one
  // known side does not make a cross-version pairing, just an unknown
  // one (analysis.hpp: "Empty = unknown (no annotation)").
  const bool with_provenance =
      !cmp.provenance_a.empty() && !cmp.provenance_b.empty();
  const bool cross_version =
      with_provenance && cmp.provenance_a != cmp.provenance_b;

  if (format == ReportFormat::Json) {
    util::Json doc;
    doc.set("metric", to_string(metric));
    if (with_provenance) {
      doc.set("provenance_a", cmp.provenance_a);
      doc.set("provenance_b", cmp.provenance_b);
      doc.set("cross_version", cross_version);
    }
    doc.set("common", static_cast<long long>(cmp.common));
    doc.set("only_a", static_cast<long long>(cmp.only_a));
    doc.set("only_b", static_cast<long long>(cmp.only_b));
    doc.set("success_flips_ab", static_cast<long long>(cmp.success_flips_ab));
    doc.set("success_flips_ba", static_cast<long long>(cmp.success_flips_ba));
    doc.set("pairs", static_cast<long long>(cmp.pairs));
    doc.set("b_lower", static_cast<long long>(cmp.b_lower));
    doc.set("b_higher", static_cast<long long>(cmp.b_higher));
    doc.set("ties", static_cast<long long>(cmp.ties));
    doc.set("mean_delta", cmp.mean_delta);
    doc.set("median_delta", cmp.median_delta);
    doc.set("sign_test_p", cmp.sign_test_p);
    util::Json::Array rows;
    for (const PairedRow& pair : cmp.rows) {
      if (!pair.delta || *pair.delta == 0) continue;
      util::Json j;
      j.set("fp", hex_u64(pair.fingerprint));
      j.set("spec", to_json(pair.spec));
      j.set("a", *pair.sample_a);
      j.set("b", *pair.sample_b);
      j.set("delta", *pair.delta);
      rows.push_back(std::move(j));
    }
    doc.set("changed", util::Json(std::move(rows)));
    return doc.dump() + "\n";
  }

  std::string out;
  if (format == ReportFormat::Markdown) {
    out += "Paired comparison (delta = B - A), metric " + to_string(metric) +
           "; sign-test p = exact two-sided binomial over non-tied pairs.\n";
    if (cross_version)
      out += "CROSS-VERSION comparison: A = " + cmp.provenance_a +
             ", B = " + cmp.provenance_b + ".\n";
    else if (with_provenance)
      out += "Both stores produced by " + cmp.provenance_a + ".\n";
    out += "\n";
    out += render_cells({"common", "only_a", "only_b", "flips A-ok", "flips B-ok",
                      "pairs", "b_lower", "ties", "b_higher", "mean delta",
                      "median delta", "sign-test p"},
                     format);
    out += md_separator_row(12);
    out += render_cells(
        {std::to_string(cmp.common), std::to_string(cmp.only_a),
         std::to_string(cmp.only_b), std::to_string(cmp.success_flips_ab),
         std::to_string(cmp.success_flips_ba), std::to_string(cmp.pairs),
         std::to_string(cmp.b_lower), std::to_string(cmp.ties),
         std::to_string(cmp.b_higher), fmt_stat(cmp.mean_delta),
         fmt_stat(cmp.median_delta), fmt_rate(cmp.sign_test_p)},
        format);
    bool any = false;
    for (const PairedRow& pair : cmp.rows) {
      if (!pair.delta || *pair.delta == 0) continue;
      if (!any) {
        out += "\nChanged pairs (fingerprint order):\n\n";
        out += render_cells({"fp", "spec", "a", "b", "delta"}, format);
        out += md_separator_row(5);
        any = true;
      }
      out += render_cells({hex_u64(pair.fingerprint), to_json(pair.spec).dump(),
                        sample_text(pair.sample_a), sample_text(pair.sample_b),
                        fmt_stat(*pair.delta)},
                       format);
    }
    return out;
  }

  // CSV: one line per common row (including ties — plot-ready).
  out += render_cells({"fp", "success_a", "success_b", "a", "b", "delta"}, format);
  for (const PairedRow& pair : cmp.rows) {
    out += render_cells({hex_u64(pair.fingerprint),
                      pair.success_a ? "1" : "0", pair.success_b ? "1" : "0",
                      sample_text(pair.sample_a), sample_text(pair.sample_b),
                      pair.delta ? fmt_stat(*pair.delta) : std::string("-")},
                     format);
  }
  return out;
}

}  // namespace dring::core
