// Property sweeps: the paper's correctness conditions checked over a
// large randomized scenario matrix.
//
// For every terminating algorithm, under its stated assumptions, for every
// scenario in (ring sizes x adversary families x seeds x placements x
// orientations):
//
//   P1  the ring is explored;
//   P2  no agent enters the terminal state before exploration is complete;
//   P3  the termination discipline matches the theorem (explicit for
//       FSYNC, >= 1 agent for SSYNC partial termination);
//   P4  the engine's model invariants hold (no verifier findings);
//   P5  runs are deterministic functions of the scenario.
//
// Unconscious protocols are checked for P1/P4 plus "nobody halts".
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/runner.hpp"
#include "util/rng.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;

struct Scenario {
  AlgorithmId algorithm;
  NodeId n;
  int adversary_kind;  // 0 static, 1 fixed-edge, 2 random, 3 targeted,
                       // 4 rotation (SSYNC only; static for FSYNC)
  std::uint64_t seed;
};

std::string scenario_name(const Scenario& s) {
  static const char* kAdversaries[] = {"static", "fixed", "random",
                                       "targeted", "rotation"};
  std::ostringstream ss;
  ss << algo::info(s.algorithm).name << "/n" << s.n << "/"
     << kAdversaries[s.adversary_kind] << "/s" << s.seed;
  return ss.str();
}

std::unique_ptr<sim::Adversary> make_adversary(const Scenario& s,
                                               bool ssync) {
  switch (s.adversary_kind) {
    case 1:
      return std::make_unique<adversary::FixedEdgeAdversary>(
          static_cast<EdgeId>(s.seed % s.n));
    case 2:
      return std::make_unique<adversary::RandomAdversary>(0.55, 0.65,
                                                          s.seed * 2654435761);
    case 3:
      return std::make_unique<adversary::TargetedRandomAdversary>(
          0.7, 0.6, s.seed * 40503 + s.n);
    case 4:
      if (ssync)
        return std::make_unique<adversary::RotationActivationAdversary>(2);
      return std::make_unique<sim::NullAdversary>();
    default:
      return std::make_unique<sim::NullAdversary>();
  }
}

/// Randomize placements/orientations from the scenario seed, respecting
/// the algorithm's requirements (chirality; start-at-landmark).
void randomize(core::ExplorationConfig& cfg, const Scenario& s) {
  const algo::AlgorithmInfo& meta = algo::info(s.algorithm);
  util::Rng rng(s.seed * 11400714819323198485ULL + s.n);
  if (s.algorithm != AlgorithmId::StartFromLandmarkNoChirality) {
    for (auto& start : cfg.start_nodes)
      start = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(s.n)));
  }
  if (!meta.needs_chirality) {
    for (auto& o : cfg.orientations)
      o = rng.chance(0.5) ? agent::kChiralOrientation
                          : agent::kMirroredOrientation;
  }
}

sim::RunResult run_scenario(const Scenario& s) {
  const algo::AlgorithmInfo& meta = algo::info(s.algorithm);
  core::ExplorationConfig cfg = core::default_config(s.algorithm, s.n);
  randomize(cfg, s);
  // Generous budget: covers the Theorem 7/8 O(n log n) constants and the
  // quadratic SSYNC move bounds.
  cfg.stop.max_rounds =
      200'000LL + 200LL * algo::no_chirality_time_bound(s.n);
  auto adv = make_adversary(s, sim::is_ssync(meta.model));
  return core::run_exploration(cfg, adv.get());
}

class TerminatingSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(TerminatingSweep, CorrectnessProperties) {
  const Scenario& s = GetParam();
  const algo::AlgorithmInfo& meta = algo::info(s.algorithm);
  const sim::RunResult r = run_scenario(s);
  const std::string name = scenario_name(s);

  EXPECT_TRUE(r.explored) << name << " (" << r.stop_reason << ")";     // P1
  EXPECT_FALSE(r.premature_termination) << name;                       // P2
  if (meta.model == sim::Model::FSYNC) {                               // P3
    EXPECT_TRUE(r.all_terminated) << name;
  } else {
    EXPECT_GE(r.terminated_agents, 1) << name;
  }
  EXPECT_TRUE(r.violations.empty()) << name;                           // P4
}

class UnconsciousSweep2 : public ::testing::TestWithParam<Scenario> {};

TEST_P(UnconsciousSweep2, ExploresWithoutHalting) {
  const Scenario& s = GetParam();
  const sim::RunResult r = run_scenario(s);
  const std::string name = scenario_name(s);
  EXPECT_TRUE(r.explored) << name << " (" << r.stop_reason << ")";
  EXPECT_EQ(r.terminated_agents, 0) << name;
  EXPECT_TRUE(r.violations.empty()) << name;
}

TEST_P(TerminatingSweep, Deterministic) {  // P5
  const Scenario& s = GetParam();
  if (s.seed % 3 != 0) GTEST_SKIP() << "determinism spot-check subset";
  const sim::RunResult a = run_scenario(s);
  const sim::RunResult b = run_scenario(s);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.terminated_agents, b.terminated_agents);
}

std::vector<Scenario> terminating_matrix() {
  std::vector<Scenario> out;
  const AlgorithmId algos[] = {
      AlgorithmId::KnownNNoChirality,
      AlgorithmId::LandmarkWithChirality,
      AlgorithmId::StartFromLandmarkNoChirality,
      AlgorithmId::LandmarkNoChirality,
      AlgorithmId::PTBoundWithChirality,
      AlgorithmId::PTLandmarkWithChirality,
      AlgorithmId::PTBoundNoChirality,
      AlgorithmId::PTLandmarkNoChirality,
      AlgorithmId::ETBoundNoChirality,
  };
  const NodeId sizes[] = {4, 7, 12};
  std::uint64_t seed = 1;
  for (const AlgorithmId a : algos)
    for (const NodeId n : sizes)
      for (int adv = 0; adv <= 4; ++adv)
        out.push_back({a, n, adv, seed++});
  return out;
}

std::vector<Scenario> unconscious_matrix() {
  std::vector<Scenario> out;
  const AlgorithmId algos[] = {AlgorithmId::UnconsciousExploration,
                               AlgorithmId::ETUnconscious};
  const NodeId sizes[] = {4, 7, 12, 19};
  std::uint64_t seed = 1000;
  for (const AlgorithmId a : algos)
    for (const NodeId n : sizes)
      for (int adv = 0; adv <= 4; ++adv)
        out.push_back({a, n, adv, seed++});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, TerminatingSweep,
                         ::testing::ValuesIn(terminating_matrix()),
                         [](const auto& info) {
                           std::string name = scenario_name(info.param);
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

INSTANTIATE_TEST_SUITE_P(Matrix, UnconsciousSweep2,
                         ::testing::ValuesIn(unconscious_matrix()),
                         [](const auto& info) {
                           std::string name = scenario_name(info.param);
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
}  // namespace dring
