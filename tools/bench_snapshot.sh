#!/usr/bin/env bash
# Engine perf-trajectory snapshot.
#
# Runs the engine microbenches (bench_engine_perf) in google-benchmark JSON
# mode and folds the numbers into BENCH_engine.json at the repo root:
#
#   {
#     "baseline":  { "<bench>": {"real_time_ns", "items_per_second"}, ... },
#     "current":   { ... same shape, freshly measured ... },
#     "speedup_vs_baseline": { "<bench>": <baseline_time / current_time> }
#   }
#
# "baseline" is sticky: it is carried over from the existing file so the
# trajectory is always measured against the recorded reference (the
# pre-overhaul seed engine, captured in PR 1). Pass --rebaseline to promote
# the fresh run to the new baseline (do this when intentionally moving the
# reference point, e.g. after a hardware change).
#
# Usage: tools/bench_snapshot.sh [--build-dir DIR] [--rebaseline]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
REBASELINE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --rebaseline) REBASELINE=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

BIN="$BUILD_DIR/bench_engine_perf"
if [[ ! -x "$BIN" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT"
  cmake --build "$BUILD_DIR" -j --target bench_engine_perf
fi
# Fail loudly rather than fold an empty run into BENCH_engine.json: the
# binary can still be missing after the build attempt (e.g. the build dir
# was configured with -DDRING_BUILD_BENCHES=OFF, or the build failed in a
# way the caller ignored).
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is missing or not executable after the build attempt" >&2
  echo "       (configure with -DDRING_BUILD_BENCHES=ON and re-run)" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BIN" \
  --benchmark_filter='RoundsPerSecondRaw|ManyAgentsSnapshot' \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$RAW"

RAW="$RAW" OUT="$ROOT/BENCH_engine.json" REBASELINE="$REBASELINE" python3 - <<'EOF'
import json, os, sys

raw = json.load(open(os.environ["RAW"]))
out_path = os.environ["OUT"]
rebaseline = os.environ["REBASELINE"] == "1"

current = {
    b["name"]: {
        "real_time_ns": round(b["real_time"], 2),
        "items_per_second": round(b.get("items_per_second", 0.0), 1),
    }
    for b in raw["benchmarks"]
}

# A partial snapshot is worse than no snapshot: if the filter matched
# nothing (renamed benches, wrong binary), abort before touching the file.
expected = ("RoundsPerSecondRaw", "ManyAgentsSnapshot")
for fragment in expected:
    if not any(fragment in name for name in current):
        sys.exit(
            f"error: no '{fragment}' benchmarks in the run — refusing to "
            f"write a partial {out_path} (got: {sorted(current) or 'nothing'})"
        )

existing = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        existing = json.load(f)

baseline = existing.get("baseline")
if rebaseline or not baseline:
    baseline = current

speedup = {
    name: round(baseline[name]["real_time_ns"] / current[name]["real_time_ns"], 2)
    for name in current
    if name in baseline and current[name]["real_time_ns"] > 0
}

doc = {
    "comment": "Engine perf trajectory; regenerate with tools/bench_snapshot.sh. "
               "baseline = pre-overhaul seed engine unless --rebaseline was used.",
    "baseline": baseline,
    "current": current,
    "speedup_vs_baseline": speedup,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
for name, s in sorted(speedup.items()):
    print(f"  {name}: {s}x vs baseline")
EOF
