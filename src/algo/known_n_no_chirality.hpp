// Algorithm KnownNNoChirality (paper, Figure 1 / Theorem 3).
//
// FSYNC, two anonymous agents, no chirality, known upper bound N >= n.
// Explores a 1-interval connected ring and explicitly terminates at round
// 3N - 6.
//
//   Init:    Explore(left | (Ttime >= 2N-4 and Btime = N-1) or failed:
//                            Bounce;
//                           catches: Bounce; caught: Forward;
//                           Ttime >= 2N-4: Forward)
//   Bounce:  Explore(right | Ttime >= 3N-6: Terminate)
//   Forward: Explore(left  | Ttime >= 3N-6: Terminate)
#pragma once

#include "agent/explore_base.hpp"

namespace dring::algo {

class KnownNNoChirality final
    : public agent::CloneableMachine<KnownNNoChirality> {
 public:
  enum State : int { Init, Bounce, Forward };

  /// `k` must carry an upper bound N >= n.
  explicit KnownNNoChirality(agent::Knowledge k);

  std::string algorithm_name() const override { return "KnownNNoChirality"; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int state) const override;

 private:
  std::int64_t bound_n_;  // N
};

}  // namespace dring::algo
