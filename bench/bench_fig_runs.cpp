// Reproduces the paper's execution figures as concrete simulated runs:
//
//   * Figure 12: both agents leave the landmark in opposite directions,
//     bounce on the same missing edge, return to the landmark
//     simultaneously and terminate from state AtLandmarkL.
//   * Figure 15: the PT bounce/reverse run — the chaser's left leg grows
//     by one node per Bounce-Reverse cycle (delta grows at each bounce).
//   * Figure 16: the Theorem 13 phase adversary — window shifts by one
//     node per phase while the chaser shuttles across it.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main() {
  // --- Figure 12 --------------------------------------------------------------
  std::cout << "=== Figure 12: termination from state AtLandmark ===\n\n";
  {
    const NodeId n = 7;  // odd: both agents reach the antipodal edge together
    core::ExplorationConfig cfg = core::default_config(
        algo::AlgorithmId::StartFromLandmarkNoChirality, n);
    cfg.orientations = {agent::kChiralOrientation,
                        agent::kMirroredOrientation};
    cfg.engine.record_trace = true;
    cfg.stop.max_rounds = 100;
    // Remove the antipodal edge exactly while both agents press on it.
    adversary::ScriptedEdgeAdversary adv([&](Round r) -> std::optional<EdgeId> {
      return (r >= (n - 1) / 2 && r <= (n - 1) / 2 + 2)
                 ? std::optional<EdgeId>((n - 1) / 2)
                 : std::nullopt;
    });
    auto engine = core::make_engine(cfg, &adv);
    const sim::RunResult r = engine->run(cfg.stop);

    util::Table t({"round", "missing", "agent a (node, state)",
                   "agent b (node, state)"});
    for (const sim::RoundTrace& rt : engine->trace()) {
      t.add_row({std::to_string(rt.round),
                 rt.missing ? std::to_string(*rt.missing) : "-",
                 std::to_string(rt.agents[0].node) + " " +
                     rt.agents[0].state,
                 std::to_string(rt.agents[1].node) + " " +
                     rt.agents[1].state});
    }
    t.print(std::cout);
    std::cout << "explored=" << (r.explored ? "yes" : "NO")
              << ", both terminated="
              << (r.all_terminated ? "yes" : "NO")
              << ", premature=" << (r.premature_termination ? "YES" : "no")
              << "  (both agents bounced on edge " << (n - 1) / 2
              << " and met again at the landmark)\n";
  }

  // --- Figure 15 --------------------------------------------------------------
  std::cout << "\n=== Figure 15: delta grows at each Bounce-Reverse of the "
               "chaser ===\n\n";
  {
    const NodeId n = 14;
    const NodeId x = n / 2;
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.record_trace = true;
    cfg.engine.fairness_window = 1 << 20;
    cfg.stop.max_rounds = 40'000;
    cfg.stop.stop_when_explored_and_one_terminated = true;
    adversary::SlidingWindowAdversary adv(0, 1);
    auto engine = core::make_engine(cfg, &adv);
    const sim::RunResult r = engine->run(cfg.stop);

    // Reconstruct the chaser's legs from its state changes in the trace.
    util::Table t({"leg#", "chaser state", "leg length (moves)"});
    std::string cur_state;
    long long leg = 0;
    int leg_no = 0;
    NodeId prev_node = -1;
    bool first = true;
    for (const sim::RoundTrace& rt : engine->trace()) {
      const sim::AgentTrace& ch = rt.agents[1];
      if (first) {
        cur_state = ch.state;
        prev_node = ch.node;
        first = false;
        continue;
      }
      if (ch.node != prev_node) ++leg;
      prev_node = ch.node;
      if (ch.state != cur_state || ch.terminated) {
        if (leg > 0)
          t.add_row({std::to_string(++leg_no), cur_state,
                     std::to_string(leg)});
        cur_state = ch.state;
        leg = 0;
        if (ch.terminated) break;
      }
    }
    t.print(std::cout);
    std::cout << "total moves=" << r.total_moves
              << ", terminated=" << r.terminated_agents << "/2"
              << "  (each left leg is one node longer than the previous "
                 "right leg, so the rightSteps >= leftSteps termination "
                 "check never fires early)\n";
  }

  // --- Figure 16 --------------------------------------------------------------
  std::cout << "\n=== Figure 16: the Theorem 13 window dance (first phases) "
               "===\n\n";
  {
    const NodeId n = 10;
    const NodeId x = n / 2;
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.record_trace = true;
    cfg.engine.fairness_window = 1 << 20;
    cfg.stop.max_rounds = 60;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
    adversary::SlidingWindowAdversary adv(0, 1);
    auto engine = core::make_engine(cfg, &adv);
    engine->run(cfg.stop);

    util::Table t({"round", "missing edge", "leader (node, on-port?)",
                   "chaser (node, state)"});
    for (const sim::RoundTrace& rt : engine->trace()) {
      t.add_row(
          {std::to_string(rt.round),
           rt.missing ? std::to_string(*rt.missing) : "-",
           std::to_string(rt.agents[0].node) +
               (rt.agents[0].on_port ? " [port]" : ""),
           std::to_string(rt.agents[1].node) + " " + rt.agents[1].state});
    }
    t.print(std::cout);
    std::cout << "window shifts so far: " << adv.shifts()
              << "  (the leader is passively transported one node per "
                 "phase, exactly when the chaser is blocked at the other "
                 "window boundary)\n";
  }
  return 0;
}
