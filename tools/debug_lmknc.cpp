// Scratch debug driver (not part of the library build): find failing
// LandmarkNoChirality scenarios from the Table 2 sweep.
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"

using namespace dring;

int main() {
  for (NodeId n : {5, 6, 8, 11, 16, 24, 32}) {
    for (int seed = 0; seed <= 4; ++seed) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::LandmarkNoChirality, n);
      cfg.stop.max_rounds = 100000LL * n + 1000;
      std::unique_ptr<sim::Adversary> adv;
      if (seed == 0) {
        adv = std::make_unique<sim::NullAdversary>();
      } else if (seed == 1) {
        adv = std::make_unique<adversary::BlockAgentAdversary>(0);
      } else {
        adv = std::make_unique<adversary::TargetedRandomAdversary>(
            0.7, 1.0, 1000 * n + seed);
      }
      const sim::RunResult r = core::run_exploration(cfg, adv.get());
      const bool ok = r.explored && !r.premature_termination &&
                      r.all_terminated && r.violations.empty();
      if (!ok) {
        std::cout << "FAIL n=" << n << " seed=" << seed
                  << " explored=" << r.explored
                  << " premature=" << r.premature_termination
                  << " terminated=" << r.terminated_agents << "/2"
                  << " rounds=" << r.rounds << " stop=" << r.stop_reason;
        for (const auto& a : r.agents)
          std::cout << " | a" << a.id << " state=" << a.final_state
                    << " node=" << a.final_node << " term@"
                    << a.termination_round;
        std::cout << "\n";
      }
    }
  }
  return 0;
}
