// White-box unit tests for the ExploreMachine framework: counter
// semantics (Ttime/Etime/Esteps/Btime/Ntime/Tnodes), wait-event
// detection, per-Explore resets, ExploreNoResetEsteps, landmark size
// learning, transition semantics (D12) and the predicates.
#include <gtest/gtest.h>

#include "agent/explore_base.hpp"

namespace dring::agent {
namespace {

/// Minimal machine: state 0 walks left; guard on `flag_` goes to state 1
/// (which walks right); used to poke the framework from outside.
class ProbeMachine final : public CloneableMachine<ProbeMachine> {
 public:
  ProbeMachine() : CloneableMachine(Knowledge{}, 0) {}

  std::string algorithm_name() const override { return "ProbeMachine"; }

  // Knobs and windows for the test.
  bool go_state1 = false;
  bool keep_esteps_on_transition = false;
  bool terminate_now = false;
  using ExploreMachine::counters;
  using ExploreMachine::n_known;
  using ExploreMachine::known_size;
  std::int64_t waits() const { return wait_events(); }
  bool entered_flag_seen = false;

 protected:
  StepResult run_state(int state, const Snapshot& snap) override {
    if (terminate_now) return StepResult::terminate();
    if (state == 0) {
      if (!just_entered() && go_state1) {
        go_state1 = false;
        if (keep_esteps_on_transition) suppress_esteps_reset_once();
        return StepResult::go(1);
      }
      if (catches(snap, Dir::Left)) entered_flag_seen = true;
      return StepResult::move(Dir::Left);
    }
    // State 1.
    if (just_entered()) entered_flag_seen = true;
    return StepResult::move(Dir::Right);
  }
};

Feedback moved_fb(Dir d) {
  Feedback fb;
  fb.attempted_move = true;
  fb.attempted_dir = d;
  fb.port_acquired = true;
  fb.moved = true;
  return fb;
}

Feedback blocked_fb(Dir d) {
  Feedback fb;
  fb.attempted_move = true;
  fb.attempted_dir = d;
  fb.port_acquired = true;
  fb.moved = false;
  return fb;
}

Feedback failed_fb(Dir d) {
  Feedback fb;
  fb.attempted_move = true;
  fb.attempted_dir = d;
  fb.port_acquired = false;
  return fb;
}

TEST(ExploreMachine, TtimeCountsCompletedActivations) {
  ProbeMachine m;
  EXPECT_EQ(m.counters().Ttime, 0);
  m.on_activate({}, {});
  EXPECT_EQ(m.counters().Ttime, 1);
  m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(m.counters().Ttime, 2);
}

TEST(ExploreMachine, StepsAndNetTrackMovement) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate({}, moved_fb(Dir::Right));
  const Counters& c = m.counters();
  EXPECT_EQ(c.Tsteps, 3);
  EXPECT_EQ(c.net, 1);       // +1 +1 -1
  EXPECT_EQ(c.max_net, 2);
  EXPECT_EQ(c.min_net, 0);
  EXPECT_EQ(c.Tnodes(), 3);  // nodes at displacement 0, 1, 2
}

TEST(ExploreMachine, TransportCountsAsStep) {
  ProbeMachine m;
  m.on_activate({}, {});
  Feedback fb;
  fb.transported = true;
  fb.transport_dir = Dir::Left;
  m.on_activate({}, fb);
  EXPECT_EQ(m.counters().Tsteps, 1);
  EXPECT_EQ(m.counters().net, 1);
}

TEST(ExploreMachine, BtimeAccumulatesOnlyWhileBlocked) {
  ProbeMachine m;
  m.on_activate({}, {});
  EXPECT_EQ(m.counters().Btime, 0);
  m.on_activate({}, blocked_fb(Dir::Left));
  EXPECT_EQ(m.counters().Btime, 1);
  m.on_activate({}, blocked_fb(Dir::Left));
  EXPECT_EQ(m.counters().Btime, 2);
  m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(m.counters().Btime, 0);
}

TEST(ExploreMachine, FailedAcquisitionIsNotBlocked) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, failed_fb(Dir::Left));
  EXPECT_EQ(m.counters().Btime, 0);  // mutex loss != blocked on a port
  EXPECT_EQ(m.waits(), 0);
}

TEST(ExploreMachine, WaitEventsCountMaximalBlockedRuns) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, blocked_fb(Dir::Left));   // wait #1 starts
  m.on_activate({}, blocked_fb(Dir::Left));   // same wait
  EXPECT_EQ(m.waits(), 1);
  m.on_activate({}, moved_fb(Dir::Left));     // released
  m.on_activate({}, blocked_fb(Dir::Left));   // wait #2
  EXPECT_EQ(m.waits(), 2);
}

TEST(ExploreMachine, DirectionChangeStartsNewWaitEvent) {
  // Blocked left, then immediately blocked right (flip while waiting):
  // two distinct wait events even without an unblocked round between.
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, blocked_fb(Dir::Left));
  m.on_activate({}, blocked_fb(Dir::Right));
  EXPECT_EQ(m.waits(), 2);
}

TEST(ExploreMachine, EtimeEstepsResetOnTransition) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(m.counters().Esteps, 2);
  EXPECT_EQ(m.counters().Etime, 3);
  m.go_state1 = true;
  m.on_activate({}, moved_fb(Dir::Left));  // ingest (Esteps->3), then goto
  EXPECT_EQ(m.state(), 1);
  EXPECT_EQ(m.counters().Esteps, 0);
  EXPECT_EQ(m.counters().Etime, 1);  // the entry activation counts as one
}

TEST(ExploreMachine, SuppressEstepsResetOnce) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate({}, moved_fb(Dir::Left));
  m.go_state1 = true;
  m.keep_esteps_on_transition = true;
  m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(m.state(), 1);
  EXPECT_EQ(m.counters().Esteps, 3);  // kept (ExploreNoResetEsteps)
  EXPECT_EQ(m.counters().Etime, 1);   // Etime still reset
}

TEST(ExploreMachine, JustEnteredVisibleOnlyInEntryActivation) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.go_state1 = true;
  m.entered_flag_seen = false;
  m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_TRUE(m.entered_flag_seen);  // state 1 saw just_entered
  m.entered_flag_seen = false;
  m.on_activate({}, moved_fb(Dir::Right));
  EXPECT_FALSE(m.entered_flag_seen);  // cleared on the next activation
}

TEST(ExploreMachine, LandmarkLoopTeachesSize) {
  ProbeMachine m;
  Snapshot lm;
  lm.is_landmark = true;
  // First sighting of the landmark.
  m.on_activate(lm, {});
  EXPECT_FALSE(m.n_known());
  // Walk left 5 times, arriving back at the landmark.
  for (int i = 0; i < 4; ++i) m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate(lm, moved_fb(Dir::Left));
  EXPECT_TRUE(m.n_known());
  EXPECT_EQ(m.known_size(), 5);
}

TEST(ExploreMachine, BacktrackToLandmarkTeachesNothing) {
  ProbeMachine m;
  Snapshot lm;
  lm.is_landmark = true;
  m.on_activate(lm, {});
  m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate({}, moved_fb(Dir::Right));  // net back to 0
  m.on_activate(lm, {});                    // at landmark, net == ref
  EXPECT_FALSE(m.n_known());
}

TEST(ExploreMachine, NtimeCountsFromLearning) {
  ProbeMachine m;
  Snapshot lm;
  lm.is_landmark = true;
  m.on_activate(lm, {});
  for (int i = 0; i < 2; ++i) m.on_activate({}, moved_fb(Dir::Left));
  m.on_activate(lm, moved_fb(Dir::Left));  // learns n = 3 here
  EXPECT_EQ(m.counters().Ntime, 1);        // ticked at end of this activation
  m.on_activate({}, {});
  EXPECT_EQ(m.counters().Ntime, 2);
}

TEST(ExploreMachine, ExactKnowledgeSetsSizeUpFront) {
  Knowledge k;
  k.exact_n = 7;
  class WithN final : public CloneableMachine<WithN> {
   public:
    explicit WithN(Knowledge k) : CloneableMachine(k, 0) {}
    std::string algorithm_name() const override { return "WithN"; }
    using ExploreMachine::known_size;
    using ExploreMachine::n_known;

   protected:
    StepResult run_state(int, const Snapshot&) override {
      return StepResult::stay();
    }
  } m(k);
  EXPECT_TRUE(m.n_known());
  EXPECT_EQ(m.known_size(), 7);
}

TEST(ExploreMachine, TerminatedMachineStaysPut) {
  ProbeMachine m;
  m.terminate_now = true;
  const Intent it = m.on_activate({}, {});
  EXPECT_EQ(it.kind, Intent::Kind::Terminate);
  EXPECT_TRUE(m.terminated());
  EXPECT_EQ(m.state_name(), "Terminate");
  // Further activations are inert.
  const Intent again = m.on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(again.kind, Intent::Kind::Stay);
  EXPECT_EQ(m.counters().Tsteps, 0);  // feedback not even ingested
}

TEST(ExploreMachine, CloneIsDeepAndIndependent) {
  ProbeMachine m;
  m.on_activate({}, {});
  m.on_activate({}, moved_fb(Dir::Left));
  auto clone = m.clone();
  // Advancing the clone must not affect the original.
  clone->on_activate({}, moved_fb(Dir::Left));
  EXPECT_EQ(m.counters().Tsteps, 1);
  EXPECT_EQ(m.counters().Ttime, 2);
}

TEST(ExploreMachine, MeetingRequiresFreshArrival) {
  ProbeMachine m;
  m.on_activate({}, {});
  Snapshot with_other;
  with_other.others_in_node = 1;

  class MeetProbe final : public CloneableMachine<MeetProbe> {
   public:
    MeetProbe() : CloneableMachine(Knowledge{}, 0) {}
    std::string algorithm_name() const override { return "MeetProbe"; }
    bool met = false;

   protected:
    StepResult run_state(int, const Snapshot& snap) override {
      met = meeting(snap);
      return StepResult::stay();
    }
  } probe;
  // Standing together without having moved: not a meeting (D6).
  probe.on_activate(with_other, {});
  EXPECT_FALSE(probe.met);
  // Arriving by a move into an occupied node: meeting.
  probe.on_activate(with_other, moved_fb(Dir::Left));
  EXPECT_TRUE(probe.met);
  // Arriving by passive transport also counts.
  Feedback tr;
  tr.transported = true;
  tr.transport_dir = Dir::Right;
  probe.on_activate(with_other, tr);
  EXPECT_TRUE(probe.met);
}

}  // namespace
}  // namespace dring::agent
