#!/usr/bin/env bash
# Engine perf-trajectory snapshot.
#
# Runs the engine microbenches (bench_engine_perf) in google-benchmark JSON
# mode and folds the numbers into BENCH_engine.json at the repo root:
#
#   {
#     "baseline":  { "<bench>": {"real_time_ns", "items_per_second"}, ... },
#     "current":   { ... same shape, freshly measured ... },
#     "speedup_vs_baseline": { "<bench>": <baseline_time / current_time> },
#     "history":   [ {"engine", "date", "marks": { ... }}, ... ]
#   }
#
# "baseline" is sticky: it is carried over from the existing file so the
# trajectory is always measured against the recorded reference (the
# pre-overhaul seed engine, captured in PR 1). Pass --rebaseline to promote
# the fresh run to the new baseline (do this when intentionally moving the
# reference point, e.g. after a hardware change). Rebaselines no longer
# discard the prior trajectory: the retired "current" marks are appended to
# the "history" array (stamped with the engine version from
# src/core/version.hpp and today's UTC date), which dring_metrics --bench
# and the trend dashboard (dring_dashboard) render as rebaseline eras.
#
# --check turns the snapshot into a CI perf gate: measure, compare against
# the committed "current" entries in BENCH_engine.json, and exit 1 if any
# benchmark's time regressed by more than the tolerance (default 10%,
# override with --tolerance FRAC). Check mode never rewrites the file, so
# the committed trajectory only moves when a developer runs the snapshot
# deliberately. Every benchmark's signed % delta is printed either way;
# on failure the per-benchmark deltas are also written as JSON to
# $BUILD_DIR/bench_delta.json so CI logs and tooling get the same numbers.
#
# Noise handling: each benchmark runs 3 repetitions; the snapshot records
# the median, the gate compares the min, and a failed compare re-measures
# only the regressed benchmarks (up to 2 retries, time-separated) before
# failing for real. See the inline comments at each step.
#
# Usage: tools/bench_snapshot.sh [--build-dir DIR] [--rebaseline]
#                                [--check] [--tolerance FRAC]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
REBASELINE=0
CHECK=0
TOLERANCE=0.10
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --rebaseline) REBASELINE=1; shift ;;
    --check) CHECK=1; shift ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ "$CHECK" == 1 && "$REBASELINE" == 1 ]]; then
  echo "error: --check and --rebaseline are mutually exclusive" >&2
  exit 2
fi

BIN="$BUILD_DIR/bench_engine_perf"
if [[ ! -x "$BIN" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT"
  cmake --build "$BUILD_DIR" -j --target bench_engine_perf
fi
# Fail loudly rather than fold an empty run into BENCH_engine.json: the
# binary can still be missing after the build attempt (e.g. the build dir
# was configured with -DDRING_BUILD_BENCHES=OFF, or the build failed in a
# way the caller ignored).
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is missing or not executable after the build attempt" >&2
  echo "       (configure with -DDRING_BUILD_BENCHES=ON and re-run)" >&2
  exit 1
fi

# Three repetitions per benchmark: the snapshot records the MEDIAN (a
# representative value with headroom) while --check compares the MIN (the
# least noise-inflated estimate). On shared/frequency-scaled hardware a
# single run can swing 30% either way; the median-vs-min asymmetry keeps
# the gate quiet through clock phases while a real regression still lifts
# the min past the tolerance.
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BIN" \
  --benchmark_filter='RoundsPerSecondRaw|ManyAgentsSnapshot|BatchRoundsPerSecond|QueryCacheLookup|StreamingFold|QueryAggregate' \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_format=json > "$RAW"

if [[ "$CHECK" == 1 ]]; then
  # Compare the min across every raw file gathered so far against the
  # committed medians.  On a sustained-slow machine phase a whole run can
  # measure 30-50% high, so a failed compare retries JUST the regressed
  # benchmarks after a pause and min-merges the new samples in — two
  # time-separated slow phases in a row is what it takes to fail the gate
  # spuriously.  Python exit code 3 = regression (retryable); anything
  # else is a configuration error and aborts immediately.
  RAWS="$RAW"
  ATTEMPT=0
  MAX_RETRIES=2
  while :; do
    set +e
    RAWS="$RAWS" OUT="$ROOT/BENCH_engine.json" TOLERANCE="$TOLERANCE" \
      DELTA="$BUILD_DIR/bench_delta.json" python3 - <<'EOF'
import json, os, sys

out_path = os.environ["OUT"]
delta_path = os.environ["DELTA"]
tolerance = float(os.environ["TOLERANCE"])

if not os.path.exists(out_path):
    print(f"error: --check needs a committed {out_path} to compare against",
          file=sys.stderr)
    sys.exit(1)
committed = json.load(open(out_path)).get("current", {})

# Min over every repetition in every raw file: noise only ever adds
# time, so the smallest observation is the best estimate of the true
# cost for gating purposes.
fresh = {}
for path in os.environ["RAWS"].split(":"):
    raw = json.load(open(path))
    for b in raw["benchmarks"]:
        if (b.get("run_type", "iteration") != "iteration"
                or "real_time" not in b):
            continue
        fresh[b["name"]] = min(fresh.get(b["name"], float("inf")),
                               b["real_time"])

shared = sorted(set(fresh) & set(committed))
if not shared:
    print("error: no benchmark names in common between the run and "
          f"{out_path} (run: {sorted(fresh) or 'nothing'})", file=sys.stderr)
    sys.exit(1)

deltas = {}
regressed = []
print(f"perf gate: tolerance {tolerance:.0%} vs committed {out_path}")
for name in shared:
    recorded = committed[name]["real_time_ns"]
    measured = fresh[name]
    ratio = measured / recorded if recorded > 0 else float("inf")
    delta_pct = (ratio - 1.0) * 100.0
    verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
    print(f"  {name}: {measured:.0f}ns vs {recorded:.0f}ns recorded "
          f"({delta_pct:+.1f}%) {verdict}")
    deltas[name] = {
        "recorded_ns": round(recorded, 2),
        "measured_ns": round(measured, 2),
        "delta_pct": round(delta_pct, 2),
        "regressed": verdict != "OK",
    }
    if verdict != "OK":
        regressed.append(name)

if regressed:
    doc = {
        "tolerance_pct": round(tolerance * 100.0, 2),
        "regressed": regressed,
        "benchmarks": deltas,
    }
    with open(delta_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {delta_path}")
    print(f"error: {len(regressed)} benchmark(s) regressed more than "
          f"{tolerance:.0%}: {', '.join(regressed)} — fix the hot path, or "
          "re-run tools/bench_snapshot.sh to move the trajectory "
          "deliberately", file=sys.stderr)
    sys.exit(3)
print("perf gate passed")
EOF
    RC=$?
    set -e
    [[ "$RC" == 0 ]] && exit 0
    [[ "$RC" != 3 ]] && exit "$RC"
    ATTEMPT=$((ATTEMPT + 1))
    [[ "$ATTEMPT" -gt "$MAX_RETRIES" ]] && exit 1
    REGRESSED="$(python3 -c 'import json, sys
print("|".join(json.load(open(sys.argv[1]))["regressed"]))' \
      "$BUILD_DIR/bench_delta.json")"
    echo "retry $ATTEMPT/$MAX_RETRIES: re-measuring regressed benchmark(s)" \
         "after a pause: $REGRESSED" >&2
    sleep 10
    EXTRA="$BUILD_DIR/bench_retry_$ATTEMPT.json"
    "$BIN" \
      --benchmark_filter="^(${REGRESSED})\$" \
      --benchmark_min_time=0.5 \
      --benchmark_repetitions=3 \
      --benchmark_format=json > "$EXTRA"
    RAWS="$RAWS:$EXTRA"
  done
fi

# Engine version for history stamps, straight from the source of truth.
ENGINE="dring-$(awk '/constexpr int kEngineVersion(Major|Minor|Patch) =/ {
  gsub(/;/, ""); v[++n] = $NF } END { print v[1] "." v[2] "." v[3] }' \
  "$ROOT/src/core/version.hpp")"

RAW="$RAW" OUT="$ROOT/BENCH_engine.json" REBASELINE="$REBASELINE" \
  ENGINE="$ENGINE" TODAY="$(date -u +%F)" python3 - <<'EOF'
import json, os, sys

raw = json.load(open(os.environ["RAW"]))
out_path = os.environ["OUT"]
rebaseline = os.environ["REBASELINE"] == "1"

# Median over the repetitions: the recorded trajectory should be a
# representative run, not a lucky fast one (--check compares its min
# against these numbers, so a fast-phase record would make the gate cry
# wolf on every ordinary re-measure).
samples = {}
for b in raw["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration" or "real_time" not in b:
        continue
    samples.setdefault(b["name"], []).append(
        (b["real_time"], b.get("items_per_second", 0.0))
    )

def median_sample(pairs):
    pairs = sorted(pairs)
    return pairs[len(pairs) // 2]

current = {}
for name, pairs in samples.items():
    real_time, items = median_sample(pairs)
    current[name] = {
        "real_time_ns": round(real_time, 2),
        "items_per_second": round(items, 1),
    }

# A partial snapshot is worse than no snapshot: if the filter matched
# nothing (renamed benches, wrong binary), abort before touching the file.
expected = ("RoundsPerSecondRaw", "ManyAgentsSnapshot", "BatchRoundsPerSecond",
            "QueryCacheLookup", "StreamingFold", "QueryAggregate")
for fragment in expected:
    if not any(fragment in name for name in current):
        sys.exit(
            f"error: no '{fragment}' benchmarks in the run — refusing to "
            f"write a partial {out_path} (got: {sorted(current) or 'nothing'})"
        )

existing = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        existing = json.load(f)

baseline = existing.get("baseline")
history = existing.get("history", [])
if rebaseline and existing.get("current"):
    # Keep the trajectory: the marks being retired become a history era
    # instead of vanishing.
    history = history + [{
        "engine": os.environ["ENGINE"],
        "date": os.environ["TODAY"],
        "marks": existing["current"],
    }]
if rebaseline or not baseline:
    baseline = current

speedup = {
    name: round(baseline[name]["real_time_ns"] / current[name]["real_time_ns"], 2)
    for name in current
    if name in baseline and current[name]["real_time_ns"] > 0
}

doc = {
    "comment": "Engine perf trajectory; regenerate with tools/bench_snapshot.sh. "
               "baseline = pre-overhaul seed engine unless --rebaseline was used; "
               "history = trajectories retired by past rebaselines.",
    "baseline": baseline,
    "current": current,
    "history": history,
    "speedup_vs_baseline": speedup,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
for name, s in sorted(speedup.items()):
    print(f"  {name}: {s}x vs baseline")
EOF
