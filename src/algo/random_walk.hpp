// Randomized baseline: a lazy random walker.
//
// The paper's related work (reference [4], Avin-Koucky-Lotker, "How to
// explore a fast-changing world") studies random walks on dynamic graphs;
// they explore 1-interval-connected rings in expected polynomial time but
// give no termination and no worst-case guarantee.  This baseline walker
// lets the ablation bench compare the paper's deterministic protocols
// against the classic randomized approach under identical adversaries.
//
// Policy: each activation, pick left/right uniformly at random (with a
// small probability of re-using the previous direction to model momentum)
// and try to move. Unconscious: never terminates.
#pragma once

#include "agent/explore_base.hpp"
#include "util/rng.hpp"

namespace dring::algo {

class RandomWalk final : public agent::CloneableMachine<RandomWalk> {
 public:
  /// `momentum`: probability of keeping the previous direction instead of
  /// re-flipping the coin (0 = fresh coin every round, 1 = straight line).
  explicit RandomWalk(std::uint64_t seed, double momentum = 0.0);

  std::string algorithm_name() const override { return "RandomWalk"; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int /*state*/) const override { return "Walk"; }

 private:
  util::Rng rng_;
  double momentum_;
  Dir dir_ = Dir::Left;
};

}  // namespace dring::algo
