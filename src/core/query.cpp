#include "core/query.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/telemetry.hpp"

namespace dring::core {

// --- ResultCache -------------------------------------------------------------

ResultCache::ResultCache() {
  store_.provenance = current_provenance();
  build_index();
}

ResultCache::ResultCache(ResultStore store) : store_(std::move(store)) {
  build_index();
}

ResultCache ResultCache::load(const std::vector<std::string>& paths) {
  return ResultCache(load_result_stores(paths));
}

void ResultCache::build_index() {
  sort_canonical(store_.rows);
  // Power-of-two capacity at >= 2x the row count keeps the load factor
  // at or below 0.5, so linear probing stays short and the probe loop
  // always terminates on an empty slot.
  std::size_t capacity = 16;
  while (capacity < store_.rows.size() * 2) capacity <<= 1;
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (std::uint32_t i = 0; i < store_.rows.size(); ++i) {
    std::uint64_t h = store_.rows[i].fingerprint & mask_;
    while (slots_[h] != 0) h = (h + 1) & mask_;
    slots_[h] = i + 1;
  }
}

const CampaignRow* ResultCache::find(std::uint64_t fingerprint) const {
  const CampaignRow* hit = nullptr;
  for (std::uint64_t h = fingerprint & mask_;; h = (h + 1) & mask_) {
    const std::uint32_t slot = slots_[h];
    if (slot == 0) break;
    if (store_.rows[slot - 1].fingerprint == fingerprint) {
      hit = &store_.rows[slot - 1];
      break;
    }
  }
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  if (telemetry().enabled())
    telemetry()
        .metrics()
        .counter(hit ? "query.cache.hits" : "query.cache.misses")
        .add(1);
  return hit;
}

ResultCache::Stats ResultCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

const std::vector<std::string>& ResultCache::column_locked(
    const std::string& axis) const {
  const auto it = columns_.find(axis);
  if (it != columns_.end()) return it->second;
  std::vector<std::string> column;
  column.reserve(store_.rows.size());
  for (const CampaignRow& row : store_.rows)
    column.push_back(axis_value(row, axis));
  return columns_.emplace(axis, std::move(column)).first->second;
}

const std::vector<std::string>& ResultCache::axis_column(
    const std::string& axis) const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  return column_locked(axis);
}

const std::vector<ResultCache::AxisBucket>& ResultCache::axis_buckets(
    const std::string& axis) const {
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  const auto it = buckets_.find(axis);
  if (it != buckets_.end()) return it->second;
  const std::vector<std::string>& column = column_locked(axis);
  std::map<std::string, std::vector<std::uint32_t>> by_value;
  for (std::uint32_t i = 0; i < column.size(); ++i)
    by_value[column[i]].push_back(i);
  std::vector<AxisBucket> buckets;
  buckets.reserve(by_value.size());
  for (auto& [value, rows] : by_value)
    buckets.push_back({value, std::move(rows)});
  // The batch path's numeric-aware group order, so a bucket walk IS the
  // report row order.
  const std::vector<bool> numeric = {axis_is_numeric(axis)};
  std::sort(buckets.begin(), buckets.end(),
            [&numeric](const AxisBucket& a, const AxisBucket& b) {
              return group_key_less({a.value}, {b.value}, numeric);
            });
  return buckets_.emplace(axis, std::move(buckets)).first->second;
}

std::vector<GroupRow> ResultCache::aggregate(
    const std::vector<std::string>& group_keys, Metric metric) const {
  std::vector<std::string> axes;
  axes.reserve(group_keys.size());
  for (const std::string& key : group_keys)
    axes.push_back(canonical_axis(key));

  std::vector<GroupRow> result;
  if (axes.empty()) {
    std::vector<const CampaignRow*> members;
    members.reserve(store_.rows.size());
    for (const CampaignRow& row : store_.rows) members.push_back(&row);
    result.push_back({{}, fold_rows(members, metric)});
    return result;
  }

  if (axes.size() == 1) {
    // Fast path: the pre-bucketed axis index already holds the groups in
    // report order; no per-row key materialization at all.
    for (const AxisBucket& bucket : axis_buckets(axes.front())) {
      std::vector<const CampaignRow*> members;
      members.reserve(bucket.rows.size());
      for (const std::uint32_t i : bucket.rows)
        members.push_back(&store_.rows[i]);
      result.push_back({{bucket.value}, fold_rows(members, metric)});
    }
    return result;
  }

  // Multi-axis: composite keys from the cached per-axis columns (member
  // order stays ascending row index = canonical store order, matching
  // the batch path's iteration order).
  std::vector<const std::vector<std::string>*> columns;
  columns.reserve(axes.size());
  for (const std::string& axis : axes) columns.push_back(&axis_column(axis));
  std::map<std::vector<std::string>, std::vector<const CampaignRow*>> groups;
  for (std::size_t i = 0; i < store_.rows.size(); ++i) {
    std::vector<std::string> key;
    key.reserve(axes.size());
    for (const auto* column : columns) key.push_back((*column)[i]);
    groups[std::move(key)].push_back(&store_.rows[i]);
  }
  std::vector<bool> numeric;
  numeric.reserve(axes.size());
  for (const std::string& axis : axes) numeric.push_back(axis_is_numeric(axis));
  std::vector<std::pair<std::vector<std::string>,
                        std::vector<const CampaignRow*>>>
      ordered(groups.begin(), groups.end());
  std::sort(ordered.begin(), ordered.end(),
            [&numeric](const auto& a, const auto& b) {
              return group_key_less(a.first, b.first, numeric);
            });
  for (auto& [key, members] : ordered)
    result.push_back({std::move(key), fold_rows(members, metric)});
  return result;
}

std::vector<FrontierGroup> ResultCache::frontier(
    const std::vector<std::string>& group_keys, const std::string& axis,
    double threshold) const {
  // The frontier scan is already a single pass over in-memory rows; the
  // cache's win is holding those rows parsed.  Delegating keeps the
  // byte-identity with the batch path trivially true.
  return detect_frontier(store_.rows, group_keys, axis, threshold);
}

std::string ResultCache::store_bytes() const {
  std::string out = provenance_line(store_.provenance) + "\n";
  for (const CampaignRow& row : store_.rows) out += row_line(row) + "\n";
  return out;
}

ResultCache::CellScan ResultCache::scan_cells(
    const std::vector<ScenarioSpec>& specs, int shard_count) const {
  if (shard_count < 1)
    throw std::invalid_argument("scan_cells: shard_count must be >= 1");
  CellScan scan;
  std::set<int> shards;
  for (const ScenarioSpec& spec : specs) {
    const std::uint64_t fp = fingerprint(spec);
    if (const CampaignRow* row = find(fp)) {
      scan.present.push_back(row);
    } else {
      scan.missing.push_back(fp);
      shards.insert(static_cast<int>(fp % static_cast<std::uint64_t>(
                                              shard_count)));
    }
  }
  scan.missing_shards.assign(shards.begin(), shards.end());
  return scan;
}

// --- streaming aggregation ---------------------------------------------------

const std::vector<long long>& streaming_quantile_bounds() {
  static const std::vector<long long> bounds = [] {
    std::vector<long long> b{0};
    for (long long v = 1; v <= (1LL << 40); v <<= 1) b.push_back(v);
    return b;
  }();
  return bounds;
}

double sketch_quantile(const std::vector<long long>& bounds,
                       const std::vector<long long>& counts, long long count,
                       double q) {
  if (count <= 0) return 0.0;
  // The estimated value of the sample at an integer rank (0-based,
  // ascending): find its bucket and spread the bucket's mass linearly
  // over the bucket's value range.
  const auto value_at = [&](long long rank) -> double {
    long long cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (rank < cumulative + counts[i]) {
        double lo, hi;
        if (i == 0) {
          lo = hi = static_cast<double>(bounds.front());
        } else if (i < bounds.size()) {
          lo = static_cast<double>(bounds[i - 1]) + 1.0;
          hi = static_cast<double>(bounds[i]);
        } else {
          // Overflow bucket: clamp to the ladder top.
          lo = hi = static_cast<double>(bounds.back());
        }
        if (counts[i] <= 1) return (lo + hi) / 2.0;
        const double frac = static_cast<double>(rank - cumulative) /
                            static_cast<double>(counts[i] - 1);
        return lo + frac * (hi - lo);
      }
      cumulative += counts[i];
    }
    return static_cast<double>(bounds.back());
  };
  const double pos = q * static_cast<double>(count - 1);
  const long long lo_rank = static_cast<long long>(pos);
  const long long hi_rank = std::min(lo_rank + 1, count - 1);
  const double frac = pos - static_cast<double>(lo_rank);
  const double lo = value_at(lo_rank);
  return lo + frac * (value_at(hi_rank) - lo);
}

StreamingAggregator::StreamingAggregator(
    const std::vector<std::string>& group_keys, Metric metric)
    : metric_(metric) {
  group_keys_.reserve(group_keys.size());
  for (const std::string& key : group_keys)
    group_keys_.push_back(canonical_axis(key));
}

void StreamingAggregator::add(const CampaignRow& row) {
  std::vector<std::string> key;
  key.reserve(group_keys_.size());
  for (const std::string& axis : group_keys_)
    key.push_back(axis_value(row, axis));
  Cell& cell = cells_[std::move(key)];

  cell.runs += 1;
  if (row_success(row)) cell.successes += 1;
  if (row.outcome.premature_termination) cell.premature += 1;
  cell.violations += row.outcome.violations;
  if (const std::optional<double> s = metric_sample(row, metric_)) {
    if (cell.samples == 0) {
      cell.min = *s;
      cell.max = *s;
    } else {
      cell.min = std::min(cell.min, *s);
      cell.max = std::max(cell.max, *s);
    }
    cell.samples += 1;
    // Metric samples are integral-valued, so these sums are exact (up to
    // 2^53) for ANY arrival order — that is what makes the streaming
    // mean/min/max bit-identical to the batch fold.
    cell.sum += *s;
    cell.sum_sq += *s * *s;
    const std::vector<long long>& bounds = streaming_quantile_bounds();
    if (cell.bucket_counts.empty())
      cell.bucket_counts.assign(bounds.size() + 1, 0);
    const long long v = static_cast<long long>(*s);
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    const std::size_t idx =
        it == bounds.end() ? bounds.size()
                           : static_cast<std::size_t>(it - bounds.begin());
    cell.bucket_counts[idx] += 1;
  }
  folded_ += 1;
}

void StreamingAggregator::add(const ScenarioSpec& spec,
                              const CampaignOutcome& outcome) {
  CampaignRow row;
  row.spec = spec;
  row.outcome = outcome;
  add(row);
}

void StreamingAggregator::merge(const StreamingAggregator& other) {
  if (other.group_keys_ != group_keys_ || other.metric_ != metric_)
    throw std::invalid_argument(
        "StreamingAggregator::merge: mismatched group keys or metric");
  for (const auto& [key, theirs] : other.cells_) {
    Cell& mine = cells_[key];
    if (theirs.samples > 0) {
      if (mine.samples == 0) {
        mine.min = theirs.min;
        mine.max = theirs.max;
      } else {
        mine.min = std::min(mine.min, theirs.min);
        mine.max = std::max(mine.max, theirs.max);
      }
      if (mine.bucket_counts.empty()) {
        mine.bucket_counts = theirs.bucket_counts;
      } else {
        for (std::size_t i = 0; i < mine.bucket_counts.size(); ++i)
          mine.bucket_counts[i] += theirs.bucket_counts[i];
      }
    }
    mine.runs += theirs.runs;
    mine.successes += theirs.successes;
    mine.premature += theirs.premature;
    mine.violations += theirs.violations;
    mine.samples += theirs.samples;
    mine.sum += theirs.sum;
    mine.sum_sq += theirs.sum_sq;
  }
  folded_ += other.folded_;
}

std::vector<GroupRow> StreamingAggregator::finish() const {
  std::vector<bool> numeric;
  numeric.reserve(group_keys_.size());
  for (const std::string& axis : group_keys_)
    numeric.push_back(axis_is_numeric(axis));
  const std::vector<long long>& bounds = streaming_quantile_bounds();

  std::vector<GroupRow> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    Aggregate agg;
    agg.runs = cell.runs;
    agg.successes = cell.successes;
    agg.premature = cell.premature;
    agg.violations = cell.violations;
    agg.rate_ci = wilson_interval(cell.successes, cell.runs);
    agg.samples = static_cast<int>(cell.samples);
    if (cell.samples > 0) {
      agg.min = cell.min;
      agg.max = cell.max;
      agg.mean = cell.sum / static_cast<double>(cell.samples);
      agg.median = sketch_quantile(bounds, cell.bucket_counts, cell.samples,
                                   0.5);
      agg.p95 = sketch_quantile(bounds, cell.bucket_counts, cell.samples,
                                0.95);
      const double var =
          cell.sum_sq / static_cast<double>(cell.samples) -
          agg.mean * agg.mean;
      agg.stddev = std::sqrt(std::max(0.0, var));
    }
    out.push_back({key, agg});
  }
  std::sort(out.begin(), out.end(),
            [&numeric](const GroupRow& a, const GroupRow& b) {
              return group_key_less(a.key, b.key, numeric);
            });
  return out;
}

std::string StreamingAggregator::render(ReportFormat format) const {
  std::string out =
      render_aggregate_report(finish(), group_keys_, metric_, format);
  if (format == ReportFormat::Markdown)
    out = "Streaming fold over " + std::to_string(folded_) +
          " rows: median/p95 are fixed-bucket sketch estimates, sd from "
          "running moments; all other columns are exact.\n" +
          out;
  return out;
}

// --- query protocol ----------------------------------------------------------

util::Json missing_cell_manifest(const std::string& campaign_name,
                                 const std::string& spec_path, int shards,
                                 const ResultCache::CellScan& scan) {
  util::Json missing{util::Json::Array{}};
  for (const int shard : scan.missing_shards)
    missing.as_array().push_back(shard);
  util::Json cells{util::Json::Array{}};
  for (const std::uint64_t fp : scan.missing)
    cells.as_array().push_back(hex_u64(fp));
  util::Json j;
  j.set("campaign", campaign_name);
  j.set("spec", spec_path);
  j.set("shards", static_cast<long long>(shards));
  j.set("present", static_cast<long long>(scan.present.size()));
  j.set("missing", std::move(missing));
  j.set("missing_cells", std::move(cells));
  // The exact command that fills the holes, mirroring the orchestrator's
  // run manifest: a missing-cell answer IS a work order.
  if (!scan.missing.empty())
    j.set("resume_hint", "dring_orchestrate --spec " + spec_path +
                             " --shards " + std::to_string(shards) +
                             " --resume fills exactly these cells");
  return j;
}

namespace {

/// A key that is either an array of strings or a comma-separated string
/// (the dring_report --group-by form), absent = empty.
std::vector<std::string> string_list(const util::Json& request,
                                     const char* key) {
  std::vector<std::string> out;
  if (!request.has(key)) return out;
  const util::Json& value = request.at(key);
  if (value.is_array()) {
    for (const util::Json& item : value.as_array())
      out.push_back(item.as_string());
    return out;
  }
  const std::string& text = value.as_string();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

util::Json dispatch(const ResultCache& cache, const util::Json& request,
                    const std::string& op) {
  if (!request.is_object())
    throw std::invalid_argument("request must be a JSON object");
  if (op.empty())
    throw std::invalid_argument(
        "request needs an \"op\" member "
        "(aggregate, frontier, compare, point, cells, stats)");
  const ReportFormat format =
      report_format_from_string(request.get_string("format", "md"));
  const Metric metric =
      metric_from_string(request.get_string("metric", "explored_round"));
  util::Json out;

  if (op == "aggregate") {
    const std::vector<std::string> keys = string_list(request, "group_by");
    const std::vector<GroupRow> groups = cache.aggregate(keys, metric);
    out.set("groups", static_cast<long long>(groups.size()));
    out.set("report",
            render_aggregate_report(groups, keys, metric, format));
    return out;
  }

  if (op == "frontier") {
    const std::vector<std::string> keys = string_list(request, "group_by");
    const std::string axis = request.get_string("axis", "");
    if (axis.empty())
      throw std::invalid_argument("frontier needs an \"axis\" member");
    const double threshold = request.get_double("threshold", 0.5);
    const std::vector<FrontierGroup> groups =
        cache.frontier(keys, axis, threshold);
    out.set("groups", static_cast<long long>(groups.size()));
    out.set("report", render_frontier_report(groups, keys, axis, threshold,
                                             format));
    return out;
  }

  if (op == "compare") {
    const std::vector<std::string> paths = string_list(request, "store");
    if (paths.empty())
      throw std::invalid_argument(
          "compare needs \"store\": path(s) to the B side");
    const ResultStore b = load_result_stores(paths);
    PairedComparison cmp = paired_compare(cache.rows(), b.rows, metric);
    cmp.provenance_a = describe(cache.provenance());
    cmp.provenance_b = describe(b.provenance);
    out.set("common", static_cast<long long>(cmp.common));
    out.set("report", render_paired_report(cmp, metric, format));
    return out;
  }

  if (op == "point") {
    std::uint64_t fp = 0;
    if (request.has("fp"))
      fp = std::stoull(request.at("fp").as_string(), nullptr, 16);
    else if (request.has("spec"))
      fp = fingerprint(scenario_spec_from_json(request.at("spec")));
    else
      throw std::invalid_argument(
          "point needs \"fp\" (hex) or \"spec\" (scenario object)");
    out.set("fp", hex_u64(fp));
    if (const CampaignRow* row = cache.find(fp)) {
      out.set("found", true);
      out.set("row", to_json(*row));
    } else {
      out.set("found", false);
    }
    return out;
  }

  if (op == "cells") {
    CampaignSpec campaign;
    const std::string spec_path = request.get_string("spec_path", "");
    if (!spec_path.empty())
      campaign =
          campaign_spec_from_json(util::Json::parse(read_text_file(spec_path)));
    else if (request.has("spec"))
      campaign = campaign_spec_from_json(request.at("spec"));
    else
      throw std::invalid_argument(
          "cells needs \"spec_path\" (campaign file) or \"spec\" (inline "
          "campaign object)");
    const int shards = static_cast<int>(request.get_int("shards", 1));
    const std::vector<ScenarioSpec> specs = expand(campaign);
    const ResultCache::CellScan scan = cache.scan_cells(specs, shards);
    out.set("total", static_cast<long long>(specs.size()));
    out.set("present", static_cast<long long>(scan.present.size()));
    out.set("missing_count", static_cast<long long>(scan.missing.size()));
    out.set("manifest",
            missing_cell_manifest(campaign.name, spec_path, shards, scan));
    if (request.has("group_by")) {
      std::vector<CampaignRow> rows;
      rows.reserve(scan.present.size());
      for (const CampaignRow* row : scan.present) rows.push_back(*row);
      const std::vector<std::string> keys = string_list(request, "group_by");
      out.set("report",
              render_aggregate_report(aggregate_rows(rows, keys, metric),
                                      keys, metric, format));
    }
    return out;
  }

  if (op == "stats") {
    out.set("rows", static_cast<long long>(cache.size()));
    out.set("provenance", describe(cache.provenance()));
    const ResultCache::Stats s = cache.stats();
    util::Json lookups;
    lookups.set("hits", s.hits);
    lookups.set("misses", s.misses);
    out.set("lookups", std::move(lookups));
    return out;
  }

  throw std::invalid_argument(
      "unknown op '" + op +
      "' (valid: aggregate, frontier, compare, point, cells, stats)");
}

}  // namespace

util::Json handle_query(const ResultCache& cache, const util::Json& request) {
  const bool telem = telemetry().enabled();
  const long long t0 = telem ? telemetry_now_us() : 0;
  const std::string op =
      request.is_object() ? request.get_string("op", "") : "";
  Telemetry::Span span =
      telemetry().span("query.request", {{"op", op.empty() ? "?" : op}});
  const ResultCache::Stats before = cache.stats();

  util::Json response;
  try {
    response = dispatch(cache, request, op);
    response.set("ok", true);
    response.set("op", op);
  } catch (const std::exception& e) {
    response = util::Json();
    response.set("ok", false);
    if (!op.empty()) response.set("op", op);
    response.set("error", e.what());
  }

  const ResultCache::Stats after = cache.stats();
  util::Json delta;
  delta.set("hits", after.hits - before.hits);
  delta.set("misses", after.misses - before.misses);
  response.set("cache", std::move(delta));
  if (telem)
    telemetry()
        .metrics()
        .histogram("query.latency_us", telemetry_time_bounds())
        .observe(std::max(1LL, telemetry_now_us() - t0));
  return response;
}

util::Json handle_query_line(const ResultCache& cache,
                             const std::string& line) {
  util::Json request;
  try {
    request = util::Json::parse(line);
  } catch (const std::exception& e) {
    util::Json response;
    response.set("ok", false);
    response.set("error", std::string("bad request: ") + e.what());
    return response;
  }
  return handle_query(cache, request);
}

}  // namespace dring::core
