// Study artifacts: the lower-bound replays (Obs. 3, Th. 4, Th. 13/15),
// the ablation studies A-D, and the many-agent extension study.  The
// cells the declarative spec cannot express (hand-tuned guess policies,
// random-walk baselines, mixed-brain teams) ride the run_custom escape
// hatch with `variant`-labelled identity specs.  Grids and formatting are
// cell-for-cell the retired bench pipelines (lower_bounds is additionally
// pinned against a verbatim legacy replica in tests/artifact_test.cpp).
#include <algorithm>
#include <memory>
#include <sstream>

#include "adversary/basic_adversaries.hpp"
#include "algo/et_unconscious.hpp"
#include "algo/random_walk.hpp"
#include "algo/unconscious_exploration.hpp"
#include "core/artifact.hpp"
#include "util/table.hpp"

namespace dring::core {

namespace {

// --- lower bounds -----------------------------------------------------------

std::vector<ArtifactScenario> lower_bounds_scenarios(NodeId max_n) {
  std::vector<ArtifactScenario> scenarios;

  // Observation 3: the Figure 2 schedule forces 3n-6 >= 2n-3 rounds.
  for (const NodeId n : {8, 16, 32}) {
    if (n > max_n) continue;
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = n;
    s.spec.start_nodes = {2, 3};
    s.spec.orientations = "cc";
    s.spec.max_rounds = 10 * n;
    s.spec.adversary.family = "fig2";
    s.spec.adversary.edge = 2;
    s.label = "obs3 n=" + std::to_string(n);
    s.group = 0;
    scenarios.push_back(std::move(s));
  }

  // Theorem 4: the simultaneous ring family — identical termination round
  // on static rings of every size 3..N.
  const NodeId N = std::min<NodeId>(16, max_n);
  for (NodeId n = 3; n <= N; ++n) {
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = n;
    s.spec.upper_bound = N;
    s.spec.start_nodes = {0, 1};
    s.spec.orientations = "cc";
    s.spec.max_rounds = 10 * N;
    s.label = "th4 n=" + std::to_string(n);
    s.group = 1;
    scenarios.push_back(std::move(s));
  }

  // Theorems 13/15: the sliding-window adversary forces ~x*(N-x) moves.
  for (const bool landmark : {false, true}) {
    for (const NodeId n : {8, 12, 16, 24, 32, 48}) {
      if (n > max_n) continue;
      const NodeId x = n / 2;
      ArtifactScenario s;
      s.spec.algorithm =
          landmark ? "PTLandmarkWithChirality" : "PTBoundWithChirality";
      s.spec.n = n;
      if (landmark) s.spec.landmark = 1;
      s.spec.start_nodes = {static_cast<NodeId>(x - 1), 0};
      s.spec.orientations = "cc";
      s.spec.fairness_window = 1 << 20;
      s.spec.max_rounds = 400'000LL + 2000LL * n * n;
      s.spec.stop_explored_one_terminated = true;
      s.spec.adversary.family = "sliding-window";
      s.label = (landmark ? std::string("th15 n=") : std::string("th13 n=")) +
                std::to_string(n);
      s.group = 2;
      scenarios.push_back(std::move(s));
    }
  }
  return scenarios;
}

ArtifactExtras lower_bounds_enrich(const ArtifactScenario& scenario,
                                   const SweepRun& run) {
  ArtifactExtras extras;
  if (scenario.group == 1) {
    extras.numbers["term_a0"] = run.result.agents[0].termination_round;
  } else if (scenario.group == 2) {
    const auto it = run.result.adversary_metrics.find("shifts");
    extras.numbers["shifts"] = it == run.result.adversary_metrics.end()
                                   ? 0
                                   : it->second;
  }
  return extras;
}

std::string render_lower_bounds(
    NodeId max_n, const std::vector<ArtifactScenario>& scenarios,
    const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;

  // --- Observation 3 --------------------------------------------------------
  out << "=== Observation 3: time lower bound 2n-3 (FSYNC, 2 agents) "
         "===\n\n";
  {
    util::Table t({"n", "lower bound 2n-3", "forced rounds (Fig. 2 schedule)",
                   "ratio"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (scenarios[i].group != 0) continue;
      const NodeId n = scenarios[i].spec.n;
      const CampaignOutcome& r = rows[i]->outcome;
      t.add_row({std::to_string(n), std::to_string(2 * n - 3),
                 std::to_string(r.explored_round),
                 util::fmt_double(static_cast<double>(r.explored_round) /
                                      (2 * n - 3),
                                  2)});
    }
    t.print(out);
  }

  // --- Theorem 4 ------------------------------------------------------------
  out << "\n=== Theorem 4: termination needs >= N-1 rounds "
         "(simultaneous ring family) ===\n\n";
  {
    const NodeId N = std::min<NodeId>(16, max_n);
    util::Table t({"ring size n", "termination round", "explored by then?"});
    Round common_term = -1;
    bool identical = true;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (scenarios[i].group != 1) continue;
      const CampaignOutcome& r = rows[i]->outcome;
      const Round term = stored_extra(*rows[i], "term_a0", -1);
      if (common_term < 0) common_term = term;
      identical = identical && term == common_term;
      t.add_row({std::to_string(scenarios[i].spec.n), std::to_string(term),
                 r.explored ? "yes" : "NO (would be incorrect!)"});
    }
    t.print(out);
    out << "\nOn a static ring all executions are indistinguishable: "
        << (identical ? "termination rounds are identical across the "
                        "whole family (as Theorem 4's argument needs), "
                        "and they exceed N-1 = " +
                            std::to_string(N - 1) + "."
                      : "MISMATCH — executions diverged!")
        << "\n";
  }

  // --- Theorems 13 and 15 ---------------------------------------------------
  out << "\n=== Theorems 13/15: Omega(N*n) / Omega(n^2) moves in PT "
         "(sliding-window adversary) ===\n\n";
  {
    util::Table t({"variant", "n", "x", "x*(N-x)", "forced moves", "ratio",
                   "window shifts", "terminated"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (scenarios[i].group != 2) continue;
      const bool landmark =
          scenarios[i].spec.algorithm == "PTLandmarkWithChirality";
      const NodeId n = scenarios[i].spec.n;
      const NodeId x = n / 2;
      const CampaignOutcome& r = rows[i]->outcome;
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({landmark ? "landmark (Th. 15)" : "bound N=n (Th. 13)",
                 std::to_string(n), std::to_string(x),
                 util::fmt_count(ref), util::fmt_count(r.total_moves),
                 util::fmt_double(static_cast<double>(r.total_moves) / ref,
                                  2),
                 std::to_string(stored_extra(*rows[i], "shifts", 0)),
                 std::to_string(r.terminated_agents) + "/2"});
    }
    t.print(out);
    out << "\nThe forced move count scales as x*(N-x) = Theta(n^2) "
           "with a constant >= 1, exactly the Omega(N*n) / Omega(n^2) "
           "shape; only one agent ever terminates (the pinned leader "
           "waits forever), matching Theorem 11.\n";
  }
  return out.str();
}

// --- ablations --------------------------------------------------------------

/// The hand-built two-agent engine shared by ablations B and D: mirrored
/// orientations, custom brains, FSYNC, stop when explored.
sim::RunResult run_two_agent_custom(
    NodeId n, Round max_rounds,
    const std::function<std::unique_ptr<agent::Brain>(int)>& make_brain,
    const std::function<std::unique_ptr<sim::Adversary>()>& make_adversary) {
  sim::EngineOptions opts;
  sim::Engine engine(n, std::nullopt, sim::Model::FSYNC, opts);
  for (int i = 0; i < 2; ++i) {
    engine.add_agent(static_cast<NodeId>(i * n / 2),
                     i == 0 ? agent::kChiralOrientation
                            : agent::kMirroredOrientation,
                     make_brain(i));
  }
  const std::unique_ptr<sim::Adversary> adv = make_adversary();
  engine.set_adversary(adv.get());
  sim::StopPolicy stop;
  stop.max_rounds = max_rounds;
  stop.stop_when_explored = true;
  stop.stop_when_all_terminated = false;
  return engine.run(stop);
}

constexpr std::pair<std::int64_t, std::int64_t> kGuessPolicies[] = {
    {2, 2}, {2, 4}, {8, 2}, {32, 2}};
constexpr NodeId kGuessSizes[] = {12, 24};
constexpr NodeId kAblationABounds[] = {16, 24, 32, 48, 64};
constexpr NodeId kWindowSizes[] = {4, 8, 12, 16, 20, 24, 28};
constexpr NodeId kRandomWalkSizes[] = {8, 16, 32};

std::vector<ArtifactScenario> ablations_scenarios(int seeds) {
  std::vector<ArtifactScenario> scenarios;

  // A: bound looseness — KnownNNoChirality pays for the bound, not the ring.
  for (const NodeId N : kAblationABounds) {
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = 16;
    s.spec.upper_bound = N;
    s.spec.max_rounds = 10 * N;
    s.spec.seed = static_cast<std::uint64_t>(5 + N);
    s.spec.adversary.family = "targeted-random";
    s.spec.adversary.target_prob = 0.7;
    s.spec.adversary.activation_prob = 1.0;
    s.label = "ablation-A N=" + std::to_string(N);
    s.group = 0;
    scenarios.push_back(std::move(s));
  }

  // B: guess policy of UnconsciousExploration against a perpetually
  // missing edge (hand-tuned guess parameters -> run_custom).
  for (const auto& [g0, factor] : kGuessPolicies) {
    for (const NodeId n : kGuessSizes) {
      for (int seed = 1; seed <= seeds; ++seed) {
        ArtifactScenario s;
        s.spec.algorithm = "UnconsciousExploration";
        s.spec.n = n;
        s.spec.seed = static_cast<std::uint64_t>(seed);
        s.spec.max_rounds = 4000LL * n;
        s.spec.start_nodes = {0, static_cast<NodeId>(n / 2)};
        s.spec.orientations = "cm";
        s.spec.adversary.family = "fixed-edge";
        s.spec.adversary.edge = static_cast<EdgeId>((n / 4 + seed) % n);
        s.spec.variant = "ablation-B g0=" + std::to_string(g0) +
                         " growth=" + std::to_string(factor);
        s.label = s.spec.variant + " n=" + std::to_string(n) + "#" +
                  std::to_string(seed);
        s.group = 1;
        s.run_custom = [g0 = g0, factor = factor, n, seed] {
          return run_two_agent_custom(
              n, 4000LL * n,
              [&](int) {
                return std::make_unique<algo::UnconsciousExploration>(
                    g0, factor);
              },
              [&]() -> std::unique_ptr<sim::Adversary> {
                return std::make_unique<adversary::FixedEdgeAdversary>(
                    static_cast<EdgeId>((n / 4 + seed) % n));
              });
        };
        scenarios.push_back(std::move(s));
      }
    }
  }

  // C: the x*(N-x) window-size parabola.
  for (const NodeId x : kWindowSizes) {
    const NodeId n = 32;
    ArtifactScenario s;
    s.spec.algorithm = "PTBoundWithChirality";
    s.spec.n = n;
    s.spec.start_nodes = {static_cast<NodeId>(x - 1), 0};
    s.spec.orientations = "cc";
    s.spec.fairness_window = 1 << 20;
    s.spec.max_rounds = 4000LL * n * n;
    s.spec.stop_explored_one_terminated = true;
    s.spec.adversary.family = "sliding-window";
    s.label = "ablation-C x=" + std::to_string(x);
    s.group = 2;
    scenarios.push_back(std::move(s));
  }

  // D: deterministic unconscious protocol vs the random-walk baseline
  // (non-registry RandomWalk brains -> run_custom).
  for (const NodeId n : kRandomWalkSizes) {
    for (const bool deterministic : {true, false}) {
      const Round budget = 40'000LL + 4000LL * n;
      for (int seed = 1; seed <= seeds; ++seed) {
        ArtifactScenario s;
        s.spec.algorithm =
            deterministic ? "UnconsciousExploration" : "RandomWalk";
        s.spec.n = n;
        s.spec.seed = static_cast<std::uint64_t>(seed);
        s.spec.max_rounds = budget;
        s.spec.start_nodes = {0, static_cast<NodeId>(n / 2)};
        s.spec.orientations = "cm";
        s.spec.adversary.family = "targeted-random";
        s.spec.adversary.target_prob = 0.7;
        s.spec.adversary.activation_prob = 1.0;
        s.spec.variant = deterministic ? "ablation-D deterministic"
                                       : "ablation-D random-walk";
        s.label = s.spec.variant + " n=" + std::to_string(n) + "#" +
                  std::to_string(seed);
        s.group = 3;
        s.run_custom = [n, deterministic, seed, budget] {
          return run_two_agent_custom(
              n, budget,
              [&](int i) -> std::unique_ptr<agent::Brain> {
                if (deterministic)
                  return std::make_unique<algo::UnconsciousExploration>();
                return std::make_unique<algo::RandomWalk>(1000ULL * seed +
                                                          i);
              },
              [&]() -> std::unique_ptr<sim::Adversary> {
                return std::make_unique<adversary::TargetedRandomAdversary>(
                    0.7, 1.0, 23ULL * seed + n);
              });
        };
        scenarios.push_back(std::move(s));
      }
    }
  }
  return scenarios;
}

std::string render_ablations(int seeds,
                             const std::vector<ArtifactScenario>& scenarios,
                             const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  std::size_t index = 0;  // walks `scenarios`/`rows` section by section

  // --- A --------------------------------------------------------------------
  out << "=== Ablation A: cost of a loose upper bound (Th. 3) ===\n\n";
  {
    const NodeId n = 16;
    util::Table t({"n", "N", "N/n", "termination round", "rounds / n"});
    for (const NodeId N : kAblationABounds) {
      const CampaignOutcome& r = rows[index++]->outcome;
      const Round term = std::max<Round>(r.last_termination, 0);
      t.add_row({std::to_string(n), std::to_string(N),
                 util::fmt_double(static_cast<double>(N) / n, 2),
                 std::to_string(term),
                 util::fmt_double(static_cast<double>(term) / n, 2)});
    }
    t.print(out);
    out << "Termination is always 3N-5: the algorithm pays for the "
           "bound, not the ring — knowledge quality is performance.\n";
  }

  // --- B --------------------------------------------------------------------
  out << "\n=== Ablation B: guess policy of UnconsciousExploration "
         "(Th. 5) ===\n\n";
  {
    util::Table t({"initial G", "growth", "n", "worst exploration round",
                   "mean (over seeds)"});
    for (const auto& [g0, factor] : kGuessPolicies) {
      for (const NodeId n : kGuessSizes) {
        long long worst = 0, sum = 0;
        int count = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          const CampaignOutcome& r = rows[index++]->outcome;
          if (r.explored) {
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
            ++count;
          }
        }
        t.add_row({std::to_string(g0), std::to_string(factor),
                   std::to_string(n), util::fmt_count(worst),
                   count ? util::fmt_double(double(sum) / count, 1) : "-"});
      }
    }
    t.print(out);
    out << "With a perpetually missing edge the blocked-wait before a "
           "reversal is proportional to the current guess: inflating "
           "the initial guess (or the growth factor) directly inflates "
           "the exploration time, which is why the paper starts at "
           "G = 2 and doubles.\n";
  }

  // --- C --------------------------------------------------------------------
  out << "\n=== Ablation C: sliding-window forced moves vs window "
         "size x (Th. 13) ===\n\n";
  {
    const NodeId n = 32;
    util::Table t({"x", "x*(N-x)", "forced moves", "ratio"});
    for (const NodeId x : kWindowSizes) {
      const CampaignOutcome& r = rows[index++]->outcome;
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({std::to_string(x), util::fmt_count(ref),
                 util::fmt_count(r.total_moves),
                 util::fmt_double(static_cast<double>(r.total_moves) /
                                      std::max(ref, 1LL),
                                  2)});
    }
    t.print(out);
    out << "Every window size forces at least 2*x*(N-x) moves (ratio "
           ">= 2 throughout), the Theorem 13 bound; the total measured "
           "cost behaves like 2x(N-x) + (N-x)^2 — the chaser re-walks "
           "a growing span for each of the N-x phases — so smaller "
           "windows force even more absolute moves in this "
           "realization.\n";
  }

  // --- D --------------------------------------------------------------------
  out << "\n=== Ablation D: deterministic protocol vs random-walk "
         "baseline ===\n\n";
  {
    util::Table t({"n", "protocol", "explored (runs)",
                   "worst exploration round", "mean round"});
    for (const NodeId n : kRandomWalkSizes) {
      for (const bool deterministic : {true, false}) {
        long long worst = 0, sum = 0;
        int explored = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          const CampaignOutcome& r = rows[index++]->outcome;
          if (r.explored) {
            ++explored;
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
          }
        }
        t.add_row({std::to_string(n),
                   deterministic ? "UnconsciousExploration (Th. 5)"
                                 : "RandomWalk baseline [4]",
                   std::to_string(explored) + "/" + std::to_string(seeds),
                   util::fmt_count(worst),
                   explored ? util::fmt_double(double(sum) / explored, 1)
                            : "-"});
      }
    }
    t.print(out);
    out << "The deterministic protocol explores in O(n) against the "
           "targeted adversary; the random walk's expected cover time "
           "is quadratic and degrades much faster with n.\n";
  }
  (void)scenarios;
  return out.str();
}

// --- extension: many agents -------------------------------------------------

std::unique_ptr<agent::Brain> make_team_brain(const std::string& kind, int i,
                                              int seed) {
  if (kind == "unconscious")
    return std::make_unique<algo::UnconsciousExploration>();
  if (kind == "et") return std::make_unique<algo::ETUnconscious>();
  return std::make_unique<algo::RandomWalk>(1000ULL * seed + i);
}

sim::RunResult run_team(const std::string& kind, NodeId n, int k, int seed,
                        Round budget) {
  sim::EngineOptions opts;
  sim::Engine engine(n, std::nullopt,
                     kind == "et" ? sim::Model::SSYNC_ET : sim::Model::FSYNC,
                     opts);
  for (int i = 0; i < k; ++i) {
    engine.add_agent(static_cast<NodeId>((i * n) / k),
                     i % 2 == 0 ? agent::kChiralOrientation
                                : agent::kMirroredOrientation,
                     make_team_brain(kind, i, seed));
  }
  adversary::TargetedRandomAdversary adv(0.7, 0.8, 7ULL * seed + k);
  engine.set_adversary(&adv);
  sim::StopPolicy stop;
  stop.max_rounds = budget;
  stop.stop_when_explored = true;
  stop.stop_when_all_terminated = false;
  return engine.run(stop);
}

const std::vector<std::string>& team_kinds() {
  static const std::vector<std::string> kKinds = {"unconscious", "et",
                                                  "randomwalk"};
  return kKinds;
}

std::string team_algorithm_name(const std::string& kind) {
  if (kind == "unconscious") return "UnconsciousExploration";
  if (kind == "et") return "ETUnconscious";
  return "RandomWalk";
}

std::vector<ArtifactScenario> extension_scenarios(NodeId n, int seeds,
                                                  Round budget) {
  std::vector<ArtifactScenario> scenarios;
  int group = 0;
  for (const std::string& kind : team_kinds()) {
    for (int k = 1; k <= 5; ++k) {
      for (int seed = 1; seed <= seeds; ++seed) {
        ArtifactScenario s;
        s.spec.algorithm = team_algorithm_name(kind);
        if (kind == "et") s.spec.model = "SSYNC/ET";
        s.spec.n = n;
        s.spec.num_agents = k;
        s.spec.seed = static_cast<std::uint64_t>(seed);
        s.spec.max_rounds = budget;
        s.spec.adversary.family = "targeted-random";
        s.spec.adversary.target_prob = 0.7;
        s.spec.adversary.activation_prob = 0.8;
        s.spec.variant = "extension-team " + kind;
        s.label = kind + " k=" + std::to_string(k) + "#" +
                  std::to_string(seed);
        s.group = group;
        s.run_custom = [kind, n, k, seed, budget] {
          return run_team(kind, n, k, seed, budget);
        };
        scenarios.push_back(std::move(s));
      }
      ++group;
    }
  }
  return scenarios;
}

std::string render_extension(NodeId n, int seeds,
                             const std::vector<ArtifactScenario>& scenarios,
                             const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  out << "=== Extension: team size vs unconscious exploration "
         "(n = " << n << ", hostile targeted adversary) ===\n\n";

  util::Table table({"protocol", "k agents", "explored (runs)",
                     "worst exploration round", "mean round"});
  std::size_t index = 0;
  for (const std::string& kind : team_kinds()) {
    for (int k = 1; k <= 5; ++k) {
      long long worst = 0, sum = 0;
      int explored = 0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const CampaignOutcome& r = rows[index++]->outcome;
        if (r.explored) {
          ++explored;
          worst = std::max(worst, (long long)r.explored_round);
          sum += r.explored_round;
        }
      }
      table.add_row(
          {kind, std::to_string(k),
           std::to_string(explored) + "/" + std::to_string(seeds),
           explored ? util::fmt_count(worst) : "-",
           explored ? util::fmt_double(double(sum) / explored, 1) : "-"});
    }
  }

  table.print(out);
  out << "\nAgainst the WORST-CASE adversary a single agent cannot explore "
         "at all (Corollary 1; see the Obs.-1 replay in Table 1's bench) — "
         "against this randomized adversary it merely pays 3-8x the "
         "two-agent cost.  The deterministic protocols keep working "
         "unmodified for k > 2 and coverage time shrinks roughly like 1/k; "
         "the random walk stays an order of magnitude behind at every team "
         "size.\n";
  (void)scenarios;
  return out.str();
}

}  // namespace

// --- builders ----------------------------------------------------------------

Artifact make_lower_bounds_artifact(NodeId max_n) {
  Artifact artifact;
  artifact.name = "lower_bounds";
  artifact.title = "Lower bounds: the proof schedules (Obs. 3, Th. 4, "
                   "Th. 13/15) replayed against the optimal algorithms";
  artifact.report_file = "lower_bounds.md";
  artifact.scenarios = lower_bounds_scenarios(max_n);
  artifact.enrich = lower_bounds_enrich;
  artifact.render = [max_n](const std::vector<ArtifactScenario>& scenarios,
                            const std::vector<const CampaignRow*>& rows) {
    return render_lower_bounds(max_n, scenarios, rows);
  };
  return artifact;
}

Artifact make_ablations_artifact(int seeds) {
  Artifact artifact;
  artifact.name = "ablations";
  artifact.title = "Ablations A-D: bound looseness, guess policy, window "
                   "parabola, determinism vs randomness";
  artifact.report_file = "ablations.md";
  artifact.scenarios = ablations_scenarios(seeds);
  artifact.render = [seeds](const std::vector<ArtifactScenario>& scenarios,
                            const std::vector<const CampaignRow*>& rows) {
    return render_ablations(seeds, scenarios, rows);
  };
  return artifact;
}

Artifact make_extension_many_agents_artifact(NodeId n, int seeds,
                                             Round budget) {
  Artifact artifact;
  artifact.name = "extension_many_agents";
  artifact.title = "Extension study: team size k = 1..5 under hostile "
                   "dynamics (beyond the paper)";
  artifact.report_file = "extension_many_agents.md";
  artifact.scenarios = extension_scenarios(n, seeds, budget);
  artifact.render = [n, seeds](const std::vector<ArtifactScenario>& scenarios,
                               const std::vector<const CampaignRow*>& rows) {
    return render_extension(n, seeds, scenarios, rows);
  };
  return artifact;
}

}  // namespace dring::core
