// Trace serialization and replay.
//
// A recorded trace can be (a) exported as CSV for offline analysis and
// (b) turned back into a scripted edge schedule so a run can be replayed
// exactly — the regression workflow for investigating a failing scenario:
// capture the schedule once, replay it deterministically forever after.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <vector>

#include "sim/engine.hpp"

namespace dring::sim {

/// Write a trace as CSV: one row per (round, agent) with the missing edge,
/// position, port, activity, state and termination flag.
void write_trace_csv(const std::vector<RoundTrace>& trace, std::ostream& os);

/// Extract the missing-edge schedule of a trace as a round-indexed script
/// (usable with adversary::ScriptedEdgeAdversary). Rounds beyond the
/// recorded trace have no removal.
std::function<std::optional<EdgeId>(Round)> edge_schedule_of(
    const std::vector<RoundTrace>& trace);

/// Extract the activation schedule of a trace (usable to replay SSYNC
/// activations). Rounds beyond the trace activate everyone.
std::function<std::vector<bool>(Round)> activation_schedule_of(
    const std::vector<RoundTrace>& trace);

/// Order-sensitive 64-bit FNV-1a digest over every field of every trace
/// row (round, missing edge, per-agent position/port/activity/state/intent).
/// Two runs with equal digests executed identically round by round; golden
/// regression tests pin these values.
std::uint64_t trace_digest(const std::vector<RoundTrace>& trace);

/// Companion digest of a RunResult (summary fields, per-agent results,
/// violations, stop reason).
std::uint64_t result_digest(const RunResult& r);

/// Full replay adversary: reproduces both the missing-edge and the
/// activation schedule of a recorded trace.
class ReplayAdversary : public Adversary {
 public:
  explicit ReplayAdversary(const std::vector<RoundTrace>& trace)
      : edges_(edge_schedule_of(trace)),
        activations_(activation_schedule_of(trace)) {}

  std::vector<bool> select_active(const WorldView& view) override {
    std::vector<bool> act = activations_(view.round());
    act.resize(static_cast<std::size_t>(view.num_agents()), true);
    return act;
  }

  std::optional<EdgeId> choose_missing_edge(
      const WorldView& view, const std::vector<IntentRecord>&) override {
    return edges_(view.round());
  }

  std::string name() const override { return "replay"; }

 private:
  std::function<std::optional<EdgeId>(Round)> edges_;
  std::function<std::vector<bool>(Round)> activations_;
};

}  // namespace dring::sim
