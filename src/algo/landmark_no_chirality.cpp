#include "algo/landmark_no_chirality.hpp"

#include <algorithm>

namespace dring::algo {

using agent::Snapshot;
using agent::StepResult;

LandmarkNoChirality::LandmarkNoChirality(Variant variant)
    : CloneableMachine(agent::Knowledge{},
                       variant == Variant::StartAtLandmark ? lmk::kInitL
                                                           : lmk::kInit),
      variant_(variant) {}

void LandmarkNoChirality::restart_instance() {
  // "Reset and start a new instance in state InitL" (Figure 13). Both
  // agents execute this in the same round, so their instance clocks (and
  // hence the phase subdivision of state Reverse) remain aligned.
  instance_start_ = c_.Ttime;
  k1_ = 0;
  k2_ = 0;
  k3_ = 0;
  dir_ = Dir::Left;
  sched_.reset();
  last_dir_round_ = -1;
  at_lmk_step_ = 0;
  reset_roles();
  reset_landmark_tracking();
  reset_wait_events();
}

void LandmarkNoChirality::enter_state(int state, const Snapshot& snap) {
  if (enter_shared(state, snap)) return;
  switch (state) {
    case lmk::kInitL:
      dir_ = Dir::Left;
      k1_ = 0;
      k2_ = 0;
      k3_ = 0;
      break;
    case lmk::kFirstBlockL:
      // First blocked wait: remember its round and reverse direction.
      dir_ = Dir::Right;
      k1_ = std::max<std::int64_t>(instance_time() - 1, 0);
      break;
    case lmk::kFirstBlock:  // Figure 13 uses k1 <- Ttime (not Ttime - 1)
      dir_ = Dir::Right;
      k1_ = instance_time();
      break;
    case lmk::kAtLandmarkL:
    case lmk::kAtLandmark:
      k3_ = c_.Etime;
      at_lmk_step_ = 0;
      break;
    case lmk::kReady: {
      k2_ = c_.Etime;
      sched_.emplace(compute_agent_id(
          static_cast<std::uint64_t>(k1_), static_cast<std::uint64_t>(k2_),
          static_cast<std::uint64_t>(k3_)));
      last_dir_round_ = -1;
      break;
    }
    case lmk::kReverse:
      dir_ = sched_ ? sched_->direction(instance_round()) : dir_;
      last_dir_round_ = instance_round();
      break;
    default:
      break;
  }
}

std::optional<StepResult> LandmarkNoChirality::landmark_guards(
    const Snapshot& snap, bool with_is_landmark, std::int64_t wait_threshold) {
  if (n_known()) return StepResult::go(lmk::kHappy);
  // catches/caught are hoisted above the ID-collection guards (D15): the
  // paper's prose overrides Figure 13's listing — "if at any point the
  // agents catch each other, they enter states Forward and Bounce and
  // proceed with Algorithm LandmarkWithChirality".  With the listed order,
  // isLandmark can preempt `caught`, roles get assigned one-sidedly, and
  // the later BComm/FComm handshake runs desynchronised (an agent can then
  // starve in Forward forever).
  if (catches(snap, dir_)) return StepResult::go(lmk::kBounce);
  if (caught(snap)) return StepResult::go(lmk::kForward);
  if (with_is_landmark && snap.is_landmark) {
    // Target follows the state *family*, not the variant: after the
    // Figure 13 restart the agents run the start-at-landmark instance
    // (FirstBlockL -> AtLandmarkL, whose double-check TERMINATES), while
    // the pre-restart arbitrary-start states use AtLandmark (whose
    // double-check restarts).  Routing by variant made two symmetric
    // agents restart forever against a fixed missing edge.
    return StepResult::go(state() == lmk::kFirstBlockL ? lmk::kAtLandmarkL
                                                       : lmk::kAtLandmark);
  }
  if (wait_events() >= wait_threshold) {
    // The first wait leads to FirstBlock(L); the second makes the agent
    // Ready (its ID is complete).
    const int s = state();
    if (s == lmk::kInitL) return StepResult::go(lmk::kFirstBlockL);
    if (s == lmk::kInit) return StepResult::go(lmk::kFirstBlock);
    return StepResult::go(lmk::kReady);
  }
  return std::nullopt;
}

StepResult LandmarkNoChirality::run_state(int state, const Snapshot& snap) {
  if (auto shared = run_shared(state, snap)) return *shared;

  switch (state) {
    case lmk::kInitL:
    case lmk::kInit:
      if (!just_entered()) {
        if (auto fired = landmark_guards(snap, /*with_is_landmark=*/false,
                                         /*wait_threshold=*/1))
          return *fired;
      }
      return StepResult::move(dir_);

    case lmk::kFirstBlockL:
    case lmk::kFirstBlock:
      if (!just_entered()) {
        if (auto fired = landmark_guards(snap, /*with_is_landmark=*/true,
                                         /*wait_threshold=*/2))
          return *fired;
      }
      return StepResult::move(dir_);

    case lmk::kAtLandmarkL:
    case lmk::kAtLandmark: {
      // Synchronised double-check: wait one extra round; if both agents are
      // still in the landmark's node proper, they bounced on the same edge
      // and the ring is explored (Figure 12) — terminate (Th. 7) or restart
      // a synchronised instance (Th. 8).
      if (at_lmk_step_ == 0) {
        at_lmk_step_ = both_at_landmark(snap) ? 1 : 2;
        if (at_lmk_step_ == 1) return StepResult::stay();
      } else if (at_lmk_step_ == 1) {
        at_lmk_step_ = 2;
        if (both_at_landmark(snap)) {
          if (state == lmk::kAtLandmarkL) return decide_terminate(snap);
          restart_instance();
          return StepResult::go(lmk::kInitL);
        }
      }
      if (!just_entered()) {
        if (auto fired = landmark_guards(snap, /*with_is_landmark=*/false,
                                         /*wait_threshold=*/2))
          return *fired;
      }
      return StepResult::move(dir_);
    }

    case lmk::kHappy: {
      if (!just_entered()) {
        if (size() && instance_time() >= no_chirality_time_bound(*size()) + 1)
          return decide_terminate(snap);
        if (catches(snap, dir_)) return StepResult::go(lmk::kBounce);
        if (caught(snap)) return StepResult::go(lmk::kForward);
      }
      return StepResult::move(dir_);
    }

    case lmk::kReady:
      return StepResult::go(lmk::kReverse);

    case lmk::kReverse: {
      if (!n_known() && sched_) {
        // switch(Ttime) folded into a per-round direction refresh (D7).
        const std::int64_t r = instance_round();
        if (r != last_dir_round_) {
          dir_ = sched_->direction(r);
          last_dir_round_ = r;
        }
      }
      if (!just_entered()) {
        if (n_known() && instance_time() >= no_chirality_time_bound(*size()))
          return decide_terminate(snap);
        if (catches(snap, dir_)) return StepResult::go(lmk::kBounce);
        if (caught(snap)) return StepResult::go(lmk::kForward);
      }
      return StepResult::move(dir_);
    }

    default:
      return StepResult::stay();
  }
}

}  // namespace dring::algo
