// The price of liveness: live (decentralised, change-oblivious)
// exploration versus the offline optimum on the *same* dynamic schedule.
//
// The paper's framing (Section 1.1.3) contrasts live exploration with the
// centralised literature where the full change sequence is known in
// advance.  This bench quantifies the gap the paper only discusses
// qualitatively: record the edge schedule of a live run, hand it to an
// omniscient offline planner (dynamic programming over arc states,
// src/ring/evolving_ring.hpp), and compare exploration times.  Also
// reports the Figure 2 worst case, where the live bound 3n-6 faces an
// offline optimum that simply starts in the other direction.
//
// Since PR 4 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario grid lives in the
// "price_of_liveness" artifact, the offline replanning runs as its
// enrich hook (the optimum is persisted in the campaign store, so the
// committed examples/paper/price_of_liveness.md report derives from the
// store alone).  Output is byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 4));
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact =
      core::make_price_of_liveness_artifact({6, 8, 10}, {8, 10, 12}, seeds);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
