// The 1-interval-connected dynamic ring substrate (paper, Section 2.1).
//
// A ring R = (v_0 .. v_{n-1}) where in every round at most one edge may be
// absent (chosen by an adversary).  Each node exposes two ports, one per
// incident edge; ports are acquired in mutual exclusion and an agent that
// failed to traverse keeps holding its port across rounds.
//
// DynamicRing owns topology, the per-round missing edge, the landmark flag
// and port occupancy.  It knows nothing about agent logic; the simulation
// engine (src/sim) drives it.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "ring/types.hpp"

namespace dring::ring {

/// Dynamic ring state: topology + per-round missing edge + port occupancy.
class DynamicRing {
 public:
  /// Build a ring of `n >= 3` nodes. `landmark` is the index of the unique
  /// observably-distinct node, or std::nullopt for an anonymous ring.
  explicit DynamicRing(NodeId n, std::optional<NodeId> landmark = std::nullopt);

  NodeId size() const { return n_; }
  bool has_landmark() const { return landmark_.has_value(); }
  std::optional<NodeId> landmark() const { return landmark_; }
  bool is_landmark(NodeId v) const { return landmark_ && *landmark_ == v; }

  /// Neighbour of `v` in global direction `d`.
  NodeId neighbour(NodeId v, GlobalDir d) const;

  /// Edge incident to `v` in global direction `d` (edge i joins v_i,v_{i+1}).
  EdgeId edge_from(NodeId v, GlobalDir d) const;

  /// Endpoints of edge `e`: (v_e, v_{e+1}).
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const;

  /// Ring distance from `a` to `b` walking in global direction `d`.
  NodeId distance(NodeId a, NodeId b, GlobalDir d) const;

  // --- per-round edge dynamics -------------------------------------------

  /// Remove `e` for the current round (at most one edge may be missing; a
  /// second removal in the same round is rejected with `false`).
  bool remove_edge(EdgeId e);

  /// Restore all edges; called by the engine at the start of every round.
  void restore_edges();

  bool edge_present(EdgeId e) const;
  std::optional<EdgeId> missing_edge() const { return missing_; }

  // --- port occupancy -----------------------------------------------------

  /// Agent currently holding the port, or std::nullopt if the port is free.
  std::optional<AgentId> port_holder(const PortRef& p) const;

  /// Try to acquire a port for `agent`. Fails if held by another agent.
  /// Re-acquiring a port already held by the same agent succeeds. An agent
  /// holds at most one port: acquiring a different one releases the old.
  bool acquire_port(const PortRef& p, AgentId agent);

  /// Release a port. No-op if `agent` does not hold it.
  void release_port(const PortRef& p, AgentId agent);

  /// Release the port held by `agent`, if any. O(1) via the reverse index.
  void release_ports_of(AgentId agent);

  /// Port held by `agent`, if any. O(1) via the reverse index.
  std::optional<PortRef> port_of(AgentId agent) const;

  /// Normalise a node index into [0, n).
  NodeId wrap(NodeId v) const {
    v %= n_;
    return v < 0 ? v + n_ : v;
  }

 private:
  std::size_t port_index(const PortRef& p) const;
  std::int32_t& port_of_slot(AgentId agent);

  NodeId n_;
  std::optional<NodeId> landmark_;
  std::optional<EdgeId> missing_;
  // 2 ports per node: [node*2 + 0] = Ccw side, [node*2 + 1] = Cw side.
  std::vector<std::optional<AgentId>> port_holder_;
  // Reverse index: agent id -> held port index, or -1. Grown on demand
  // (agent ids are dense). Mutual exclusion means at most one entry per
  // agent: the engine always releases before contending elsewhere.
  std::vector<std::int32_t> agent_port_;
};

}  // namespace dring::ring
