// Impossibility-side artifacts: Tables 1 (FSYNC) and 3 (SSYNC).
// Impossibility cannot be proven by simulation; these artifacts replay the
// proofs' adversarial constructions against concrete protocols and report
// that each defeats them — the rows are *expected* to fail (no
// exploration, no meeting, premature termination), and the renderer says
// "(unexpected!)" when one does not.  Grids and formatting are
// cell-for-cell the retired bench_table1/bench_table3 pipelines.
#include <sstream>

#include "core/artifact.hpp"
#include "util/table.hpp"

namespace dring::core {

namespace {

// --- Table 1 ----------------------------------------------------------------

std::vector<ArtifactScenario> table1_scenarios(Round horizon) {
  std::vector<ArtifactScenario> scenarios;

  // Observation 1 / Corollary 1: a single blocked agent never explores.
  {
    ArtifactScenario s;
    s.spec.algorithm = "UnconsciousExploration";
    s.spec.n = 10;
    s.spec.num_agents = 1;
    s.spec.start_nodes = {0};
    s.spec.orientations = "c";
    s.spec.max_rounds = horizon;
    s.spec.adversary.family = "block-agent";
    s.spec.adversary.victim = 0;
    s.label = "obs1";
    s.group = 0;
    scenarios.push_back(std::move(s));
  }

  // Observation 2: the meeting-prevention adversary keeps the two agents
  // apart for the whole horizon (the trace is scanned for meetings).
  {
    ArtifactScenario s;
    s.spec.algorithm = "UnconsciousExploration";
    s.spec.n = 11;
    s.spec.start_nodes = {0, 5};
    s.spec.max_rounds = 20'000;
    s.spec.stop_mode = "horizon";
    s.spec.adversary.family = "prevent-meeting";
    s.label = "obs2";
    s.group = 1;
    s.trace = true;
    scenarios.push_back(std::move(s));
  }

  // Theorems 1/2: a size-hypothesis termination rule fires at the same
  // round on every (static) ring — prematurely on all larger ones.
  for (const NodeId n : {6, 12, 24, 48}) {
    ArtifactScenario s;
    s.spec.algorithm = "KnownNNoChirality";
    s.spec.n = n;
    s.spec.upper_bound = 6;  // the (wrong, except for n=6) size hypothesis
    s.spec.start_nodes = {0, 1};
    s.spec.orientations = "cc";
    s.spec.max_rounds = 200;
    s.label = "th1-2 n=" + std::to_string(n);
    s.group = 2;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ArtifactExtras table1_enrich(const ArtifactScenario& scenario,
                             const SweepRun& run) {
  ArtifactExtras extras;
  if (scenario.group == 1) {
    // Obs. 2: meetings = rounds with both agents in the same node proper.
    long long meetings = 0;
    for (const sim::RoundTrace& rt : run.trace) {
      const sim::AgentTrace& a = rt.agents[0];
      const sim::AgentTrace& b = rt.agents[1];
      if (!a.on_port && !b.on_port && a.node == b.node) ++meetings;
    }
    extras.numbers["meetings"] = meetings;
  } else if (scenario.group == 2) {
    // Th. 1/2: the termination round of agent 0 (identical across the
    // ring family is the point of the construction).
    extras.numbers["term_a0"] = run.result.agents[0].termination_round;
  }
  return extras;
}

std::string render_table1(const std::vector<ArtifactScenario>& scenarios,
                          const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  out << "=== Table 1: impossibility results for FSYNC (replayed "
         "constructions) ===\n\n";

  util::Table table({"Construction", "Paper claim", "Scenario",
                     "Horizon", "Outcome"});

  std::string th12_outcome;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ArtifactScenario& scenario = scenarios[i];
    const CampaignOutcome& r = rows[i]->outcome;
    if (scenario.group == 0) {
      table.add_row({"Obs. 1 block-agent", "1 agent cannot explore",
                     "n=10, unconscious walker",
                     util::fmt_count(r.rounds),
                     r.explored ? "EXPLORED (unexpected!)"
                                : "never left start (moves = " +
                                      std::to_string(r.total_moves) + ")"});
    } else if (scenario.group == 1) {
      table.add_row({"Obs. 2 prevent-meeting",
                     "adversary can prevent any meeting",
                     "n=11, 2 agents, distinct starts", util::fmt_count(20'000),
                     "meetings observed: " +
                         std::to_string(stored_extra(*rows[i], "meetings",
                                                     -1))});
    } else {
      th12_outcome +=
          "n=" + std::to_string(scenario.spec.n) + ": term@" +
          std::to_string(stored_extra(*rows[i], "term_a0", -1)) +
          (r.premature_termination ? " PREMATURE; " : " ok; ");
    }
  }
  table.add_row({"Th. 1/2 indistinguishability",
                 "no partial termination without knowledge of n",
                 "hypothesis N=6 on growing rings", "-", th12_outcome});

  table.print(out);
  out << "\nReading: the constructions behave exactly as the proofs "
         "require — the blocked agent never moves, the two agents "
         "never meet, and a size-hypothesis termination rule fires at "
         "the same round on every ring size, prematurely on all but "
         "one.\n";
  return out.str();
}

// --- Table 3 ----------------------------------------------------------------

std::vector<ArtifactScenario> table3_scenarios(Round horizon) {
  std::vector<ArtifactScenario> scenarios;

  // Theorem 9 (NS): the fair first-mover blocker starves every protocol.
  for (const char* algorithm :
       {"PTBoundWithChirality", "PTBoundNoChirality", "ETBoundNoChirality"}) {
    ArtifactScenario s;
    s.spec.algorithm = algorithm;
    s.spec.n = 8;
    s.spec.model = "SSYNC/NS";
    s.spec.fairness_window = 1'000'000;  // Th. 9's scheduler is fair
    s.spec.max_rounds = horizon;
    s.spec.stop_mode = "horizon";
    s.spec.adversary.family = "ns-first-mover";
    s.label = std::string("th9 ") + algorithm;
    s.group = 0;
    scenarios.push_back(std::move(s));
  }

  // Theorem 10 (PT, 2 agents, no chirality): head-on pin.
  {
    ArtifactScenario s;
    s.spec.algorithm = "PTLandmarkWithChirality";
    s.spec.n = 9;
    s.spec.orientations = "cm";  // chirality violated
    s.spec.start_nodes = {2, 7};
    s.spec.max_rounds = horizon;
    s.spec.stop_mode = "horizon";
    s.spec.adversary.family = "head-on-pin";
    s.label = "th10";
    s.group = 1;
    scenarios.push_back(std::move(s));
  }

  // Theorem 11 (PT: only partial termination).
  {
    const NodeId n = 16;
    ArtifactScenario s;
    s.spec.algorithm = "PTBoundWithChirality";
    s.spec.n = n;
    s.spec.start_nodes = {static_cast<NodeId>(n / 2 - 1), 0};
    s.spec.orientations = "cc";
    s.spec.fairness_window = 4096;
    s.spec.max_rounds = horizon;
    s.spec.stop_explored_one_terminated = true;
    s.spec.adversary.family = "sliding-window";
    s.label = "th11";
    s.group = 2;
    scenarios.push_back(std::move(s));
  }

  // Theorem 19 (ET with a bound only): the sealed segment looks like R1.
  {
    ArtifactScenario s;
    s.spec.algorithm = "ETBoundNoChirality";
    s.spec.n = 12;
    s.spec.exact_n = 8;  // R1's size: true in R1, a lie in R2
    s.spec.start_nodes = {1, 4, 6};
    s.spec.et_budget = 1'000'000;
    s.spec.fairness_window = 1'000'000;
    s.spec.max_rounds = horizon;
    s.spec.stop_mode = "horizon";
    s.spec.adversary.family = "segment-seal";
    s.spec.adversary.edge = 7;
    s.spec.adversary.edge_b = 11;
    s.label = "th19";
    s.group = 3;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ArtifactExtras table3_enrich(const ArtifactScenario& scenario,
                             const SweepRun& run) {
  ArtifactExtras extras;
  if (scenario.group == 1) {
    // Th. 10: which edge the adversary pinned (absent = never pinned).
    const auto it = run.result.adversary_metrics.find("pinned_edge");
    if (it != run.result.adversary_metrics.end())
      extras.numbers["pinned_edge"] = it->second;
  }
  return extras;
}

std::string render_table3(const std::vector<ArtifactScenario>& scenarios,
                          const std::vector<const CampaignRow*>& rows) {
  std::ostringstream out;
  out << "=== Table 3: impossibility results in SSYNC models "
         "(replayed constructions) ===\n\n";
  util::Table table(
      {"Model", "Construction", "Paper claim", "Protocol", "Outcome"});

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ArtifactScenario& scenario = scenarios[i];
    const CampaignOutcome& r = rows[i]->outcome;
    if (scenario.group == 0) {
      table.add_row({"NS", "Th. 9 first-mover blocker",
                     "exploration impossible, any # agents",
                     scenario.spec.algorithm,
                     (r.explored ? "EXPLORED (unexpected!)"
                                 : "unexplored") +
                         std::string(", total moves ") +
                         std::to_string(r.total_moves) + " after " +
                         util::fmt_count(r.rounds) + " rounds"});
    } else if (scenario.group == 1) {
      const long long pinned = stored_extra(*rows[i], "pinned_edge", -1);
      table.add_row(
          {"PT", "Th. 10 head-on pin",
           "2 agents w/o chirality cannot explore (even with landmark, n)",
           "PTLandmark (mirrored)",
           (r.explored ? "EXPLORED (unexpected!)" : "unexplored") +
               std::string(", pinned edge ") +
               (pinned >= 0 ? std::to_string(pinned) : "-") +
               ", both agents starved"});
    } else if (scenario.group == 2) {
      table.add_row(
          {"PT", "Th. 11 sliding window",
           "only partial termination is guaranteed", "PTBoundWithChirality",
           "explored=" + std::string(r.explored ? "yes" : "no") +
               ", terminated " + std::to_string(r.terminated_agents) + "/2 " +
               "(the pinned leader waits on its port forever)"});
    } else {
      table.add_row(
          {"ET", "Th. 19 segment seal (R1 vs R2)",
           "partial termination impossible with bound only",
           "ETBoundNoChirality (believes n=8 on ring of 12)",
           std::string(r.premature_termination
                           ? "terminated on the sealed segment as if it were "
                             "R1 — premature on R2"
                           : "no premature termination (unexpected!)") +
               ", explored=" + (r.explored ? "yes" : "no")});
    }
  }

  table.print(out);
  out << "\nEvery construction defeats the protocol exactly as the "
         "paper's proof predicts.\n";
  return out.str();
}

}  // namespace

// --- builders ----------------------------------------------------------------

Artifact make_table1_artifact(Round horizon) {
  Artifact artifact;
  artifact.name = "table1_fsync";
  artifact.title = "Table 1: FSYNC impossibility results (replayed proof "
                   "constructions, expected to fail)";
  artifact.report_file = "table1_fsync.md";
  artifact.scenarios = table1_scenarios(horizon);
  artifact.enrich = table1_enrich;
  artifact.render = render_table1;
  return artifact;
}

Artifact make_table3_artifact(Round horizon) {
  Artifact artifact;
  artifact.name = "table3_ssync";
  artifact.title = "Table 3: SSYNC impossibility results (replayed proof "
                   "constructions, expected to fail)";
  artifact.report_file = "table3_ssync.md";
  artifact.scenarios = table3_scenarios(horizon);
  artifact.enrich = table3_enrich;
  artifact.render = render_table3;
  return artifact;
}

}  // namespace dring::core
