// Tests for the public API (core::default_config, make_engine,
// run_exploration, the algorithm registry and the feasibility map).
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "core/feasibility_map.hpp"
#include "core/runner.hpp"

namespace dring::core {
namespace {

using algo::AlgorithmId;

TEST(Registry, AllAlgorithmsHaveConsistentMetadata) {
  const auto& all = algo::all_algorithms();
  EXPECT_EQ(all.size(), 11u);  // one per theorem row of Tables 2 and 4
  for (const algo::AlgorithmInfo& meta : all) {
    EXPECT_FALSE(meta.name.empty());
    EXPECT_GE(meta.num_agents, 2);
    EXPECT_LE(meta.num_agents, 3);
    EXPECT_EQ(&algo::info(meta.id), &meta);
    EXPECT_EQ(&algo::info_by_name(meta.name), &meta);
  }
  EXPECT_THROW(algo::info_by_name("NoSuchAlgorithm"), std::invalid_argument);
}

TEST(Registry, MakeBrainValidatesKnowledge) {
  agent::Knowledge none;
  EXPECT_THROW(algo::make_brain(AlgorithmId::KnownNNoChirality, none),
               std::invalid_argument);
  EXPECT_THROW(algo::make_brain(AlgorithmId::PTBoundWithChirality, none),
               std::invalid_argument);
  EXPECT_THROW(algo::make_brain(AlgorithmId::ETBoundNoChirality, none),
               std::invalid_argument);
  agent::Knowledge with_bound;
  with_bound.upper_bound = 8;
  EXPECT_NO_THROW(algo::make_brain(AlgorithmId::KnownNNoChirality, with_bound));
  agent::Knowledge with_n;
  with_n.exact_n = 8;
  EXPECT_NO_THROW(algo::make_brain(AlgorithmId::ETBoundNoChirality, with_n));
}

TEST(Registry, BrainsReportTheirAlgorithmName) {
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms()) {
    agent::Knowledge k;
    if (meta.needs_upper_bound) k.upper_bound = 8;
    if (meta.needs_exact_n) k.exact_n = 8;
    const auto brain = algo::make_brain(meta.id, k);
    EXPECT_EQ(brain->algorithm_name(), meta.name);
    EXPECT_FALSE(brain->terminated());
    // clone() must produce an equal-state copy.
    const auto copy = brain->clone();
    EXPECT_EQ(copy->state_name(), brain->state_name());
  }
}

TEST(DefaultConfig, MatchesTheoremAssumptions) {
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms()) {
    const ExplorationConfig cfg = default_config(meta.id, 9);
    EXPECT_EQ(cfg.model, meta.model) << meta.name;
    EXPECT_EQ(cfg.num_agents, meta.num_agents) << meta.name;
    EXPECT_EQ(cfg.landmark.has_value(), meta.needs_landmark) << meta.name;
    EXPECT_EQ(cfg.upper_bound.has_value(), meta.needs_upper_bound)
        << meta.name;
    EXPECT_EQ(cfg.exact_n.has_value(), meta.needs_exact_n) << meta.name;
    // Chirality: all orientations equal iff required.
    bool all_equal = true;
    for (const auto& o : cfg.orientations)
      all_equal = all_equal && o == cfg.orientations.front();
    if (meta.needs_chirality) {
      EXPECT_TRUE(all_equal) << meta.name;
    }
    if (!meta.needs_chirality && meta.num_agents >= 2) {
      EXPECT_FALSE(all_equal) << meta.name;
    }
    EXPECT_EQ(static_cast<int>(cfg.start_nodes.size()), meta.num_agents);
  }
}

TEST(DefaultConfig, StartFromLandmarkPlacesAgentsOnLandmark) {
  const ExplorationConfig cfg =
      default_config(AlgorithmId::StartFromLandmarkNoChirality, 8);
  ASSERT_TRUE(cfg.landmark.has_value());
  for (NodeId s : cfg.start_nodes) EXPECT_EQ(s, *cfg.landmark);
}

TEST(MakeEngine, ValidatesConfig) {
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkWithChirality, 8);
  sim::NullAdversary adv;

  cfg.landmark.reset();
  EXPECT_THROW(make_engine(cfg, &adv), std::invalid_argument);

  cfg = default_config(AlgorithmId::LandmarkWithChirality, 8);
  cfg.start_nodes = {1};  // wrong count
  EXPECT_THROW(make_engine(cfg, &adv), std::invalid_argument);

  cfg = default_config(AlgorithmId::LandmarkWithChirality, 8);
  cfg.orientations = {agent::kChiralOrientation};  // wrong count
  EXPECT_THROW(make_engine(cfg, &adv), std::invalid_argument);
}

TEST(MakeEngine, PlacesAgentsAsConfigured) {
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 10);
  cfg.start_nodes = {3, 7};
  sim::NullAdversary adv;
  auto engine = make_engine(cfg, &adv);
  EXPECT_EQ(engine->num_agents(), 2);
  EXPECT_EQ(engine->body(0).node, 3);
  EXPECT_EQ(engine->body(1).node, 7);
  EXPECT_TRUE(engine->visited()[3]);
  EXPECT_TRUE(engine->visited()[7]);
  EXPECT_FALSE(engine->visited()[0]);
}

TEST(RunExploration, DeterministicForSameConfig) {
  for (const AlgorithmId id :
       {AlgorithmId::KnownNNoChirality, AlgorithmId::LandmarkWithChirality,
        AlgorithmId::PTBoundNoChirality}) {
    ExplorationConfig cfg = default_config(id, 9);
    cfg.stop.max_rounds = 500'000;
    adversary::TargetedRandomAdversary a1(0.6, 0.7, 33);
    adversary::TargetedRandomAdversary a2(0.6, 0.7, 33);
    const sim::RunResult r1 = run_exploration(cfg, &a1);
    const sim::RunResult r2 = run_exploration(cfg, &a2);
    EXPECT_EQ(r1.rounds, r2.rounds);
    EXPECT_EQ(r1.total_moves, r2.total_moves);
    EXPECT_EQ(r1.explored_round, r2.explored_round);
    EXPECT_EQ(r1.terminated_agents, r2.terminated_agents);
  }
}

TEST(FeasibilityMap, SmallSweepIsClean) {
  FeasibilitySweep sweep;
  sweep.sizes = {5, 8};
  sweep.seeds_per_size = 2;
  sweep.max_rounds = 2'000'000;
  const std::vector<FeasibilityRow> rows = build_feasibility_map(sweep);
  ASSERT_EQ(rows.size(), algo::all_algorithms().size());
  for (const FeasibilityRow& row : rows) {
    EXPECT_TRUE(row.ok()) << row.meta.name << ": explored " << row.explored
                          << "/" << row.runs << ", premature "
                          << row.premature;
    if (row.meta.terminating) {
      EXPECT_EQ(row.partial_termination, row.runs) << row.meta.name;
    }
    if (!row.meta.terminating) {
      EXPECT_EQ(row.partial_termination, 0) << row.meta.name;
    }
  }
}

TEST(FeasibilityMap, PrintsOneRowPerAlgorithm) {
  FeasibilitySweep sweep;
  sweep.sizes = {5};
  sweep.seeds_per_size = 1;
  const auto rows = build_feasibility_map(sweep);
  std::ostringstream ss;
  print_feasibility_map(rows, ss);
  const std::string out = ss.str();
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms())
    EXPECT_NE(out.find(meta.name), std::string::npos) << meta.name;
}

}  // namespace
}  // namespace dring::core
