#include "sim/trace_io.hpp"

#include <map>
#include <memory>

namespace dring::sim {

void write_trace_csv(const std::vector<RoundTrace>& trace, std::ostream& os) {
  os << "round,missing_edge,agent,node,on_port,port_side,active,terminated,"
        "state\n";
  for (const RoundTrace& rt : trace) {
    for (const AgentTrace& at : rt.agents) {
      os << rt.round << ','
         << (rt.missing ? std::to_string(*rt.missing) : "") << ',' << at.id
         << ',' << at.node << ',' << (at.on_port ? 1 : 0) << ','
         << (at.on_port ? to_string(at.port_side) : "") << ','
         << (at.active ? 1 : 0) << ',' << (at.terminated ? 1 : 0) << ','
         << at.state << '\n';
    }
  }
}

std::function<std::optional<EdgeId>(Round)> edge_schedule_of(
    const std::vector<RoundTrace>& trace) {
  auto schedule = std::make_shared<std::map<Round, EdgeId>>();
  for (const RoundTrace& rt : trace)
    if (rt.missing) (*schedule)[rt.round] = *rt.missing;
  return [schedule](Round r) -> std::optional<EdgeId> {
    const auto it = schedule->find(r);
    if (it == schedule->end()) return std::nullopt;
    return it->second;
  };
}

std::function<std::vector<bool>(Round)> activation_schedule_of(
    const std::vector<RoundTrace>& trace) {
  auto schedule = std::make_shared<std::map<Round, std::vector<bool>>>();
  for (const RoundTrace& rt : trace) {
    std::vector<bool> act(rt.agents.size());
    for (std::size_t i = 0; i < rt.agents.size(); ++i)
      act[i] = rt.agents[i].active;
    (*schedule)[rt.round] = std::move(act);
  }
  return [schedule](Round r) -> std::vector<bool> {
    const auto it = schedule->find(r);
    if (it == schedule->end()) return {};
    return it->second;
  };
}

}  // namespace dring::sim
