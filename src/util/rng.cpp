#include "util/rng.hpp"

namespace dring::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling over the largest multiple of `bound` <= 2^64.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::in_range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split() {
  Rng child(0);
  child.s_[0] = next_u64();
  child.s_[1] = next_u64();
  child.s_[2] = next_u64();
  child.s_[3] = next_u64();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace dring::util
