// Unit tests for the dynamic ring substrate: topology, 1-interval
// connectivity, landmark, and port mutual exclusion.
#include <gtest/gtest.h>

#include "ring/dynamic_ring.hpp"

namespace dring::ring {
namespace {

TEST(DynamicRing, RejectsTinyRings) {
  EXPECT_THROW(DynamicRing(2), std::invalid_argument);
  EXPECT_NO_THROW(DynamicRing(3));
}

TEST(DynamicRing, RejectsBadLandmark) {
  EXPECT_THROW(DynamicRing(5, 5), std::invalid_argument);
  EXPECT_THROW(DynamicRing(5, -1), std::invalid_argument);
  EXPECT_NO_THROW(DynamicRing(5, 4));
}

TEST(DynamicRing, NeighbourWrapsAround) {
  DynamicRing r(5);
  EXPECT_EQ(r.neighbour(0, GlobalDir::Ccw), 1);
  EXPECT_EQ(r.neighbour(4, GlobalDir::Ccw), 0);
  EXPECT_EQ(r.neighbour(0, GlobalDir::Cw), 4);
  EXPECT_EQ(r.neighbour(3, GlobalDir::Cw), 2);
}

TEST(DynamicRing, EdgeFromNode) {
  DynamicRing r(5);
  // Edge i joins v_i and v_{i+1}.
  EXPECT_EQ(r.edge_from(2, GlobalDir::Ccw), 2);
  EXPECT_EQ(r.edge_from(2, GlobalDir::Cw), 1);
  EXPECT_EQ(r.edge_from(0, GlobalDir::Cw), 4);
}

TEST(DynamicRing, EndpointsConsistentWithEdgeFrom) {
  DynamicRing r(7);
  for (EdgeId e = 0; e < 7; ++e) {
    const auto [u, v] = r.endpoints(e);
    EXPECT_EQ(r.edge_from(u, GlobalDir::Ccw), e);
    EXPECT_EQ(r.edge_from(v, GlobalDir::Cw), e);
    EXPECT_EQ(r.neighbour(u, GlobalDir::Ccw), v);
  }
}

TEST(DynamicRing, Distance) {
  DynamicRing r(6);
  EXPECT_EQ(r.distance(0, 3, GlobalDir::Ccw), 3);
  EXPECT_EQ(r.distance(0, 3, GlobalDir::Cw), 3);
  EXPECT_EQ(r.distance(1, 0, GlobalDir::Ccw), 5);
  EXPECT_EQ(r.distance(1, 0, GlobalDir::Cw), 1);
  EXPECT_EQ(r.distance(4, 4, GlobalDir::Ccw), 0);
}

TEST(DynamicRing, OneIntervalConnectivity) {
  DynamicRing r(5);
  EXPECT_TRUE(r.edge_present(0));
  EXPECT_TRUE(r.remove_edge(0));
  EXPECT_FALSE(r.edge_present(0));
  EXPECT_TRUE(r.edge_present(1));
  // A second, different removal in the same round is rejected.
  EXPECT_FALSE(r.remove_edge(1));
  EXPECT_TRUE(r.edge_present(1));
  // Re-removing the same edge is idempotent.
  EXPECT_TRUE(r.remove_edge(0));
  r.restore_edges();
  EXPECT_TRUE(r.edge_present(0));
  EXPECT_FALSE(r.missing_edge().has_value());
}

TEST(DynamicRing, LandmarkFlag) {
  DynamicRing anonymous(4);
  EXPECT_FALSE(anonymous.has_landmark());
  EXPECT_FALSE(anonymous.is_landmark(0));

  DynamicRing with(4, 2);
  EXPECT_TRUE(with.has_landmark());
  EXPECT_TRUE(with.is_landmark(2));
  EXPECT_FALSE(with.is_landmark(1));
}

TEST(DynamicRing, PortMutualExclusion) {
  DynamicRing r(4);
  const PortRef p{1, GlobalDir::Ccw};
  EXPECT_FALSE(r.port_holder(p).has_value());
  EXPECT_TRUE(r.acquire_port(p, 0));
  EXPECT_EQ(r.port_holder(p), std::optional<AgentId>(0));
  EXPECT_FALSE(r.acquire_port(p, 1));    // occupied
  EXPECT_TRUE(r.acquire_port(p, 0));     // same holder, idempotent
  r.release_port(p, 1);                  // non-holder release is a no-op
  EXPECT_EQ(r.port_holder(p), std::optional<AgentId>(0));
  r.release_port(p, 0);
  EXPECT_FALSE(r.port_holder(p).has_value());
  EXPECT_TRUE(r.acquire_port(p, 1));
}

TEST(DynamicRing, TwoPortsPerNodeAreIndependent) {
  DynamicRing r(4);
  EXPECT_TRUE(r.acquire_port({2, GlobalDir::Ccw}, 0));
  EXPECT_TRUE(r.acquire_port({2, GlobalDir::Cw}, 1));
  EXPECT_EQ(r.port_holder({2, GlobalDir::Ccw}), std::optional<AgentId>(0));
  EXPECT_EQ(r.port_holder({2, GlobalDir::Cw}), std::optional<AgentId>(1));
}

TEST(DynamicRing, AcquiringASecondPortReleasesTheFirst) {
  DynamicRing r(5);
  EXPECT_TRUE(r.acquire_port({1, GlobalDir::Ccw}, 0));
  EXPECT_TRUE(r.acquire_port({3, GlobalDir::Cw}, 0));
  EXPECT_FALSE(r.port_holder({1, GlobalDir::Ccw}).has_value());
  const auto p = r.port_of(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node, 3);
  EXPECT_EQ(p->side, GlobalDir::Cw);
  r.release_ports_of(0);
  EXPECT_FALSE(r.port_holder({3, GlobalDir::Cw}).has_value());
  EXPECT_FALSE(r.port_of(0).has_value());
}

TEST(DynamicRing, PortOfFindsHolder) {
  DynamicRing r(4);
  EXPECT_FALSE(r.port_of(0).has_value());
  r.acquire_port({3, GlobalDir::Cw}, 0);
  const auto p = r.port_of(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node, 3);
  EXPECT_EQ(p->side, GlobalDir::Cw);
  r.release_ports_of(0);
  EXPECT_FALSE(r.port_of(0).has_value());
}

TEST(DynamicRing, OppositePortsOfSameEdge) {
  DynamicRing r(5);
  // Edge 2 joins v_2 and v_3: v_2's Ccw port and v_3's Cw port.
  EXPECT_TRUE(r.acquire_port({2, GlobalDir::Ccw}, 0));
  EXPECT_TRUE(r.acquire_port({3, GlobalDir::Cw}, 1));  // distinct ports
  EXPECT_EQ(r.edge_from(2, GlobalDir::Ccw), r.edge_from(3, GlobalDir::Cw));
}

TEST(DynamicRing, WrapNormalisesIndices) {
  DynamicRing r(5);
  EXPECT_EQ(r.wrap(5), 0);
  EXPECT_EQ(r.wrap(-1), 4);
  EXPECT_EQ(r.wrap(12), 2);
  EXPECT_EQ(r.wrap(-6), 4);
}

}  // namespace
}  // namespace dring::ring
