// Tiny command line flag parser for examples and benches.
//
// Supports `--name=value`, `--name value` and boolean `--name` flags.
// Unknown flags are collected so callers can decide whether to reject them
// (google-benchmark binaries forward their own flags).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dring::util {

/// Parsed command line: `--key=value` pairs plus positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Every value of a repeatable flag, in command-line order
  /// (`--store a --store b` -> {"a", "b"}; `get` returns only the last).
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::pair<std::string, std::string>> ordered_;  ///< all occurrences
  std::vector<std::string> positional_;
};

}  // namespace dring::util
