// Fixed-seed golden scenarios pinning exact engine semantics.
//
// Each scenario is a fully-determined run (config + adversary + seed) whose
// per-round trace and final RunResult are digested (sim::trace_digest /
// sim::result_digest).  The digests recorded by tools/record_golden.cpp are
// asserted verbatim in tests/scenario_regression_test.cpp, so any change to
// the engine hot path that alters a single round, move, activation, state
// string or violation is caught immediately.
//
// The set deliberately covers every synchrony/transport model and every
// adversary entry point (activation choice, probing in select_active and in
// choose_missing_edge, port tie-breaking, scripted removals).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/scenario_spec.hpp"
#include "sim/trace_io.hpp"

namespace dring::core {

/// Digest pair of one executed golden scenario.
struct GoldenRun {
  std::uint64_t trace = 0;
  std::uint64_t result = 0;
};

/// A named, self-contained deterministic scenario.
struct GoldenScenario {
  std::string name;
  std::function<GoldenRun()> run;
};

namespace golden_detail {

inline GoldenRun execute(ExplorationConfig cfg, sim::Adversary* adv) {
  cfg.engine.record_trace = true;
  auto engine = make_engine(cfg, adv);
  const sim::RunResult r = engine->run(cfg.stop);
  return {sim::trace_digest(engine->trace()), sim::result_digest(r)};
}

/// Execute a declarative spec through the campaign translation layer
/// (build_config + make_adversary_factory), so the spec->engine path is
/// itself covered by the golden digests.
inline GoldenRun execute_spec(const ScenarioSpec& spec) {
  const std::unique_ptr<sim::Adversary> adv =
      make_adversary_factory(spec.adversary, spec.seed, spec.n)();
  return execute(build_config(spec), adv.get());
}

}  // namespace golden_detail

/// The golden scenario suite (stable order; append-only).
inline std::vector<GoldenScenario> golden_scenarios() {
  using algo::AlgorithmId;
  namespace gd = golden_detail;
  std::vector<GoldenScenario> set;

  set.push_back({"fsync-knownN-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 12);
    cfg.stop.max_rounds = 400;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 101);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-unconscious-null", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 9);
    cfg.stop.max_rounds = 200;
    sim::NullAdversary adv;
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-block-agent-probe", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 10);
    cfg.stop.max_rounds = 300;
    cfg.stop.stop_when_explored = false;
    adversary::BlockAgentAdversary adv(0);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-landmark-fig2-script", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 10);
    cfg.start_nodes = {2, 3};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.stop.max_rounds = 100;
    adversary::ScriptedEdgeAdversary adv(adversary::make_fig2_script(10, 2),
                                         "fig2");
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-ns-random", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 10);
    cfg.model = sim::Model::SSYNC_NS;
    cfg.stop.max_rounds = 500;
    cfg.stop.stop_when_explored = false;
    adversary::RandomAdversary adv(0.4, 0.6, 303);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-ns-first-mover-probe", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 8);
    cfg.model = sim::Model::SSYNC_NS;
    cfg.stop.max_rounds = 400;
    cfg.stop.stop_when_all_terminated = false;
    adversary::NsFirstMoverAdversary adv;
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-bound-targeted", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, 8);
    cfg.stop.max_rounds = 5000;
    adversary::TargetedRandomAdversary adv(0.5, 0.6, 404);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-sliding-window-probe", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, 10);
    cfg.start_nodes = {4, 0};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.fairness_window = 65536;
    cfg.stop.max_rounds = 50000;
    cfg.stop.stop_when_explored_and_one_terminated = true;
    adversary::SlidingWindowAdversary adv(0, 1);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-3agents-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, 9);
    cfg.stop.max_rounds = 20000;
    adversary::TargetedRandomAdversary adv(0.6, 0.55, 606);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-unconscious-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, 8);
    cfg.stop.max_rounds = 5000;
    adversary::TargetedRandomAdversary adv(0.5, 0.55, 505);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-segment-seal", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, 8);
    cfg.stop.max_rounds = 2000;
    adversary::SegmentSealAdversary adv(1, 5);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-3agents-exactn", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::ETBoundNoChirality, 8);
    cfg.stop.max_rounds = 20000;
    adversary::TargetedRandomAdversary adv(0.55, 0.6, 707);
    return gd::execute(cfg, &adv);
  }});

  // Many-agent extension axis (k beyond the theorems' counts), driven
  // through the declarative ScenarioSpec path so the campaign subsystem's
  // spec->engine translation is pinned too.
  set.push_back({"spec-k4-unconscious-targeted", [] {
    ScenarioSpec spec;
    spec.algorithm = "UnconsciousExploration";
    spec.n = 12;
    spec.num_agents = 4;
    spec.adversary.family = "targeted-random";
    spec.adversary.target_prob = 0.6;
    spec.adversary.activation_prob = 1.0;
    spec.seed = 808;
    spec.max_rounds = 3000;
    return gd::execute_spec(spec);
  }});

  set.push_back({"spec-k6-et-random", [] {
    ScenarioSpec spec;
    spec.algorithm = "ETUnconscious";
    spec.n = 14;
    spec.num_agents = 6;
    spec.adversary.family = "random";
    spec.adversary.remove_prob = 0.5;
    spec.adversary.activation_prob = 0.6;
    spec.seed = 909;
    spec.max_rounds = 5000;
    return gd::execute_spec(spec);
  }});

  // The T-interval-connectivity axis: a targeted adversary throttled to
  // switch the missing edge at most every 3 rounds (T = 3).
  set.push_back({"spec-k4-tinterval3-targeted", [] {
    ScenarioSpec spec;
    spec.algorithm = "KnownNNoChirality";
    spec.n = 10;
    spec.num_agents = 4;
    spec.adversary.family = "targeted-random";
    spec.adversary.target_prob = 0.7;
    spec.adversary.activation_prob = 1.0;
    spec.adversary.t_interval = 3;
    spec.seed = 1010;
    spec.max_rounds = 2000;
    return gd::execute_spec(spec);
  }});

  return set;
}

}  // namespace dring::core
