// Reproduces the paper's execution figures as concrete simulated runs:
// Figure 12 (termination from AtLandmark), Figure 15 (the PT
// bounce/reverse run) and Figure 16 (the Theorem 13 window dance).
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the three executions live in the "fig_runs"
// artifact, which persists the per-round trace series in its campaign
// store (TraceSeries), so the committed examples/paper/fig_runs.md report
// derives from the store alone (dring_artifact).  Output is
// byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact = core::make_fig_runs_artifact();
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
