// Extension study (beyond the paper): how the paper's 2-agent unconscious
// protocols behave with MORE agents, and how team size affects
// exploration time under hostile dynamics.
//
// The paper proves its unconscious protocols for exactly two agents; its
// conclusion lists multi-agent questions (gathering, other team tasks) as
// open.  This bench runs UnconsciousExploration, ETUnconscious and the
// RandomWalk baseline with k = 1..5 agents and reports exploration
// success/time — an empirical data point for the open questions, not a
// claimed theorem.  (k = 1 is Corollary 1's impossible case: against the
// targeted adversary it must time out.)
//
// The protocol x team-size x seed matrix runs on the run_sweep worker
// pool (--threads=N, default all hardware threads) as run_custom tasks
// (the brains are hand-constructed, including the non-registry RandomWalk).
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "algo/et_unconscious.hpp"
#include "algo/random_walk.hpp"
#include "algo/unconscious_exploration.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

std::unique_ptr<agent::Brain> make(const std::string& kind, int i, int seed) {
  if (kind == "unconscious")
    return std::make_unique<algo::UnconsciousExploration>();
  if (kind == "et") return std::make_unique<algo::ETUnconscious>();
  return std::make_unique<algo::RandomWalk>(1000ULL * seed + i);
}

sim::RunResult run_team(const std::string& kind, NodeId n, int k, int seed,
                        Round budget) {
  sim::EngineOptions opts;
  sim::Engine engine(n, std::nullopt,
                     kind == "et" ? sim::Model::SSYNC_ET : sim::Model::FSYNC,
                     opts);
  for (int i = 0; i < k; ++i) {
    engine.add_agent(static_cast<NodeId>((i * n) / k),
                     i % 2 == 0 ? agent::kChiralOrientation
                                : agent::kMirroredOrientation,
                     make(kind, i, seed));
  }
  adversary::TargetedRandomAdversary adv(0.7, 0.8, 7ULL * seed + k);
  engine.set_adversary(&adv);
  sim::StopPolicy stop;
  stop.max_rounds = budget;
  stop.stop_when_explored = true;
  stop.stop_when_all_terminated = false;
  return engine.run(stop);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 16));
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  const Round budget = cli.get_int("budget", 200'000);
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));

  std::cout << "=== Extension: team size vs unconscious exploration "
               "(n = " << n << ", hostile targeted adversary) ===\n\n";

  const std::vector<std::string> kinds = {"unconscious", "et", "randomwalk"};
  std::vector<core::ScenarioTask> tasks;
  for (const std::string& kind : kinds) {
    for (int k = 1; k <= 5; ++k) {
      for (int seed = 1; seed <= seeds; ++seed) {
        core::ScenarioTask task;
        task.run_custom = [kind, n, k, seed, budget] {
          return run_team(kind, n, k, seed, budget);
        };
        tasks.push_back(std::move(task));
      }
    }
  }
  const auto results = core::run_sweep(tasks, pool);

  util::Table table({"protocol", "k agents", "explored (runs)",
                     "worst exploration round", "mean round"});
  std::size_t index = 0;
  for (const std::string& kind : kinds) {
    for (int k = 1; k <= 5; ++k) {
      long long worst = 0, sum = 0;
      int explored = 0;
      for (int seed = 1; seed <= seeds; ++seed) {
        const sim::RunResult& r = results[index++];
        if (r.explored) {
          ++explored;
          worst = std::max(worst, (long long)r.explored_round);
          sum += r.explored_round;
        }
      }
      table.add_row(
          {kind, std::to_string(k),
           std::to_string(explored) + "/" + std::to_string(seeds),
           explored ? util::fmt_count(worst) : "-",
           explored ? util::fmt_double(double(sum) / explored, 1) : "-"});
    }
  }

  table.print(std::cout);
  std::cout
      << "\nAgainst the WORST-CASE adversary a single agent cannot explore "
         "at all (Corollary 1; see the Obs.-1 replay in Table 1's bench) — "
         "against this randomized adversary it merely pays 3-8x the "
         "two-agent cost.  The deterministic protocols keep working "
         "unmodified for k > 2 and coverage time shrinks roughly like 1/k; "
         "the random walk stays an order of magnitude behind at every team "
         "size.\n";
  return 0;
}
