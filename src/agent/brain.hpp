// The agent protocol interface ("brain") and its per-agent knowledge.
//
// The engine calls `on_activate` once per activation with the Look snapshot
// and the outcome feedback of the previous activation; the brain runs the
// algorithm's Compute phase and returns an Intent.  Brains are deep-copyable
// via `clone` so adversaries can *probe* what an agent would do if activated
// (the paper's adversaries are omniscient and know the deterministic
// protocol; cloning realises that power without disturbing the real state).
#pragma once

#include <memory>
#include <string>

#include "agent/snapshot.hpp"

namespace dring::agent {

/// Knowledge given to an agent at startup (paper: knowledge of the exact
/// ring size, of an upper bound N, chirality awareness).
struct Knowledge {
  /// Known upper bound N >= n, if any.
  std::int64_t upper_bound = -1;
  /// Exactly known ring size n, if any.
  std::int64_t exact_n = -1;

  bool has_upper_bound() const { return upper_bound > 0; }
  bool has_exact_n() const { return exact_n > 0; }
};

/// Abstract agent protocol. Implementations live in src/algo.
class Brain {
 public:
  virtual ~Brain() = default;

  /// One activation: Look (snapshot+feedback) -> Compute -> Intent.
  virtual Intent on_activate(const Snapshot& snap, const Feedback& fb) = 0;

  /// True once the agent entered the terminal state.
  virtual bool terminated() const = 0;

  /// Deep copy (for adversary probing and checkpointing).
  virtual std::unique_ptr<Brain> clone() const = 0;

  /// Human-readable current state, for traces ("Init", "Bounce", ...).
  virtual std::string state_name() const = 0;

  /// Algorithm name, for traces and result reports.
  virtual std::string algorithm_name() const = 0;
};

}  // namespace dring::agent
