#include "algo/three_agents_no_chirality.hpp"

#include <stdexcept>

namespace dring::algo {

using agent::Snapshot;
using agent::StepResult;

ThreeAgentsNoChirality::ThreeAgentsNoChirality(Variant variant,
                                               agent::Knowledge k)
    : CloneableMachine(k, Init), variant_(variant) {
  switch (variant_) {
    case Variant::KnownBound:
      if (!k.has_upper_bound())
        throw std::invalid_argument("PTBoundNoChirality requires a bound N");
      threshold_ = k.upper_bound;
      break;
    case Variant::Landmark:
      break;
    case Variant::EventualTransport:
      if (!k.has_exact_n())
        throw std::invalid_argument("ETBoundNoChirality requires exact n");
      threshold_ = k.exact_n;
      break;
  }
}

std::string ThreeAgentsNoChirality::algorithm_name() const {
  switch (variant_) {
    case Variant::KnownBound: return "PTBoundNoChirality";
    case Variant::Landmark: return "PTLandmarkNoChirality";
    case Variant::EventualTransport: return "ETBoundNoChirality";
  }
  return "?";
}

bool ThreeAgentsNoChirality::done() const {
  if (variant_ == Variant::Landmark) return n_known();
  return c_.Tnodes() >= threshold_;
}

void ThreeAgentsNoChirality::check_d(std::int64_t x) {
  if (d_ > 0) {
    if (leg_too_short(x)) {
      want_terminate_ = true;
    } else {
      d_ = x;
    }
  }
}

void ThreeAgentsNoChirality::enter_state(int state, const Snapshot& /*snap*/) {
  switch (state) {
    case Bounce:
      check_d(c_.Esteps);
      break;
    case Reverse:
      if (d_ == 0) {
        d_ = c_.Esteps;  // first change Bounce -> Reverse sets d
      } else {
        check_d(c_.Esteps);
      }
      break;
    case MeetingR:
    case MeetingB:
      if (leg_too_short(c_.Esteps)) want_terminate_ = true;
      // ExploreNoResetEsteps: the leg continues accumulating.
      suppress_esteps_reset_once();
      break;
    default:
      break;
  }
}

StepResult ThreeAgentsNoChirality::run_state(int state, const Snapshot& snap) {
  // CheckD / Meeting termination decisions are entry-body logic in
  // Figure 18, so they act even in the entry round.
  if (want_terminate_) return StepResult::terminate();
  switch (state) {
    case Init:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
      }
      return StepResult::move(Dir::Left);
    case Bounce:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (meeting(snap)) return StepResult::go(MeetingB);
        if (catches(snap, Dir::Right)) return StepResult::go(Reverse);
      }
      return StepResult::move(Dir::Right);
    case Reverse:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (meeting(snap)) return StepResult::go(MeetingR);
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
      }
      return StepResult::move(Dir::Left);
    case MeetingR:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
      }
      return StepResult::move(Dir::Left);
    case MeetingB:
      if (!just_entered()) {
        if (done()) return StepResult::terminate();
        if (catches(snap, Dir::Right)) return StepResult::go(Reverse);
      }
      return StepResult::move(Dir::Right);
    default:
      return StepResult::stay();
  }
}

std::string ThreeAgentsNoChirality::name_of(int state) const {
  switch (state) {
    case Init: return "Init";
    case Bounce: return "Bounce";
    case Reverse: return "Reverse";
    case MeetingR: return "MeetingR";
    case MeetingB: return "MeetingB";
  }
  return "?";
}

}  // namespace dring::algo
