// Tests for the scenario-sweep runner (core/sweep.hpp): thread-count
// invariance, per-task seeding, worst-case reduction, and the parallel
// feasibility map producing identical rows with 1 and N workers.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "core/feasibility_map.hpp"
#include "core/sweep.hpp"
#include "sim/trace_io.hpp"

namespace dring::core {
namespace {

using algo::AlgorithmId;

std::vector<ScenarioTask> hostile_matrix() {
  // A mixed matrix: three algorithms x three sizes, hostile dynamics.
  std::vector<ScenarioTask> tasks;
  const AlgorithmId ids[] = {AlgorithmId::KnownNNoChirality,
                             AlgorithmId::PTBoundWithChirality,
                             AlgorithmId::ETUnconscious};
  std::size_t index = 0;
  for (const AlgorithmId id : ids) {
    for (const NodeId n : {5, 8, 11}) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.stop.max_rounds = 300'000;
      task.seed = task_seed(/*salt=*/42, index++);
      const std::uint64_t s = task.seed;
      task.make_adversary = [s]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::TargetedRandomAdversary>(0.6, 0.7,
                                                                    s);
      };
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

std::vector<std::uint64_t> digests(const std::vector<sim::RunResult>& rs) {
  std::vector<std::uint64_t> ds;
  for (const sim::RunResult& r : rs) ds.push_back(sim::result_digest(r));
  return ds;
}

TEST(TaskSeed, DeterministicAndSaltSeparated) {
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  EXPECT_NE(task_seed(1, 0), task_seed(1, 1));
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
  // Dense indices must not collide for any reasonable sweep size.
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) seen.push_back(task_seed(7, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(RunSweep, ResultsIdenticalForAnyThreadCount) {
  const std::vector<ScenarioTask> tasks = hostile_matrix();
  SweepOptions serial;
  serial.threads = 1;
  const auto base = digests(run_sweep(tasks, serial));
  for (int threads : {2, 4, 8}) {
    SweepOptions pool;
    pool.threads = threads;
    EXPECT_EQ(digests(run_sweep(tasks, pool)), base) << threads << " threads";
  }
}

TEST(RunSweep, EmptyTaskListIsFine) {
  EXPECT_TRUE(run_sweep({}, {}).empty());
}

TEST(RunSweep, MissingFactoryRunsBenign) {
  ScenarioTask task;
  task.cfg = default_config(AlgorithmId::KnownNNoChirality, 6);
  // No make_adversary: static ring, must explore and terminate.
  const auto results = run_sweep({task}, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].explored);
  EXPECT_TRUE(results[0].all_terminated);
}

TEST(ReduceWorst, FoldsInTaskOrder) {
  std::vector<sim::RunResult> results(3);
  results[0].explored = true;
  results[0].rounds = 10;
  results[0].total_moves = 7;
  results[1].rounds = 25;
  results[1].total_moves = 3;
  results[1].premature_termination = true;
  results[2].rounds = 25;  // ties keep the first achieving task
  results[2].total_moves = 30;
  results[2].terminated_agents = 1;
  const SweepReduction red = reduce_worst(results);
  EXPECT_EQ(red.runs, 3);
  EXPECT_EQ(red.explored, 1);
  EXPECT_EQ(red.premature, 1);
  EXPECT_EQ(red.partial_termination, 1);
  EXPECT_EQ(red.worst_rounds, 25);
  EXPECT_EQ(red.worst_rounds_task, 1u);
  EXPECT_EQ(red.worst_moves, 30);
  EXPECT_EQ(red.worst_moves_task, 2u);
}

TEST(FeasibilityMapParallel, RowsIdenticalForAnyThreadCount) {
  FeasibilitySweep sweep;
  sweep.sizes = {5, 8};
  sweep.seeds_per_size = 3;
  sweep.threads = 1;
  const std::vector<FeasibilityRow> serial = build_feasibility_map(sweep);
  sweep.threads = 4;
  const std::vector<FeasibilityRow> parallel = build_feasibility_map(sweep);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const FeasibilityRow& a = serial[i];
    const FeasibilityRow& b = parallel[i];
    EXPECT_EQ(a.meta.name, b.meta.name);
    EXPECT_EQ(a.runs, b.runs) << a.meta.name;
    EXPECT_EQ(a.explored, b.explored) << a.meta.name;
    EXPECT_EQ(a.premature, b.premature) << a.meta.name;
    EXPECT_EQ(a.full_termination, b.full_termination) << a.meta.name;
    EXPECT_EQ(a.partial_termination, b.partial_termination) << a.meta.name;
    EXPECT_EQ(a.worst_rounds, b.worst_rounds) << a.meta.name;
    EXPECT_EQ(a.worst_moves, b.worst_moves) << a.meta.name;
    EXPECT_EQ(a.worst_rounds_n, b.worst_rounds_n) << a.meta.name;
  }
}

}  // namespace
}  // namespace dring::core
