// Basic adversaries: no removal, a fixed missing edge, randomized dynamics,
// scripted schedules, and randomized/rotating SSYNC activation.
//
// These are the "workhorse" adversaries used across tests and benches; the
// constructions lifted from specific impossibility/lower-bound proofs live
// in proof_adversaries.hpp.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/adversary.hpp"
#include "util/rng.hpp"

namespace dring::adversary {

/// Perpetually removes one fixed edge (legal under 1-interval connectivity;
/// used e.g. in the Theorem 19 construction on ring R1).
class FixedEdgeAdversary : public sim::Adversary {
 public:
  explicit FixedEdgeAdversary(EdgeId e) : edge_(e) {}

  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView&, const std::vector<sim::IntentRecord>&) override {
    return edge_;
  }
  bool observes_intents() const override { return false; }
  bool reorders_contenders() const override { return false; }
  std::string name() const override {
    return "fixed-edge(" + std::to_string(edge_) + ")";
  }

 private:
  EdgeId edge_;
};

/// Random dynamics: each round, with probability `remove_prob`, a uniformly
/// random edge is missing; in SSYNC each agent is activated independently
/// with probability `activation_prob` (the engine guarantees non-emptiness
/// and fairness).  Fully deterministic given the seed.
class RandomAdversary : public sim::Adversary {
 public:
  RandomAdversary(double remove_prob, double activation_prob,
                  std::uint64_t seed)
      : remove_prob_(remove_prob),
        activation_prob_(activation_prob),
        rng_(seed) {}

  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  bool observes_intents() const override { return false; }
  bool reorders_contenders() const override { return false; }
  std::string name() const override { return "random"; }

 private:
  double remove_prob_;
  double activation_prob_;
  util::Rng rng_;
};

/// Targeted random dynamics: with probability `target_prob` remove the edge
/// that some moving agent is about to traverse (picked uniformly among the
/// movers), otherwise act like RandomAdversary.  Much more hostile than
/// uniform removals, while remaining fair.
class TargetedRandomAdversary : public sim::Adversary {
 public:
  TargetedRandomAdversary(double target_prob, double activation_prob,
                          std::uint64_t seed)
      : target_prob_(target_prob),
        activation_prob_(activation_prob),
        rng_(seed) {}

  std::vector<bool> select_active(const sim::WorldView& view) override;
  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override;
  bool reorders_contenders() const override { return false; }
  std::string name() const override { return "targeted-random"; }

 private:
  double target_prob_;
  double activation_prob_;
  util::Rng rng_;
};

/// Fully scripted edge removals: a function of the round number. Used to
/// replay exact executions (e.g. the Figure 2 worst-case schedule).
class ScriptedEdgeAdversary : public sim::Adversary {
 public:
  using Script = std::function<std::optional<EdgeId>(Round)>;
  explicit ScriptedEdgeAdversary(Script script, std::string label = "scripted")
      : script_(std::move(script)), label_(std::move(label)) {}

  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>&) override {
    return script_(view.round());
  }
  bool observes_intents() const override { return false; }
  bool reorders_contenders() const override { return false; }
  std::string name() const override { return label_; }

 private:
  Script script_;
  std::string label_;
};

/// SSYNC activation stress: activates exactly one (live) agent per round in
/// rotation, optionally holding each agent active for `dwell` consecutive
/// rounds. No edge removals.
class RotationActivationAdversary : public sim::Adversary {
 public:
  explicit RotationActivationAdversary(Round dwell = 1) : dwell_(dwell) {}

  std::vector<bool> select_active(const sim::WorldView& view) override;
  bool observes_intents() const override { return false; }
  bool reorders_contenders() const override { return false; }
  std::string name() const override { return "rotation-activation"; }

 private:
  Round dwell_;
  Round tick_ = 0;
};

}  // namespace dring::adversary
