#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dring::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    flags_[name] = value;
    ordered_.emplace_back(std::move(name), std::move(value));
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Cli::get_all(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : ordered_)
    if (flag == name) values.push_back(value);
  return values;
}

bool parse_shard(const std::string& text, int& index, int& count) {
  if (text.empty()) return true;
  int i = -1, m = -1, consumed = 0;
  if (std::sscanf(text.c_str(), "%d/%d%n", &i, &m, &consumed) != 2 ||
      consumed != static_cast<int>(text.size()) || m < 1 || i < 0 || i >= m)
    return false;
  index = i;
  count = m;
  return true;
}

FlagTable::FlagTable(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary)) {}

FlagTable& FlagTable::synopsis(std::string line) {
  synopses_.push_back(std::move(line));
  return *this;
}

FlagTable& FlagTable::flag(std::string name, std::string value,
                           std::string help) {
  entries_.push_back({std::move(name), std::move(value), std::move(help)});
  return *this;
}

FlagTable& FlagTable::note(std::string line) {
  notes_.push_back(std::move(line));
  return *this;
}

std::string FlagTable::help_text() const {
  std::string out = tool_ + " — " + summary_ + "\n";
  for (std::size_t i = 0; i < synopses_.size(); ++i)
    out += (i == 0 ? "usage: " : "       ") + synopses_[i] + "\n";

  std::size_t width = 0;
  const auto left_column = [](const Entry& e) {
    return "--" + e.name + (e.value.empty() ? "" : " " + e.value);
  };
  for (const Entry& e : entries_) width = std::max(width, left_column(e).size());
  if (!entries_.empty()) out += "\nflags:\n";
  for (const Entry& e : entries_) {
    const std::string left = left_column(e);
    out += "  " + left + std::string(width - left.size() + 2, ' ') + e.help +
           "\n";
  }
  if (!notes_.empty()) out += "\n";
  for (const std::string& line : notes_) out += line + "\n";
  return out;
}

std::optional<std::string> FlagTable::unknown_flags(const Cli& cli) const {
  std::string offenders;
  for (const auto& [name, value] : cli.flags()) {
    bool known = false;
    for (const Entry& e : entries_) known = known || e.name == name;
    if (!known) offenders += (offenders.empty() ? "" : ", ") + ("--" + name);
  }
  if (offenders.empty()) return std::nullopt;
  return tool_ + ": unknown flag(s): " + offenders +
         " (see " + tool_ + " --help)";
}

}  // namespace dring::util
