#include "core/feasibility_map.hpp"

#include <algorithm>

#include "adversary/basic_adversaries.hpp"
#include "util/table.hpp"

namespace dring::core {

FeasibilityRow evaluate_algorithm(algo::AlgorithmId id,
                                  const FeasibilitySweep& sweep) {
  FeasibilityRow row;
  row.meta = algo::info(id);

  for (const NodeId n : sweep.sizes) {
    for (int seed = 0; seed < sweep.seeds_per_size; ++seed) {
      ExplorationConfig cfg = default_config(id, n);
      cfg.stop.max_rounds = sweep.max_rounds;

      // Seed 0 runs the static ring (no removals, full activation); the
      // rest run randomized hostile dynamics.
      sim::NullAdversary benign;
      adversary::TargetedRandomAdversary hostile(
          sweep.edge_removal_prob, sweep.activation_prob,
          0x9d5ULL * static_cast<std::uint64_t>(seed) + 17 * n);
      sim::Adversary* adv =
          seed == 0 ? static_cast<sim::Adversary*>(&benign)
                    : static_cast<sim::Adversary*>(&hostile);

      const sim::RunResult r = run_exploration(cfg, adv);
      row.runs += 1;
      if (r.explored) row.explored += 1;
      if (r.premature_termination) row.premature += 1;
      if (r.all_terminated) row.full_termination += 1;
      if (r.any_terminated()) row.partial_termination += 1;
      if (r.rounds > row.worst_rounds) {
        row.worst_rounds = r.rounds;
        row.worst_rounds_n = n;
      }
      row.worst_moves =
          std::max<std::int64_t>(row.worst_moves, r.total_moves);
    }
  }
  return row;
}

std::vector<FeasibilityRow> build_feasibility_map(
    const FeasibilitySweep& sweep) {
  std::vector<FeasibilityRow> rows;
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms())
    rows.push_back(evaluate_algorithm(meta.id, sweep));
  return rows;
}

void print_feasibility_map(const std::vector<FeasibilityRow>& rows,
                           std::ostream& os) {
  util::Table table({"Algorithm", "Thm", "Model", "Agents", "Assumptions",
                     "Claimed", "Runs", "Explored", "Terminated", "Premature",
                     "Worst rounds", "Worst moves"});
  for (const FeasibilityRow& row : rows) {
    std::string assume;
    if (row.meta.needs_upper_bound) assume += "N ";
    if (row.meta.needs_exact_n) assume += "n ";
    if (row.meta.needs_landmark) assume += "landmark ";
    if (row.meta.needs_chirality) assume += "chirality";
    if (assume.empty()) assume = "none";

    std::string term;
    if (!row.meta.terminating) {
      term = "unconscious";
    } else if (row.full_termination == row.runs) {
      term = "explicit (all)";
    } else {
      term = std::to_string(row.partial_termination) + "/" +
             std::to_string(row.runs) + " partial";
    }

    table.add_row({row.meta.name, row.meta.theorem,
                   sim::to_string(row.meta.model),
                   std::to_string(row.meta.num_agents), assume,
                   row.meta.complexity, std::to_string(row.runs),
                   std::to_string(row.explored) + "/" +
                       std::to_string(row.runs),
                   term, std::to_string(row.premature),
                   util::fmt_count(row.worst_rounds),
                   util::fmt_count(row.worst_moves)});
  }
  table.print(os);
}

}  // namespace dring::core
