#include "core/scenario_spec.hpp"

#include <cstdio>
#include <stdexcept>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "adversary/t_interval.hpp"

namespace dring::core {

namespace {

sim::Model model_from_string(const std::string& s) {
  if (s == "FSYNC") return sim::Model::FSYNC;
  if (s == "SSYNC/NS") return sim::Model::SSYNC_NS;
  if (s == "SSYNC/PT") return sim::Model::SSYNC_PT;
  if (s == "SSYNC/ET") return sim::Model::SSYNC_ET;
  throw std::invalid_argument("unknown model: " + s);
}

std::uint64_t parse_u64(const util::Json& j) {
  if (j.is_string()) {
    const std::string& s = j.as_string();
    return std::stoull(s, nullptr, 0);  // accepts 0x... and decimal
  }
  return static_cast<std::uint64_t>(j.as_int());
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string hex_u64(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// --- spec -> executable --------------------------------------------------------

ExplorationConfig build_config(const ScenarioSpec& spec) {
  const algo::AlgorithmInfo& meta = algo::info_by_name(spec.algorithm);
  ExplorationConfig cfg = default_config(meta.id, spec.n, spec.num_agents);
  if (!spec.model.empty()) cfg.model = model_from_string(spec.model);
  cfg.stop.max_rounds =
      spec.max_rounds > 0 ? spec.max_rounds : 2000LL * spec.n + 200'000;
  if (!spec.start_nodes.empty()) cfg.start_nodes = spec.start_nodes;
  if (!spec.orientations.empty()) {
    cfg.orientations.clear();
    for (const char c : spec.orientations) {
      if (c == 'c')
        cfg.orientations.push_back(agent::kChiralOrientation);
      else if (c == 'm')
        cfg.orientations.push_back(agent::kMirroredOrientation);
      else
        throw std::invalid_argument(
            std::string("bad orientation char '") + c + "' (want 'c' or 'm')");
    }
  }
  // Like the table benches: the override moves an existing landmark, it
  // never adds one to a landmark-free algorithm.
  if (spec.landmark >= 0 && cfg.landmark) cfg.landmark = spec.landmark;
  // Knowledge overrides follow the same rule: they replace knowledge the
  // theorem already grants, never grant new knowledge.
  if (spec.upper_bound > 0 && cfg.upper_bound) cfg.upper_bound = spec.upper_bound;
  if (spec.exact_n > 0 && cfg.exact_n) cfg.exact_n = spec.exact_n;
  if (spec.fairness_window > 0) cfg.engine.fairness_window = spec.fairness_window;
  if (spec.et_budget > 0) cfg.engine.et_budget = spec.et_budget;
  if (spec.stop_mode == "explored") {
    cfg.stop.stop_when_explored = true;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
  } else if (spec.stop_mode == "horizon") {
    cfg.stop.stop_when_explored = false;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
  } else if (!spec.stop_mode.empty()) {
    throw std::invalid_argument("bad stop_mode '" + spec.stop_mode +
                                "' (want \"\", \"explored\" or \"horizon\")");
  }
  if (spec.stop_explored_one_terminated)
    cfg.stop.stop_when_explored_and_one_terminated = true;
  return cfg;
}

std::function<std::unique_ptr<sim::Adversary>()> make_adversary_factory(
    const AdversarySpec& spec, std::uint64_t seed, NodeId n) {
  using Ptr = std::unique_ptr<sim::Adversary>;
  std::function<Ptr()> base;
  if (spec.family == "null") {
    base = [] { return std::make_unique<sim::NullAdversary>(); };
  } else if (spec.family == "random") {
    const double rp = spec.remove_prob, ap = spec.activation_prob;
    base = [rp, ap, seed]() -> Ptr {
      return std::make_unique<adversary::RandomAdversary>(rp, ap, seed);
    };
  } else if (spec.family == "targeted-random") {
    const double tp = spec.target_prob, ap = spec.activation_prob;
    base = [tp, ap, seed]() -> Ptr {
      return std::make_unique<adversary::TargetedRandomAdversary>(tp, ap,
                                                                  seed);
    };
  } else if (spec.family == "fixed-edge") {
    const EdgeId e = spec.edge;
    base = [e]() -> Ptr {
      return std::make_unique<adversary::FixedEdgeAdversary>(e);
    };
  } else if (spec.family == "block-agent") {
    const AgentId v = spec.victim;
    base = [v]() -> Ptr {
      return std::make_unique<adversary::BlockAgentAdversary>(v);
    };
  } else if (spec.family == "prevent-meeting") {
    base = []() -> Ptr {
      return std::make_unique<adversary::PreventMeetingAdversary>();
    };
  } else if (spec.family == "ns-first-mover") {
    base = []() -> Ptr {
      return std::make_unique<adversary::NsFirstMoverAdversary>();
    };
  } else if (spec.family == "rotation") {
    const Round dwell = spec.dwell;
    base = [dwell]() -> Ptr {
      return std::make_unique<adversary::RotationActivationAdversary>(dwell);
    };
  } else if (spec.family == "fig2") {
    if (n < 3)
      throw std::invalid_argument(
          "fig2 adversary needs the scenario's ring size");
    const NodeId anchor = static_cast<NodeId>(spec.edge);
    base = [n, anchor]() -> Ptr {
      return std::make_unique<adversary::ScriptedEdgeAdversary>(
          adversary::make_fig2_script(n, anchor), "fig2");
    };
  } else if (spec.family == "sliding-window") {
    base = []() -> Ptr {
      return std::make_unique<adversary::SlidingWindowAdversary>(0, 1);
    };
  } else if (spec.family == "head-on-pin") {
    base = []() -> Ptr {
      return std::make_unique<adversary::HeadOnPinAdversary>(0, 1);
    };
  } else if (spec.family == "segment-seal") {
    const EdgeId ea = spec.edge, eb = spec.edge_b;
    base = [ea, eb]() -> Ptr {
      return std::make_unique<adversary::SegmentSealAdversary>(ea, eb);
    };
  } else if (spec.family == "edge-window") {
    const EdgeId e = spec.edge;
    const Round lo = spec.window_lo, hi = spec.window_hi;
    base = [e, lo, hi]() -> Ptr {
      return std::make_unique<adversary::ScriptedEdgeAdversary>(
          [e, lo, hi](Round r) -> std::optional<EdgeId> {
            return (r >= lo && r <= hi) ? std::optional<EdgeId>(e)
                                        : std::nullopt;
          },
          "edge-window");
    };
  } else {
    throw std::invalid_argument("unknown adversary family: " + spec.family);
  }

  if (spec.t_interval <= 1) return base;
  const Round t = spec.t_interval;
  return [t, base]() -> Ptr {
    return std::make_unique<adversary::TIntervalAdversary>(t, base());
  };
}

ScenarioTask to_task(const ScenarioSpec& spec) {
  ScenarioTask task;
  task.cfg = build_config(spec);
  task.seed = spec.seed;
  task.make_adversary =
      make_adversary_factory(spec.adversary, spec.seed, spec.n);
  return task;
}

// --- identity ------------------------------------------------------------------

std::uint64_t fingerprint(const ScenarioSpec& spec) {
  return fnv1a(to_json(spec).dump());
}

// --- JSON ----------------------------------------------------------------------

util::Json to_json(const AdversarySpec& spec) {
  util::Json j;
  j.set("family", spec.family);
  if (spec.family == "random") {
    j.set("remove_prob", spec.remove_prob);
    j.set("activation_prob", spec.activation_prob);
  } else if (spec.family == "targeted-random") {
    j.set("target_prob", spec.target_prob);
    j.set("activation_prob", spec.activation_prob);
  } else if (spec.family == "fixed-edge") {
    j.set("edge", static_cast<long long>(spec.edge));
  } else if (spec.family == "block-agent") {
    j.set("victim", static_cast<long long>(spec.victim));
  } else if (spec.family == "rotation") {
    j.set("dwell", static_cast<long long>(spec.dwell));
  } else if (spec.family == "fig2") {
    j.set("edge", static_cast<long long>(spec.edge));
  } else if (spec.family == "segment-seal") {
    j.set("edge", static_cast<long long>(spec.edge));
    j.set("edge_b", static_cast<long long>(spec.edge_b));
  } else if (spec.family == "edge-window") {
    j.set("edge", static_cast<long long>(spec.edge));
    j.set("window_lo", static_cast<long long>(spec.window_lo));
    j.set("window_hi", static_cast<long long>(spec.window_hi));
  }
  if (spec.t_interval > 1)
    j.set("t_interval", static_cast<long long>(spec.t_interval));
  return j;
}

AdversarySpec adversary_spec_from_json(const util::Json& j) {
  AdversarySpec spec;
  spec.family = j.get_string("family", "null");
  spec.remove_prob = j.get_double("remove_prob", spec.remove_prob);
  spec.target_prob = j.get_double("target_prob", spec.target_prob);
  spec.activation_prob =
      j.get_double("activation_prob", spec.activation_prob);
  spec.edge = static_cast<EdgeId>(j.get_int("edge", spec.edge));
  spec.edge_b = static_cast<EdgeId>(j.get_int("edge_b", spec.edge_b));
  spec.victim = static_cast<AgentId>(j.get_int("victim", spec.victim));
  spec.dwell = j.get_int("dwell", spec.dwell);
  spec.window_lo = j.get_int("window_lo", spec.window_lo);
  spec.window_hi = j.get_int("window_hi", spec.window_hi);
  spec.t_interval = j.get_int("t_interval", spec.t_interval);
  return spec;
}

util::Json to_json(const ScenarioSpec& spec) {
  util::Json j;
  j.set("algorithm", spec.algorithm);
  j.set("n", static_cast<long long>(spec.n));
  if (spec.num_agents > 0)
    j.set("agents", static_cast<long long>(spec.num_agents));
  j.set("adversary", to_json(spec.adversary));
  j.set("seed", hex_u64(spec.seed));
  if (spec.max_rounds > 0)
    j.set("max_rounds", static_cast<long long>(spec.max_rounds));
  if (!spec.model.empty()) j.set("model", spec.model);
  // Proof-construction overrides: every field is omitted at its default,
  // so the fingerprints of pre-existing specs are untouched.
  if (!spec.start_nodes.empty()) {
    util::Json::Array nodes;
    for (const NodeId node : spec.start_nodes)
      nodes.emplace_back(static_cast<long long>(node));
    j.set("start_nodes", util::Json(std::move(nodes)));
  }
  if (!spec.orientations.empty()) j.set("orientations", spec.orientations);
  if (spec.landmark >= 0)
    j.set("landmark", static_cast<long long>(spec.landmark));
  if (spec.fairness_window > 0)
    j.set("fairness_window", static_cast<long long>(spec.fairness_window));
  if (spec.stop_explored_one_terminated)
    j.set("stop_explored_one_terminated", true);
  if (spec.upper_bound > 0)
    j.set("upper_bound", static_cast<long long>(spec.upper_bound));
  if (spec.exact_n > 0) j.set("exact_n", static_cast<long long>(spec.exact_n));
  if (spec.et_budget > 0)
    j.set("et_budget", static_cast<long long>(spec.et_budget));
  if (!spec.stop_mode.empty()) j.set("stop_mode", spec.stop_mode);
  if (!spec.variant.empty()) j.set("variant", spec.variant);
  return j;
}

ScenarioSpec scenario_spec_from_json(const util::Json& j) {
  ScenarioSpec spec;
  spec.algorithm = j.at("algorithm").as_string();
  spec.n = static_cast<NodeId>(j.at("n").as_int());
  spec.num_agents = static_cast<int>(j.get_int("agents", 0));
  if (j.has("adversary"))
    spec.adversary = adversary_spec_from_json(j.at("adversary"));
  if (j.has("seed")) spec.seed = parse_u64(j.at("seed"));
  spec.max_rounds = j.get_int("max_rounds", 0);
  spec.model = j.get_string("model", "");
  if (j.has("start_nodes"))
    for (const util::Json& node : j.at("start_nodes").as_array())
      spec.start_nodes.push_back(static_cast<NodeId>(node.as_int()));
  spec.orientations = j.get_string("orientations", "");
  spec.landmark = static_cast<NodeId>(j.get_int("landmark", -1));
  spec.fairness_window = j.get_int("fairness_window", 0);
  spec.stop_explored_one_terminated =
      j.get_bool("stop_explored_one_terminated", false);
  spec.upper_bound = j.get_int("upper_bound", 0);
  spec.exact_n = j.get_int("exact_n", 0);
  spec.et_budget = j.get_int("et_budget", 0);
  spec.stop_mode = j.get_string("stop_mode", "");
  spec.variant = j.get_string("variant", "");
  return spec;
}

util::Json to_json(const CampaignSpec& spec) {
  util::Json j;
  j.set("name", spec.name);
  util::Json::Array algos, sizes, agents, advs, ts;
  for (const std::string& a : spec.algorithms) algos.emplace_back(a);
  for (const NodeId n : spec.sizes) sizes.emplace_back(static_cast<long long>(n));
  for (const int k : spec.agent_counts)
    agents.emplace_back(static_cast<long long>(k));
  for (const AdversarySpec& a : spec.adversaries) advs.push_back(to_json(a));
  for (const Round t : spec.t_intervals)
    ts.emplace_back(static_cast<long long>(t));
  j.set("algorithms", util::Json(std::move(algos)));
  j.set("sizes", util::Json(std::move(sizes)));
  if (!spec.agent_counts.empty()) j.set("agents", util::Json(std::move(agents)));
  j.set("adversaries", util::Json(std::move(advs)));
  if (!spec.t_intervals.empty())
    j.set("t_intervals", util::Json(std::move(ts)));
  j.set("seeds", static_cast<long long>(spec.seeds_per_cell));
  j.set("salt", hex_u64(spec.salt));
  if (spec.max_rounds > 0)
    j.set("max_rounds", static_cast<long long>(spec.max_rounds));
  return j;
}

CampaignSpec campaign_spec_from_json(const util::Json& j) {
  CampaignSpec spec;
  spec.name = j.get_string("name", "campaign");
  for (const util::Json& a : j.at("algorithms").as_array())
    spec.algorithms.push_back(a.as_string());
  for (const util::Json& n : j.at("sizes").as_array())
    spec.sizes.push_back(static_cast<NodeId>(n.as_int()));
  if (j.has("agents"))
    for (const util::Json& k : j.at("agents").as_array())
      spec.agent_counts.push_back(static_cast<int>(k.as_int()));
  if (j.has("adversaries"))
    for (const util::Json& a : j.at("adversaries").as_array())
      spec.adversaries.push_back(adversary_spec_from_json(a));
  if (j.has("t_intervals"))
    for (const util::Json& t : j.at("t_intervals").as_array())
      spec.t_intervals.push_back(t.as_int());
  spec.seeds_per_cell = static_cast<int>(j.get_int("seeds", 1));
  if (j.has("salt")) spec.salt = parse_u64(j.at("salt"));
  spec.max_rounds = j.get_int("max_rounds", 0);
  return spec;
}

// --- grid expansion ------------------------------------------------------------

std::vector<ScenarioSpec> expand(const CampaignSpec& campaign) {
  const std::vector<int> agent_counts =
      campaign.agent_counts.empty() ? std::vector<int>{0}
                                    : campaign.agent_counts;
  const std::vector<AdversarySpec> adversaries =
      campaign.adversaries.empty() ? std::vector<AdversarySpec>{{}}
                                   : campaign.adversaries;
  // Sentinel 0 = no axis: each adversary keeps its own t_interval (which
  // may have been set per-adversary in the spec).
  const std::vector<Round> t_intervals =
      campaign.t_intervals.empty() ? std::vector<Round>{0}
                                   : campaign.t_intervals;
  const int seeds = campaign.seeds_per_cell > 0 ? campaign.seeds_per_cell : 1;

  std::vector<ScenarioSpec> specs;
  for (const std::string& algorithm : campaign.algorithms) {
    for (const NodeId n : campaign.sizes) {
      for (const int k : agent_counts) {
        for (const AdversarySpec& adversary : adversaries) {
          for (const Round t : t_intervals) {
            ScenarioSpec cell;
            cell.algorithm = algorithm;
            cell.n = n;
            cell.num_agents = k;
            cell.adversary = adversary;
            if (t > 0) cell.adversary.t_interval = t;
            cell.max_rounds = campaign.max_rounds;
            // Seeds are derived from the cell's own identity (seed field
            // zeroed), not its grid position: growing an axis leaves every
            // existing cell's seeds — hence fingerprints — untouched.
            cell.seed = 0;
            const std::uint64_t cell_id = fingerprint(cell);
            for (int s = 0; s < seeds; ++s) {
              ScenarioSpec spec = cell;
              spec.seed = task_seed(campaign.salt ^ cell_id,
                                    static_cast<std::size_t>(s));
              specs.push_back(std::move(spec));
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace dring::core
