#include "algo/landmark_with_chirality.hpp"

namespace dring::algo {

using agent::Snapshot;
using agent::StepResult;

LandmarkWithChirality::LandmarkWithChirality()
    : CloneableMachine(agent::Knowledge{}, lmk::kInit) {}

void LandmarkWithChirality::enter_state(int state, const Snapshot& snap) {
  enter_shared(state, snap);
}

StepResult LandmarkWithChirality::run_state(int state, const Snapshot& snap) {
  if (auto shared = run_shared(state, snap)) return *shared;
  // State Init (the initial state is never "just entered").
  if (ntime_gt(2)) return decide_terminate(snap);
  if (catches(snap, Dir::Left)) return StepResult::go(lmk::kBounce);
  if (caught(snap)) return StepResult::go(lmk::kForward);
  return StepResult::move(Dir::Left);
}

}  // namespace dring::algo
