// Cross-version archive: one provenance-stamped record per release, and
// the trend dashboard derived from the whole archive.
//
// The repo's quality/perf surface is already deterministic per run —
// committed paper reports (core/artifact.hpp), campaign aggregates with
// Wilson intervals (core/analysis.hpp), perf marks (BENCH_engine.json),
// telemetry sidecars (core/telemetry.hpp).  What none of those give is a
// durable record *across versions*: a success rate that sagged two
// releases ago, a benchmark that crept 8% per release, an artifact whose
// digest silently moved.  This module is that record:
//
//   * ArchiveRecord — a compact snapshot of one release's observable
//     state: engine/build/schema identity (core/version.hpp), per-artifact
//     aggregate digests of the committed examples/paper/ reports,
//     success-rate + rounds-to-explored aggregates per campaign cell
//     group, perf marks, tier-1 test count, bench rebaseline history.
//     All non-integral numbers are serialized as fixed-format strings so
//     the canonical dump is byte-stable and human-readable.
//   * an append-only archive directory (examples/archive/) of one
//     canonical-JSON file per record, keyed by engine version; appending
//     an already-archived version is refused unless forced.
//   * render_dashboard — the whole archive as one byte-stable page
//     (examples/DASHBOARD.md / .json): per-version trend tables with
//     signed deltas and REGRESSED flags, sparkline cell rows, and a
//     drift section naming every artifact whose digest changed between
//     consecutive versions.  `dring_report --compare` answers "did these
//     two stores drift?"; the dashboard answers it for every tracked
//     quantity over every archived version at once.
//
// The dashboard is a pure function of the archive directory — CI
// re-derives the committed page byte-for-byte (dring_dashboard --check),
// so undocumented drift between the archive and the page fails the build.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "util/json.hpp"

namespace dring::core {

/// Version of the archive record layout; bump on breaking shape changes.
inline constexpr long long kArchiveSchemaVersion = 1;

/// One engine microbench mark (the BENCH_engine.json per-bench shape).
struct ArchivePerfMark {
  double real_time_ns = 0;
  double items_per_second = 0;

  friend bool operator==(const ArchivePerfMark&,
                         const ArchivePerfMark&) = default;
};

/// One campaign cell group's aggregate: the success-rate and
/// rounds-to-explored summary the trend tables track per version.
struct ArchiveCellGroup {
  /// "axis=value" pairs joined by single spaces, e.g.
  /// "algorithm=KnownNNoChirality n=6" — self-describing, so records
  /// collected with different --group-by keys never silently collide.
  std::string key;
  int runs = 0;
  int successes = 0;
  double rate_lo = 0;  ///< Wilson 95% lower bound
  double rate_hi = 1;  ///< Wilson 95% upper bound
  /// Mean explored_round over the successful runs; -1 = no successes.
  double mean_rounds = -1;

  double rate() const {
    return runs > 0 ? static_cast<double>(successes) / runs : 0.0;
  }

  friend bool operator==(const ArchiveCellGroup&,
                         const ArchiveCellGroup&) = default;
};

/// One bench rebaseline era (BENCH_engine.json "history" entries): the
/// trajectory that was current when a --rebaseline replaced it.
struct ArchiveBenchEra {
  std::string engine;  ///< engine version at the rebaseline
  std::string date;    ///< YYYY-MM-DD
  std::map<std::string, ArchivePerfMark> marks;

  friend bool operator==(const ArchiveBenchEra&,
                         const ArchiveBenchEra&) = default;
};

/// One release's observable state, as archived.
struct ArchiveRecord {
  std::string engine;  ///< core::engine_version(), e.g. "dring-1.5.0"
  std::string build;   ///< core::build_flags_hash()
  long long schema = 0;  ///< kStoreSchemaVersion at release time
  std::string date;      ///< YYYY-MM-DD, caller-supplied (determinism)
  std::string note;      ///< free-form release note; "" = omitted
  long long tests = -1;  ///< tier-1 test count; -1 = unknown, omitted
  /// Committed examples/paper/ report digests: name -> content_digest.
  std::map<std::string, std::string> reports;
  /// Campaign cell-group aggregates, sorted by key.
  std::vector<ArchiveCellGroup> cells;
  /// Engine perf marks (BENCH_engine.json section).
  std::map<std::string, ArchivePerfMark> perf;
  /// Bench rebaseline history carried from BENCH_engine.json, oldest
  /// first, so the dashboard can render it from the archive alone.
  std::vector<ArchiveBenchEra> bench_history;

  friend bool operator==(const ArchiveRecord&, const ArchiveRecord&) = default;
};

// --- record (de)serialization ----------------------------------------------

/// Canonical JSON for a record.  Non-integral numbers are emitted as
/// fixed-format strings (rates "%.4f", rounds/ns "%.2f", items/s "%.1f"),
/// so dumps are byte-stable and diff-readable; empty/default members are
/// omitted.  archive_record_from_json accepts both the string forms and
/// plain numbers.
util::Json to_json(const ArchiveRecord& record);
ArchiveRecord archive_record_from_json(const util::Json& j);

/// The canonical file content of one archive entry (dump + newline).
std::string archive_entry_bytes(const ArchiveRecord& record);

// --- building record pieces -------------------------------------------------

/// FNV-1a digest of a report's bytes in the repo's canonical "0x%016x"
/// form — the aggregate fingerprint the drift section compares.
std::string content_digest(const std::string& bytes);

/// Fold campaign rows into per-cell-group aggregates: group by the given
/// canonical axes (analysis_axes), success counts + Wilson 95% interval,
/// mean explored_round over successes.  Groups come back sorted by key.
std::vector<ArchiveCellGroup> archive_cells(
    const std::vector<CampaignRow>& rows,
    const std::vector<std::string>& group_keys);

/// Fragment emitted by `dring_report --emit-archive`: {"cells":[...]}
/// plus the group_by keys for provenance.  archive_cells_from_json reads
/// the fragment (or a whole record) back.
util::Json archive_cells_json(const std::vector<ArchiveCellGroup>& cells,
                              const std::vector<std::string>& group_keys);
std::vector<ArchiveCellGroup> archive_cells_from_json(const util::Json& j);

/// Perf marks from a BENCH_engine.json document section ("current" or
/// "baseline"); throws std::invalid_argument when the section is absent.
std::map<std::string, ArchivePerfMark> perf_marks_from_bench(
    const util::Json& bench, const std::string& section);

/// Rebaseline history from a BENCH_engine.json document ("history"
/// member, absent = empty).
std::vector<ArchiveBenchEra> bench_history_from_bench(const util::Json& bench);

/// Fragment emitted by `dring_metrics --bench --emit-archive`:
/// {"perf":{...},"bench_history":[...]}.
util::Json archive_perf_json(
    const std::map<std::string, ArchivePerfMark>& perf,
    const std::vector<ArchiveBenchEra>& history);

// --- the archive directory ---------------------------------------------------

/// Filename of a record inside the archive directory: "<engine>.json".
std::string archive_entry_filename(const ArchiveRecord& record);

/// Engine-version ordering: "dring-1.2.0" < "dring-1.10.0" (numeric
/// component-wise); non-conforming names sort lexicographically after
/// conforming ones.
bool engine_version_less(const std::string& a, const std::string& b);

/// Load every *.json entry of the archive directory, sorted oldest
/// version first (engine_version_less, ties by date then build).  Throws
/// std::runtime_error when the directory cannot be read and
/// std::invalid_argument (naming the file) on malformed entries.  An
/// absent directory reads as an empty archive.
std::vector<ArchiveRecord> read_archive_dir(const std::string& dir);

/// Append a record to the archive directory (created if absent).  A
/// record for an already-archived engine version is refused with
/// std::runtime_error unless `force` — the archive is append-only;
/// rewriting history is a deliberate act.  Returns the path written.
std::string append_archive_record(const std::string& dir,
                                  const ArchiveRecord& record, bool force);

// --- the dashboard ------------------------------------------------------------

/// Artifact drift between two consecutive archived versions: the digest
/// of a committed report changed.
struct ArchiveDrift {
  std::string report;       ///< report name
  std::string from_engine;  ///< older version
  std::string to_engine;    ///< newer version
  std::string digest_before;
  std::string digest_after;
};

/// Every consecutive-version digest change, oldest pair first, report
/// name order within a pair.
std::vector<ArchiveDrift> detect_drift(
    const std::vector<ArchiveRecord>& records);

/// Unicode block sparkline of a value series, one glyph per element.
/// NaN renders as "·" (missing).  With `lo < hi` the scale is absolute
/// over [lo, hi]; otherwise each call normalizes to its own min..max
/// (all-equal series render mid-scale).
std::string sparkline(const std::vector<double>& values, double lo = 0,
                      double hi = 0);

/// Render the whole archive as the trend dashboard.  Markdown is the
/// committed page: version inventory, perf / success-rate /
/// rounds-to-explored trend tables (one column per version, signed
/// last-step deltas, REGRESSED flags, sparkline rows), bench rebaseline
/// history, and the artifact drift section.  Json is the canonical
/// machine document (records + computed drift); Csv is one flat
/// plot-ready table (section,series,version,value).  Byte-stable for a
/// given archive; records may be passed in any order.
std::string render_dashboard(std::vector<ArchiveRecord> records,
                             ReportFormat format);

}  // namespace dring::core
