// Campaign execution and the JSONL result store.
//
// A campaign is a CampaignSpec (core/scenario_spec.hpp) expanded into a
// flat scenario list and executed on the run_sweep worker pool.  Every
// finished scenario becomes one line of JSON in the result store:
//
//   {"fp":"0x...","result":{...},"spec":{...}}
//
// The dump is canonical (sorted keys, no whitespace), so stores are
// line-diffable across commits, and each row carries the scenario's
// fingerprint. Resume = load the fingerprints already present in the store
// and run only the rows that are missing; because per-cell seeds are
// position-independent (see expand()), growing a campaign's axes and
// resuming executes exactly the new cells.  Rows are appended in task
// order after the sweep completes, so the store bytes are identical for
// any --threads value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/scenario_spec.hpp"

namespace dring::core {

/// The per-scenario summary persisted in a row (the RunResult fields that
/// are meaningful across heterogeneous scenarios).
struct CampaignOutcome {
  bool explored = false;
  Round explored_round = -1;
  Round rounds = 0;
  long long total_moves = 0;
  int terminated_agents = 0;
  bool all_terminated = false;
  bool premature_termination = false;
  long long fairness_interventions = 0;
  int violations = 0;
  std::string stop_reason;

  friend bool operator==(const CampaignOutcome&,
                         const CampaignOutcome&) = default;
};

/// One line of the result store.
struct CampaignRow {
  std::uint64_t fingerprint = 0;
  ScenarioSpec spec;
  CampaignOutcome outcome;
};

CampaignOutcome outcome_of(const sim::RunResult& r);
util::Json to_json(const CampaignRow& row);
CampaignRow campaign_row_from_json(const util::Json& j);

/// Serialize one row as its store line (no trailing newline).
std::string row_line(const CampaignRow& row);

/// Parse a whole store (one JSON object per non-empty line; malformed
/// lines throw std::invalid_argument with the line number).
std::vector<CampaignRow> read_result_store(std::istream& in);

/// The fingerprints present in a store file. Missing file = empty set.
std::unordered_set<std::uint64_t> load_fingerprints(const std::string& path);

/// Execution knobs.
struct CampaignOptions {
  int threads = 0;        ///< run_sweep worker count (0 = hardware)
  std::string out_path;   ///< result store to append to (empty = no store)
  bool resume = false;    ///< skip scenarios whose fingerprint is stored
};

/// What a campaign run did.
struct CampaignReport {
  std::size_t total = 0;     ///< scenarios in the expanded grid
  std::size_t skipped = 0;   ///< already present in the store (resume)
  std::size_t executed = 0;  ///< run in this invocation
  std::vector<CampaignRow> rows;  ///< executed rows, in task order
};

/// Run the given scenarios on the pool; rows come back in spec order.
std::vector<CampaignRow> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                       int threads);

/// Expand + (optionally) resume-filter + run + append to the store.
CampaignReport run_campaign(const CampaignSpec& campaign,
                            const CampaignOptions& options);

/// Store diff (for comparing campaign outputs across commits): rows only
/// in `a`, only in `b`, and fingerprints whose outcome changed.
struct StoreDiff {
  std::vector<CampaignRow> only_a;
  std::vector<CampaignRow> only_b;
  std::vector<std::pair<CampaignRow, CampaignRow>> changed;  ///< (a, b)
  bool identical() const {
    return only_a.empty() && only_b.empty() && changed.empty();
  }
};

StoreDiff diff_result_stores(const std::vector<CampaignRow>& a,
                             const std::vector<CampaignRow>& b);

}  // namespace dring::core
