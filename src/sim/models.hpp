// Synchrony and transport models (paper, Sections 1.2 and 2.1).
//
//   FSYNC     — every agent is active in every round.
//   SSYNC+NS  — adversarial activation; a sleeping agent cannot move and
//               gets no simultaneity guarantee (No Simultaneity).
//   SSYNC+PT  — a sleeping agent on a port is passively transported across
//               the edge whenever the edge is present (Passive Transport).
//   SSYNC+ET  — a sleeping agent cannot move, but if its edge is present
//               infinitely often it is eventually activated in a round in
//               which the edge is present (Eventual Transport).
#pragma once

#include <cstdint>

#include "ring/types.hpp"

namespace dring::sim {

enum class Model : std::uint8_t {
  FSYNC,
  SSYNC_NS,
  SSYNC_PT,
  SSYNC_ET,
};

constexpr const char* to_string(Model m) {
  switch (m) {
    case Model::FSYNC: return "FSYNC";
    case Model::SSYNC_NS: return "SSYNC/NS";
    case Model::SSYNC_PT: return "SSYNC/PT";
    case Model::SSYNC_ET: return "SSYNC/ET";
  }
  return "?";
}

constexpr bool is_ssync(Model m) { return m != Model::FSYNC; }

/// Engine knobs. Fairness parameters make the adversary's obligations
/// ("every agent is activated infinitely often"; the ET simultaneity
/// condition) concrete for finite executions; see DESIGN.md, Semantics
/// decision 9.
struct EngineOptions {
  /// Every non-terminated agent must be activated at least once in any
  /// window of `fairness_window` consecutive rounds (engine forces the
  /// activation and logs the override).
  Round fairness_window = 64;

  /// ET model: after an agent has slept on a port through `et_budget`
  /// rounds in which its edge was present, the engine forces it active on
  /// the next round where the edge is present (vetoing the adversary's
  /// removal of that edge if needed).
  Round et_budget = 8;

  /// Record a full per-round trace (costly; for tests/examples).
  bool record_trace = false;

  /// Run the per-round invariant verifier (cheap; on by default).
  bool verify = true;
};

/// When a run stops.
struct StopPolicy {
  Round max_rounds = 1'000'000;
  /// Stop as soon as every node has been visited (unconscious exploration).
  bool stop_when_explored = false;
  /// Stop when every agent has terminated.
  bool stop_when_all_terminated = true;
  /// Stop when the ring is explored AND at least one agent terminated
  /// (partial-termination runs, where the other agent may legitimately
  /// wait on a port forever).
  bool stop_when_explored_and_one_terminated = false;
};

}  // namespace dring::sim
