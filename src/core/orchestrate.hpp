// Fault-tolerant campaign orchestration: supervise a fleet of
// `dring_campaign` shard workers.
//
// The substrate (core/campaign.hpp) already makes distribution safe:
// `--shard i/m` partitions any grid by fingerprint, shards are idempotent
// under `--resume`, stores are canonical bytes for any split, and `--merge`
// is a lossless conflict-checked union.  This layer adds the part the paper
// spends its pages on — making progress while an adversary keeps knocking
// pieces out.  run_orchestration() expands a campaign into m shard work
// units, dispatches them onto a bounded pool of subprocess workers, and
// supervises:
//
//   * liveness via a per-shard progress file the worker rewrites after
//     every completed cell — a stale mtime means the worker hung and gets
//     SIGKILLed and rescheduled;
//   * a hard per-attempt timeout as the backstop above the heartbeat;
//   * retry with exponential backoff + deterministic jitter and a
//     max-attempt cap per shard;
//   * straggler detection with speculative re-dispatch onto a free slot
//     (safe: shards are idempotent and store writes are atomic, so two
//     workers racing on one shard both produce the same bytes);
//   * graceful degradation: when a shard exhausts its attempts, every
//     completed shard still merges into the output store, a machine-
//     readable manifest names exactly the holes, and the exit code is
//     kExitMissingShards — a follow-up --resume run completes the holes.
//
// Worker membership follows the dynomite seed-list idiom
// (dyn_ring_init/dyn_gos_run): the orchestrator owns a fixed roster of
// worker slots seeded up front, learns each member's health from its
// heartbeat rather than from a registration protocol, and routes work
// around dead members instead of waiting for them.
//
// Determinism: the fault-injection harness (FaultPlan) draws per
// (seed, shard, attempt), and retries increment the attempt — so a run
// with a fixed seed produces the same fault schedule everywhere, and CI
// can assert byte-identical convergence with the single-process store.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dring::core {

/// dring_orchestrate exit codes.  Distinct so a driving script can tell
/// "all shards merged" from "holes remain, manifest written, re-run with
/// --resume" without parsing output.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;          ///< hard failure (merge conflict, spawn)
inline constexpr int kExitUsage = 2;          ///< bad flags / spec
inline constexpr int kExitMissingShards = 3;  ///< partial result + manifest

// --- retry/backoff -----------------------------------------------------------

/// Exponential backoff with deterministic multiplicative jitter.  The
/// delay before retry attempt `a` (a >= 2) is
///
///   raw(a)   = min(cap_ms, base_ms * 2^(a-2))
///   delay(a) = raw(a) * (1 - jitter * u),   u = uniform01(seed, shard, a)
///
/// i.e. jittered downward into [(1-jitter)*raw, raw] so a fleet of failed
/// shards never stampedes back in lockstep, while a fixed seed keeps the
/// whole schedule reproducible.
struct BackoffPolicy {
  long long base_ms = 500;
  long long cap_ms = 10000;
  double jitter = 0.5;     ///< fraction of the raw delay the jitter may shave
  std::uint64_t seed = 0;  ///< jitter stream seed

  /// Delay in ms before launching `attempt` (1-based; attempt 1 launches
  /// immediately, so delay_ms(shard, 1) == 0).
  long long delay_ms(int shard, int attempt) const;
};

// --- fault injection ---------------------------------------------------------

/// What an injected fault does to a worker attempt.
enum class FaultKind {
  None,   ///< attempt runs clean
  Crash,  ///< _exit mid-sweep before the store write (no durable progress)
  Hang,   ///< stop mid-sweep without exiting (heartbeat goes stale)
  Trunc,  ///< write the store, then tear its last row and exit non-zero
};
const char* to_string(FaultKind kind);

/// A deterministic fault schedule: per-kind probabilities plus the seed.
/// The draw is a pure function of (seed, shard, attempt), so orchestrator
/// and worker — and a test predicting convergence — all agree on which
/// attempts fault without any communication.
struct FaultPlan {
  double crash = 0.0;
  double hang = 0.0;
  double trunc = 0.0;
  std::uint64_t seed = 0;

  bool any() const { return crash + hang + trunc > 0.0; }
};

/// Parse an `--inject` spec: comma-separated `kind:probability` pairs,
/// e.g. "crash:0.4,hang:0.2,trunc:0.2" (kinds optional, each at most
/// once; probabilities in [0,1] with sum <= 1).  Throws
/// std::invalid_argument on anything else.
FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t seed);

/// The fault this plan injects into `attempt` (1-based) of shard `key`.
FaultKind fault_draw(const FaultPlan& plan, std::uint64_t key, int attempt);

/// Env-var hook between orchestrator and worker: dring_campaign reads
/// these at startup (parse_fault_plan on kFaultInjectEnv, seed from
/// kFaultSeedEnv, attempt from kFaultAttemptEnv, shard key from its own
/// --shard flag) and self-sabotages accordingly.  Setting them by hand
/// reproduces any injected failure outside the orchestrator.
inline constexpr const char* kFaultInjectEnv = "DRING_FAULT_INJECT";
inline constexpr const char* kFaultSeedEnv = "DRING_FAULT_SEED";
inline constexpr const char* kFaultAttemptEnv = "DRING_FAULT_ATTEMPT";

/// Worker exit codes for injected faults (distinct from real campaign
/// failures so supervisor logs stay readable).
inline constexpr int kFaultExitCrash = 70;
inline constexpr int kFaultExitTrunc = 71;

// --- orchestration -----------------------------------------------------------

struct OrchestrateOptions {
  std::string spec_path;      ///< campaign definition (JSON)
  int shards = 1;             ///< grid partitions (--shard i/shards)
  int workers = 2;            ///< max concurrent worker subprocesses
  int threads_per_worker = 1; ///< --threads forwarded to each worker
  int batch_width = 0;        ///< --batch forwarded to each worker (0 = off)
  std::string work_dir;       ///< shard stores, progress files, worker logs
  std::string out_path;       ///< merged store (empty = skip the merge)
  bool resume = false;        ///< keep existing shard stores (fill holes);
                              ///< false wipes them for a fresh run
  int max_attempts = 3;       ///< per-shard failure cap
  double timeout_s = 0;       ///< hard per-attempt timeout (0 = none)
  double stale_s = 30;        ///< heartbeat staleness before a kill (0 = off);
                              ///< must exceed the slowest single cell
  double poll_s = 0.05;       ///< supervisor poll interval
  BackoffPolicy backoff;
  /// Straggler speculation: once `straggler_quorum` of the shards have
  /// completed, a shard running longer than `straggler_factor` x the
  /// median completed duration gets a duplicate attempt on a free slot;
  /// first finisher wins.  0 disables.
  double straggler_factor = 0;
  double straggler_quorum = 0.5;
  /// Fault injection forwarded to workers (empty = none).
  std::string inject;
  std::uint64_t inject_seed = 0;
  /// Worker binary; empty = "dring_campaign" next to this executable.
  std::string campaign_binary;
  /// Forward --telemetry to every worker, so each shard attempt writes
  /// its own `<store>.events.jsonl` / `<store>.metrics.json` sidecars.
  /// The supervisor's own events go to the global core::telemetry()
  /// whenever the caller enabled it — this flag only controls workers.
  bool telemetry = false;
};

/// Where shard `index`'s store lives under `options.work_dir`.
std::string shard_store_path(const OrchestrateOptions& options, int index);

/// What happened to one shard.
struct ShardOutcome {
  int shard = 0;
  int attempts = 0;       ///< attempts launched (includes speculative)
  int failures = 0;       ///< failed attempts (what the cap counts)
  bool completed = false;
  bool speculated = false;  ///< a speculative duplicate was dispatched
  std::string store_path;
  std::string last_error;   ///< why the last attempt failed (empty if none)
};

struct OrchestrationResult {
  std::vector<ShardOutcome> shards;
  std::vector<int> missing;     ///< shards exhausted without completing
  std::string merged_path;      ///< written when >= 1 shard completed
  std::size_t merged_rows = 0;
  std::string manifest_path;    ///< always written next to the merged store
  int exit_code = kExitOk;      ///< kExitOk / kExitMissingShards / kExitError
};

/// The machine-readable run manifest (written as canonical JSON): campaign
/// name, shard geometry, completed/missing shard lists, per-shard attempt
/// counts and store paths.  A follow-up `dring_orchestrate --resume` run
/// completes exactly the missing shards.
util::Json manifest_json(const OrchestrateOptions& options,
                         const OrchestrationResult& result,
                         const std::string& campaign_name);

/// Supervise the fleet to completion (or exhaustion).  Narrates dispatch /
/// retry / kill decisions to `log` when non-null.  Throws
/// std::runtime_error on unrecoverable setup errors (unreadable spec,
/// unspawnable worker binary); worker failures are handled, not thrown.
OrchestrationResult run_orchestration(const OrchestrateOptions& options,
                                      std::ostream* log = nullptr);

}  // namespace dring::core
