// Reproduces Table 3 of the paper (SSYNC impossibility results) by
// replaying the proofs' constructions: Theorem 9 (the NS first-mover
// blocker), Theorem 10 (the head-on pin), Theorem 11 (the sliding
// window), Theorem 19 (the segment seal).
//
// Since PR 5 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the expect-failure scenario rows live in the
// "table3_ssync" artifact, whose campaign store also backs the committed
// examples/paper/table3_ssync.md report (dring_artifact).  Output is
// byte-identical to the pre-migration bench.
#include <iostream>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const Round horizon = cli.get_int("horizon", 50'000);
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  const core::Artifact artifact = core::make_table3_artifact(horizon);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
