// Tests for the campaign subsystem: the JSON utility, declarative
// scenario specs (serialization, fingerprints, spec->engine translation),
// campaign grid expansion (count, seed stability under grid growth),
// thread-count invariance of the produced rows, the JSONL result store
// (write -> read -> resume skips everything, schema versioning, canonical
// order), sharded execution + store merge, the store diff, and the
// crash-safety story (atomic writes, torn-tail recovery, diagnostics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "util/json.hpp"

namespace dring::core {
namespace {

// --- util::Json ----------------------------------------------------------------

TEST(Json, ParsesScalarsAndStructure) {
  const util::Json j = util::Json::parse(
      R"({"a": 1, "b": -2.5, "c": "x\n\"y", "d": [true, false, null], )"
      R"("big": 9007199254740993})");
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("b").as_double(), -2.5);
  EXPECT_EQ(j.at("c").as_string(), "x\n\"y");
  ASSERT_EQ(j.at("d").as_array().size(), 3u);
  EXPECT_TRUE(j.at("d").as_array()[0].as_bool());
  EXPECT_TRUE(j.at("d").as_array()[2].is_null());
  // Integers beyond 2^53 survive exactly (doubles would round).
  EXPECT_EQ(j.at("big").as_int(), 9007199254740993LL);
}

TEST(Json, DumpIsCanonicalAndRoundTrips) {
  const std::string text =
      R"({"z": 1, "a": {"k": [1, 2, {"q": "v"}]}, "m": "s"})";
  const util::Json j = util::Json::parse(text);
  const std::string dump = j.dump();
  // Keys sorted, no whitespace.
  EXPECT_EQ(dump, R"({"a":{"k":[1,2,{"q":"v"}]},"m":"s","z":1})");
  EXPECT_EQ(util::Json::parse(dump).dump(), dump);
}

TEST(Json, StringEscapesRoundTrip) {
  // Control characters, every named escape, embedded quotes and
  // backslashes, DEL and multi-byte UTF-8 — dump -> parse -> dump must be
  // the identity (store lines survive any stop_reason / label content).
  const std::string nasty = std::string("a\x01b\x1f") + "\b\f\n\r\t" +
                            "\"quoted\" back\\slash /slash \x7f" +
                            "\xce\xbb";  // U+03BB as UTF-8
  const util::Json j(nasty);
  const std::string dump = j.dump();
  EXPECT_EQ(util::Json::parse(dump).as_string(), nasty);
  EXPECT_EQ(util::Json::parse(dump).dump(), dump);

  // Control characters are written as \u escapes, named escapes by name.
  EXPECT_EQ(util::Json("\x01").dump(), "\"\\u0001\"");
  EXPECT_EQ(util::Json("\n\"\\").dump(), "\"\\n\\\"\\\\\"");

  // \u parsing: ASCII, 2-byte and 3-byte code points decode to UTF-8 and
  // re-dump in their literal form (canonical dumps never re-escape
  // printable text).
  EXPECT_EQ(util::Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(util::Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(util::Json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  EXPECT_EQ(util::Json::parse("\"\\u20ac\"").dump(), "\"\xe2\x82\xac\"");

  // Upper/lower hex digits are both accepted.
  EXPECT_EQ(util::Json::parse("\"\\u00E9\"").as_string(),
            util::Json::parse("\"\\u00e9\"").as_string());

  // Malformed escapes are rejected, as are raw control characters.
  EXPECT_THROW(util::Json::parse("\"\\u12g4\""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("\"\\u12\""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("\"\\x41\""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse(std::string("\"a\x01b\"")),
               std::invalid_argument);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(util::Json::parse(""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("12 34"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("tru"), std::invalid_argument);
}

// --- ScenarioSpec --------------------------------------------------------------

ScenarioSpec sample_spec() {
  ScenarioSpec spec;
  spec.algorithm = "KnownNNoChirality";
  spec.n = 10;
  spec.num_agents = 4;
  spec.adversary.family = "targeted-random";
  spec.adversary.target_prob = 0.7;
  spec.adversary.activation_prob = 1.0;
  spec.adversary.t_interval = 3;
  spec.seed = 0xdeadbeefcafef00dULL;
  spec.max_rounds = 5000;
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripPreservesIdentity) {
  const ScenarioSpec spec = sample_spec();
  const ScenarioSpec back =
      scenario_spec_from_json(util::Json::parse(to_json(spec).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(spec).dump());
  EXPECT_EQ(fingerprint(back), fingerprint(spec));
  EXPECT_EQ(back.seed, spec.seed);  // 64-bit seeds survive via hex strings
}

TEST(ScenarioSpec, FingerprintSeparatesEveryAxis) {
  const ScenarioSpec base = sample_spec();
  const std::uint64_t fp = fingerprint(base);

  ScenarioSpec other = base;
  other.n = 11;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.num_agents = 5;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.adversary.t_interval = 1;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.seed ^= 1;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.algorithm = "UnconsciousExploration";
  EXPECT_NE(fingerprint(other), fp);
}

TEST(ScenarioSpec, BuildConfigDerivesManyAgentPlacements) {
  const ScenarioSpec spec = sample_spec();
  const ExplorationConfig cfg = build_config(spec);
  EXPECT_EQ(cfg.num_agents, 4);
  ASSERT_EQ(cfg.start_nodes.size(), 4u);
  EXPECT_EQ(cfg.start_nodes, (std::vector<NodeId>{0, 2, 5, 7}));
  ASSERT_EQ(cfg.orientations.size(), 4u);
  EXPECT_EQ(cfg.stop.max_rounds, 5000);

  ScenarioSpec bad = spec;
  bad.algorithm = "NoSuchAlgorithm";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
  bad = spec;
  bad.model = "HYPERSYNC";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
  bad = spec;
  bad.adversary.family = "no-such-family";
  EXPECT_THROW(make_adversary_factory(bad.adversary, 1)(),
               std::invalid_argument);
}

// --- expansion -----------------------------------------------------------------

CampaignSpec sample_campaign() {
  CampaignSpec campaign;
  campaign.name = "test";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {6, 8};
  campaign.agent_counts = {0, 4};
  AdversarySpec null_adv;
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.6;
  campaign.adversaries = {null_adv, targeted};
  campaign.t_intervals = {1, 4};
  campaign.seeds_per_cell = 2;
  campaign.salt = 99;
  campaign.max_rounds = 4000;
  return campaign;
}

TEST(CampaignExpand, CartesianProductCount) {
  const std::vector<ScenarioSpec> specs = expand(sample_campaign());
  EXPECT_EQ(specs.size(), 2u * 2 * 2 * 2 * 2 * 2);  // axes x seeds
  // All fingerprints distinct.
  std::unordered_set<std::uint64_t> fps;
  for (const ScenarioSpec& spec : specs) fps.insert(fingerprint(spec));
  EXPECT_EQ(fps.size(), specs.size());
}

TEST(CampaignExpand, GrowingAnAxisKeepsExistingCellIdentities) {
  const CampaignSpec small = sample_campaign();
  CampaignSpec grown = small;
  grown.algorithms.push_back("ETUnconscious");
  grown.sizes.push_back(11);
  grown.t_intervals.push_back(8);

  std::unordered_set<std::uint64_t> small_fps;
  for (const ScenarioSpec& spec : expand(small))
    small_fps.insert(fingerprint(spec));
  std::unordered_set<std::uint64_t> grown_fps;
  for (const ScenarioSpec& spec : expand(grown))
    grown_fps.insert(fingerprint(spec));

  // Every original cell (same salt, same coordinates) is still present
  // with an identical fingerprint — the resume contract across commits.
  for (const std::uint64_t fp : small_fps)
    EXPECT_TRUE(grown_fps.count(fp)) << "cell identity changed under growth";
}

TEST(CampaignExpand, NoTAxisKeepsPerAdversaryTInterval) {
  // Regression: without a t_intervals axis, an adversary's own t_interval
  // must survive expansion (it used to be clobbered to the default 1).
  CampaignSpec campaign;
  campaign.algorithms = {"KnownNNoChirality"};
  campaign.sizes = {6};
  AdversarySpec wrapped;
  wrapped.family = "targeted-random";
  wrapped.t_interval = 4;
  campaign.adversaries = {wrapped};
  const std::vector<ScenarioSpec> specs = expand(campaign);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].adversary.t_interval, 4);

  // A non-empty axis overrides the per-adversary value.
  campaign.t_intervals = {2};
  EXPECT_EQ(expand(campaign)[0].adversary.t_interval, 2);
}

TEST(CampaignExpand, JsonRoundTrip) {
  const CampaignSpec campaign = sample_campaign();
  const CampaignSpec back =
      campaign_spec_from_json(util::Json::parse(to_json(campaign).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(campaign).dump());
  EXPECT_EQ(expand(back).size(), expand(campaign).size());
}

// --- execution -----------------------------------------------------------------

CampaignSpec tiny_campaign() {
  CampaignSpec campaign;
  campaign.name = "tiny";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {5, 6};
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.5;
  campaign.adversaries = {targeted};
  campaign.t_intervals = {1, 3};
  campaign.seeds_per_cell = 2;
  campaign.salt = 7;
  campaign.max_rounds = 3000;
  return campaign;
}

std::vector<std::string> row_lines(const std::vector<CampaignRow>& rows) {
  std::vector<std::string> lines;
  for (const CampaignRow& row : rows) lines.push_back(row_line(row));
  return lines;
}

TEST(CampaignRun, RowsIdenticalForAnyThreadCount) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  const auto serial = row_lines(run_scenarios(specs, 1));
  for (const int threads : {2, 4, 8})
    EXPECT_EQ(row_lines(run_scenarios(specs, threads)), serial)
        << threads << " threads";
}

TEST(CampaignRun, StoreRoundTripAndResume) {
  const std::string path =
      testing::TempDir() + "campaign_store_test.jsonl";
  std::remove(path.c_str());

  const CampaignSpec campaign = tiny_campaign();
  CampaignOptions options;
  options.threads = 2;
  options.out_path = path;

  const CampaignReport first = run_campaign(campaign, options);
  EXPECT_EQ(first.total, expand(campaign).size());
  EXPECT_EQ(first.executed, first.total);
  EXPECT_EQ(first.skipped, 0u);

  // The store parses back to exactly the executed rows, in canonical
  // (fingerprint) order.
  const ResultStore parsed = read_result_store_file(path);
  EXPECT_EQ(parsed.provenance, current_provenance());
  const std::vector<CampaignRow>& stored = parsed.rows;
  ASSERT_EQ(stored.size(), first.rows.size());
  std::vector<std::string> stored_lines = row_lines(stored);
  EXPECT_TRUE(std::is_sorted(stored_lines.begin(), stored_lines.end()));
  std::vector<std::string> executed_lines = row_lines(first.rows);
  std::sort(executed_lines.begin(), executed_lines.end());
  EXPECT_EQ(stored_lines, executed_lines);

  // Resume: nothing to do, file untouched.
  std::ifstream before(path);
  std::stringstream before_bytes;
  before_bytes << before.rdbuf();

  options.resume = true;
  const CampaignReport second = run_campaign(campaign, options);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.skipped, first.total);

  std::ifstream after(path);
  std::stringstream after_bytes;
  after_bytes << after.rdbuf();
  EXPECT_EQ(after_bytes.str(), before_bytes.str());

  // Growing the grid and resuming executes only the new cells.
  CampaignSpec grown = campaign;
  grown.sizes.push_back(7);
  const CampaignReport third = run_campaign(grown, options);
  EXPECT_EQ(third.skipped, first.total);
  EXPECT_EQ(third.executed, expand(grown).size() - first.total);

  std::remove(path.c_str());
}

TEST(CampaignRun, MalformedStoreLineReportsLineNumber) {
  std::stringstream store(provenance_line(current_provenance()) + "\n" +
                          "this is not json\n");
  try {
    read_result_store(store);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CampaignStore, RowsCarryTheSchemaVersion) {
  CampaignRow row;
  row.spec = sample_spec();
  row.fingerprint = fingerprint(row.spec);
  EXPECT_NE(row_line(row).find("\"v\":4"), std::string::npos);
  // And the line round-trips.
  const CampaignRow back =
      campaign_row_from_json(util::Json::parse(row_line(row)));
  EXPECT_EQ(row_line(back), row_line(row));
}

TEST(CampaignStore, MismatchedSchemaVersionIsRejected) {
  // A pre-versioning (v1) store row: no "v" member.
  std::stringstream v1("{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                       "{\"algorithm\":\"KnownNNoChirality\",\"n\":6}}\n");
  try {
    read_result_store(v1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("schema version 1"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }

  // Superseded and future versions are rejected just the same.
  std::stringstream v2("{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                       "{\"algorithm\":\"KnownNNoChirality\",\"n\":6},"
                       "\"v\":2}\n");
  EXPECT_THROW(read_result_store(v2), std::invalid_argument);
  std::stringstream v9("{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                       "{\"algorithm\":\"KnownNNoChirality\",\"n\":6},"
                       "\"v\":9}\n");
  EXPECT_THROW(read_result_store(v9), std::invalid_argument);

  // A v4 row under a header whose provenance claims an older schema: the
  // header itself is rejected.
  std::stringstream old_header(
      "{\"dring\":{\"build\":\"0x0\",\"engine\":\"dring-1.4.0\","
      "\"schema\":3}}\n");
  try {
    read_result_store(old_header);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("schema v3"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignStore, CanonicalOrderIsTotalForDuplicateFingerprints) {
  // Three distinct payloads forced onto one fingerprint (a
  // hand-concatenated store): canonical order must fall back to the full
  // line and be a real sort, whatever the input order.
  std::vector<CampaignRow> rows;
  for (const Round r : {30, 20, 10}) {
    CampaignRow row;
    row.spec = sample_spec();
    row.fingerprint = 42;
    row.outcome.rounds = r;
    rows.push_back(row);
  }
  sort_canonical(rows);
  std::vector<std::string> lines = row_lines(rows);
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
  std::vector<CampaignRow> again = {rows[1], rows[2], rows[0]};
  sort_canonical(again);
  EXPECT_EQ(row_lines(again), lines);
}

TEST(CampaignShard, PartitionsAreDisjointCoveringAndPositionIndependent) {
  const std::vector<ScenarioSpec> all = expand(sample_campaign());
  const int m = 3;
  std::unordered_set<std::uint64_t> seen;
  std::size_t covered = 0;
  for (int i = 0; i < m; ++i) {
    const std::vector<ScenarioSpec> shard = shard_filter(all, i, m);
    covered += shard.size();
    for (const ScenarioSpec& spec : shard) {
      EXPECT_TRUE(seen.insert(fingerprint(spec)).second)
          << "cell on two shards";
    }
  }
  EXPECT_EQ(covered, all.size());
  EXPECT_EQ(shard_filter(all, 0, 1).size(), all.size());
  EXPECT_THROW(shard_filter(all, 2, 2).size(), std::invalid_argument);
  EXPECT_THROW(shard_filter(all, -1, 2).size(), std::invalid_argument);

  // Shard assignment follows cell identity, not grid position: growing an
  // axis never moves an existing cell to a different shard.
  CampaignSpec grown = sample_campaign();
  grown.sizes.push_back(11);
  std::unordered_set<std::uint64_t> shard0;
  for (const ScenarioSpec& spec : shard_filter(all, 0, m))
    shard0.insert(fingerprint(spec));
  for (const ScenarioSpec& spec : shard_filter(expand(grown), 0, m))
    shard0.erase(fingerprint(spec));
  EXPECT_TRUE(shard0.empty()) << "a cell left its shard under axis growth";
}

TEST(CampaignMerge, ShardedRunMergesToTheSingleProcessStore) {
  const std::string single = testing::TempDir() + "merge_single.jsonl";
  const std::string shard0 = testing::TempDir() + "merge_shard0.jsonl";
  const std::string shard1 = testing::TempDir() + "merge_shard1.jsonl";

  const CampaignSpec campaign = tiny_campaign();
  CampaignOptions options;
  options.threads = 2;
  options.out_path = single;
  run_campaign(campaign, options);

  options.shard_count = 2;
  options.shard_index = 0;
  options.out_path = shard0;
  const CampaignReport r0 = run_campaign(campaign, options);
  options.shard_index = 1;
  options.out_path = shard1;
  const CampaignReport r1 = run_campaign(campaign, options);
  EXPECT_EQ(r0.executed + r1.executed, expand(campaign).size());
  EXPECT_GT(r0.executed, 0u);
  EXPECT_GT(r1.executed, 0u);

  const StoreMerge merge = merge_result_stores(
      std::vector<ResultStore>{read_result_store_file(shard0),
                               read_result_store_file(shard1)});
  ASSERT_TRUE(merge.ok());
  EXPECT_EQ(merge.provenance, current_provenance());
  EXPECT_EQ(row_lines(merge.rows),
            row_lines(read_result_store_file(single).rows));

  std::remove(single.c_str());
  std::remove(shard0.c_str());
  std::remove(shard1.c_str());
}

TEST(CampaignMerge, IsIdempotentAndDetectsConflicts) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  std::vector<CampaignRow> rows = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin(), specs.begin() + 4), 2);
  sort_canonical(rows);

  // Self-merge is the identity; a subset union restores the whole.
  const StoreMerge self = merge_result_stores({rows, rows});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(row_lines(self.rows), row_lines(rows));

  std::vector<CampaignRow> front(rows.begin(), rows.begin() + 2);
  std::vector<CampaignRow> back(rows.begin() + 1, rows.end());
  const StoreMerge split = merge_result_stores({front, back});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(row_lines(split.rows), row_lines(rows));

  // Same fingerprint, different payload = conflict, not a silent union.
  std::vector<CampaignRow> clashing = rows;
  clashing[0].outcome.rounds += 1;
  const StoreMerge conflict = merge_result_stores({rows, clashing});
  EXPECT_FALSE(conflict.ok());
  ASSERT_EQ(conflict.conflicts.size(), 1u);
  EXPECT_EQ(conflict.conflicts[0].first.fingerprint, rows[0].fingerprint);
  // Non-conflicting rows still merge.
  EXPECT_EQ(conflict.rows.size(), rows.size());
}

TEST(CampaignDiff, DetectsAddedRemovedAndChangedRows) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  std::vector<CampaignRow> a = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin(), specs.begin() + 4), 2);
  std::vector<CampaignRow> b = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin() + 1, specs.begin() + 5), 2);
  b[0].outcome.rounds += 1;  // simulate a cross-commit behaviour change

  const StoreDiff diff = diff_result_stores(a, b);
  EXPECT_EQ(diff.only_a.size(), 1u);
  EXPECT_EQ(diff.only_b.size(), 1u);
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].first.fingerprint, b[0].fingerprint);
  EXPECT_FALSE(diff.identical());

  EXPECT_TRUE(diff_result_stores(a, a).identical());
}

// --- crash-safe writes and torn-store recovery ---------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

/// Simulate an interrupted write: drop the final `bytes` bytes of `path`.
void chop_tail(const std::string& path, std::size_t bytes) {
  std::string content = slurp(path);
  ASSERT_GT(content.size(), bytes);
  content.resize(content.size() - bytes);
  std::ofstream(path, std::ios::trunc) << content;
}

TEST(CampaignStore, TornTrailingRowStrictThrowsLenientRecovers) {
  const std::string path = testing::TempDir() + "torn_store.jsonl";
  std::remove(path.c_str());
  CampaignOptions options;
  options.threads = 2;
  options.out_path = path;
  run_campaign(tiny_campaign(), options);
  const std::size_t rows = read_result_store_file(path).rows.size();
  chop_tail(path, 10);

  // Strict read: fatal, and the diagnostic names the file, the line and
  // quotes the head of the fragment so the operator can see what tore.
  const std::size_t last_line = rows + 1;  // line 1 is the header
  try {
    read_result_store_file(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line " + std::to_string(last_line)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find('"'), std::string::npos) << what;
  }

  // Lenient read: exactly the torn row is dropped, and the recovery
  // record says which line so resume can report what it is re-running.
  StoreReadRecovery recovery;
  const ResultStore lenient = read_result_store_file(path, &recovery);
  EXPECT_TRUE(recovery.dropped_partial);
  EXPECT_EQ(recovery.line_no, last_line);
  EXPECT_FALSE(recovery.snippet.empty());
  EXPECT_EQ(lenient.rows.size(), rows - 1);
  EXPECT_EQ(lenient.provenance, current_provenance());
}

TEST(CampaignStore, LenientReadStillRejectsMidFileCorruption) {
  CampaignRow row;
  row.spec = sample_spec();
  row.fingerprint = fingerprint(row.spec);
  // Garbage BETWEEN valid lines is corruption, not an interrupted write —
  // leniency must not paper over it.
  std::stringstream store(provenance_line(current_provenance()) + "\n" +
                          "garbage mid-file\n" + row_line(row) + "\n");
  StoreReadRecovery recovery;
  EXPECT_THROW(read_result_store(store, &recovery), std::invalid_argument);
  EXPECT_FALSE(recovery.dropped_partial);
}

TEST(CampaignStore, LenientReadStillRejectsSemanticallyBadLastLine) {
  CampaignRow row;
  row.spec = sample_spec();
  row.fingerprint = fingerprint(row.spec);
  // The last line PARSES but carries a future schema version: that is a
  // real mismatch, not a torn write, and stays fatal in lenient mode.
  std::stringstream store(provenance_line(current_provenance()) + "\n" +
                          row_line(row) + "\n" +
                          "{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                          "{\"algorithm\":\"KnownNNoChirality\",\"n\":6},"
                          "\"v\":9}\n");
  StoreReadRecovery recovery;
  EXPECT_THROW(read_result_store(store, &recovery), std::invalid_argument);
  EXPECT_FALSE(recovery.dropped_partial);
}

TEST(CampaignStore, ResumeRepairsATornStore) {
  const std::string path = testing::TempDir() + "torn_resume.jsonl";
  std::remove(path.c_str());
  const CampaignSpec campaign = tiny_campaign();
  CampaignOptions options;
  options.threads = 2;
  options.out_path = path;
  const CampaignReport first = run_campaign(campaign, options);
  const std::string pristine = slurp(path);
  chop_tail(path, 10);

  // Resume treats the torn row's cell as missing: it re-runs exactly that
  // one cell and the atomic rewrite restores the original bytes.
  options.resume = true;
  const CampaignReport repaired = run_campaign(campaign, options);
  EXPECT_EQ(repaired.executed, 1u);
  EXPECT_EQ(repaired.skipped, first.total - 1);
  EXPECT_EQ(slurp(path), pristine);
  std::remove(path.c_str());
}

TEST(CampaignStore, WritesAreAtomicWithNoTmpSiblings) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "atomic_write_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/store.jsonl";

  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  std::vector<CampaignRow> rows = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin(), specs.begin() + 2), 2);
  sort_canonical(rows);
  write_result_store(path, rows);

  // The .tmp sibling the crash-safe write stages through must be gone,
  // and the store must be the only file left.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().string(), path);
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos);
  }
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(read_result_store_file(path).rows.size(), 2u);
  fs::remove_all(dir);
}

TEST(CampaignDiff, SeparatesPresenceFromPayloadChanges) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  const std::vector<CampaignRow> a = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin(), specs.begin() + 3), 2);

  // b: row 0 unchanged, row 1's outcome edited, row 2's *spec* edited
  // under the same fingerprint (a hand-edited store, or expansion
  // semantics moving underneath it).  None of these may leak into the
  // presence buckets.
  std::vector<CampaignRow> b = a;
  b[1].outcome.total_moves += 7;
  b[2].spec.max_rounds += 1;

  const StoreDiff diff = diff_result_stores(a, b);
  EXPECT_TRUE(diff.only_a.empty());
  EXPECT_TRUE(diff.only_b.empty());
  ASSERT_EQ(diff.changed.size(), 2u);

  // And a row present in only one store is never reported as changed.
  std::vector<CampaignRow> c(a.begin(), a.begin() + 2);
  const StoreDiff presence = diff_result_stores(a, c);
  EXPECT_EQ(presence.only_a.size(), 1u);
  EXPECT_TRUE(presence.only_b.empty());
  EXPECT_TRUE(presence.changed.empty());
}

}  // namespace
}  // namespace dring::core
