// Scratch: reproduce a failing property-sweep scenario with a full trace.
#include <iostream>

#include "adversary/basic_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace dring;

namespace {

util::FlagTable flag_table() {
  util::FlagTable flags(
      "debug_sweep_case",
      "replay one property-sweep scenario (randomized placements from the "
      "seed) with a full trace");
  flags.synopsis("debug_sweep_case [--n N] [--seed S] [--rounds R]"
                 " [--show R]")
      .flag("n", "N", "ring size (default 7)")
      .flag("seed", "S", "property-sweep seed: derives placements, "
                         "orientations and the fixed edge (default 52)")
      .flag("rounds", "R", "round cap (default 120)")
      .flag("show", "R", "print trace rounds up to R (default 120)")
      .flag("help", "", "print this help")
      .note("scratch tool for tests/property_sweep_test.cpp failures");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }

  const NodeId n = static_cast<NodeId>(cli.get_int("n", 7));
  const std::uint64_t seed = cli.get_int("seed", 52);
  const Round rounds = cli.get_int("rounds", 120);

  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::LandmarkNoChirality, n);
  util::Rng rng(seed * 11400714819323198485ULL + n);
  for (auto& start : cfg.start_nodes)
    start = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  for (auto& o : cfg.orientations)
    o = rng.chance(0.5) ? agent::kChiralOrientation
                        : agent::kMirroredOrientation;
  std::cout << "starts:";
  for (auto s : cfg.start_nodes) std::cout << " " << s;
  std::cout << " orientations:";
  for (auto& o : cfg.orientations)
    std::cout << " " << (o == agent::kChiralOrientation ? "ccw" : "cw");
  std::cout << " fixed-edge=" << (seed % n) << "\n";

  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = rounds;
  adversary::FixedEdgeAdversary adv(static_cast<EdgeId>(seed % n));
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);

  for (const sim::RoundTrace& rt : engine->trace()) {
    if (rt.round > cli.get_int("show", 120)) break;
    std::cout << "r" << rt.round << " miss="
              << (rt.missing ? std::to_string(*rt.missing) : "-");
    for (const auto& at : rt.agents) {
      std::cout << " | a" << at.id << "@" << at.node
                << (at.on_port
                        ? (at.port_side == GlobalDir::Ccw ? "/ccw" : "/cw")
                        : "")
                << " " << at.state << (at.active ? "" : " zz")
                << (at.terminated ? " TERM" : "");
    }
    std::cout << "\n";
  }
  std::cout << "explored=" << r.explored << " term=" << r.terminated_agents
            << " premature=" << r.premature_termination << "\n";
  return 0;
}
