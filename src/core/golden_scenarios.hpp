// Fixed-seed golden scenarios pinning exact engine semantics.
//
// Each scenario is a fully-determined run (config + adversary + seed) whose
// per-round trace and final RunResult are digested (sim::trace_digest /
// sim::result_digest).  The digests recorded by tools/record_golden.cpp are
// asserted verbatim in tests/scenario_regression_test.cpp, so any change to
// the engine hot path that alters a single round, move, activation, state
// string or violation is caught immediately.
//
// The set deliberately covers every synchrony/transport model and every
// adversary entry point (activation choice, probing in select_active and in
// choose_missing_edge, port tie-breaking, scripted removals).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "sim/trace_io.hpp"

namespace dring::core {

/// Digest pair of one executed golden scenario.
struct GoldenRun {
  std::uint64_t trace = 0;
  std::uint64_t result = 0;
};

/// A named, self-contained deterministic scenario.
struct GoldenScenario {
  std::string name;
  std::function<GoldenRun()> run;
};

namespace golden_detail {

inline GoldenRun execute(ExplorationConfig cfg, sim::Adversary* adv) {
  cfg.engine.record_trace = true;
  auto engine = make_engine(cfg, adv);
  const sim::RunResult r = engine->run(cfg.stop);
  return {sim::trace_digest(engine->trace()), sim::result_digest(r)};
}

}  // namespace golden_detail

/// The golden scenario suite (stable order; append-only).
inline std::vector<GoldenScenario> golden_scenarios() {
  using algo::AlgorithmId;
  namespace gd = golden_detail;
  std::vector<GoldenScenario> set;

  set.push_back({"fsync-knownN-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 12);
    cfg.stop.max_rounds = 400;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 101);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-unconscious-null", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 9);
    cfg.stop.max_rounds = 200;
    sim::NullAdversary adv;
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-block-agent-probe", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 10);
    cfg.stop.max_rounds = 300;
    cfg.stop.stop_when_explored = false;
    adversary::BlockAgentAdversary adv(0);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"fsync-landmark-fig2-script", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 10);
    cfg.start_nodes = {2, 3};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.stop.max_rounds = 100;
    adversary::ScriptedEdgeAdversary adv(adversary::make_fig2_script(10, 2),
                                         "fig2");
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-ns-random", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, 10);
    cfg.model = sim::Model::SSYNC_NS;
    cfg.stop.max_rounds = 500;
    cfg.stop.stop_when_explored = false;
    adversary::RandomAdversary adv(0.4, 0.6, 303);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-ns-first-mover-probe", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 8);
    cfg.model = sim::Model::SSYNC_NS;
    cfg.stop.max_rounds = 400;
    cfg.stop.stop_when_all_terminated = false;
    adversary::NsFirstMoverAdversary adv;
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-bound-targeted", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, 8);
    cfg.stop.max_rounds = 5000;
    adversary::TargetedRandomAdversary adv(0.5, 0.6, 404);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-sliding-window-probe", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, 10);
    cfg.start_nodes = {4, 0};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.fairness_window = 65536;
    cfg.stop.max_rounds = 50000;
    cfg.stop.stop_when_explored_and_one_terminated = true;
    adversary::SlidingWindowAdversary adv(0, 1);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-pt-3agents-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, 9);
    cfg.stop.max_rounds = 20000;
    adversary::TargetedRandomAdversary adv(0.6, 0.55, 606);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-unconscious-targeted", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, 8);
    cfg.stop.max_rounds = 5000;
    adversary::TargetedRandomAdversary adv(0.5, 0.55, 505);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-segment-seal", [] {
    ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, 8);
    cfg.stop.max_rounds = 2000;
    adversary::SegmentSealAdversary adv(1, 5);
    return gd::execute(cfg, &adv);
  }});

  set.push_back({"ssync-et-3agents-exactn", [] {
    ExplorationConfig cfg =
        default_config(AlgorithmId::ETBoundNoChirality, 8);
    cfg.stop.max_rounds = 20000;
    adversary::TargetedRandomAdversary adv(0.55, 0.6, 707);
    return gd::execute(cfg, &adv);
  }});

  return set;
}

}  // namespace dring::core
