// The bookkeeping variables maintained by the paper's algorithms
// (Section 3, "the following variables are maintained by the algorithms").
//
// All counters tick per *activation*: an agent cannot observe rounds while
// asleep, and in FSYNC activations coincide with rounds, which is the
// setting in which the paper's round-count bounds (3N-6, 7n-1, ...) are
// stated.  See DESIGN.md, Semantics decision 3.
#pragma once

#include <cstdint>

namespace dring::agent {

/// Paper counters (Ttime/Tsteps/Etime/Esteps/Btime/Ntime) plus the net
/// displacement tracking used to implement Tnodes and landmark distance.
struct Counters {
  // Rounds (activations) and edge traversals since the beginning.
  std::int64_t Ttime = 0;
  std::int64_t Tsteps = 0;
  // Rounds and traversals since the last call of procedure Explore
  // (i.e. since entering the current state).
  std::int64_t Etime = 0;
  std::int64_t Esteps = 0;
  // Consecutive rounds currently spent waiting on a port.
  std::int64_t Btime = 0;
  // Rounds since the agent learned the ring size n (0 while unknown).
  std::int64_t Ntime = 0;

  // Net displacement from the start node, in local units (+1 per move to
  // the agent's local left), with running extremes.  Invisible node IDs
  // mean an agent can only perceive exploration through displacement.
  std::int64_t net = 0;
  std::int64_t min_net = 0;
  std::int64_t max_net = 0;

  /// Paper's Tnodes: the number of distinct nodes the agent perceives to
  /// have explored (contiguous displacement range; may exceed the actual
  /// ring size when the agent has unknowingly wrapped around).
  std::int64_t Tnodes() const { return max_net - min_net + 1; }

  /// Apply one successful traversal towards local `left_units` (+1 left,
  /// -1 right).
  void apply_step(int left_units) {
    Tsteps += 1;
    Esteps += 1;
    net += left_units;
    if (net < min_net) min_net = net;
    if (net > max_net) max_net = net;
  }

  /// Reset the per-Explore counters (called when a state (re)starts its
  /// Explore/LExplore procedure).
  void reset_explore() {
    Etime = 0;
    Esteps = 0;
  }
};

}  // namespace dring::agent
