#include "algo/unconscious_exploration.hpp"

namespace dring::algo {

using agent::Snapshot;
using agent::StepResult;

UnconsciousExploration::UnconsciousExploration(std::int64_t initial_guess,
                                               std::int64_t growth_factor)
    : CloneableMachine(agent::Knowledge{}, Init),
      guess_(initial_guess < 1 ? 1 : initial_guess),
      growth_factor_(growth_factor < 2 ? 2 : growth_factor) {}

void UnconsciousExploration::enter_state(int state, const Snapshot& snap) {
  switch (state) {
    case Reverse:
      dir_ = opposite(dir_);
      break;
    case Keep:
      guess_ *= growth_factor_;
      break;
    case Bounce:
      // Explore(opposite(dir)) forever: fold the direction flip into dir_.
      dir_ = opposite(dir_);
      break;
    case Forward:
      // Keeps the direction it was travelling; if caught while blocked on a
      // port, that is the port's direction.
      if (snap.on_port) dir_ = snap.port_dir;
      break;
    default:
      break;
  }
}

StepResult UnconsciousExploration::guarded_explore(const Snapshot& snap) {
  if (!just_entered()) {
    if (c_.Etime >= 2 * guess_ && c_.Btime > guess_)
      return StepResult::go(Reverse);
    if (c_.Etime >= 2 * guess_) return StepResult::go(Keep);
    if (catches(snap, dir_)) return StepResult::go(Bounce);
    if (caught(snap)) return StepResult::go(Forward);
  }
  return StepResult::move(dir_);
}

StepResult UnconsciousExploration::run_state(int state, const Snapshot& snap) {
  switch (state) {
    case Init:
    case Reverse:
    case Keep:
      return guarded_explore(snap);
    case Bounce:
    case Forward:
      return StepResult::move(dir_);
    default:
      return StepResult::stay();
  }
}

std::string UnconsciousExploration::name_of(int state) const {
  switch (state) {
    case Init: return "Init";
    case Reverse: return "Reverse";
    case Keep: return "Keep";
    case Bounce: return "Bounce";
    case Forward: return "Forward";
  }
  return "?";
}

}  // namespace dring::algo
