// Ablation studies for the design choices DESIGN.md calls out — not paper
// tables, but the natural "what if" questions around them:
//
//  A. Bound looseness (Th. 3): KnownNNoChirality always runs 3N-6 rounds,
//     so a loose bound N = c*n costs a linear factor — measured curve.
//  B. Guess policy (Th. 5): UnconsciousExploration's initial guess and
//     growth factor vs. exploration time on hostile rings.
//  C. Window size (Th. 13): the sliding-window adversary's forced moves as
//     a function of the initial window x — the x*(N-x) parabola, with the
//     predicted maximum at x = n/2.
//  D. Determinism vs randomness: the paper's deterministic unconscious
//     protocol vs a random-walk baseline (the related-work approach [4])
//     under identical adversaries.
//
// Every ablation builds its scenario matrix up front and runs it on the
// run_sweep worker pool (--threads=N, default all hardware threads); the
// custom-engine cells (hand-tuned guess policies, random-walk brains) ride
// along as run_custom tasks. Results are identical for any thread count.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/random_walk.hpp"
#include "algo/unconscious_exploration.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

/// The hand-built two-agent engine shared by ablations B and D: mirrored
/// orientations, custom brains, FSYNC, stop when explored.
sim::RunResult run_two_agent_custom(
    NodeId n, Round max_rounds,
    const std::function<std::unique_ptr<agent::Brain>(int)>& make_brain,
    const std::function<std::unique_ptr<sim::Adversary>()>& make_adversary) {
  sim::EngineOptions opts;
  sim::Engine engine(n, std::nullopt, sim::Model::FSYNC, opts);
  for (int i = 0; i < 2; ++i) {
    engine.add_agent(static_cast<NodeId>(i * n / 2),
                     i == 0 ? agent::kChiralOrientation
                            : agent::kMirroredOrientation,
                     make_brain(i));
  }
  const std::unique_ptr<sim::Adversary> adv = make_adversary();
  engine.set_adversary(adv.get());
  sim::StopPolicy stop;
  stop.max_rounds = max_rounds;
  stop.stop_when_explored = true;
  stop.stop_when_all_terminated = false;
  return engine.run(stop);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));

  // --- A: bound looseness ---------------------------------------------------
  std::cout << "=== Ablation A: cost of a loose upper bound (Th. 3) ===\n\n";
  {
    const NodeId n = 16;
    const std::vector<NodeId> bounds = {16, 24, 32, 48, 64};
    std::vector<core::ScenarioTask> tasks;
    for (const NodeId N : bounds) {
      core::ScenarioTask task;
      task.cfg = core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.upper_bound = N;
      task.cfg.stop.max_rounds = 10 * N;
      task.make_adversary = [N]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0,
                                                                    5 + N);
      };
      tasks.push_back(std::move(task));
    }
    const auto results = core::run_sweep(tasks, pool);

    util::Table t({"n", "N", "N/n", "termination round", "rounds / n"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId N = bounds[i];
      Round term = 0;
      for (const auto& a : results[i].agents)
        term = std::max(term, a.termination_round);
      t.add_row({std::to_string(n), std::to_string(N),
                 util::fmt_double(static_cast<double>(N) / n, 2),
                 std::to_string(term),
                 util::fmt_double(static_cast<double>(term) / n, 2)});
    }
    t.print(std::cout);
    std::cout << "Termination is always 3N-5: the algorithm pays for the "
                 "bound, not the ring — knowledge quality is performance.\n";
  }

  // --- B: guess policy --------------------------------------------------------
  std::cout << "\n=== Ablation B: guess policy of UnconsciousExploration "
               "(Th. 5) ===\n\n";
  {
    const std::vector<std::pair<std::int64_t, std::int64_t>> policies = {
        {2, 2}, {2, 4}, {8, 2}, {32, 2}};
    const std::vector<NodeId> ns = {12, 24};

    std::vector<core::ScenarioTask> tasks;
    for (const auto& [g0, factor] : policies) {
      for (const NodeId n : ns) {
        for (int seed = 1; seed <= seeds; ++seed) {
          core::ScenarioTask task;
          // A perpetually-removed edge makes the reversal machinery (and
          // hence the guess policy) the bottleneck: agents pinned on the
          // missing edge only turn after being blocked for > G rounds.
          task.run_custom = [g0 = g0, factor = factor, n, seed] {
            return run_two_agent_custom(
                n, 4000LL * n,
                [&](int) {
                  return std::make_unique<algo::UnconsciousExploration>(
                      g0, factor);
                },
                [&]() -> std::unique_ptr<sim::Adversary> {
                  return std::make_unique<adversary::FixedEdgeAdversary>(
                      static_cast<EdgeId>((n / 4 + seed) % n));
                });
          };
          tasks.push_back(std::move(task));
        }
      }
    }
    const auto results = core::run_sweep(tasks, pool);

    util::Table t({"initial G", "growth", "n", "worst exploration round",
                   "mean (over seeds)"});
    std::size_t index = 0;
    for (const auto& [g0, factor] : policies) {
      for (const NodeId n : ns) {
        long long worst = 0, sum = 0;
        int count = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          const sim::RunResult& r = results[index++];
          if (r.explored) {
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
            ++count;
          }
        }
        t.add_row({std::to_string(g0), std::to_string(factor),
                   std::to_string(n), util::fmt_count(worst),
                   count ? util::fmt_double(double(sum) / count, 1) : "-"});
      }
    }
    t.print(std::cout);
    std::cout << "With a perpetually missing edge the blocked-wait before a "
                 "reversal is proportional to the current guess: inflating "
                 "the initial guess (or the growth factor) directly inflates "
                 "the exploration time, which is why the paper starts at "
                 "G = 2 and doubles.\n";
  }

  // --- C: window size parabola -------------------------------------------------
  std::cout << "\n=== Ablation C: sliding-window forced moves vs window "
               "size x (Th. 13) ===\n\n";
  {
    const NodeId n = 32;
    const std::vector<NodeId> windows = {4, 8, 12, 16, 20, 24, 28};
    std::vector<core::ScenarioTask> tasks;
    for (const NodeId x : windows) {
      core::ScenarioTask task;
      task.cfg =
          core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
      task.cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      task.cfg.engine.fairness_window = 1 << 20;
      task.cfg.stop.max_rounds = 4000LL * n * n;
      task.cfg.stop.stop_when_explored_and_one_terminated = true;
      task.make_adversary = [] {
        return std::make_unique<adversary::SlidingWindowAdversary>(0, 1);
      };
      tasks.push_back(std::move(task));
    }
    const auto results = core::run_sweep(tasks, pool);

    util::Table t({"x", "x*(N-x)", "forced moves", "ratio"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NodeId x = windows[i];
      const long long ref = static_cast<long long>(x) * (n - x);
      t.add_row({std::to_string(x), util::fmt_count(ref),
                 util::fmt_count(results[i].total_moves),
                 util::fmt_double(static_cast<double>(results[i].total_moves) /
                                      std::max(ref, 1LL),
                                  2)});
    }
    t.print(std::cout);
    std::cout << "Every window size forces at least 2*x*(N-x) moves (ratio "
                 ">= 2 throughout), the Theorem 13 bound; the total measured "
                 "cost behaves like 2x(N-x) + (N-x)^2 — the chaser re-walks "
                 "a growing span for each of the N-x phases — so smaller "
                 "windows force even more absolute moves in this "
                 "realization.\n";
  }

  // --- D: deterministic vs random walk ------------------------------------------
  std::cout << "\n=== Ablation D: deterministic protocol vs random-walk "
               "baseline ===\n\n";
  {
    const std::vector<NodeId> ns = {8, 16, 32};
    std::vector<core::ScenarioTask> tasks;
    for (const NodeId n : ns) {
      for (const bool deterministic : {true, false}) {
        const Round budget = 40'000LL + 4000LL * n;
        for (int seed = 1; seed <= seeds; ++seed) {
          core::ScenarioTask task;
          task.run_custom = [n, deterministic, seed, budget] {
            return run_two_agent_custom(
                n, budget,
                [&](int i) -> std::unique_ptr<agent::Brain> {
                  if (deterministic)
                    return std::make_unique<algo::UnconsciousExploration>();
                  return std::make_unique<algo::RandomWalk>(1000ULL * seed +
                                                            i);
                },
                [&]() -> std::unique_ptr<sim::Adversary> {
                  return std::make_unique<adversary::TargetedRandomAdversary>(
                      0.7, 1.0, 23ULL * seed + n);
                });
          };
          tasks.push_back(std::move(task));
        }
      }
    }
    const auto results = core::run_sweep(tasks, pool);

    util::Table t({"n", "protocol", "explored (runs)",
                   "worst exploration round", "mean round"});
    std::size_t index = 0;
    for (const NodeId n : ns) {
      for (const bool deterministic : {true, false}) {
        long long worst = 0, sum = 0;
        int explored = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          const sim::RunResult& r = results[index++];
          if (r.explored) {
            ++explored;
            worst = std::max(worst, (long long)r.explored_round);
            sum += r.explored_round;
          }
        }
        t.add_row({std::to_string(n),
                   deterministic ? "UnconsciousExploration (Th. 5)"
                                 : "RandomWalk baseline [4]",
                   std::to_string(explored) + "/" + std::to_string(seeds),
                   util::fmt_count(worst),
                   explored ? util::fmt_double(double(sum) / explored, 1)
                            : "-"});
      }
    }
    t.print(std::cout);
    std::cout << "The deterministic protocol explores in O(n) against the "
                 "targeted adversary; the random walk's expected cover time "
                 "is quadratic and degrades much faster with n.\n";
  }
  return 0;
}
