// Declarative scenario descriptions and campaign grids.
//
// A ScenarioSpec is the data-only counterpart of an ExplorationConfig +
// adversary pair: algorithm by registry name, ring size, agent count k
// (0 = the theorem's count; k > the theorem's count opens the many-agent
// extension axis), an adversary family with parameters (including the
// T-interval-connectivity wrapper, T = 1 recovering the paper's model),
// a seed and a round cap.  Being plain data, a spec can be serialized to
// JSON, fingerprinted, expanded from a campaign grid, shipped to a worker
// pool, and diffed across commits — none of which a std::function-carrying
// ScenarioTask can do.
//
// A CampaignSpec is a grid over those axes; expand() takes the cartesian
// product into a flat std::vector<ScenarioSpec>.  Per-cell seeds derive
// from (salt, cell fingerprint, seed index), so adding values to an axis
// never changes the seeds — or fingerprints — of existing cells: growing a
// campaign and re-running with --resume only executes the new rows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/json.hpp"

namespace dring::core {

/// Adversary family + parameters, as data.  Families:
///
///   "null"            no removals, everyone active
///   "random"          uniform removals (remove_prob) + SSYNC activation
///   "targeted-random" removes a mover's edge (target_prob), else uniform
///   "fixed-edge"      perpetually removes `edge`
///   "block-agent"     Obs. 1: always removes agent `victim`'s desired edge
///   "prevent-meeting" Obs. 2: removes an edge only to prevent a meeting
///   "ns-first-mover"  Th. 9: starves movers under NS
///   "rotation"        activates one agent at a time (`dwell` rounds each)
///   "fig2"            the exact Figure 2 worst-case schedule anchored at
///                     node `edge` (needs the scenario's ring size)
///   "sliding-window"  Th. 13/15 move-forcing window (leader 0, chaser 1)
///   "head-on-pin"     Th. 10: pin agents 0 and 1 on one edge forever
///   "segment-seal"    Th. 19: seal the segment between `edge` and `edge_b`
///   "edge-window"     remove `edge` during rounds [window_lo, window_hi]
///                     (the scripted single-interval schedules of the
///                     figure artifacts)
///
/// Any family can additionally be wrapped in the T-interval-connectivity
/// decorator by setting t_interval > 1 (adversary/t_interval.hpp).
struct AdversarySpec {
  std::string family = "null";
  double remove_prob = 0.5;      ///< "random"
  double target_prob = 0.5;      ///< "targeted-random"
  double activation_prob = 1.0;  ///< "random" / "targeted-random"
  EdgeId edge = 0;               ///< "fixed-edge"/"segment-seal"/"edge-window";
                                 ///< anchor node for "fig2"
  EdgeId edge_b = 0;             ///< "segment-seal": the second seal edge
  AgentId victim = 0;            ///< "block-agent"
  Round dwell = 1;               ///< "rotation"
  Round window_lo = 0;           ///< "edge-window": first removal round
  Round window_hi = 0;           ///< "edge-window": last removal round
  Round t_interval = 1;          ///< wrap in TIntervalAdversary when > 1
};

/// One fully-determined scenario, as data.
struct ScenarioSpec {
  std::string algorithm = "KnownNNoChirality";  ///< registry name
  NodeId n = 8;
  /// 0 = the theorem's agent count. Larger values re-derive the default
  /// placements (even spread) and orientations (alternating when the
  /// algorithm does not require chirality) for k agents.
  int num_agents = 0;
  AdversarySpec adversary;
  std::uint64_t seed = 0;
  /// 0 = default budget (2000*n + 200000 rounds).
  Round max_rounds = 0;
  /// Optional synchrony-model override ("FSYNC", "SSYNC/NS", "SSYNC/PT",
  /// "SSYNC/ET"); empty = the algorithm's native model.
  std::string model;
  /// Explicit start nodes (empty = the theorem's default placement).
  /// Needed by the paper-artifact scenarios lifted from the proof
  /// constructions (Figure 2, the sliding-window dance).
  std::vector<NodeId> start_nodes;
  /// Per-agent orientations: one char per agent, 'c' = chiral (local left
  /// maps to global Ccw), 'm' = mirrored.  Empty = the algorithm's default
  /// orientation policy.
  std::string orientations;
  /// Landmark node override; applied only when the algorithm's default
  /// config places a landmark.  -1 = keep the default placement.
  NodeId landmark = -1;
  /// Engine fairness-window override (0 = the engine default).
  Round fairness_window = 0;
  /// Stop as soon as the ring is explored and one agent terminated — the
  /// partial-termination measurement mode of the table benches.
  bool stop_explored_one_terminated = false;
  /// Knowledge overrides: replace the theorem's default bound N = n /
  /// exact-n knowledge with a looser (or wrong) value.  Applied only when
  /// the algorithm carries that kind of knowledge — they never add
  /// knowledge the theorem does not assume.  0 = keep the default.  The
  /// impossibility artifacts (Th. 1/2, Th. 19) and the bound-looseness
  /// ablation are built on these.
  Round upper_bound = 0;
  Round exact_n = 0;
  /// ET-budget engine override (0 = the engine default).
  Round et_budget = 0;
  /// Stop-policy override: "" = the algorithm's default policy,
  /// "explored" = stop as soon as every node is visited (coverage
  /// measurement), "horizon" = never stop early — run the full
  /// max_rounds horizon (the expect-failure mode of the impossibility
  /// artifacts).
  std::string stop_mode;
  /// Free-form variant label for scenarios whose behaviour is not fully
  /// captured by the other fields (hand-built engines behind
  /// ArtifactScenario::run_custom: ablation guess policies, random-walk
  /// baselines, many-agent teams).  Participates in the fingerprint only;
  /// build_config ignores it.
  std::string variant;
};

/// A parameter grid over the scenario axes. Empty axis vectors mean "the
/// single default value": agent_counts -> {0}, adversaries -> {null}, and
/// an empty t_intervals leaves each adversary's own t_interval untouched
/// (a non-empty axis overrides it for every adversary).
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> algorithms;
  std::vector<NodeId> sizes;
  std::vector<int> agent_counts;
  std::vector<AdversarySpec> adversaries;
  std::vector<Round> t_intervals;
  int seeds_per_cell = 1;
  std::uint64_t salt = 1;
  Round max_rounds = 0;  ///< forwarded to every ScenarioSpec
};

// --- spec -> executable ---------------------------------------------------

/// Materialize the engine configuration a spec describes (throws
/// std::invalid_argument on unknown algorithm/model names or bad counts).
ExplorationConfig build_config(const ScenarioSpec& spec);

/// Thread-safe factory for the spec's adversary (each call builds a fresh
/// private instance; see ScenarioTask::make_adversary).  `n` is the
/// scenario's ring size — required by the "fig2" family, ignored by the
/// others.
std::function<std::unique_ptr<sim::Adversary>()> make_adversary_factory(
    const AdversarySpec& spec, std::uint64_t seed, NodeId n = 0);

/// Full translation to a sweep task.
ScenarioTask to_task(const ScenarioSpec& spec);

// --- identity -------------------------------------------------------------

/// Order-independent 64-bit identity of a spec: FNV-1a over the canonical
/// JSON dump, so equal specs fingerprint equally on every platform. The
/// JSONL result store keys resumability on this value.
std::uint64_t fingerprint(const ScenarioSpec& spec);

/// Canonical "0x%016x" rendering used for seeds, salts and fingerprints
/// throughout the JSON layer (64-bit values exceed JSON's exact-integer
/// range, so they travel as hex strings).
std::string hex_u64(std::uint64_t value);

// --- JSON -----------------------------------------------------------------

util::Json to_json(const AdversarySpec& spec);
util::Json to_json(const ScenarioSpec& spec);
util::Json to_json(const CampaignSpec& spec);
AdversarySpec adversary_spec_from_json(const util::Json& j);
ScenarioSpec scenario_spec_from_json(const util::Json& j);
CampaignSpec campaign_spec_from_json(const util::Json& j);

// --- grid expansion -------------------------------------------------------

/// Cartesian product of the campaign's axes, in a stable order
/// (algorithm, size, agent count, adversary, T, seed index). Seeds are a
/// pure function of (salt, cell identity, seed index) — independent of the
/// cell's position in the grid.
std::vector<ScenarioSpec> expand(const CampaignSpec& campaign);

}  // namespace dring::core
