#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dring::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());

  std::vector<std::size_t> width(cols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  account(header_);
  for (const auto& r : rows_)
    if (!r.separator) account(r.cells);

  auto rule = [&] {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << ' ' << cell << std::string(width[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) {
    if (r.separator) {
      rule();
    } else {
      line(r.cells);
    }
  }
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      const bool quote = cells[i].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[i];
      if (quote) os << '"';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_)
    if (!r.separator) emit(r.cells);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace dring::util
