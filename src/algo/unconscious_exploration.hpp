// Algorithm UnconsciousExploration (paper, Figure 3 / Theorem 5).
//
// FSYNC, two anonymous agents, no chirality, no knowledge of the ring size.
// Explores without terminating (unconscious exploration) in O(n) time.
//
// Each agent guesses the ring size (G, initially 2) and moves in one
// direction for 2G rounds (a "phase"); at the end of a phase it reverses
// direction if it has been blocked for more than G consecutive rounds
// (state Reverse, same G) and keeps direction otherwise (state Keep,
// doubling G).  Catching the other agent locks both directions for good
// (states Bounce / Forward).
//
//   Init:    G <- 2, dir <- left
//   guards (Init / Reverse / Keep):
//     Etime >= 2G and Btime > G : Reverse      (reverse direction)
//     Etime >= 2G               : Keep         (double the guess)
//     catches                   : Bounce       (reverse forever)
//     caught                    : Forward      (keep direction forever)
//
// Note: Figure 3 also assigns F <- 2G when entering Reverse; F is never
// read anywhere in the paper, so it is omitted here (DESIGN.md, D11).
#pragma once

#include "agent/explore_base.hpp"

namespace dring::algo {

class UnconsciousExploration final
    : public agent::CloneableMachine<UnconsciousExploration> {
 public:
  enum State : int { Init, Reverse, Keep, Bounce, Forward };

  /// The paper fixes the initial guess to 2 and doubles it each Keep.
  /// Both are exposed as parameters for the ablation bench
  /// (bench_ablations): `initial_guess` >= 1, `growth_factor` >= 2.
  explicit UnconsciousExploration(std::int64_t initial_guess = 2,
                                  std::int64_t growth_factor = 2);

  std::string algorithm_name() const override {
    return "UnconsciousExploration";
  }

  std::int64_t guess() const { return guess_; }
  Dir dir() const { return dir_; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  void enter_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int state) const override;

 private:
  agent::StepResult guarded_explore(const agent::Snapshot& snap);

  std::int64_t guess_ = 2;
  std::int64_t growth_factor_ = 2;
  Dir dir_ = Dir::Left;
};

}  // namespace dring::algo
