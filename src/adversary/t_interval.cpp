#include "adversary/t_interval.hpp"

#include <stdexcept>

namespace dring::adversary {

TIntervalAdversary::TIntervalAdversary(Round interval,
                                       std::unique_ptr<sim::Adversary> inner)
    : interval_(interval), inner_(std::move(inner)) {
  if (interval_ < 1)
    throw std::invalid_argument("TIntervalAdversary: interval must be >= 1");
}

std::vector<bool> TIntervalAdversary::select_active(
    const sim::WorldView& view) {
  if (inner_) return inner_->select_active(view);
  return Adversary::select_active(view);
}

std::optional<EdgeId> TIntervalAdversary::choose_missing_edge(
    const sim::WorldView& view, const std::vector<sim::IntentRecord>& intents) {
  // The inner adversary is consulted every round (its RNG stream and any
  // internal bookkeeping advance exactly as they would unwrapped).
  const std::optional<EdgeId> desired =
      inner_ ? inner_->choose_missing_edge(view, intents) : std::nullopt;
  if (!desired) return std::nullopt;  // removing nothing never violates

  const Round r = view.round();
  if (!held_ || *held_ == *desired || r - held_round_ >= interval_) {
    held_ = desired;
    held_round_ = r;
    return desired;
  }
  // Switching the missing edge while a window still covers the held edge
  // would break T-interval connectivity; keep all edges present instead.
  ++vetoes_;
  return std::nullopt;
}

void TIntervalAdversary::order_port_contenders(
    const sim::WorldView& view, PortRef port,
    std::vector<AgentId>& contenders) {
  if (inner_) inner_->order_port_contenders(view, port, contenders);
}

bool TIntervalAdversary::observes_intents() const {
  return inner_ ? inner_->observes_intents() : false;
}

bool TIntervalAdversary::reorders_contenders() const {
  return inner_ ? inner_->reorders_contenders() : false;
}

std::string TIntervalAdversary::name() const {
  return "t-interval(" + std::to_string(interval_) + ", " +
         (inner_ ? inner_->name() : "null") + ")";
}

}  // namespace dring::adversary
