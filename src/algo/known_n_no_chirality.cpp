#include "algo/known_n_no_chirality.hpp"

#include <stdexcept>

namespace dring::algo {

using agent::Intent;
using agent::Snapshot;
using agent::StepResult;

KnownNNoChirality::KnownNNoChirality(agent::Knowledge k)
    : CloneableMachine(k, Init), bound_n_(k.upper_bound) {
  if (!k.has_upper_bound())
    throw std::invalid_argument("KnownNNoChirality requires an upper bound N");
}

StepResult KnownNNoChirality::run_state(int state, const Snapshot& snap) {
  switch (state) {
    case Init: {
      if (!just_entered()) {
        // Figure 1 writes "Btime = N-1"; read as >= (DESIGN.md, D13): with
        // exact equality two agents pinned head-on before round N-2
        // overshoot N-1 while Ttime < 2N-4 and the guard never fires.
        const bool timeout_blocked =
            c_.Ttime >= 2 * bound_n_ - 4 && c_.Btime >= bound_n_ - 1;
        if (timeout_blocked || failed()) return StepResult::go(Bounce);
        if (catches(snap, Dir::Left)) return StepResult::go(Bounce);
        if (caught(snap)) return StepResult::go(Forward);
        if (c_.Ttime >= 2 * bound_n_ - 4) return StepResult::go(Forward);
      }
      return StepResult::move(Dir::Left);
    }
    case Bounce:
      if (!just_entered() && c_.Ttime >= 3 * bound_n_ - 6)
        return StepResult::terminate();
      return StepResult::move(Dir::Right);
    case Forward:
      if (!just_entered() && c_.Ttime >= 3 * bound_n_ - 6)
        return StepResult::terminate();
      return StepResult::move(Dir::Left);
    default:
      return StepResult::stay();
  }
}

std::string KnownNNoChirality::name_of(int state) const {
  switch (state) {
    case Init: return "Init";
    case Bounce: return "Bounce";
    case Forward: return "Forward";
  }
  return "?";
}

}  // namespace dring::algo
