// In-memory campaign query service: a fingerprint-indexed result cache
// and streaming (mergeable) aggregation.
//
// Every dring_report invocation used to re-read and re-parse the JSONL
// store from scratch — fine for a one-shot batch report, hopeless for
// serving interactive traffic.  The position-independent scenario
// fingerprint is already a cache key; this module exploits it:
//
//   * ResultCache loads one or more stores ONCE into an indexed in-memory
//     structure: rows in canonical store order (so the store bytes can be
//     re-emitted verbatim), an open-addressing hash table on the FNV
//     fingerprint for O(1) point lookup, and lazily-built per-axis value
//     columns + bucket indexes so group-by scans never re-derive axis
//     values from specs.  Cache-derived aggregate and frontier reports
//     are byte-identical to the core/analysis batch path — same member
//     order, same fold arithmetic (pinned by tests/query_test.cpp).
//
//   * StreamingAggregator folds success counts, Wilson CIs, metric
//     min/mean/max and fixed-bucket quantile estimates cell-group by
//     cell-group as rows arrive, so a Monte-Carlo-scale campaign never
//     materializes its full row vector.  All running state is
//     order-independent (counts, integral sums, min/max, bucket counts),
//     so the exact columns — runs/ok/rate/rate CI/samples/min/mean/max —
//     are bit-identical to the batch fold for ANY arrival order and any
//     --threads; median/p95/sd come from the mergeable sketch and are
//     estimates (marked as such in the rendered report).
//
//   * handle_query answers line-delimited JSON requests over a cache —
//     the protocol core of tools/dring_serve (aggregate / frontier /
//     compare / point / cells / stats).  A query touching missing cells
//     returns what exists plus a machine-readable missing-cell manifest
//     whose shard list is compatible with dring_orchestrate resume
//     semantics: simulation is cache-fill.
//
// Telemetry: ResultCache lookups count query.cache.{hits,misses},
// handle_query wraps each request in a query.request span and observes
// query.latency_us — sidecar-only, canonical bytes untouched, like every
// other telemetry surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/analysis.hpp"

namespace dring::core {

// --- fingerprint-indexed result cache ---------------------------------------

class ResultCache {
 public:
  ResultCache();
  /// Index an already-loaded store (rows are brought into canonical order
  /// if they are not already).
  explicit ResultCache(ResultStore store);

  /// Load + union stores from disk (load_result_stores semantics) and
  /// index the result.
  static ResultCache load(const std::vector<std::string>& paths);

  const StoreProvenance& provenance() const { return store_.provenance; }
  const std::vector<CampaignRow>& rows() const { return store_.rows; }
  std::size_t size() const { return store_.rows.size(); }

  /// O(1) point lookup by fingerprint; nullptr when absent.  Counts
  /// query.cache.{hits,misses} (telemetry-gated) and the cache's own
  /// Stats either way.
  const CampaignRow* find(std::uint64_t fingerprint) const;

  /// Group-by aggregate over the cached rows — byte-identical to
  /// aggregate_rows(rows(), ...) (same grouping, member order and fold),
  /// but group keys come from the pre-computed axis columns instead of
  /// per-row spec introspection, and a single-axis group-by walks the
  /// pre-bucketed axis index directly.
  std::vector<GroupRow> aggregate(const std::vector<std::string>& group_keys,
                                  Metric metric) const;

  /// Frontier scan over the cached rows — byte-identical to
  /// detect_frontier(rows(), ...).
  std::vector<FrontierGroup> frontier(const std::vector<std::string>& group_keys,
                                      const std::string& axis,
                                      double threshold) const;

  /// The exact bytes write_result_store would put on disk for this row
  /// set — canonical re-emission, pinned against the source file by the
  /// serve CI gate (loading a store into the cache and re-emitting it is
  /// the identity).
  std::string store_bytes() const;

  /// Pre-computed axis value strings, one per row, in row order (built on
  /// first use, then cached).  `axis` must be canonical.
  const std::vector<std::string>& axis_column(const std::string& axis) const;

  /// Pre-bucketed axis index: (value, ascending row indices) pairs in the
  /// numeric-aware group order the batch path produces.
  struct AxisBucket {
    std::string value;
    std::vector<std::uint32_t> rows;
  };
  const std::vector<AxisBucket>& axis_buckets(const std::string& axis) const;

  /// Lifetime hit/miss counts of find() on this cache.
  struct Stats {
    long long hits = 0;
    long long misses = 0;
  };
  Stats stats() const;

  /// Which of `specs` the cache holds.  `shard_count` maps the missing
  /// cells onto dring_orchestrate shard indices (fingerprint % count —
  /// the same partition dring_campaign --shard uses), so the manifest's
  /// missing-shard list plugs straight into an orchestrator resume run.
  struct CellScan {
    std::vector<const CampaignRow*> present;  ///< spec order
    std::vector<std::uint64_t> missing;       ///< fingerprints, spec order
    std::vector<int> missing_shards;          ///< sorted, unique
  };
  CellScan scan_cells(const std::vector<ScenarioSpec>& specs,
                      int shard_count = 1) const;

 private:
  void build_index();
  /// axis_column's body, for callers already holding lazy_mutex_.
  const std::vector<std::string>& column_locked(const std::string& axis) const;

  ResultStore store_;
  /// Open addressing on the fingerprint: slot holds row index + 1
  /// (0 = empty); capacity is a power of two >= 2x rows.
  std::vector<std::uint32_t> slots_;
  std::uint64_t mask_ = 0;

  mutable std::mutex lazy_mutex_;  ///< guards the lazy axis structures
  mutable std::map<std::string, std::vector<std::string>> columns_;
  mutable std::map<std::string, std::vector<AxisBucket>> buckets_;
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> misses_{0};
};

// --- streaming aggregation ---------------------------------------------------

/// Mergeable fixed-bucket quantile sketch bounds shared by every
/// StreamingAggregator: 0 then a doubling ladder through 2^40 (covers any
/// round/move count the engine can produce).  One fixed layout, so
/// sketches from different workers/shards merge bucket for bucket.
const std::vector<long long>& streaming_quantile_bounds();

class StreamingAggregator {
 public:
  /// `group_keys` are canonicalized on construction (throws on unknown
  /// axes, like the batch path).
  StreamingAggregator(const std::vector<std::string>& group_keys,
                      Metric metric);

  const std::vector<std::string>& group_keys() const { return group_keys_; }
  Metric metric() const { return metric_; }

  /// Fold one row into its cell group.  NOT thread-safe: callers
  /// serialize (the sweep's on_task_result hook already is).
  void add(const CampaignRow& row);
  void add(const ScenarioSpec& spec, const CampaignOutcome& outcome);

  /// Merge another aggregator's state (same keys + metric, or throws) —
  /// the shard/worker reduction path.
  void merge(const StreamingAggregator& other);

  long long rows_folded() const { return folded_; }

  /// The aggregate rows, in the batch path's numeric-aware group order.
  /// runs/ok/premature/violations/rate CI/samples/min/mean/max are exact
  /// and bit-identical to aggregate_rows for any arrival order; median
  /// and p95 are sketch estimates (bucket-interpolated), sd comes from
  /// the running sum of squares.
  std::vector<GroupRow> finish() const;

  /// render_aggregate_report over finish(), with the markdown preamble
  /// noting which columns are sketch estimates.
  std::string render(ReportFormat format) const;

 private:
  struct Cell {
    int runs = 0;
    int successes = 0;
    int premature = 0;
    int violations = 0;
    long long samples = 0;
    double min = 0, max = 0;
    double sum = 0, sum_sq = 0;
    std::vector<long long> bucket_counts;  ///< bounds.size() + 1
  };

  std::vector<std::string> group_keys_;
  Metric metric_;
  std::map<std::vector<std::string>, Cell> cells_;
  long long folded_ = 0;
};

/// Quantile estimate (q in [0,1]) from a fixed-bucket sketch: find the
/// bucket holding rank q*(count-1) and interpolate linearly inside it.
/// Exposed for tests; `counts` has bounds.size() + 1 entries.
double sketch_quantile(const std::vector<long long>& bounds,
                       const std::vector<long long>& counts, long long count,
                       double q);

// --- query protocol (dring_serve) -------------------------------------------

/// Missing-cell manifest for a cells query: mirrors the orchestrator run
/// manifest's campaign/shards/missing keys, so "how do I fill these
/// holes" has the same machine-readable answer in both places
/// (dring_orchestrate --spec ... --shards m --resume).
util::Json missing_cell_manifest(const std::string& campaign_name,
                                 const std::string& spec_path, int shards,
                                 const ResultCache::CellScan& scan);

/// Answer one line-delimited JSON request over the cache.  Requests are
/// objects with an "op" member:
///
///   aggregate  {"op":"aggregate","group_by":["algorithm","n"],
///               "metric":"explored_round","format":"md"}
///   frontier   {"op":"frontier","group_by":["t_interval"],"axis":"n",
///               "threshold":0.5,"format":"md"}
///   compare    {"op":"compare","store":["other.jsonl"],"metric":"rounds",
///               "format":"md"}          (B side loaded from disk per query)
///   point      {"op":"point","fp":"0x..."} or {"op":"point","spec":{...}}
///   cells      {"op":"cells","spec_path":"campaign.json","shards":3}
///              (or "spec":{inline campaign}; optional group_by/metric/
///               format aggregate the present rows)
///   stats      {"op":"stats"}
///
/// Responses are objects: {"ok":true,"op":...,...} with a "report" member
/// carrying rendered report bytes where applicable, plus a "cache"
/// member with this query's hit/miss delta; errors come back as
/// {"ok":false,"error":"..."} — the server never dies on a bad request.
/// Responses are deterministic for a fixed cache + request (latency goes
/// to telemetry, not into the response).
util::Json handle_query(const ResultCache& cache, const util::Json& request);

/// handle_query over a raw request line (parse errors come back as
/// {"ok":false,...} responses too, never exceptions).
util::Json handle_query_line(const ResultCache& cache,
                             const std::string& line);

}  // namespace dring::core
