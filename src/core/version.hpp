// Engine identity for store-level provenance.
//
// Every campaign/artifact result store records which engine produced it
// (core/campaign.hpp, StoreProvenance): the engine's semantic version and
// a hash of the build configuration.  Paired cross-version comparisons
// (`dring_report --compare`) annotate mixes of the two, and the store
// maintenance paths (--resume, --merge) refuse to silently blend rows
// produced by different engines.
//
// Versioning contract:
//   * bump kEngineVersionMinor whenever run semantics change (engine step
//     order, algorithm behaviour, adversary semantics, seed derivation) —
//     i.e. whenever the golden digests (tools/record_golden) or any
//     committed store rows would be regenerated deliberately;
//   * bump kEngineVersionMajor for store-schema or spec-identity breaks
//     (kStoreSchemaVersion bumps, fingerprint changes);
//   * the patch component is free for releases without observable effect
//     on stores.
#pragma once

#include <cstdint>
#include <string>

namespace dring::core {

inline constexpr int kEngineVersionMajor = 1;
inline constexpr int kEngineVersionMinor = 5;
inline constexpr int kEngineVersionPatch = 1;

/// The engine's semantic version as recorded in store provenance, e.g.
/// "dring-1.5.0".
std::string engine_version();

/// FNV-1a fingerprint of the build configuration (compiler identity,
/// language level, optimization/assert settings) — distinguishes stores
/// produced by semantically-equal sources built differently.
std::uint64_t build_flags_fingerprint();

/// build_flags_fingerprint rendered in the canonical "0x%016x" form used
/// throughout the JSON layer.
std::string build_flags_hash();

}  // namespace dring::core
