// Function-composed adversary: build one-off adversaries from lambdas
// without writing a class.  Used heavily in tests and ablation benches:
//
//   adversary::ComposedAdversary adv(
//       /*activation=*/[](const sim::WorldView& v) { ... },
//       /*edge=*/[](const sim::WorldView& v,
//                   const std::vector<sim::IntentRecord>& intents) { ... });
//
// Either hook may be left empty (default behaviour: everyone active / no
// removal).  A tie-break hook can reorder port contenders.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/adversary.hpp"

namespace dring::adversary {

class ComposedAdversary : public sim::Adversary {
 public:
  using ActivationFn = std::function<std::vector<bool>(const sim::WorldView&)>;
  using EdgeFn = std::function<std::optional<EdgeId>(
      const sim::WorldView&, const std::vector<sim::IntentRecord>&)>;
  using TieBreakFn = std::function<void(const sim::WorldView&, PortRef,
                                        std::vector<AgentId>&)>;

  explicit ComposedAdversary(ActivationFn activation = nullptr,
                             EdgeFn edge = nullptr,
                             TieBreakFn tie_break = nullptr,
                             std::string label = "composed")
      : activation_(std::move(activation)),
        edge_(std::move(edge)),
        tie_break_(std::move(tie_break)),
        label_(std::move(label)) {}

  std::vector<bool> select_active(const sim::WorldView& view) override {
    if (activation_) return activation_(view);
    return Adversary::select_active(view);
  }

  std::optional<EdgeId> choose_missing_edge(
      const sim::WorldView& view,
      const std::vector<sim::IntentRecord>& intents) override {
    if (edge_) return edge_(view, intents);
    return std::nullopt;
  }

  void order_port_contenders(const sim::WorldView& view, PortRef port,
                             std::vector<AgentId>& contenders) override {
    if (tie_break_) tie_break_(view, port, contenders);
  }

  // Capability flags mirror the installed hooks (instead of inheriting the
  // conservative base defaults): only an edge hook can read the intent
  // records, only a tie-break hook can reorder contenders.  Without this
  // the engine would build IntentRecords — and take the slow per-port
  // tie-break path — for every composed adversary, hooks or not.
  bool observes_intents() const override {
    return static_cast<bool>(edge_);
  }

  bool reorders_contenders() const override {
    return static_cast<bool>(tie_break_);
  }

  std::string name() const override { return label_; }

 private:
  ActivationFn activation_;
  EdgeFn edge_;
  TieBreakFn tie_break_;
  std::string label_;
};

}  // namespace dring::adversary
