// Integration tests of the SSYNC algorithms (Section 4 of the paper):
// the PT family (Theorems 12, 14, 16, 17), ET unconscious exploration
// (Theorem 18) and ETBoundNoChirality (Theorem 20), plus replays of the
// SSYNC impossibility constructions (Theorems 9, 10, 19) and of the
// sliding-window move-forcing adversary (Theorems 11/12/13/15).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;
using core::run_exploration;

void expect_clean_partial(const sim::RunResult& r, const std::string& ctx) {
  EXPECT_TRUE(r.explored) << ctx << ": not explored (" << r.stop_reason << ")";
  EXPECT_FALSE(r.premature_termination) << ctx << ": premature termination";
  EXPECT_TRUE(r.violations.empty()) << ctx << ": " << r.violations[0];
  EXPECT_GE(r.terminated_agents, 1) << ctx << ": nobody terminated";
}

struct SsyncCase {
  NodeId n;
  std::uint64_t seed;
  double act_p;  // activation probability
};

// ---------------------------------------------------------------------------
// PTBoundWithChirality (Theorem 12)
// ---------------------------------------------------------------------------

class PTBoundChiralitySweep : public ::testing::TestWithParam<SsyncCase> {};

TEST_P(PTBoundChiralitySweep, ExploresWithPartialTermination) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  cfg.stop.max_rounds = 4000LL * n * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, act_p,
                                                               seed * 31 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean_partial(r, "PTBound n=" + std::to_string(n));
  // O(N^2) moves with a small constant (Theorem 12).
  EXPECT_LE(r.total_moves, 20LL * n * n + 100);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PTBoundChiralitySweep,
    ::testing::Values(SsyncCase{4, 0, 1.0}, SsyncCase{4, 1, 0.7},
                      SsyncCase{5, 2, 0.5}, SsyncCase{6, 0, 1.0},
                      SsyncCase{6, 3, 0.6}, SsyncCase{8, 4, 0.8},
                      SsyncCase{8, 5, 0.4}, SsyncCase{11, 6, 0.6},
                      SsyncCase{16, 7, 0.7}, SsyncCase{16, 8, 0.3},
                      SsyncCase{23, 9, 0.5}));

TEST(PTBoundChirality, LooseBoundStillWorks) {
  for (NodeId n : {5, 9}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, n);
    cfg.upper_bound = 2 * n + 1;
    cfg.stop.max_rounds = 4000LL * n * n;
    adversary::TargetedRandomAdversary adv(0.5, 0.7, 11 + n);
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean_partial(r, "loose PTBound n=" + std::to_string(n));
  }
}

// ---------------------------------------------------------------------------
// PTLandmarkWithChirality (Theorem 14)
// ---------------------------------------------------------------------------

class PTLandmarkChiralitySweep : public ::testing::TestWithParam<SsyncCase> {};

TEST_P(PTLandmarkChiralitySweep, ExploresWithPartialTermination) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg =
      default_config(AlgorithmId::PTLandmarkWithChirality, n);
  cfg.stop.max_rounds = 4000LL * n * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, act_p,
                                                               seed * 17 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean_partial(r, "PTLandmark n=" + std::to_string(n));
  EXPECT_LE(r.total_moves, 20LL * n * n + 100);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PTLandmarkChiralitySweep,
    ::testing::Values(SsyncCase{4, 0, 1.0}, SsyncCase{5, 1, 0.6},
                      SsyncCase{6, 2, 0.8}, SsyncCase{8, 0, 1.0},
                      SsyncCase{8, 3, 0.5}, SsyncCase{11, 4, 0.7},
                      SsyncCase{16, 5, 0.4}, SsyncCase{23, 6, 0.6}));

// ---------------------------------------------------------------------------
// PTBoundNoChirality / PTLandmarkNoChirality (Theorems 16 and 17)
// ---------------------------------------------------------------------------

class PTThreeAgentsSweep : public ::testing::TestWithParam<SsyncCase> {};

TEST_P(PTThreeAgentsSweep, BoundVariantExplores) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, n);
  cfg.stop.max_rounds = 4000LL * n * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, act_p,
                                                               seed * 13 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean_partial(r, "PT3Bound n=" + std::to_string(n));
  EXPECT_LE(r.total_moves, 40LL * n * n + 200);
}

TEST_P(PTThreeAgentsSweep, LandmarkVariantExplores) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg =
      default_config(AlgorithmId::PTLandmarkNoChirality, n);
  cfg.stop.max_rounds = 4000LL * n * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, act_p,
                                                               seed * 7 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean_partial(r, "PT3Landmark n=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PTThreeAgentsSweep,
    ::testing::Values(SsyncCase{4, 0, 1.0}, SsyncCase{5, 1, 0.7},
                      SsyncCase{6, 2, 0.5}, SsyncCase{8, 0, 1.0},
                      SsyncCase{8, 3, 0.6}, SsyncCase{11, 4, 0.8},
                      SsyncCase{16, 5, 0.5}, SsyncCase{23, 6, 0.7}));

TEST(PTThreeAgents, AllOrientationAssignments) {
  // 3 agents, all 8 orientation assignments, hostile dynamics.
  const NodeId n = 7;
  for (int mask = 0; mask < 8; ++mask) {
    ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, n);
    cfg.orientations.clear();
    for (int i = 0; i < 3; ++i)
      cfg.orientations.push_back((mask >> i) & 1
                                     ? agent::kMirroredOrientation
                                     : agent::kChiralOrientation);
    cfg.stop.max_rounds = 4000LL * n * n;
    adversary::TargetedRandomAdversary adv(0.6, 0.7, 555 + mask);
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean_partial(r, "mask=" + std::to_string(mask));
  }
}

// ---------------------------------------------------------------------------
// ETUnconscious (Theorem 18)
// ---------------------------------------------------------------------------

class ETUnconsciousSweep : public ::testing::TestWithParam<SsyncCase> {};

TEST_P(ETUnconsciousSweep, EventuallyExploresWithoutTerminating) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, n);
  cfg.stop.max_rounds = 100'000LL + 1000LL * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.5, act_p,
                                                               seed * 41 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  EXPECT_TRUE(r.explored) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(r.terminated_agents, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ETUnconsciousSweep,
    ::testing::Values(SsyncCase{4, 0, 1.0}, SsyncCase{5, 1, 0.6},
                      SsyncCase{8, 2, 0.7}, SsyncCase{11, 3, 0.5},
                      SsyncCase{16, 4, 0.8}));

// ---------------------------------------------------------------------------
// ETBoundNoChirality (Theorem 20)
// ---------------------------------------------------------------------------

class ETBoundSweep : public ::testing::TestWithParam<SsyncCase> {};

TEST_P(ETBoundSweep, ExploresWithPartialTermination) {
  const auto [n, seed, act_p] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, n);
  cfg.stop.max_rounds = 200'000LL + 4000LL * n * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.5, act_p,
                                                               seed * 29 + n);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean_partial(r, "ETBound n=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ETBoundSweep,
    ::testing::Values(SsyncCase{4, 0, 1.0}, SsyncCase{5, 1, 0.7},
                      SsyncCase{6, 2, 0.5}, SsyncCase{8, 3, 0.6},
                      SsyncCase{11, 4, 0.8}, SsyncCase{16, 5, 0.6}));

// ---------------------------------------------------------------------------
// Theorem 9: NS impossibility replay
// ---------------------------------------------------------------------------

TEST(SsyncImpossibility, NsFirstMoverStopsEveryAlgorithm) {
  // Under the Theorem 9 scheduler no agent ever moves, for ANY protocol;
  // we replay it against the strongest algorithms in the library.
  for (const AlgorithmId id :
       {AlgorithmId::PTBoundWithChirality, AlgorithmId::PTBoundNoChirality,
        AlgorithmId::ETBoundNoChirality}) {
    const NodeId n = 8;
    ExplorationConfig cfg = default_config(id, n);
    cfg.model = sim::Model::SSYNC_NS;  // the NS model (Theorem 9's setting)
    cfg.engine.fairness_window = 1'000'000;  // the scheduler is fair itself
    cfg.stop.max_rounds = 20'000;
    cfg.stop.stop_when_all_terminated = false;
    cfg.stop.stop_when_explored_and_one_terminated = false;
    adversary::NsFirstMoverAdversary adv;
    const sim::RunResult r = run_exploration(cfg, &adv);
    EXPECT_FALSE(r.explored) << algo::info(id).name;
    EXPECT_EQ(r.total_moves, 0) << algo::info(id).name;
  }
}

// ---------------------------------------------------------------------------
// Theorem 10: PT, two agents, no chirality — head-on pin demonstration
// ---------------------------------------------------------------------------

TEST(SsyncImpossibility, HeadOnPinStarvesTwoAgentsWithoutChirality) {
  const NodeId n = 9;
  ExplorationConfig cfg = default_config(AlgorithmId::PTLandmarkWithChirality, n);
  // Violate the chirality assumption: mirrored orientations, so the two
  // agents approach head-on and the Theorem 10 adversary pins them.
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.start_nodes = {2, 7};
  cfg.stop.max_rounds = 30'000;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  adversary::HeadOnPinAdversary adv(0, 1);
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_FALSE(r.explored);
  EXPECT_TRUE(adv.pinned().has_value());
  EXPECT_EQ(r.terminated_agents, 0);
}

// ---------------------------------------------------------------------------
// Theorems 11/12/13: sliding-window behaviour — one agent terminates, the
// other waits forever; quadratically many moves are forced.
// ---------------------------------------------------------------------------

TEST(SlidingWindow, ForcesQuadraticMovesAndOnlyPartialTermination) {
  const NodeId n = 16;
  const NodeId x = n / 2;  // initial window size
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, n);
  // Leader (agent 0) at the window's left end, chaser (agent 1) at its
  // right end; both travel left = Ccw, so leader = higher index.
  cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.fairness_window = 4096;
  cfg.stop.max_rounds = 500LL * n * n;
  cfg.stop.stop_when_explored_and_one_terminated = true;
  adversary::SlidingWindowAdversary adv(0, 1);
  const sim::RunResult r = run_exploration(cfg, &adv);

  EXPECT_TRUE(r.explored);
  EXPECT_FALSE(r.premature_termination);
  EXPECT_EQ(r.terminated_agents, 1);          // Theorem 11: only partial
  EXPECT_TRUE(r.agents[1].terminated);        // the chaser halts
  EXPECT_FALSE(r.agents[0].terminated);       // the leader waits forever
  EXPECT_GT(adv.shifts(), 0);
  // Theorem 13: at least x*(N-x)/2 forced moves (we use a safety factor).
  EXPECT_GE(r.total_moves, static_cast<long long>(x) * (n - x) / 2);
}

TEST(SlidingWindow, LandmarkVariantAlsoForcedQuadratic) {
  const NodeId n = 12;
  const NodeId x = n / 2;
  ExplorationConfig cfg =
      default_config(AlgorithmId::PTLandmarkWithChirality, n);
  cfg.landmark = 1;  // inside the initial window
  cfg.start_nodes = {static_cast<NodeId>(x - 1), 0};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.fairness_window = 4096;
  cfg.stop.max_rounds = 2000LL * n * n;
  adversary::SlidingWindowAdversary adv(0, 1);
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_TRUE(r.explored);
  EXPECT_FALSE(r.premature_termination);
  EXPECT_GE(r.terminated_agents, 1);
  EXPECT_GE(r.total_moves, static_cast<long long>(x) * (n - x) / 2);
}

// ---------------------------------------------------------------------------
// Theorem 19: ET with only a bound — indistinguishability replay
// ---------------------------------------------------------------------------

TEST(SsyncImpossibility, SegmentSealMakesBoundedKnowledgeTerminateWrongly) {
  // Ring R2 of size 12; the agents believe n = 8 and live in the sealed
  // segment {0..7} delimited by edges 7 and 11.  The seal alternates which
  // edge is missing while passivating the agents pressing on the other —
  // exactly the Theorem 19 schedule.  The agents cannot distinguish R2
  // from the ring R1 of size 8 with one edge perpetually missing, so one
  // of them terminates while R2 is unexplored.
  const NodeId n2 = 12;
  ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, n2);
  cfg.exact_n = 8;  // what the agents believe (true in R1, false in R2)
  cfg.start_nodes = {1, 4, 6};
  cfg.engine.et_budget = 1'000'000;       // ET allows any finite schedule
  cfg.engine.fairness_window = 1'000'000; // seal scheduler is fair enough
  cfg.stop.max_rounds = 50'000;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  adversary::SegmentSealAdversary adv(7, 11);
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_FALSE(r.explored);
  EXPECT_GE(r.terminated_agents, 1);
  EXPECT_TRUE(r.premature_termination);  // terminated on the wrong "ring"
}

// The same configuration with the *correct* knowledge n = 12 must never
// terminate under the seal (nothing outside the segment is reachable, and
// Tnodes stays < 12): partial termination with a bound alone is impossible.
TEST(SsyncImpossibility, SegmentSealWithTrueSizeNeverTerminates) {
  const NodeId n2 = 12;
  ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, n2);
  cfg.start_nodes = {1, 4, 6};
  cfg.engine.et_budget = 1'000'000;
  cfg.engine.fairness_window = 1'000'000;
  cfg.stop.max_rounds = 50'000;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  adversary::SegmentSealAdversary adv(7, 11);
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_FALSE(r.explored);
  EXPECT_EQ(r.terminated_agents, 0);
  EXPECT_FALSE(r.premature_termination);
}

}  // namespace
}  // namespace dring
