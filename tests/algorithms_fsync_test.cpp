// Integration tests of the FSYNC algorithms (Section 3 of the paper):
// exploration completes, termination is never premature, and the paper's
// round bounds hold — across ring sizes, start placements, orientation
// assignments and adversaries.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/id_encoding.hpp"
#include "core/runner.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;
using core::run_exploration;

void expect_clean(const sim::RunResult& r, const std::string& context) {
  EXPECT_TRUE(r.explored) << context << ": not explored (" << r.stop_reason
                          << ")";
  EXPECT_FALSE(r.premature_termination)
      << context << ": premature termination";
  EXPECT_TRUE(r.violations.empty()) << context << ": " << r.violations[0];
}

// ---------------------------------------------------------------------------
// KnownNNoChirality (Theorem 3)
// ---------------------------------------------------------------------------

struct KnownNCase {
  NodeId n;
  std::uint64_t seed;
};

class KnownNSweep : public ::testing::TestWithParam<KnownNCase> {};

TEST_P(KnownNSweep, ExploresAndTerminatesWithin3NMinus6) {
  const auto [n, seed] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
  cfg.stop.max_rounds = 10 * n;

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0, seed);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean(r, "KnownN n=" + std::to_string(n));
  EXPECT_TRUE(r.all_terminated);
  // Termination fires at the first activation with Ttime >= 3N-6, i.e. by
  // round 3N-5; exploration itself completes by 3N-6.
  EXPECT_LE(r.explored_round, 3 * n - 6);
  for (const sim::AgentResult& a : r.agents)
    EXPECT_LE(a.termination_round, 3 * n - 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KnownNSweep,
    ::testing::Values(KnownNCase{4, 0}, KnownNCase{4, 1}, KnownNCase{5, 0},
                      KnownNCase{5, 2}, KnownNCase{6, 0}, KnownNCase{6, 3},
                      KnownNCase{8, 0}, KnownNCase{8, 4}, KnownNCase{8, 5},
                      KnownNCase{11, 0}, KnownNCase{11, 6}, KnownNCase{16, 0},
                      KnownNCase{16, 7}, KnownNCase{16, 8}, KnownNCase{23, 9},
                      KnownNCase{32, 10}, KnownNCase{32, 11}));

TEST(KnownN, WorksWithLooseUpperBound) {
  for (NodeId n : {5, 8, 12}) {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
    cfg.upper_bound = 2 * n + 3;  // loose bound N > n
    cfg.stop.max_rounds = 10 * *cfg.upper_bound;
    adversary::TargetedRandomAdversary adv(0.7, 1.0, 99 + n);
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean(r, "loose bound n=" + std::to_string(n));
    EXPECT_TRUE(r.all_terminated);
    for (const sim::AgentResult& a : r.agents)
      EXPECT_LE(a.termination_round, 3 * *cfg.upper_bound - 5);
  }
}

TEST(KnownN, SameStartNode) {
  for (NodeId n : {5, 9}) {
    for (bool same_orientation : {true, false}) {
      ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
      cfg.start_nodes = {2, 2};
      cfg.orientations = {agent::kChiralOrientation,
                          same_orientation ? agent::kChiralOrientation
                                           : agent::kMirroredOrientation};
      cfg.stop.max_rounds = 10 * n;
      adversary::TargetedRandomAdversary adv(0.5, 1.0, 7);
      const sim::RunResult r = run_exploration(cfg, &adv);
      expect_clean(r, "same-start n=" + std::to_string(n));
      EXPECT_TRUE(r.all_terminated);
    }
  }
}

TEST(KnownN, MixedOrientationsAllPlacements) {
  const NodeId n = 7;
  for (NodeId start_b = 0; start_b < n; ++start_b) {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
    cfg.start_nodes = {0, start_b};
    cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
    cfg.stop.max_rounds = 10 * n;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 100 + start_b);
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean(r, "placement b=" + std::to_string(start_b));
  }
}

// Figure 2: the exact schedule on which exploration takes 3n-6 rounds,
// showing the bound of Theorem 3 is tight for N = n.
TEST(KnownN, Figure2WorstCaseScheduleIsTight) {
  for (NodeId n : {6, 8, 10, 13}) {
    const NodeId i = 2;  // a at v_i, b at v_{i+1}
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
    cfg.start_nodes = {i, static_cast<NodeId>(i + 1)};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.stop.max_rounds = 10 * n;
    adversary::ScriptedEdgeAdversary adv(adversary::make_fig2_script(n, i),
                                         "fig2");
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean(r, "fig2 n=" + std::to_string(n));
    EXPECT_EQ(r.explored_round, 3 * n - 6) << "n=" << n;
  }
}

// Theorem 4 flavour: on a static ring the run must still take >= N-1
// rounds, since agents cannot distinguish the ring from a larger one.
TEST(KnownN, NeverFasterThanNMinus1OnStaticRing) {
  for (NodeId n : {5, 8, 12, 20}) {
    ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
    cfg.start_nodes = {0, 1};
    cfg.stop.max_rounds = 10 * n;
    sim::NullAdversary adv;
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean(r, "static n=" + std::to_string(n));
    for (const sim::AgentResult& a : r.agents)
      EXPECT_GE(a.termination_round, n - 1);
  }
}

// ---------------------------------------------------------------------------
// UnconsciousExploration (Theorem 5)
// ---------------------------------------------------------------------------

struct UnconsciousCase {
  NodeId n;
  std::uint64_t seed;
  bool mirrored;
};

class UnconsciousSweep : public ::testing::TestWithParam<UnconsciousCase> {};

TEST_P(UnconsciousSweep, ExploresInLinearTime) {
  const auto [n, seed, mirrored] = GetParam();
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, n);
  cfg.orientations = {agent::kChiralOrientation,
                      mirrored ? agent::kMirroredOrientation
                               : agent::kChiralOrientation};
  cfg.stop.max_rounds = 200 * n;  // generous O(n) envelope

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0, seed);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  EXPECT_TRUE(r.explored) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(r.terminated_agents, 0);  // unconscious: nobody ever halts
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, UnconsciousSweep,
    ::testing::Values(UnconsciousCase{4, 0, false}, UnconsciousCase{4, 1, true},
                      UnconsciousCase{6, 0, true}, UnconsciousCase{6, 2, false},
                      UnconsciousCase{9, 3, true}, UnconsciousCase{9, 0, false},
                      UnconsciousCase{13, 4, true},
                      UnconsciousCase{13, 5, false},
                      UnconsciousCase{20, 6, true},
                      UnconsciousCase{20, 0, false},
                      UnconsciousCase{31, 7, true}));

TEST(Unconscious, SurvivesPerpetualBlockingOfOneAgent) {
  // Obs. 1 adversary pins agent 0; the other agent must still explore, and
  // the pinned agent's Bounce/Reverse machinery must not break.
  for (NodeId n : {6, 10}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::UnconsciousExploration, n);
    cfg.stop.max_rounds = 400 * n;
    adversary::BlockAgentAdversary adv(0);
    const sim::RunResult r = run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// LandmarkWithChirality (Theorem 6)
// ---------------------------------------------------------------------------

struct LandmarkCase {
  NodeId n;
  NodeId start_a;
  NodeId start_b;
  std::uint64_t seed;
};

class LandmarkChiralitySweep
    : public ::testing::TestWithParam<LandmarkCase> {};

TEST_P(LandmarkChiralitySweep, ExploresAndBothTerminate) {
  const auto [n, sa, sb, seed] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkWithChirality, n);
  cfg.start_nodes = {sa, sb};
  cfg.stop.max_rounds = 2000 * n;  // far beyond the O(n) bound

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.7, 1.0, seed);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean(r, "landmark n=" + std::to_string(n));
  EXPECT_TRUE(r.all_terminated)
      << "n=" << n << " starts=" << sa << "," << sb << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LandmarkChiralitySweep,
    ::testing::Values(LandmarkCase{5, 0, 0, 0}, LandmarkCase{5, 1, 3, 1},
                      LandmarkCase{6, 2, 2, 2}, LandmarkCase{6, 0, 3, 0},
                      LandmarkCase{8, 1, 5, 3}, LandmarkCase{8, 4, 4, 4},
                      LandmarkCase{11, 0, 6, 5}, LandmarkCase{11, 3, 9, 6},
                      LandmarkCase{16, 2, 10, 7}, LandmarkCase{16, 8, 8, 8},
                      LandmarkCase{23, 5, 17, 9}, LandmarkCase{23, 0, 1, 10}));

TEST(LandmarkChirality, StaticRingTerminatesLinearly) {
  for (NodeId n : {6, 12, 24, 48}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::LandmarkWithChirality, n);
    cfg.start_nodes = {1, static_cast<NodeId>(n / 2)};
    cfg.stop.max_rounds = 2000 * n;
    sim::NullAdversary adv;
    const sim::RunResult r = run_exploration(cfg, &adv);
    expect_clean(r, "static landmark n=" + std::to_string(n));
    EXPECT_TRUE(r.all_terminated);
    // O(n): Lemma 1 gives 7n-1 when the agents never catch each other;
    // allow the full constant of Theorem 6 (19n + slack) for catch runs.
    for (const sim::AgentResult& a : r.agents)
      EXPECT_LE(a.termination_round, 20 * n + 10) << "n=" << n;
  }
}

TEST(LandmarkChirality, PerpetualBlockOfOneAgent) {
  // One agent pinned forever: the other must explore; Lemma 2 says any
  // termination only happens after exploration.
  for (NodeId n : {6, 11}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::LandmarkWithChirality, n);
    cfg.start_nodes = {2, static_cast<NodeId>(n - 1)};
    cfg.stop.max_rounds = 4000 * n;
    adversary::BlockAgentAdversary adv(0);
    const sim::RunResult r = run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_FALSE(r.premature_termination);
  }
}

// ---------------------------------------------------------------------------
// StartFromLandmarkNoChirality (Theorem 7) / LandmarkNoChirality (Theorem 8)
// ---------------------------------------------------------------------------

struct NoChiralityCase {
  NodeId n;
  bool mirrored;      // opposite orientations (the hard symmetric case)
  std::uint64_t seed; // 0 = static ring
};

class StartFromLandmarkSweep
    : public ::testing::TestWithParam<NoChiralityCase> {};

TEST_P(StartFromLandmarkSweep, ExploresAndBothTerminate) {
  const auto [n, mirrored, seed] = GetParam();
  ExplorationConfig cfg =
      default_config(AlgorithmId::StartFromLandmarkNoChirality, n);
  cfg.orientations = {agent::kChiralOrientation,
                      mirrored ? agent::kMirroredOrientation
                               : agent::kChiralOrientation};
  cfg.stop.max_rounds = 40 * algo::no_chirality_time_bound(n);

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, 1.0, seed);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean(r, "start-from-landmark n=" + std::to_string(n));
  EXPECT_TRUE(r.all_terminated) << "n=" << n << " mirrored=" << mirrored
                                << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, StartFromLandmarkSweep,
    ::testing::Values(NoChiralityCase{5, true, 0}, NoChiralityCase{5, false, 1},
                      NoChiralityCase{6, true, 2}, NoChiralityCase{6, false, 0},
                      NoChiralityCase{8, true, 3}, NoChiralityCase{8, true, 4},
                      NoChiralityCase{11, true, 0},
                      NoChiralityCase{11, false, 5},
                      NoChiralityCase{16, true, 6}));

class LandmarkNoChiralitySweep
    : public ::testing::TestWithParam<NoChiralityCase> {};

TEST_P(LandmarkNoChiralitySweep, ArbitraryStartsExploreAndTerminate) {
  const auto [n, mirrored, seed] = GetParam();
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkNoChirality, n);
  cfg.start_nodes = {static_cast<NodeId>(1 % n),
                     static_cast<NodeId>((n / 2 + 1) % n)};
  cfg.orientations = {agent::kChiralOrientation,
                      mirrored ? agent::kMirroredOrientation
                               : agent::kChiralOrientation};
  cfg.stop.max_rounds = 80 * algo::no_chirality_time_bound(n);

  std::unique_ptr<sim::Adversary> adv;
  if (seed == 0) {
    adv = std::make_unique<sim::NullAdversary>();
  } else {
    adv = std::make_unique<adversary::TargetedRandomAdversary>(0.6, 1.0, seed);
  }
  const sim::RunResult r = run_exploration(cfg, adv.get());
  expect_clean(r, "landmark-no-chirality n=" + std::to_string(n));
  EXPECT_TRUE(r.all_terminated) << "n=" << n << " mirrored=" << mirrored
                                << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LandmarkNoChiralitySweep,
    ::testing::Values(NoChiralityCase{5, true, 0}, NoChiralityCase{5, false, 2},
                      NoChiralityCase{6, true, 0}, NoChiralityCase{6, true, 3},
                      NoChiralityCase{8, false, 4}, NoChiralityCase{8, true, 5},
                      NoChiralityCase{11, true, 0},
                      NoChiralityCase{16, true, 6}));

// ---------------------------------------------------------------------------
// FSYNC impossibility replays (Theorems 1 and 2, Observations 1 and 2)
// ---------------------------------------------------------------------------

TEST(Impossibility, Obs1BlockedAgentNeverLeaves) {
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, 8);
  cfg.num_agents = 1;
  cfg.start_nodes = {3};
  cfg.orientations = {agent::kChiralOrientation};
  cfg.stop.max_rounds = 5000;
  cfg.stop.stop_when_all_terminated = false;
  adversary::BlockAgentAdversary adv(0);
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_FALSE(r.explored);
  EXPECT_EQ(r.agents[0].moves, 0);  // never moved at all
}

TEST(Impossibility, Obs2PreventsMeetingForever) {
  // Unconscious exploration visits everything, but under the
  // meeting-prevention adversary the agents never share a node.
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 9);
  cfg.start_nodes = {0, 4};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 3000;
  cfg.stop.stop_when_explored = false;
  cfg.stop.stop_when_all_terminated = false;
  adversary::PreventMeetingAdversary adv;

  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  for (const sim::RoundTrace& rt : engine->trace()) {
    ASSERT_EQ(rt.agents.size(), 2u);
    const auto& a = rt.agents[0];
    const auto& b = rt.agents[1];
    const bool both_in_node_proper =
        !a.on_port && !b.on_port && a.node == b.node;
    EXPECT_FALSE(both_in_node_proper) << "met at round " << rt.round;
  }
}

// Theorem 1/2 flavour: without any knowledge the agents cannot terminate;
// running the bound-based algorithm with a *wrong* (too small) "bound"
// on a larger ring makes it terminate prematurely — exactly the
// indistinguishability argument of the proof.
TEST(Impossibility, WrongBoundCausesPrematureTermination) {
  const NodeId n = 16;
  ExplorationConfig cfg = default_config(AlgorithmId::KnownNNoChirality, n);
  cfg.upper_bound = 6;  // lie: N < n
  cfg.start_nodes = {0, 1};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.stop.max_rounds = 400;
  sim::NullAdversary adv;
  const sim::RunResult r = run_exploration(cfg, &adv);
  EXPECT_TRUE(r.premature_termination);
  EXPECT_FALSE(r.explored);
}

}  // namespace
}  // namespace dring
