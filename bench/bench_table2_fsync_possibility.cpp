// Reproduces Table 2 of the paper (FSYNC possibility results):
//
//   | N. Agents | Assumptions          | Exploration with Termination      |
//   | 2         | Known bound N        | Explicit termination in 3N-6      |
//   | 2         | Chirality, Landmark  | Explicit termination in O(n)      |
//   | 2         | Landmark             | Explicit termination in O(n log n)|
//
// Since PR 4 this bench is a shim over the paper-artifact layer
// (core/artifact.hpp): the scenario grid, the worst-termination fold and
// the table formatting live in the "table2_fsync" artifact, whose
// campaign store also backs the committed examples/paper/table2_fsync.md
// report (dring_artifact).  Output is byte-identical to the pre-migration
// bench.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/artifact.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 6));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  std::vector<NodeId> sizes = {5, 6, 8, 11, 16, 24, 32};
  if (cli.has("max-n")) {
    const NodeId cap = static_cast<NodeId>(cli.get_int("max-n", 32));
    sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                               [&](NodeId n) { return n > cap; }),
                sizes.end());
  }

  const core::Artifact artifact = core::make_table2_artifact(sizes, seeds);
  std::cout << core::derive_report(artifact,
                                   core::run_artifact_rows(artifact, threads));
  return 0;
}
