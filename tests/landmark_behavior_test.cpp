// White-box behaviour tests for the landmark algorithm family: role
// assignment on catches, the BComm/FComm handshake, size learning through
// the landmark, the AtLandmark double-check (Figure 12), the instance
// restart of Theorem 8, and the D14 departure-before-termination rule.
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "algo/landmark_no_chirality.hpp"
#include "algo/landmark_with_chirality.hpp"
#include "core/runner.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;

/// Trace-driven helper: state of agent `id` at (1-based) round r.
std::string state_at(const sim::Engine& engine, Round r, AgentId id) {
  for (const sim::RoundTrace& rt : engine.trace())
    if (rt.round == r) return rt.agents[static_cast<std::size_t>(id)].state;
  return "?";
}

TEST(LandmarkChirality, RolesAssignedOnCatch) {
  // Block the leading agent so the trailing one catches it: the caught
  // agent becomes F (Forward), the catcher becomes B (Bounce).
  const NodeId n = 8;
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkWithChirality, n);
  cfg.start_nodes = {4, 2};  // both walk Ccw; agent 1 trails agent 0
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 12;
  cfg.stop.stop_when_all_terminated = false;
  adversary::BlockAgentAdversary adv(0);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);

  // Agent 1 needs 2 moves to reach node 4 (arrives end of round 2); the
  // catch is observed at round 3.
  EXPECT_EQ(state_at(*engine, 3, 0), "Forward");
  EXPECT_EQ(state_at(*engine, 3, 1), "Bounce");
}

TEST(LandmarkChirality, SizeLearnedAfterFullLoop) {
  // A lone runner around the ring learns n after a full loop past the
  // landmark, never earlier.
  const NodeId n = 9;
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkWithChirality, n);
  cfg.start_nodes = {0, 0};
  cfg.num_agents = 2;
  cfg.stop.max_rounds = 4;
  cfg.stop.stop_when_all_terminated = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  const auto* brain =
      dynamic_cast<const algo::LandmarkWithChirality*>(&engine->brain(0));
  ASSERT_NE(brain, nullptr);
  EXPECT_FALSE(brain->n_known());  // only 4 rounds in: no loop yet
}

TEST(LandmarkChirality, BCommSignalsWhenSameEdgeWaitDetected) {
  // Force the classic configuration: F blocked on an edge, B bounces off
  // F, gets blocked on the SAME edge from its journey around, returns and
  // catches F with returnSteps <= 2*bounceSteps -> both terminate.
  const NodeId n = 6;
  ExplorationConfig cfg = default_config(AlgorithmId::LandmarkWithChirality, n);
  cfg.start_nodes = {3, 1};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 500;
  adversary::BlockAgentAdversary adv(0);  // F never moves
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);
  EXPECT_TRUE(r.explored);
  EXPECT_FALSE(r.premature_termination);
  EXPECT_TRUE(r.all_terminated);
}

TEST(StartFromLandmark, Figure12DoubleCheckTerminatesBoth) {
  // Both agents leave the landmark in opposite directions, bounce on the
  // antipodal edge and return simultaneously: AtLandmarkL double-check.
  const NodeId n = 7;
  ExplorationConfig cfg =
      default_config(AlgorithmId::StartFromLandmarkNoChirality, n);
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 60;
  adversary::ScriptedEdgeAdversary adv([&](Round r) -> std::optional<EdgeId> {
    return (r >= 3 && r <= 5) ? std::optional<EdgeId>(3) : std::nullopt;
  });
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);
  EXPECT_TRUE(r.explored);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_FALSE(r.premature_termination);
  // Both terminate in the same round, at the landmark.
  EXPECT_EQ(r.agents[0].termination_round, r.agents[1].termination_round);
  EXPECT_EQ(r.agents[0].final_node, 0);
  EXPECT_EQ(r.agents[1].final_node, 0);
}

TEST(StartFromLandmark, AsymmetricBlocksProduceDistinctIds) {
  // Block the two agents at different times: their (k1,k2,k3) triples and
  // hence IDs must differ (the paper's symmetry-breaking argument).
  const NodeId n = 9;
  ExplorationConfig cfg =
      default_config(AlgorithmId::StartFromLandmarkNoChirality, n);
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.stop.max_rounds = 30;
  cfg.stop.stop_when_all_terminated = false;
  // Agent 0 walks Ccw (edges 0,1,2,..), agent 1 walks Cw (edges 8,7,..).
  // Block agent 0 at round 2 (edge 1) and agent 1 at round 4 (edge 5).
  adversary::ScriptedEdgeAdversary adv([](Round r) -> std::optional<EdgeId> {
    if (r == 2 || r == 3) return 1;
    if (r == 4 || r == 5) return 5;
    return std::nullopt;
  });
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  const auto* b0 =
      dynamic_cast<const algo::LandmarkNoChirality*>(&engine->brain(0));
  const auto* b1 =
      dynamic_cast<const algo::LandmarkNoChirality*>(&engine->brain(1));
  ASSERT_NE(b0, nullptr);
  ASSERT_NE(b1, nullptr);
  if (b0->schedule() && b1->schedule()) {
    EXPECT_NE(b0->schedule()->id(), b1->schedule()->id())
        << "k0=(" << b0->k1() << "," << b0->k2() << "," << b0->k3() << ") "
        << "k1=(" << b1->k1() << "," << b1->k2() << "," << b1->k3() << ")";
  }
}

TEST(LandmarkNoChirality, InstanceRestartKeepsAgentsAligned) {
  // Arbitrary starts; force both agents to meet at the landmark during the
  // ID phase so they restart as a fresh instance — afterwards the run must
  // still explore and terminate cleanly.
  const NodeId n = 8;
  for (std::uint64_t seed : {3u, 7u, 11u, 19u}) {
    ExplorationConfig cfg = default_config(AlgorithmId::LandmarkNoChirality, n);
    cfg.start_nodes = {2, 6};
    cfg.orientations = {agent::kChiralOrientation,
                        agent::kMirroredOrientation};
    cfg.stop.max_rounds = 100 * algo::no_chirality_time_bound(n);
    adversary::TargetedRandomAdversary adv(0.8, 1.0, seed);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "seed " << seed;
    EXPECT_TRUE(r.all_terminated) << "seed " << seed;
    EXPECT_FALSE(r.premature_termination) << "seed " << seed;
  }
}

TEST(LandmarkNoChirality, PinnedAgentStillTerminates) {
  // The D14/D15 regression: one agent pinned forever by the Obs.-1
  // adversary must still terminate through the handshake, on every size.
  for (NodeId n : {5, 6, 7, 9, 12}) {
    ExplorationConfig cfg = default_config(AlgorithmId::LandmarkNoChirality, n);
    cfg.stop.max_rounds = 200 * algo::no_chirality_time_bound(n);
    adversary::BlockAgentAdversary adv(0);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_TRUE(r.all_terminated) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

TEST(LandmarkNoChirality, PinnedSecondAgentAlsoHandled) {
  for (NodeId n : {5, 8, 11}) {
    ExplorationConfig cfg = default_config(AlgorithmId::LandmarkNoChirality, n);
    cfg.stop.max_rounds = 200 * algo::no_chirality_time_bound(n);
    adversary::BlockAgentAdversary adv(1);  // pin the other agent
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_TRUE(r.all_terminated) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

TEST(LandmarkChirality, PinnedAgentTerminatesViaHandshake) {
  // Same regression for the chirality algorithm (Theorem 6).
  for (NodeId n : {5, 6, 8, 10, 13}) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::LandmarkWithChirality, n);
    cfg.start_nodes = {2, static_cast<NodeId>(n - 2)};
    cfg.stop.max_rounds = 5000 * n;
    adversary::BlockAgentAdversary adv(0);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    EXPECT_TRUE(r.explored) << "n=" << n;
    EXPECT_TRUE(r.all_terminated) << "n=" << n;
    EXPECT_FALSE(r.premature_termination) << "n=" << n;
  }
}

}  // namespace
}  // namespace dring
