// Reproduces Table 1 of the paper (FSYNC impossibility results):
//
//   | 2 agents  | no knowledge of n, no landmark | even with IDs+chirality |
//   |           |                                | partial term. impossible|
//   | any #     | no knowledge, anonymous agents | partial term. impossible|
//
// Impossibility cannot be proven by simulation; instead we replay the
// proofs' constructions and show they defeat concrete protocols:
//
//  1. Observation 1: a single agent is pinned forever.
//  2. Observation 2: the meeting-prevention adversary keeps two agents
//     apart for the whole horizon (no meeting, no catches) while they run
//     the unconscious protocol.
//  3. Theorem 1/2 (indistinguishability): any terminating rule based on
//     a size hypothesis N terminates identically on every ring of size
//     n' > f(N); running KnownNNoChirality with hypothesis N on rings of
//     growing size shows termination at the same round everywhere, hence
//     premature termination on all rings larger than the coverage bound.
#include <iostream>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const Round horizon = cli.get_int("horizon", 100'000);

  std::cout << "=== Table 1: impossibility results for FSYNC (replayed "
               "constructions) ===\n\n";

  util::Table table({"Construction", "Paper claim", "Scenario",
                     "Horizon", "Outcome"});

  // --- Observation 1 / Corollary 1: one agent cannot explore -------------
  {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::UnconsciousExploration, 10);
    cfg.num_agents = 1;
    cfg.start_nodes = {0};
    cfg.orientations = {agent::kChiralOrientation};
    cfg.stop.max_rounds = horizon;
    cfg.stop.stop_when_explored = true;
    cfg.stop.stop_when_all_terminated = false;
    adversary::BlockAgentAdversary adv(0);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    table.add_row({"Obs. 1 block-agent", "1 agent cannot explore",
                   "n=10, unconscious walker",
                   util::fmt_count(r.rounds),
                   r.explored ? "EXPLORED (unexpected!)"
                              : "never left start (moves = " +
                                    std::to_string(r.total_moves) + ")"});
  }

  // --- Observation 2: two agents never meet --------------------------------
  {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::UnconsciousExploration, 11);
    cfg.start_nodes = {0, 5};
    cfg.engine.record_trace = true;
    cfg.stop.max_rounds = 20'000;
    cfg.stop.stop_when_explored = false;
    cfg.stop.stop_when_all_terminated = false;
    adversary::PreventMeetingAdversary adv;
    auto engine = core::make_engine(cfg, &adv);
    engine->run(cfg.stop);
    long long meetings = 0;
    for (const sim::RoundTrace& rt : engine->trace()) {
      const auto& a = rt.agents[0];
      const auto& b = rt.agents[1];
      if (!a.on_port && !b.on_port && a.node == b.node) ++meetings;
    }
    table.add_row({"Obs. 2 prevent-meeting",
                   "adversary can prevent any meeting",
                   "n=11, 2 agents, distinct starts", util::fmt_count(20'000),
                   "meetings observed: " + std::to_string(meetings)});
  }

  // --- Theorems 1 and 2: no termination without knowledge ------------------
  {
    // An algorithm that decides to stop after some f(N) rounds behaves
    // identically on every larger ring (static run, same views), so pick
    // the hypothesis N = 6 and grow the true ring size.
    std::string outcome;
    for (NodeId n : {6, 12, 24, 48}) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      cfg.upper_bound = 6;  // the (wrong, except for n=6) size hypothesis
      cfg.start_nodes = {0, 1};
      cfg.orientations = {agent::kChiralOrientation,
                          agent::kChiralOrientation};
      cfg.stop.max_rounds = 200;
      sim::NullAdversary adv;
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      outcome += "n=" + std::to_string(n) + ": term@" +
                 std::to_string(r.agents[0].termination_round) +
                 (r.premature_termination ? " PREMATURE; " : " ok; ");
    }
    table.add_row({"Th. 1/2 indistinguishability",
                   "no partial termination without knowledge of n",
                   "hypothesis N=6 on growing rings", "-", outcome});
  }

  table.print(std::cout);
  std::cout << "\nReading: the constructions behave exactly as the proofs "
               "require — the blocked agent never moves, the two agents "
               "never meet, and a size-hypothesis termination rule fires at "
               "the same round on every ring size, prematurely on all but "
               "one.\n";
  return 0;
}
