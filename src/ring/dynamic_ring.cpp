#include "ring/dynamic_ring.hpp"

#include <cassert>
#include <stdexcept>

namespace dring::ring {

DynamicRing::DynamicRing(NodeId n, std::optional<NodeId> landmark)
    : n_(n), landmark_(landmark) {
  if (n < 3) throw std::invalid_argument("DynamicRing requires n >= 3");
  if (landmark_ && (*landmark_ < 0 || *landmark_ >= n))
    throw std::invalid_argument("landmark out of range");
  port_holder_.assign(static_cast<std::size_t>(n) * 2, std::nullopt);
}

NodeId DynamicRing::neighbour(NodeId v, GlobalDir d) const {
  assert(v >= 0 && v < n_);
  return d == GlobalDir::Ccw ? wrap(v + 1) : wrap(v - 1);
}

EdgeId DynamicRing::edge_from(NodeId v, GlobalDir d) const {
  assert(v >= 0 && v < n_);
  return d == GlobalDir::Ccw ? v : wrap(v - 1);
}

std::pair<NodeId, NodeId> DynamicRing::endpoints(EdgeId e) const {
  assert(e >= 0 && e < n_);
  return {e, wrap(e + 1)};
}

NodeId DynamicRing::distance(NodeId a, NodeId b, GlobalDir d) const {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_);
  return d == GlobalDir::Ccw ? wrap(b - a) : wrap(a - b);
}

bool DynamicRing::remove_edge(EdgeId e) {
  assert(e >= 0 && e < n_);
  if (missing_ && *missing_ != e) return false;  // 1-interval connectivity
  missing_ = e;
  return true;
}

void DynamicRing::restore_edges() { missing_.reset(); }

bool DynamicRing::edge_present(EdgeId e) const {
  assert(e >= 0 && e < n_);
  return !(missing_ && *missing_ == e);
}

std::size_t DynamicRing::port_index(const PortRef& p) const {
  assert(p.node >= 0 && p.node < n_);
  return static_cast<std::size_t>(p.node) * 2 +
         (p.side == GlobalDir::Ccw ? 0 : 1);
}

std::optional<AgentId> DynamicRing::port_holder(const PortRef& p) const {
  return port_holder_[port_index(p)];
}

std::int32_t& DynamicRing::port_of_slot(AgentId agent) {
  assert(agent >= 0);
  if (static_cast<std::size_t>(agent) >= agent_port_.size())
    agent_port_.resize(static_cast<std::size_t>(agent) + 1, -1);
  return agent_port_[static_cast<std::size_t>(agent)];
}

bool DynamicRing::acquire_port(const PortRef& p, AgentId agent) {
  const std::size_t idx = port_index(p);
  auto& holder = port_holder_[idx];
  if (holder && *holder != agent) return false;
  holder = agent;
  std::int32_t& slot = port_of_slot(agent);
  if (slot >= 0 && slot != static_cast<std::int32_t>(idx)) {
    // An agent occupies at most one port; acquiring a new one implicitly
    // leaves the old one (keeps the reverse index a true inverse even for
    // direct API users — the engine always releases explicitly first).
    port_holder_[static_cast<std::size_t>(slot)].reset();
  }
  slot = static_cast<std::int32_t>(idx);
  return true;
}

void DynamicRing::release_port(const PortRef& p, AgentId agent) {
  const std::size_t idx = port_index(p);
  auto& holder = port_holder_[idx];
  if (holder && *holder == agent) {
    holder.reset();
    port_of_slot(agent) = -1;
  }
}

void DynamicRing::release_ports_of(AgentId agent) {
  std::int32_t& slot = port_of_slot(agent);
  if (slot >= 0) {
    port_holder_[static_cast<std::size_t>(slot)].reset();
    slot = -1;
  }
}

std::optional<PortRef> DynamicRing::port_of(AgentId agent) const {
  if (agent < 0 || static_cast<std::size_t>(agent) >= agent_port_.size())
    return std::nullopt;
  const std::int32_t slot = agent_port_[static_cast<std::size_t>(agent)];
  if (slot < 0) return std::nullopt;
  return PortRef{static_cast<NodeId>(slot / 2),
                 slot % 2 == 0 ? GlobalDir::Ccw : GlobalDir::Cw};
}

}  // namespace dring::ring
