// The price of liveness: live (decentralised, change-oblivious)
// exploration versus the offline optimum on the *same* dynamic schedule.
//
// The paper's framing (Section 1.1.3) contrasts live exploration with the
// centralised literature where the full change sequence is known in
// advance.  This bench quantifies the gap the paper only discusses
// qualitatively: record the edge schedule of a live run, hand it to an
// omniscient offline planner (dynamic programming over arc states,
// src/ring/evolving_ring.hpp), and compare exploration times.
//
// Also reports the Figure 2 worst case, where the live bound 3n-6 faces
// an offline optimum that simply starts in the other direction.
//
// The live runs execute as a traced sweep on the worker pool
// (--threads=N); the offline DP replans from the returned traces.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "ring/evolving_ring.hpp"
#include "sim/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 4));
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));

  std::cout << "=== Price of liveness: live exploration vs the offline "
               "optimum on the same schedule ===\n\n";

  util::Table table({"schedule", "n", "live algorithm", "live explored@",
                     "offline 2-agent optimum", "ratio"});

  // Scenario matrix: randomized hostile schedules, then the Figure 2
  // worst case; rows are emitted in task order.
  struct Label {
    std::string schedule;
    NodeId n;
    bool fig2;
  };
  std::vector<core::ScenarioTask> tasks;
  std::vector<Label> labels;

  for (const NodeId n : {6, 8, 10}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      core::ScenarioTask task;
      task.cfg = core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      task.cfg.stop.max_rounds = 40 * n;
      task.make_adversary = [n, seed]() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::TargetedRandomAdversary>(
            0.7, 1.0, 505ULL * seed + n);
      };
      tasks.push_back(std::move(task));
      labels.push_back({"targeted-random#" + std::to_string(seed), n, false});
    }
  }
  for (const NodeId n : {8, 10, 12}) {
    core::ScenarioTask task;
    task.cfg = core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    task.cfg.start_nodes = {2, 3};
    task.cfg.orientations = {agent::kChiralOrientation,
                             agent::kChiralOrientation};
    task.cfg.stop.max_rounds = 10 * n;
    task.make_adversary = [n]() -> std::unique_ptr<sim::Adversary> {
      return std::make_unique<adversary::ScriptedEdgeAdversary>(
          adversary::make_fig2_script(n, 2), "fig2");
    };
    tasks.push_back(std::move(task));
    labels.push_back({"figure-2 worst case", n, true});
  }

  const std::vector<core::SweepRun> runs = core::run_sweep_traced(tasks, pool);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const sim::RunResult& live = runs[i].result;
    const Label& label = labels[i];
    const NodeId n = label.n;
    if (!label.fig2 && !live.explored) continue;

    const Round horizon =
        label.fig2 ? 10 * n : live.rounds + 4 * n;
    const auto ring =
        label.fig2
            ? ring::EvolvingRing::from_script(
                  n, adversary::make_fig2_script(n, 2), horizon)
            : ring::EvolvingRing::from_script(
                  n, sim::edge_schedule_of(runs[i].trace), horizon);
    const Round offline = ring::offline_two_agent_exploration_time(
        ring, tasks[i].cfg.start_nodes[0], tasks[i].cfg.start_nodes[1],
        horizon);
    table.add_row(
        {label.schedule, std::to_string(n), "KnownNNoChirality",
         std::to_string(live.explored_round), std::to_string(offline),
         offline > 0 ? util::fmt_double(
                           static_cast<double>(live.explored_round) / offline,
                           2)
                     : "-"});
  }

  table.print(std::cout);
  std::cout
      << "\nThe offline planner, knowing the schedule, explores in ~n/2..n "
         "rounds; the live agents pay up to 3n-6 on the same schedule — "
         "the gap is the information price the paper's live model "
         "isolates.\n";
  return 0;
}
