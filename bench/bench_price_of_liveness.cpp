// The price of liveness: live (decentralised, change-oblivious)
// exploration versus the offline optimum on the *same* dynamic schedule.
//
// The paper's framing (Section 1.1.3) contrasts live exploration with the
// centralised literature where the full change sequence is known in
// advance.  This bench quantifies the gap the paper only discusses
// qualitatively: record the edge schedule of a live run, hand it to an
// omniscient offline planner (dynamic programming over arc states,
// src/ring/evolving_ring.hpp), and compare exploration times.
//
// Also reports the Figure 2 worst case, where the live bound 3n-6 faces
// an offline optimum that simply starts in the other direction.
#include <algorithm>
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "ring/evolving_ring.hpp"
#include "sim/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 4));

  std::cout << "=== Price of liveness: live exploration vs the offline "
               "optimum on the same schedule ===\n\n";

  util::Table table({"schedule", "n", "live algorithm", "live explored@",
                     "offline 2-agent optimum", "ratio"});

  // --- randomized hostile schedules ----------------------------------------
  for (NodeId n : {6, 8, 10}) {
    for (int seed = 1; seed <= seeds; ++seed) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
      cfg.engine.record_trace = true;
      cfg.stop.max_rounds = 40 * n;
      adversary::TargetedRandomAdversary adv(0.7, 1.0, 505ULL * seed + n);
      auto engine = core::make_engine(cfg, &adv);
      const sim::RunResult live = engine->run(cfg.stop);
      if (!live.explored) continue;

      const auto ring = ring::EvolvingRing::from_script(
          n, sim::edge_schedule_of(engine->trace()), live.rounds + 4 * n);
      const Round offline = ring::offline_two_agent_exploration_time(
          ring, cfg.start_nodes[0], cfg.start_nodes[1], live.rounds + 4 * n);
      table.add_row(
          {"targeted-random#" + std::to_string(seed), std::to_string(n),
           "KnownNNoChirality", std::to_string(live.explored_round),
           std::to_string(offline),
           offline > 0 ? util::fmt_double(
                             static_cast<double>(live.explored_round) /
                                 offline,
                             2)
                       : "-"});
    }
  }

  // --- the Figure 2 worst case ------------------------------------------------
  for (NodeId n : {8, 10, 12}) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    cfg.start_nodes = {2, 3};
    cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
    cfg.engine.record_trace = true;
    cfg.stop.max_rounds = 10 * n;
    adversary::ScriptedEdgeAdversary adv(adversary::make_fig2_script(n, 2),
                                         "fig2");
    auto engine = core::make_engine(cfg, &adv);
    const sim::RunResult live = engine->run(cfg.stop);

    const auto ring = ring::EvolvingRing::from_script(
        n, adversary::make_fig2_script(n, 2), 10 * n);
    const Round offline =
        ring::offline_two_agent_exploration_time(ring, 2, 3, 10 * n);
    table.add_row({"figure-2 worst case", std::to_string(n),
                   "KnownNNoChirality", std::to_string(live.explored_round),
                   std::to_string(offline),
                   offline > 0
                       ? util::fmt_double(
                             static_cast<double>(live.explored_round) /
                                 offline,
                             2)
                       : "-"});
  }

  table.print(std::cout);
  std::cout
      << "\nThe offline planner, knowing the schedule, explores in ~n/2..n "
         "rounds; the live agents pay up to 3n-6 on the same schedule — "
         "the gap is the information price the paper's live model "
         "isolates.\n";
  return 0;
}
