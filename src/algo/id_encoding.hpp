// ID machinery of Section 3.2.3 (Algorithm StartFromLandmarkNoChirality).
//
// Agents that never catch each other break symmetry by turning the timing
// of their first two blocked waits (rounds r1, r2) and an optional landmark
// visit (r3) into an ID: the bits of k1 = r1, k2 = r2 - max(r1, r3),
// k3 = max(0, r3 - r1) are interleaved (Figures 9 and 10).  The ID is then
// expanded into an infinite direction schedule: rounds are grouped in
// phases (round r is in phase j iff 2^j <= r < 2^{j+1}); the bit string
// S(ID) = "10" + b(ID) + "0", left-padded to a power of two length 2^jbar,
// is duplicated Dup(S, 2^{j-jbar}) across phase j > jbar, and each bit
// selects the direction for one round (0 = left, 1 = right; Figure 11).
// Phases j <= jbar move left.  Lemma 3 guarantees two distinct IDs share a
// same-direction run of c*n rounds before round 32((len(ID)+3) * c * n) + 1.
#pragma once

#include <cstdint>
#include <string>

#include "ring/types.hpp"

namespace dring::algo {

/// Immutable direction schedule derived from an agent ID.
class IdSchedule {
 public:
  explicit IdSchedule(std::uint64_t id);

  std::uint64_t id() const { return id_; }

  /// S(ID) padded with leading zeros to length 2^jbar.
  const std::string& padded_s() const { return s_; }

  /// jbar: minimal j with 2^j >= len(S(ID)).
  int jbar() const { return jbar_; }

  /// Direction for (1-based) round r. Rounds in phases j <= jbar are left.
  Dir direction(std::int64_t r) const;

  /// The paper's switch(Ttime): whether the direction changes between
  /// round r-1 and round r.
  bool switches(std::int64_t r) const;

  /// Explicit Dup(S, 2^{j-jbar}) bit string of phase j (for tests and the
  /// Figure 11 bench; direction() computes bits without materialising it).
  std::string phase_string(int j) const;

 private:
  std::uint64_t id_;
  std::string s_;
  int jbar_;
};

/// Compute the paper ID from the three counters (Figures 9, 10).
std::uint64_t compute_agent_id(std::uint64_t k1, std::uint64_t k2,
                               std::uint64_t k3);

/// Phase index of round r: j such that 2^j <= r < 2^{j+1} (r >= 1).
int phase_of_round(std::int64_t r);

/// ceil(log2(n)) for n >= 1.
int ceil_log2(std::int64_t n);

/// The Happy-state termination bound of Theorem 7 with Lemma 3's c = 5:
/// 32 * (3*ceil(log2(n)) + 3) * 5 * n.
std::int64_t no_chirality_time_bound(std::int64_t n);

}  // namespace dring::algo
