// Reproduces Figure 2 of the paper: the adversarial schedule under which
// Algorithm KnownNNoChirality needs exactly 3n-6 rounds.
//
// Agents a at v_i and b at v_{i+1}, chirality, N = n:
//   * rounds 1 .. n-3:    edge (v_i, v_{i+1}) missing — a is blocked while
//                         b walks to v_{i-2}              (r1 = n-3)
//   * rounds n-2 .. 3n-6: edge (v_{i-2}, v_{i-1}) missing — b is blocked;
//                         a catches b at round r2 = 2n-5, bounces, and
//                         reaches the last node v_{i-1} the long way
//                         around at exactly r3 = 3n-6.
//
// The bench prints the three milestone rounds for a sweep of n and checks
// the measured exploration round against 3n-6.  The per-n scenarios run
// on the worker pool (--threads=N); rows are emitted in task order, so the
// output is byte-identical for any thread count.
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));
  std::cout << "=== Figure 2: worst-case schedule for KnownNNoChirality "
               "(Theorem 3 tightness) ===\n\n";

  util::Table table({"n", "r1 = n-3", "r2 = 2n-5", "r3 = 3n-6 (paper)",
                     "explored round (measured)", "termination round",
                     "match"});

  std::vector<core::ScenarioTask> tasks;
  std::vector<NodeId> sizes;
  for (NodeId n : std::vector<NodeId>{6, 8, 10, 13, 16, 24, 32, 48, 64}) {
    if (cli.has("max-n") && n > cli.get_int("max-n", 64)) continue;
    const NodeId i = 2;
    core::ScenarioTask task;
    task.cfg = core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    task.cfg.start_nodes = {i, static_cast<NodeId>(i + 1)};
    task.cfg.orientations = {agent::kChiralOrientation,
                             agent::kChiralOrientation};
    task.cfg.stop.max_rounds = 10 * n;
    task.make_adversary = [n, i]() -> std::unique_ptr<sim::Adversary> {
      return std::make_unique<adversary::ScriptedEdgeAdversary>(
          adversary::make_fig2_script(n, i), "fig2");
    };
    tasks.push_back(std::move(task));
    sizes.push_back(n);
  }

  const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);

  bool all_match = true;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const NodeId n = sizes[t];
    const sim::RunResult& r = results[t];
    const bool match = r.explored && r.explored_round == 3 * n - 6 &&
                       !r.premature_termination;
    all_match = all_match && match;
    Round term = 0;
    for (const auto& a : r.agents) term = std::max(term, a.termination_round);
    table.add_row({std::to_string(n), std::to_string(n - 3),
                   std::to_string(2 * n - 5), std::to_string(3 * n - 6),
                   std::to_string(r.explored_round), std::to_string(term),
                   match ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nThe schedule forces exploration to take exactly 3n-6 "
               "rounds, matching the paper's tightness claim for Theorem 3"
            << (all_match ? "." : " — MISMATCH DETECTED!") << "\n";
  return all_match ? 0 : 1;
}
