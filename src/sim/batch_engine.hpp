// Batched lockstep execution of many independent small-ring scenarios.
//
// A BatchEngine owns `width` lanes. Each lane holds one scenario; every
// step_round() advances all occupied lanes by exactly one round, so the
// per-round dispatch cost (virtual calls, branch-predictor resets, cache
// refills) is amortized across lanes. Lanes whose stop policy triggers
// retire through a callback and free their slot for backfill from the
// caller's pending queue.
//
// Two lane kinds, chosen per scenario at admit():
//
//  * Fast lanes — FSYNC model, null adversary, no trace recording. Under
//    those assumptions the scalar engine has an invariant: no agent ever
//    holds a port across a round boundary (every acquired port's edge is
//    present, so the winner traverses and releases within the round, and
//    losers never reach a port). Hence at Look time on_port is always
//    false, both port counts are 0, others_in_node is the node occupancy
//    minus one, no agent is ever blocked or passively transported, there
//    are no fairness/ET interventions and no verifier findings. The fast
//    lane stores exactly the surviving state in structure-of-arrays form
//    (agent nodes/chirality/feedback bytes, per-node occupancy counters,
//    a flat util::BitVec visited arena, byte-wide port-claim slots reset
//    at the end of every round) and fuses the six scalar phases into
//    id-ordered passes:
//      pass A  Look/Compute against the pre-round state (reads only),
//      pass B1 terminations (pre-movement, like scalar phase 3a),
//      pass B2 port mutex by first-arrival claim + inline movement
//              (claims key on the claimant's own pre-move node and claims
//              are never released within a round, so fusing acquisition
//              with movement cannot change any later claim).
//    Results are bit-identical to the scalar engine; the equivalence is
//    pinned by tests/batch_engine_test.cpp across the whole registry and
//    by the CI store byte-equality gate.
//
//  * Fallback lanes — everything else (SSYNC variants, real adversaries,
//    trace recording). Each holds a private scalar Engine driven one
//    round at a time via Engine::advance_run, so equivalence is
//    structural, and all lanes share one Engine::StepScratch so B lanes
//    do not hold B copies of per-round storage.
//
// The batch layer is an execution detail: it is reached only through
// core::run_sweep (SweepOptions::batch_width) and changes no canonical
// artifact bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/brain.hpp"
#include "agent/orientation.hpp"
#include "sim/engine.hpp"
#include "sim/models.hpp"
#include "util/bitstring.hpp"

namespace dring::sim {

/// Everything needed to lay one scenario into a lane: the resolved form of
/// core::ExplorationConfig (agents constructed, adversary owned).
/// core::make_lane_config builds one, sharing the exact placement /
/// orientation / knowledge resolution with core::make_engine.
struct BatchLaneConfig {
  NodeId n = 8;
  std::optional<NodeId> landmark;
  Model model = Model::FSYNC;
  EngineOptions options;
  StopPolicy stop;
  struct Agent {
    NodeId start = 0;
    agent::Orientation orientation;
    std::unique_ptr<agent::Brain> brain;
  };
  std::vector<Agent> agents;
  /// Owned by the lane; nullptr means NullAdversary semantics.
  std::unique_ptr<Adversary> adversary;
};

/// Per-lane engine counters surfaced at retirement: the batch analogue of
/// Engine::PerfCounters plus the round count, so the sweep layer folds the
/// same telemetry either path.
struct LanePerf {
  Round rounds = 0;
  long long snapshots = 0;
  long long probe_calls = 0;
  long long probe_hits = 0;
};

/// Aggregate batch counters (monotonic over the engine's lifetime).
struct BatchStats {
  long long admitted = 0;
  long long fast_lanes = 0;      ///< admissions onto the SoA fast path
  long long fallback_lanes = 0;  ///< admissions onto embedded scalar engines
  long long retired = 0;
  long long batch_rounds = 0;    ///< step_round() calls
  long long lane_rounds = 0;     ///< lane-rounds actually executed
};

class BatchEngine {
 public:
  using RetireFn = std::function<void(std::size_t tag, RunResult&& result,
                                      const LanePerf& perf)>;

  explicit BatchEngine(int width);

  // Non-copyable: lanes hold engines/brains with internal pointers.
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  int width() const { return width_; }
  int active_lanes() const { return active_lanes_; }
  const BatchStats& stats() const { return stats_; }

  /// Lay a scenario into a free lane, tagged with an opaque caller id
  /// (handed back at retirement). Returns false when every lane is
  /// occupied — step_round() until one retires.
  bool admit(BatchLaneConfig config, std::size_t tag);

  /// Advance every occupied lane by one round, in lane-slot order. Lanes
  /// whose stop policy triggers retire through `on_retire` (with a
  /// RunResult bit-identical to Engine::run on the same scenario) and
  /// free their slot. Returns the number of lanes retired.
  int step_round(const RetireFn& on_retire);

 private:
  enum class LaneKind : std::uint8_t { Empty, Fast, Fallback };

  struct FastLane {
    std::size_t tag = 0;
    NodeId n = 0;
    NodeId landmark = kNoNode;  ///< kNoNode = no landmark
    int k = 0;
    int live = 0;
    Round round = 0;
    NodeId visited_count = 0;
    Round explored_round = -1;
    bool premature = false;
    const char* reason = "max_rounds";
    StopPolicy stop;
    long long snapshots = 0;
    std::unique_ptr<Adversary> adversary;  ///< null-equivalent; metrics only
  };

  struct FallbackLane {
    std::size_t tag = 0;
    StopPolicy stop;
    std::string reason = "max_rounds";
    std::unique_ptr<Engine> engine;
    std::unique_ptr<Adversary> adversary;
  };

  void admit_fast(int slot, BatchLaneConfig config, std::size_t tag);
  void relayout(int k_cap, NodeId n_cap);
  /// One fast-lane round; returns false when the stop policy triggered
  /// (lane.reason set).
  bool advance_fast(int slot, FastLane& lane);
  void run_fast_round(int slot, FastLane& lane);
  void retire_fast(int slot, const RetireFn& on_retire);
  void retire_fallback(int slot, RunResult&& result, const RetireFn& on_retire);

  int width_;
  int active_lanes_ = 0;
  BatchStats stats_;
  std::vector<LaneKind> kind_;
  std::vector<FastLane> fast_;
  std::vector<FallbackLane> fallback_;

  /// Shared per-round scratch for all fallback lanes.
  StepScratch scratch_;

  // --- fast-lane SoA arenas -------------------------------------------------
  // Strided by capacity (k_cap_ agents, n_cap_ nodes per lane); admitting a
  // larger scenario relays existing lanes out into wider arenas. Growth is
  // rare (sweeps batch like-sized scenarios) and happens between rounds.
  int k_cap_ = 0;
  NodeId n_cap_ = 0;
  // per-agent, stride k_cap_
  std::vector<NodeId> a_node_;
  std::vector<std::uint8_t> a_left_ccw_;    ///< orientation.left == Ccw
  std::vector<std::uint8_t> a_terminated_;
  std::vector<std::uint8_t> a_feedback_;    ///< packed Feedback bits
  std::vector<Round> a_term_round_;
  std::vector<long long> a_moves_;
  std::vector<std::unique_ptr<agent::Brain>> a_brain_;
  // per-node, stride n_cap_ (port claims: 2 * n_cap_)
  std::vector<std::int32_t> occ_in_node_;
  /// Port mutex: 1 while claimed within the current lane-round.  Claims are
  /// reset (via claimed_) before the round ends, so the arena is all-zero
  /// between rounds — relayout and admit never need to touch it.
  std::vector<std::uint8_t> port_claim_;
  util::BitVec visited_;                    ///< n_cap_ bits per lane
  // --- per-round scratch, stride-less (one lane at a time) ------------------
  /// Packed intent per agent: kIntentNone/Move/Terminate in the low bits,
  /// kIntentDirRight OR'd in for local-Right moves.  Size k_cap_.
  std::vector<std::uint8_t> intent_;
  std::vector<std::size_t> claimed_;        ///< port slots claimed this round
};

}  // namespace dring::sim
