#include "algo/id_encoding.hpp"

#include <cassert>

#include "util/bitstring.hpp"

namespace dring::algo {

IdSchedule::IdSchedule(std::uint64_t id) : id_(id) {
  // S(ID) = "10" + b(ID) + "0".
  std::string s = "10" + util::to_binary(id) + "0";
  jbar_ = 0;
  while ((std::size_t{1} << jbar_) < s.size()) ++jbar_;
  s_ = util::pad_left(s, std::size_t{1} << jbar_);
}

Dir IdSchedule::direction(std::int64_t r) const {
  if (r < 1) return Dir::Left;
  const int j = phase_of_round(r);
  if (j <= jbar_) return Dir::Left;
  // Index within phase j, then compress by the duplication factor
  // 2^{j - jbar} to find the source character of S.
  const std::int64_t offset = r - (std::int64_t{1} << j);
  const std::int64_t k = offset >> (j - jbar_);
  assert(k >= 0 && static_cast<std::size_t>(k) < s_.size());
  return s_[static_cast<std::size_t>(k)] == '0' ? Dir::Left : Dir::Right;
}

bool IdSchedule::switches(std::int64_t r) const {
  return direction(r) != direction(r - 1);
}

std::string IdSchedule::phase_string(int j) const {
  if (j < jbar_) return std::string(std::size_t{1} << j, '0');
  return util::dup(s_, std::size_t{1} << (j - jbar_));
}

std::uint64_t compute_agent_id(std::uint64_t k1, std::uint64_t k2,
                               std::uint64_t k3) {
  return util::interleaved_id(k1, k2, k3);
}

int phase_of_round(std::int64_t r) {
  assert(r >= 1);
  int j = 0;
  while ((std::int64_t{1} << (j + 1)) <= r) ++j;
  return j;
}

int ceil_log2(std::int64_t n) {
  assert(n >= 1);
  int k = 0;
  while ((std::int64_t{1} << k) < n) ++k;
  return k;
}

std::int64_t no_chirality_time_bound(std::int64_t n) {
  return 32 * (3 * ceil_log2(n) + 3) * 5 * n;
}

}  // namespace dring::algo
