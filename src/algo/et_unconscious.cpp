#include "algo/et_unconscious.hpp"

namespace dring::algo {

ETUnconscious::ETUnconscious() : CloneableMachine(agent::Knowledge{}, 0) {}

agent::StepResult ETUnconscious::run_state(int /*state*/,
                                           const agent::Snapshot& snap) {
  if (catches(snap, dir_)) dir_ = opposite(dir_);
  return agent::StepResult::move(dir_);
}

std::string ETUnconscious::name_of(int /*state*/) const { return "Walk"; }

}  // namespace dring::algo
