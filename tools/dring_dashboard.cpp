// Cross-version archive maintenance + the committed trend dashboard
// (core/archive.hpp).
//
//   # append one release record to the archive (append-only; keyed by
//   # engine version, duplicate versions refused unless --force)
//   dring_dashboard --collect --date 2026-08-08 [--archive DIR]
//       [--store results.jsonl ...] [--group-by algorithm,n]
//       [--cells cells.json ...]            # dring_report --emit-archive
//       [--bench BENCH_engine.json [--bench-section current|baseline]]
//       [--perf perf.json ...]              # dring_metrics --emit-archive
//       [--reports examples/paper] [--tests N] [--note TEXT]
//       [--engine NAME --build HASH --schema N]   # backfill overrides
//       [--force]
//
//   # render the whole archive as the trend dashboard
//   dring_dashboard --render [--archive DIR] [--format md|csv|json]
//       [--out FILE]
//
//   # maintain / gate the committed page (examples/DASHBOARD.md + .json)
//   dring_dashboard --regen [--archive DIR] [--page FILE] [--json-page FILE]
//   dring_dashboard --check [--archive DIR] [--page FILE] [--json-page FILE]
//
// --check re-derives the committed dashboard byte for byte from the
// archive directory alone and exits 1 on any drift — the CI gate that
// keeps the page in lockstep with the archive.  The default paths assume
// the repo root as the working directory.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/archive.hpp"
#include "core/campaign.hpp"
#include "core/telemetry.hpp"
#include "core/version.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace dring;

constexpr const char* kDefaultArchive = "examples/archive";
constexpr const char* kDefaultPage = "examples/DASHBOARD.md";
constexpr const char* kDefaultJsonPage = "examples/DASHBOARD.json";

util::FlagTable flag_table() {
  util::FlagTable flags("dring_dashboard",
                        "cross-version archive + committed trend dashboard: "
                        "append release records, render the trajectory, gate "
                        "the committed page");
  flags.synopsis("dring_dashboard --collect --date YYYY-MM-DD"
                 " [--archive DIR] [--store FILE ...] [--group-by AXES]"
                 " [--cells FILE ...] [--bench FILE [--bench-section S]]"
                 " [--perf FILE ...] [--reports DIR] [--tests N]"
                 " [--note TEXT] [--force]")
      .synopsis("dring_dashboard --render [--archive DIR]"
                " [--format md|csv|json] [--out FILE]")
      .synopsis("dring_dashboard --regen|--check [--archive DIR]"
                " [--page FILE] [--json-page FILE]")
      .flag("collect", "", "append one release record to the archive")
      .flag("render", "", "render the archive as a dashboard to stdout/--out")
      .flag("regen", "", "rewrite the committed md + json dashboard pages")
      .flag("check", "", "re-derive the committed pages and fail on drift")
      .flag("archive", "DIR", "archive directory (default examples/archive)")
      .flag("date", "D", "record date, YYYY-MM-DD (collect; explicit so "
                         "records are deterministic)")
      .flag("store", "FILE", "result store to fold into cell groups "
                             "(repeatable; unioned by fingerprint)")
      .flag("group-by", "AXES", "cell-group axes for --store (default "
                                "algorithm,n)")
      .flag("cells", "FILE", "cell-group fragment from dring_report "
                             "--emit-archive (repeatable)")
      .flag("bench", "FILE", "BENCH_engine.json to take perf marks + "
                             "rebaseline history from")
      .flag("bench-section", "S", "bench section to record: current "
                                  "(default) or baseline (backfills)")
      .flag("perf", "FILE", "perf fragment from dring_metrics "
                            "--emit-archive (repeatable)")
      .flag("reports", "DIR", "digest every *.md report in DIR (the "
                              "committed examples/paper)")
      .flag("tests", "N", "tier-1 test count to record")
      .flag("note", "TEXT", "release note (name deliberate rebaselines "
                            "here)")
      .flag("engine", "NAME", "record engine version (default: this build; "
                              "backfilling historical entries)")
      .flag("build", "HASH", "record build-flags hash (default: this build)")
      .flag("schema", "N", "record store-schema version (default: this "
                           "build's)")
      .flag("force", "", "allow rewriting an already-archived version")
      .flag("format", "F", "--render output: md (default), csv or json")
      .flag("out", "FILE", "--render target (default stdout)")
      .flag("page", "FILE", "committed markdown page (default "
                            "examples/DASHBOARD.md)")
      .flag("json-page", "FILE", "committed json page (default "
                                 "examples/DASHBOARD.json)");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("the dashboard is a pure function of the archive directory — "
            "CI re-derives the committed pages byte for byte (--check)");
  return flags;
}

util::Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return util::Json::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

bool valid_date(const std::string& date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') return false;
  for (std::size_t i = 0; i < date.size(); ++i) {
    if (i == 4 || i == 7) continue;
    if (date[i] < '0' || date[i] > '9') return false;
  }
  return true;
}

std::vector<std::string> split_keys(const std::string& list) {
  std::vector<std::string> keys;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      if (!current.empty()) keys.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) keys.push_back(current);
  return keys;
}

/// Merge cell groups from several sources; the same key appearing twice
/// with different aggregates is a collection error (two sources measured
/// the same cell differently), not something to silently average.
void merge_cells(std::vector<core::ArchiveCellGroup>& into,
                 const std::vector<core::ArchiveCellGroup>& from) {
  for (const core::ArchiveCellGroup& cell : from) {
    bool found = false;
    for (const core::ArchiveCellGroup& have : into) {
      if (have.key != cell.key) continue;
      found = true;
      if (!(have == cell))
        throw std::runtime_error(
            "collect: cell group '" + cell.key +
            "' appears twice with different aggregates — sources overlap");
    }
    if (!found) into.push_back(cell);
  }
}

int run_collect(const util::Cli& cli) {
  const std::string archive_dir = cli.get("archive", kDefaultArchive);
  const std::string date = cli.get("date", "");
  if (!valid_date(date)) {
    std::cerr << "dring_dashboard: --collect needs --date YYYY-MM-DD (the "
                 "record must be deterministic, so the date is explicit)\n";
    return 2;
  }

  core::ArchiveRecord record;
  record.engine = cli.get("engine", core::engine_version());
  record.build = cli.get("build", core::build_flags_hash());
  record.schema = cli.get_int("schema", core::kStoreSchemaVersion);
  record.date = date;
  record.note = cli.get("note", "");
  record.tests = cli.get_int("tests", -1);

  // Cell groups: folded from stores and/or pre-folded fragments.
  std::vector<std::string> group_keys;
  for (const std::string& key :
       split_keys(cli.get("group-by", "algorithm,n")))
    group_keys.push_back(core::canonical_axis(key));
  if (!cli.get_all("store").empty()) {
    const core::ResultStore store =
        core::load_result_stores(cli.get_all("store"));
    merge_cells(record.cells, core::archive_cells(store.rows, group_keys));
  }
  for (const std::string& path : cli.get_all("cells"))
    merge_cells(record.cells,
                core::archive_cells_from_json(read_json_file(path)));
  std::sort(record.cells.begin(), record.cells.end(),
            [](const core::ArchiveCellGroup& a,
               const core::ArchiveCellGroup& b) { return a.key < b.key; });

  // Perf marks: straight from a bench snapshot and/or fragments.
  if (cli.has("bench")) {
    const util::Json bench = read_json_file(cli.get("bench", ""));
    record.perf =
        core::perf_marks_from_bench(bench, cli.get("bench-section",
                                                   "current"));
    record.bench_history = core::bench_history_from_bench(bench);
  }
  for (const std::string& path : cli.get_all("perf")) {
    const util::Json fragment = read_json_file(path);
    for (const auto& [name, mark] :
         core::perf_marks_from_bench(fragment, "perf")) {
      const auto it = record.perf.find(name);
      if (it != record.perf.end() && !(it->second == mark))
        throw std::runtime_error("collect: perf mark '" + name +
                                 "' appears twice with different values");
      record.perf[name] = mark;
    }
    if (record.bench_history.empty())
      record.bench_history = core::bench_history_from_bench(fragment);
  }

  // Committed report digests.
  if (cli.has("reports")) {
    namespace fs = std::filesystem;
    const std::string dir = cli.get("reports", "");
    if (!fs::is_directory(dir))
      throw std::runtime_error("collect: --reports " + dir +
                               " is not a directory");
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".md")
        continue;
      record.reports[entry.path().stem().string()] =
          core::content_digest(read_text_file(entry.path().string()));
    }
  }

  const std::string path = core::append_archive_record(
      archive_dir, record, cli.get_bool("force", false));
  core::log_line(core::LogLevel::kInfo,
                 "archived " + record.engine + " -> " + path + " (" +
                     std::to_string(record.cells.size()) + " cell groups, " +
                     std::to_string(record.perf.size()) + " perf marks, " +
                     std::to_string(record.reports.size()) +
                     " report digests)");
  return 0;
}

int run_render(const util::Cli& cli) {
  const std::vector<core::ArchiveRecord> records =
      core::read_archive_dir(cli.get("archive", kDefaultArchive));
  const std::string rendered = core::render_dashboard(
      records, core::report_format_from_string(cli.get("format", "md")));
  if (cli.has("out")) {
    write_text_file(cli.get("out", ""), rendered);
    core::log_line(core::LogLevel::kInfo, "wrote " + cli.get("out", ""));
  } else {
    std::cout << rendered;
  }
  return 0;
}

int run_regen_or_check(const util::Cli& cli, bool check) {
  const std::vector<core::ArchiveRecord> records =
      core::read_archive_dir(cli.get("archive", kDefaultArchive));
  const std::string page = cli.get("page", kDefaultPage);
  const std::string json_page = cli.get("json-page", kDefaultJsonPage);
  const std::string md =
      core::render_dashboard(records, core::ReportFormat::Markdown);
  const std::string json =
      core::render_dashboard(records, core::ReportFormat::Json);
  if (!check) {
    write_text_file(page, md);
    write_text_file(json_page, json);
    core::log_line(core::LogLevel::kInfo,
                   "wrote " + page + " and " + json_page);
    return 0;
  }
  int drifted = 0;
  for (const auto& [path, expected] :
       {std::pair{page, md}, std::pair{json_page, json}}) {
    std::string committed;
    try {
      committed = read_text_file(path);
    } catch (const std::exception& e) {
      std::cerr << "dring_dashboard: --check: " << e.what() << "\n";
      ++drifted;
      continue;
    }
    if (committed != expected) {
      std::cerr << "dring_dashboard: " << path
                << " does not match the archive-derived page — run "
                   "dring_dashboard --regen and commit, or revert the "
                   "undocumented archive change\n";
      ++drifted;
    }
  }
  if (drifted == 0)
    core::log_line(core::LogLevel::kInfo,
                   "dashboard check passed: " + page + " and " + json_page +
                       " re-derive byte-identically from " +
                       cli.get("archive", kDefaultArchive));
  return drifted == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  const int selected = (cli.has("collect") ? 1 : 0) +
                       (cli.has("render") ? 1 : 0) +
                       (cli.has("regen") ? 1 : 0) + (cli.has("check") ? 1 : 0);
  if (selected != 1) {
    std::cerr << "dring_dashboard: pass exactly one of --collect, --render, "
                 "--regen, --check\n"
              << flags.help_text();
    return 2;
  }

  try {
    if (cli.has("collect")) return run_collect(cli);
    if (cli.has("render")) return run_render(cli);
    return run_regen_or_check(cli, cli.has("check"));
  } catch (const std::exception& e) {
    std::cerr << "dring_dashboard: " << e.what() << "\n";
    return 1;
  }
}
