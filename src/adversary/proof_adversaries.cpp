#include "adversary/proof_adversaries.hpp"

#include <algorithm>

namespace dring::adversary {

namespace {

/// Find the intent record of `agent`, if it was active and moving.
const sim::IntentRecord* find_move(const std::vector<sim::IntentRecord>& recs,
                                   AgentId agent) {
  for (const sim::IntentRecord& r : recs)
    if (r.agent == agent && r.move) return &r;
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockAgentAdversary (Observation 1)
// ---------------------------------------------------------------------------

std::optional<EdgeId> BlockAgentAdversary::choose_missing_edge(
    const sim::WorldView& view, const std::vector<sim::IntentRecord>& intents) {
  if (const sim::IntentRecord* rec = find_move(intents, victim_))
    return rec->target_edge;
  // Victim not active this round: if it sleeps on a port, keep that edge
  // out so it cannot be passively transported either.
  if (!view.terminated(victim_) && view.on_port(victim_))
    return view.edge_towards(victim_, view.port_side(victim_));
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// PreventMeetingAdversary (Observation 2)
// ---------------------------------------------------------------------------

std::optional<EdgeId> PreventMeetingAdversary::choose_missing_edge(
    const sim::WorldView& view, const std::vector<sim::IntentRecord>& intents) {
  const int m = view.num_agents();
  const NodeId n = view.ring_size();

  // Predicted end-of-round node for every agent, assuming no removal.
  std::vector<NodeId> dest(static_cast<std::size_t>(m));
  std::vector<const sim::IntentRecord*> mover(static_cast<std::size_t>(m),
                                              nullptr);
  for (AgentId a = 0; a < m; ++a) {
    dest[static_cast<std::size_t>(a)] = view.node_of(a);
    if (const sim::IntentRecord* rec = find_move(intents, a);
        rec != nullptr && rec->port_acquired) {
      mover[static_cast<std::size_t>(a)] = rec;
      const NodeId from = view.node_of(a);
      dest[static_cast<std::size_t>(a)] =
          *rec->move == GlobalDir::Ccw ? (from + 1) % n : (from - 1 + n) % n;
    }
  }

  // A silent head-on crossing of the same edge is not a meeting.
  auto crossing = [&](AgentId x, AgentId y) {
    return mover[static_cast<std::size_t>(x)] != nullptr &&
           mover[static_cast<std::size_t>(y)] != nullptr &&
           mover[static_cast<std::size_t>(x)]->target_edge ==
               mover[static_cast<std::size_t>(y)]->target_edge &&
           dest[static_cast<std::size_t>(x)] == view.node_of(y) &&
           dest[static_cast<std::size_t>(y)] == view.node_of(x);
  };

  for (AgentId x = 0; x < m; ++x) {
    for (AgentId y = 0; y < m; ++y) {
      if (x == y || dest[static_cast<std::size_t>(x)] !=
                        dest[static_cast<std::size_t>(y)])
        continue;
      if (crossing(x, y)) continue;
      // Removing the edge of either mover prevents the co-location; prefer
      // the lower-id mover (deterministic; never blocks both, Obs. 2).
      if (mover[static_cast<std::size_t>(x)] != nullptr)
        return mover[static_cast<std::size_t>(x)]->target_edge;
      if (mover[static_cast<std::size_t>(y)] != nullptr)
        return mover[static_cast<std::size_t>(y)]->target_edge;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// NsFirstMoverAdversary (Theorem 9)
// ---------------------------------------------------------------------------

std::vector<bool> NsFirstMoverAdversary::select_active(
    const sim::WorldView& view) {
  const int m = view.num_agents();
  std::vector<bool> active(static_cast<std::size_t>(m), false);
  first_ = -1;
  Round best_idle = -1;
  for (AgentId a = 0; a < m; ++a) {
    if (view.terminated(a)) continue;
    if (view.probe_move(a).has_value()) {
      // A(t): the would-be movers. Pick first(t) = longest passive.
      const Round idle = view.idle_rounds(a);
      if (idle > best_idle) {
        best_idle = idle;
        first_ = a;
      }
    } else {
      active[static_cast<std::size_t>(a)] = true;  // P(t): non-movers
    }
  }
  if (first_ >= 0) active[static_cast<std::size_t>(first_)] = true;
  return active;
}

std::optional<EdgeId> NsFirstMoverAdversary::choose_missing_edge(
    const sim::WorldView& /*view*/,
    const std::vector<sim::IntentRecord>& intents) {
  if (first_ < 0) return std::nullopt;
  if (const sim::IntentRecord* rec = find_move(intents, first_))
    return rec->target_edge;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// HeadOnPinAdversary (Theorem 10 demonstration)
// ---------------------------------------------------------------------------

std::optional<EdgeId> HeadOnPinAdversary::choose_missing_edge(
    const sim::WorldView& view, const std::vector<sim::IntentRecord>& intents) {
  if (pinned_) return pinned_;

  const sim::IntentRecord* ra = find_move(intents, a_);
  const sim::IntentRecord* rb = find_move(intents, b_);
  // Also treat an agent blocked on a port as "moving" in its port direction.
  GlobalDir da{}, db{};
  bool have_a = false, have_b = false;
  if (ra != nullptr) {
    da = *ra->move;
    have_a = true;
  } else if (view.on_port(a_)) {
    da = view.port_side(a_);
    have_a = true;
  }
  if (rb != nullptr) {
    db = *rb->move;
    have_b = true;
  } else if (view.on_port(b_)) {
    db = view.port_side(b_);
    have_b = true;
  }
  if (!have_a || !have_b || da != opposite(db)) return std::nullopt;

  const NodeId n = view.ring_size();
  const NodeId ua = view.node_of(a_);
  const NodeId ub = view.node_of(b_);
  // Arc distance from a to b along a's direction of motion.
  const NodeId dist = da == GlobalDir::Ccw ? (ub - ua + n) % n
                                           : (ua - ub + n) % n;
  if (dist == 1) {
    // Adjacent, approaching head-on across one shared edge: pin it forever.
    pinned_ = view.edge_towards(a_, da);
    return pinned_;
  }
  if (dist != 0 && dist % 2 == 0 && ra != nullptr) {
    // Even gap would end in a silent crossing or a same-node meeting;
    // block a once to fix the parity so they end up across one edge.
    return ra->target_edge;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// SlidingWindowAdversary (Theorems 13 and 15)
// ---------------------------------------------------------------------------

std::vector<bool> SlidingWindowAdversary::select_active(
    const sim::WorldView& view) {
  std::vector<bool> active(static_cast<std::size_t>(view.num_agents()), false);
  if (!view.terminated(chaser_))
    active[static_cast<std::size_t>(chaser_)] = true;
  // The leader is activated only to (re)position itself on its port after a
  // passive transport; once waiting on the port it is left asleep.
  if (!view.terminated(leader_) && !view.on_port(leader_))
    active[static_cast<std::size_t>(leader_)] = true;
  return active;
}

std::optional<EdgeId> SlidingWindowAdversary::choose_missing_edge(
    const sim::WorldView& view, const std::vector<sim::IntentRecord>& intents) {
  const std::vector<bool>& visited = view.visited();
  const NodeId n = view.ring_size();
  const bool all_visited =
      std::all_of(visited.begin(), visited.end(), [](bool v) { return v; });
  if (all_visited && relent_) return std::nullopt;  // let the run finish

  const GlobalDir right = opposite(left_);

  // Rule 1: block the chaser's expansion to the right (unvisited node).
  // On exactly these rounds the leader's edge is present, so a leader
  // sleeping on its port is passively transported: the window slides.
  if (!all_visited) {
    if (const sim::IntentRecord* rc = find_move(intents, chaser_)) {
      if (*rc->move == right && rc->port_acquired) {
        const NodeId from = view.node_of(chaser_);
        const NodeId to =
            right == GlobalDir::Ccw ? (from + 1) % n : (from - 1 + n) % n;
        if (!visited[static_cast<std::size_t>(to)]) {
          if (view.on_port(leader_) && !view.active_last_round(leader_))
            ++shifts_;
          return rc->target_edge;
        }
      }
    }
  }

  // Rule 2: keep the leader pinned (it always presses on the left
  // boundary edge, whether actively this round or asleep on the port).
  if (!view.terminated(leader_)) {
    if (const sim::IntentRecord* rl = find_move(intents, leader_))
      return rl->target_edge;
    if (view.on_port(leader_))
      return view.edge_towards(leader_, view.port_side(leader_));
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// SegmentSealAdversary (Theorem 19)
// ---------------------------------------------------------------------------

bool SegmentSealAdversary::pressure_on(const sim::WorldView& view,
                                       EdgeId e) const {
  for (AgentId a = 0; a < view.num_agents(); ++a) {
    if (view.terminated(a)) continue;
    if (view.on_port(a) && view.edge_towards(a, view.port_side(a)) == e)
      return true;
    if (!view.on_port(a)) {
      const auto move = view.probe_move(a);
      if (move && view.edge_towards(a, *move) == e) return true;
    }
  }
  return false;
}

std::vector<bool> SegmentSealAdversary::select_active(
    const sim::WorldView& view) {
  const bool pa = pressure_on(view, ea_);
  const bool pb = pressure_on(view, eb_);
  plan_remove_.reset();
  if (pa && pb) {
    flip_ = !flip_;
    plan_remove_ = flip_ ? ea_ : eb_;
  } else if (pa) {
    plan_remove_ = ea_;
  } else if (pb) {
    plan_remove_ = eb_;
  }

  // Passivate the agents pressing on the seal edge that stays present this
  // round — both those already waiting on its ports and those in the node
  // proper about to position themselves on one (ET: legal for any finite
  // number of rounds).
  std::vector<bool> active(static_cast<std::size_t>(view.num_agents()), true);
  const std::optional<EdgeId> present_seal =
      plan_remove_ == ea_ ? std::optional<EdgeId>(eb_)
      : plan_remove_ == eb_ ? std::optional<EdgeId>(ea_)
                            : std::nullopt;
  if (present_seal) {
    for (AgentId a = 0; a < view.num_agents(); ++a) {
      if (view.terminated(a)) continue;
      bool pressing = false;
      if (view.on_port(a)) {
        pressing = view.edge_towards(a, view.port_side(a)) == *present_seal;
      } else if (const auto move = view.probe_move(a)) {
        pressing = view.edge_towards(a, *move) == *present_seal;
      }
      if (pressing) active[static_cast<std::size_t>(a)] = false;
    }
  }
  return active;
}

std::optional<EdgeId> SegmentSealAdversary::choose_missing_edge(
    const sim::WorldView& /*view*/,
    const std::vector<sim::IntentRecord>& /*intents*/) {
  return plan_remove_;
}

// ---------------------------------------------------------------------------
// Figure 2 schedule
// ---------------------------------------------------------------------------

ScriptedEdgeAdversary::Script make_fig2_script(NodeId n, NodeId i) {
  const EdgeId first_edge = i % n;                 // (v_i, v_{i+1})
  const EdgeId second_edge = ((i - 2) % n + n) % n;  // (v_{i-2}, v_{i-1})
  const Round phase1_end = n - 3;
  const Round phase2_end = 3 * static_cast<Round>(n) - 6;
  return [=](Round r) -> std::optional<EdgeId> {
    if (r <= phase1_end) return first_edge;
    if (r <= phase2_end) return second_edge;
    return std::nullopt;
  };
}

}  // namespace dring::adversary
