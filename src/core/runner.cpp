#include "core/runner.hpp"

#include <stdexcept>

namespace dring::core {

ExplorationConfig default_config(algo::AlgorithmId id, NodeId n) {
  return default_config(id, n, 0);
}

ExplorationConfig default_config(algo::AlgorithmId id, NodeId n,
                                 int num_agents) {
  const algo::AlgorithmInfo& meta = algo::info(id);
  if (num_agents < 0) throw std::invalid_argument("num_agents must be >= 0");
  const int agents = num_agents > 0 ? num_agents : meta.num_agents;
  ExplorationConfig cfg;
  cfg.n = n;
  cfg.algorithm = id;
  cfg.model = meta.model;
  cfg.num_agents = agents;
  if (meta.needs_landmark) cfg.landmark = 0;
  if (meta.needs_upper_bound) cfg.upper_bound = n;  // tight bound by default
  if (meta.needs_exact_n) cfg.exact_n = n;

  cfg.orientations.assign(static_cast<std::size_t>(agents),
                          agent::kChiralOrientation);
  if (!meta.needs_chirality) {
    // Exercise the no-chirality setting by default: alternate orientations.
    for (std::size_t i = 1; i < cfg.orientations.size(); i += 2)
      cfg.orientations[i] = agent::kMirroredOrientation;
  }

  // Start positions: the theorem-specific defaults.
  if (id == algo::AlgorithmId::StartFromLandmarkNoChirality) {
    cfg.start_nodes.assign(static_cast<std::size_t>(agents), *cfg.landmark);
  } else {
    for (int i = 0; i < agents; ++i)
      cfg.start_nodes.push_back(
          static_cast<NodeId>((static_cast<long long>(i) * n) / agents));
  }

  // Stop policy by termination kind.
  if (!meta.terminating) {
    cfg.stop.stop_when_explored = true;
    cfg.stop.stop_when_all_terminated = false;
  } else if (sim::is_ssync(meta.model)) {
    // SSYNC results guarantee only (strong) partial termination.
    cfg.stop.stop_when_explored_and_one_terminated = true;
  }
  return cfg;
}

sim::BatchLaneConfig make_lane_config(const ExplorationConfig& cfg,
                                      std::unique_ptr<sim::Adversary> adversary) {
  const algo::AlgorithmInfo& meta = algo::info(cfg.algorithm);
  const int agents = cfg.num_agents > 0 ? cfg.num_agents : meta.num_agents;

  if (meta.needs_landmark && !cfg.landmark)
    throw std::invalid_argument(meta.name + " requires a landmark");
  if (!cfg.start_nodes.empty() &&
      static_cast<int>(cfg.start_nodes.size()) != agents)
    throw std::invalid_argument("start_nodes size != num_agents");
  if (!cfg.orientations.empty() &&
      static_cast<int>(cfg.orientations.size()) != agents)
    throw std::invalid_argument("orientations size != num_agents");

  agent::Knowledge knowledge;
  if (cfg.upper_bound) knowledge.upper_bound = *cfg.upper_bound;
  if (cfg.exact_n) knowledge.exact_n = *cfg.exact_n;

  sim::BatchLaneConfig lane;
  lane.n = cfg.n;
  lane.landmark = cfg.landmark;
  lane.model = cfg.model;
  lane.options = cfg.engine;
  lane.stop = cfg.stop;
  lane.agents.reserve(static_cast<std::size_t>(agents));
  for (int i = 0; i < agents; ++i) {
    sim::BatchLaneConfig::Agent a;
    a.start =
        cfg.start_nodes.empty()
            ? static_cast<NodeId>((static_cast<long long>(i) * cfg.n) / agents)
            : cfg.start_nodes[static_cast<std::size_t>(i)];
    a.orientation =
        cfg.orientations.empty() ? agent::kChiralOrientation
                                 : cfg.orientations[static_cast<std::size_t>(i)];
    a.brain = algo::make_brain(cfg.algorithm, knowledge);
    lane.agents.push_back(std::move(a));
  }
  lane.adversary = std::move(adversary);
  return lane;
}

std::unique_ptr<sim::Engine> make_engine(const ExplorationConfig& cfg,
                                         sim::Adversary* adversary) {
  sim::BatchLaneConfig lane = make_lane_config(cfg, nullptr);
  auto engine = std::make_unique<sim::Engine>(lane.n, lane.landmark, lane.model,
                                              lane.options);
  for (sim::BatchLaneConfig::Agent& a : lane.agents)
    engine->add_agent(a.start, a.orientation, std::move(a.brain));
  engine->set_adversary(adversary);
  return engine;
}

sim::RunResult run_exploration(const ExplorationConfig& cfg,
                               sim::Adversary* adversary) {
  sim::RunResult result = make_engine(cfg, adversary)->run(cfg.stop);
  if (adversary) adversary->report_metrics(result.adversary_metrics);
  return result;
}

}  // namespace dring::core
